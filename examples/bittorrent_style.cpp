// BitTorrent-style s-networks (Section 5.5): each t-peer acts as a tracker
// that indexes every item in its s-network, so lookups go straight to the
// holder instead of flooding.  This example runs the same workload under
// Gnutella-style flooding trees and tracker mode and compares the cost.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

using namespace hp2p;

namespace {

struct Cost {
  double mean_contacted = 0;
  double mean_latency_ms = 0;
  double failure_ratio = 0;
  std::uint64_t query_messages = 0;
};

Cost run(hybrid::SNetworkStyle style) {
  Rng rng{31337};
  const auto topo_params = net::TransitStubParams::for_total_nodes(140);
  net::Underlay underlay{net::generate_transit_stub(topo_params, rng), rng};
  sim::Simulator simulator;
  proto::OverlayNetwork network{simulator, underlay};

  hybrid::HybridParams params;
  params.ps = 0.9;  // big s-networks make the contrast visible
  params.ttl = 6;
  params.style = style;
  hybrid::HybridSystem system{network, params, HostIndex{0}, rng};

  std::vector<PeerIndex> peers;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const auto role = i < 6 ? hybrid::Role::kTPeer : hybrid::Role::kSPeer;
    simulator.schedule_after(sim::SimTime::millis(i * 40), [&, i, role] {
      peers.push_back(
          system.add_peer_with_role(HostIndex{1 + i}, role, {}));
    });
  }
  simulator.run();

  Rng op_rng = rng.fork(2);
  const auto corpus = workload::uniform_corpus(150, 5);
  for (const auto& item : corpus) {
    system.store_id(peers[op_rng.index(peers.size())], item.id, item.key,
                    item.value);
  }
  simulator.run();
  const std::uint64_t queries_before =
      network.stats().class_messages(proto::TrafficClass::kQuery);

  Cost cost;
  double latency = 0;
  double contacted = 0;
  int successes = 0;
  int failures = 0;
  for (int i = 0; i < 300; ++i) {
    const auto& item = corpus[op_rng.index(corpus.size())];
    system.lookup_id(peers[op_rng.index(peers.size())], item.id,
                     [&](proto::LookupResult r) {
                       if (r.success) {
                         ++successes;
                         latency += r.latency.as_millis();
                         contacted += r.peers_contacted;
                       } else {
                         ++failures;
                       }
                     });
  }
  simulator.run();
  cost.mean_contacted = successes ? contacted / successes : 0;
  cost.mean_latency_ms = successes ? latency / successes : 0;
  cost.failure_ratio = failures / 300.0;
  cost.query_messages =
      network.stats().class_messages(proto::TrafficClass::kQuery) -
      queries_before;
  return cost;
}

}  // namespace

int main() {
  std::printf("Gnutella-style flooding vs BitTorrent-style trackers "
              "(p_s = 0.9, 60 peers, 300 lookups)\n\n");
  const Cost flood = run(hybrid::SNetworkStyle::kTree);
  const Cost tracker = run(hybrid::SNetworkStyle::kBitTorrent);

  std::printf("%-22s %16s %14s %16s %14s\n", "s-network style",
              "peers contacted", "latency (ms)", "query messages",
              "failure ratio");
  std::printf("%-22s %16.1f %14.1f %16llu %14.3f\n", "tree + flooding",
              flood.mean_contacted, flood.mean_latency_ms,
              static_cast<unsigned long long>(flood.query_messages),
              flood.failure_ratio);
  std::printf("%-22s %16.1f %14.1f %16llu %14.3f\n", "tracker (BitTorrent)",
              tracker.mean_contacted, tracker.mean_latency_ms,
              static_cast<unsigned long long>(tracker.query_messages),
              tracker.failure_ratio);
  std::printf("\nThe tracker answers each query with the exact holder: no "
              "flooding, no TTL misses,\nat the cost of a per-s-network "
              "index the t-peer must maintain.\n");
  return 0;
}
