// Churn resilience: peers keep joining, leaving and crashing while the
// system serves lookups (Sections 3.2-3.3 machinery under load).
//
// Demonstrates: graceful t-peer leaves via s-peer promotion (the ring's
// size never changes), HELLO-timeout crash detection, server-arbitrated
// t-peer replacement, and orphan-subtree rejoin -- and quantifies the only
// permanent damage: data that lived on crashed peers.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

using namespace hp2p;

int main() {
  Rng rng{99};
  const auto topo_params = net::TransitStubParams::for_total_nodes(160);
  net::Underlay underlay{net::generate_transit_stub(topo_params, rng), rng};
  sim::Simulator simulator;
  proto::OverlayNetwork network{simulator, underlay};

  hybrid::HybridParams params;
  params.ps = 0.7;
  params.ttl = 8;
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  params.lookup_timeout = sim::SimTime::seconds(8);
  hybrid::HybridSystem system{network, params, HostIndex{0}, rng};

  // Build 70 peers.
  std::vector<PeerIndex> peers;
  for (std::uint32_t i = 0; i < 70; ++i) {
    const auto role = i < 21 ? hybrid::Role::kTPeer : hybrid::Role::kSPeer;
    simulator.schedule_after(sim::SimTime::millis(i * 40), [&, i, role] {
      peers.push_back(
          system.add_peer_with_role(HostIndex{1 + i}, role, {}));
    });
  }
  simulator.run();
  std::printf("built: %zu t-peers, %zu s-peers; ring ok: %s\n",
              system.num_tpeers(), system.num_speers(),
              system.verify_ring() ? "yes" : "no");

  // Publish 200 items.
  Rng op_rng = rng.fork(4);
  const auto corpus = workload::uniform_corpus(200, 99);
  for (const auto& item : corpus) {
    system.store_id(peers[op_rng.index(peers.size())], item.id, item.key,
                    item.value);
  }
  simulator.run();

  system.start_failure_detection();

  // Churn storm: 6 graceful t-peer leaves, 6 s-peer leaves, 8 crashes.
  std::vector<PeerIndex> gone;
  auto pick_live = [&](hybrid::Role role) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      const PeerIndex p = peers[op_rng.index(peers.size())];
      if (system.is_joined(p) && system.is_alive(p) &&
          system.role_of(p) == role) {
        return p;
      }
    }
    return kNoPeer;
  };
  int scheduled = 0;
  for (int i = 0; i < 6; ++i) {
    simulator.schedule_after(sim::SimTime::millis(500 + i * 700), [&] {
      if (const PeerIndex p = pick_live(hybrid::Role::kTPeer); p != kNoPeer) {
        system.leave(p);
        gone.push_back(p);
      }
    });
    ++scheduled;
  }
  for (int i = 0; i < 6; ++i) {
    simulator.schedule_after(sim::SimTime::millis(800 + i * 700), [&] {
      if (const PeerIndex p = pick_live(hybrid::Role::kSPeer); p != kNoPeer) {
        system.leave(p);
        gone.push_back(p);
      }
    });
    ++scheduled;
  }
  std::size_t items_lost = 0;
  for (int i = 0; i < 8; ++i) {
    simulator.schedule_after(sim::SimTime::millis(1100 + i * 700), [&] {
      if (const PeerIndex p = pick_live(op_rng.chance(0.5)
                                            ? hybrid::Role::kTPeer
                                            : hybrid::Role::kSPeer);
          p != kNoPeer) {
        items_lost += system.store_of(p).size();
        system.crash(p);
        gone.push_back(p);
      }
    });
    ++scheduled;
  }
  // Let the churn play out and the failure detectors repair the overlay.
  simulator.run_until(simulator.now() + sim::SimTime::seconds(40));
  std::printf("after churn (%d events, %zu peers gone): %zu t-peers, ring "
              "ok: %s, trees ok: %s\n",
              scheduled, gone.size(), system.num_tpeers(),
              system.verify_ring() ? "yes" : "no",
              system.verify_trees() ? "yes" : "no");
  std::printf("items lost with crashed peers: %zu of %zu\n", items_lost,
              corpus.size());

  // Serve lookups for the full catalogue and measure the damage.
  int successes = 0;
  int failures = 0;
  for (const auto& item : corpus) {
    const auto live = system.live_peers();
    system.lookup_id(live[op_rng.index(live.size())], item.id,
                     [&](proto::LookupResult r) {
                       r.success ? ++successes : ++failures;
                     });
  }
  simulator.run_until(simulator.now() + sim::SimTime::seconds(30));
  std::printf("lookups after recovery: %d found / %d failed (failure ratio "
              "%.3f)\n",
              successes, failures,
              static_cast<double>(failures) /
                  static_cast<double>(corpus.size()));
  std::printf("(failures stem from crash-lost data; graceful leaves lose "
              "nothing)\n");
  return 0;
}
