// sweep_cli: run a custom hybrid-P2P experiment from the command line --
// the "I just want to try a parameter combination" entry point, no C++
// required.
//
//   ./sweep_cli --peers 500 --ps 0.7 --ttl 4 --items 1000 --lookups 1000
//   ./sweep_cli --ps 0.8 --placement 1            # paper's scheme 1
//   ./sweep_cli --ps 0.9 --style bt               # tracker s-networks
//   ./sweep_cli --ps 0.6 --routing finger --crash 0.2
//
// Prints one row of every metric the paper reports, plus a CSV line for
// scripting.
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/harness.hpp"

using namespace hp2p;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --peers N        total peers (default 400)\n"
      "  --ps X           fraction of s-peers in [0,1] (default 0.5)\n"
      "  --delta N        s-network degree cap (default 3)\n"
      "  --ttl N          flood radius (default 4)\n"
      "  --items N        stored items (default 1000)\n"
      "  --lookups N      lookups (default 1000)\n"
      "  --seed N         RNG seed (default 42)\n"
      "  --placement 1|2  data placement scheme (default 2)\n"
      "  --style tree|star|mesh|bt   s-network topology (default tree)\n"
      "  --routing ring|finger       t-network routing (default ring)\n"
      "  --search flood|walk         s-network search (default flood)\n"
      "  --crash X        crash this fraction before the lookups\n"
      "  --hetero         model access-link transmission delays\n"
      "  --capacity-roles fast hosts become t-peers (Section 5.1)\n"
      "  --topology-aware landmark-binned s-networks (Section 5.2)\n"
      "  --interest       interest-based s-networks + 90%% local ops\n"
      "  --bypass         bypass links (Section 5.4)\n"
      "  --caching        Section 7 caching scheme\n"
      "  --zipf X         Zipf exponent for lookup popularity\n",
      argv0);
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  exp::RunConfig cfg;
  cfg.num_peers = 400;
  cfg.num_items = 1000;
  cfg.num_lookups = 1000;
  cfg.seed = 42;
  cfg.hybrid.ttl = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t u = 0;
    double d = 0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--peers" && parse_u64(next(), u)) {
      cfg.num_peers = static_cast<std::uint32_t>(u);
    } else if (arg == "--ps" && parse_double(next(), d)) {
      cfg.hybrid.ps = d;
    } else if (arg == "--delta" && parse_u64(next(), u)) {
      cfg.hybrid.delta = static_cast<unsigned>(u);
    } else if (arg == "--ttl" && parse_u64(next(), u)) {
      cfg.hybrid.ttl = static_cast<unsigned>(u);
    } else if (arg == "--items" && parse_u64(next(), u)) {
      cfg.num_items = u;
    } else if (arg == "--lookups" && parse_u64(next(), u)) {
      cfg.num_lookups = u;
    } else if (arg == "--seed" && parse_u64(next(), u)) {
      cfg.seed = u;
    } else if (arg == "--placement" && parse_u64(next(), u)) {
      cfg.hybrid.placement = u == 1 ? hybrid::PlacementScheme::kTPeerStores
                                    : hybrid::PlacementScheme::kRandomSpread;
    } else if (arg == "--style") {
      const char* v = next();
      if (v == nullptr) break;
      if (std::strcmp(v, "star") == 0) {
        cfg.hybrid.style = hybrid::SNetworkStyle::kStar;
      } else if (std::strcmp(v, "mesh") == 0) {
        cfg.hybrid.style = hybrid::SNetworkStyle::kMesh;
      } else if (std::strcmp(v, "bt") == 0) {
        cfg.hybrid.style = hybrid::SNetworkStyle::kBitTorrent;
      }
    } else if (arg == "--routing") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "finger") == 0) {
        cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
      }
    } else if (arg == "--search") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "walk") == 0) {
        cfg.hybrid.s_search = hybrid::SSearch::kRandomWalk;
      }
    } else if (arg == "--crash" && parse_double(next(), d)) {
      cfg.crash_fraction = d;
    } else if (arg == "--hetero") {
      cfg.model_transmission_delay = true;
    } else if (arg == "--capacity-roles") {
      cfg.capacity_sorted_roles = true;
      cfg.hybrid.link_usage_connect = true;
      cfg.model_transmission_delay = true;
    } else if (arg == "--topology-aware") {
      cfg.hybrid.topology_aware = true;
    } else if (arg == "--interest") {
      cfg.hybrid.interest_based = true;
      cfg.interest_locality = 0.9;
      cfg.tpeers_first = true;
    } else if (arg == "--bypass") {
      cfg.hybrid.bypass_links = true;
    } else if (arg == "--caching") {
      cfg.hybrid.enable_caching = true;
    } else if (arg == "--zipf" && parse_double(next(), d)) {
      cfg.zipf_exponent = d;
    } else {
      std::fprintf(stderr, "unknown/invalid option: %s\n", arg.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  std::printf("running: %u peers, ps=%.2f, delta=%u, ttl=%u, %zu items, "
              "%zu lookups, seed %llu\n",
              cfg.num_peers, cfg.hybrid.ps, cfg.hybrid.delta, cfg.hybrid.ttl,
              cfg.num_items, cfg.num_lookups,
              static_cast<unsigned long long>(cfg.seed));
  const auto r = exp::run_hybrid_experiment(cfg);

  std::printf("\n  joins completed      %zu (mean %.1f ms, %.1f hops)\n",
              r.joins_completed, r.join_latency_ms.mean(),
              r.join_hops.mean());
  std::printf("  t-peers / s-peers    %zu / %zu\n", r.num_tpeers,
              r.num_speers);
  std::printf("  lookups              %llu issued, %llu ok, %llu failed "
              "(ratio %.4f)\n",
              static_cast<unsigned long long>(r.lookups.issued),
              static_cast<unsigned long long>(r.lookups.succeeded),
              static_cast<unsigned long long>(r.lookups.failed),
              r.lookups.failure_ratio());
  std::printf("  lookup latency       %.1f ms mean (min %.1f, max %.1f)\n",
              r.lookup_latency_ms.mean(), r.lookup_latency_ms.min(),
              r.lookup_latency_ms.max());
  std::printf("  lookup hops          %.1f mean\n", r.lookup_hops.mean());
  std::printf("  connum               %llu total (%.1f per lookup)\n",
              static_cast<unsigned long long>(r.connum()),
              static_cast<double>(r.connum()) /
                  static_cast<double>(std::max<std::uint64_t>(
                      r.lookups.issued, 1)));
  std::printf("  messages / bytes     %llu / %.1f KiB\n",
              static_cast<unsigned long long>(r.network.messages_sent),
              static_cast<double>(r.network.bytes_sent) / 1024.0);
  if (r.bypass_uses > 0) {
    std::printf("  bypass installs/uses %llu / %llu\n",
                static_cast<unsigned long long>(r.bypass_installs),
                static_cast<unsigned long long>(r.bypass_uses));
  }
  if (r.cache_hits > 0) {
    std::printf("  cache hits           %llu (hottest peer served %llu)\n",
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.max_answers_served));
  }
  std::printf("\ncsv: ps,ttl,failure,latency_ms,connum,messages\n");
  std::printf("csv: %.2f,%u,%.4f,%.1f,%llu,%llu\n", cfg.hybrid.ps,
              cfg.hybrid.ttl, r.lookups.failure_ratio(),
              r.lookup_latency_ms.mean(),
              static_cast<unsigned long long>(r.connum()),
              static_cast<unsigned long long>(r.network.messages_sent));
  return 0;
}
