// Quickstart: build a small hybrid P2P system, share some files, look them
// up, and print what happened.
//
// This walks the whole public API surface in ~100 lines:
//   1. generate a physical (transit-stub) topology,
//   2. stand up the simulated transport,
//   3. grow a hybrid overlay (structured t-network + unstructured
//      s-networks),
//   4. store and look up (key, value) data items.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"

using namespace hp2p;

int main() {
  // 1. Physical network: ~120 hosts in a transit-stub hierarchy.
  Rng rng{2024};
  const auto topo_params = net::TransitStubParams::for_total_nodes(120);
  net::Underlay underlay{net::generate_transit_stub(topo_params, rng), rng};

  // 2. Simulated transport on top of it.
  sim::Simulator simulator;
  proto::OverlayNetwork network{simulator, underlay};

  // 3. The hybrid system: half t-peers (structured ring), half s-peers
  //    (unstructured trees), degree cap 3, flood TTL 6.
  hybrid::HybridParams params;
  params.ps = 0.5;
  params.delta = 3;
  params.ttl = 6;
  hybrid::HybridSystem system{network, params, HostIndex{0}, rng};

  std::vector<PeerIndex> peers;
  std::size_t joined = 0;
  for (std::uint32_t i = 0; i < 40; ++i) {
    // Stagger arrivals; the server assigns roles to hit p_s on average.
    simulator.schedule_after(sim::SimTime::millis(i * 50), [&, i] {
      peers.push_back(system.add_peer(
          HostIndex{1 + i}, [&](proto::JoinResult r) {
            ++joined;
            if (joined <= 3) {
              std::printf("peer joined after %.1f ms (%u overlay hops)\n",
                          r.latency.as_millis(), r.request_hops);
            }
          }));
    });
  }
  simulator.run();
  std::printf("overlay up: %zu t-peers on the ring, %zu s-peers in %zu "
              "s-networks\n",
              system.num_tpeers(), system.num_speers(), system.num_tpeers());

  // 4. Share some files...
  const char* files[] = {"song.mp3", "thesis.pdf", "holiday.png",
                         "dataset.csv", "kernel.tar.gz"};
  for (std::size_t i = 0; i < std::size(files); ++i) {
    system.store(peers[i], files[i], /*value=*/1000 + i);
  }
  simulator.run();
  std::printf("stored %zu files across the system\n", system.total_items());

  // ...and fetch them from unrelated peers.
  for (std::size_t i = 0; i < std::size(files); ++i) {
    system.lookup(peers[peers.size() - 1 - i], files[i],
                  [&, i](proto::LookupResult r) {
                    std::printf(
                        "lookup(%s): %s in %.1f ms, %u hops, %u peers "
                        "contacted\n",
                        files[i], r.success ? "found" : "MISSING",
                        r.latency.as_millis(), r.request_hops,
                        r.peers_contacted);
                  });
  }
  simulator.run();

  const auto& stats = network.stats();
  std::printf("transport totals: %llu messages, %.1f KiB\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<double>(stats.bytes_sent) / 1024.0);
  return 0;
}
