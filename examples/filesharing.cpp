// Interest-based file sharing (Section 5.3 scenario).
//
// Peers belong to interest communities (say: music, movies, papers, code).
// With interest-based s-networks, the server groups same-interest peers into
// the same s-network and the community's content hashes into that
// s-network's segment, so most lookups never leave the local tree.  This
// example contrasts that against random assignment on the same workload.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

using namespace hp2p;

namespace {

struct Outcome {
  double mean_latency_ms = 0;
  double mean_contacted = 0;
  double failure_ratio = 0;
};

Outcome run(bool interest_based) {
  Rng rng{7};
  const auto topo_params = net::TransitStubParams::for_total_nodes(160);
  net::Underlay underlay{net::generate_transit_stub(topo_params, rng), rng};
  sim::Simulator simulator;
  proto::OverlayNetwork network{simulator, underlay};

  hybrid::HybridParams params;
  params.ps = 0.85;
  // Interest communities concentrate ~17 peers per tree; random descent can
  // leave it unbalanced, so give floods headroom (leaf-to-leaf diameter).
  params.ttl = 12;
  params.interest_based = interest_based;
  params.num_interests = 4;
  hybrid::HybridSystem system{network, params, HostIndex{0}, rng};

  constexpr std::uint32_t kPeers = 80;
  std::vector<PeerIndex> peers;
  for (std::uint32_t i = 0; i < kPeers; ++i) {
    const auto role = i < 12 ? hybrid::Role::kTPeer : hybrid::Role::kSPeer;
    const std::uint32_t interest = i % 4;
    simulator.schedule_after(sim::SimTime::millis(i * 50), [&, i, role,
                                                            interest] {
      peers.push_back(system.add_peer_with_interest(HostIndex{1 + i}, role,
                                                    interest, {}));
    });
  }
  simulator.run();

  // Each community publishes content that hashes into its own s-network's
  // segment (the point of interest-based grouping): 300 items total.
  Rng op_rng = rng.fork(9);
  std::vector<std::pair<PeerIndex, DataId>> catalogue;  // (publisher, id)
  for (int i = 0; i < 300; ++i) {
    const PeerIndex publisher = peers[op_rng.index(peers.size())];
    const auto segment = system.segment_of(system.tpeer_of(publisher));
    const DataId id =
        workload::random_id_in_arc(op_rng, segment.first, segment.second);
    system.store_id(publisher, id, "content-" + std::to_string(i),
                    static_cast<std::uint64_t>(i));
    catalogue.emplace_back(publisher, id);
  }
  simulator.run();

  // Peers browse: 90% of fetches target content of their own community.
  Outcome out;
  double latency_total = 0;
  double contacted_total = 0;
  int successes = 0;
  int failures = 0;
  constexpr int kFetches = 400;
  for (int i = 0; i < kFetches; ++i) {
    const PeerIndex reader = peers[op_rng.index(peers.size())];
    DataId target = catalogue[op_rng.index(catalogue.size())].second;
    if (op_rng.chance(0.9)) {
      // Prefer an item of the reader's own community when one exists.
      const PeerIndex my_root = system.tpeer_of(reader);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto& candidate =
            catalogue[op_rng.index(catalogue.size())];
        if (system.owner_tpeer(candidate.second) == my_root) {
          target = candidate.second;
          break;
        }
      }
    }
    system.lookup_id(reader, target, [&](proto::LookupResult r) {
      if (r.success) {
        ++successes;
        latency_total += r.latency.as_millis();
        contacted_total += r.peers_contacted;
      } else {
        ++failures;
      }
    });
  }
  simulator.run();

  out.mean_latency_ms = successes > 0 ? latency_total / successes : 0;
  out.mean_contacted = successes > 0 ? contacted_total / successes : 0;
  out.failure_ratio =
      static_cast<double>(failures) / static_cast<double>(kFetches);
  return out;
}

}  // namespace

int main() {
  std::printf("Interest-based file sharing (80 peers, 4 communities, 90%%"
              " local reads)\n\n");
  const Outcome random_assign = run(false);
  const Outcome interest = run(true);

  std::printf("%-26s %14s %16s %14s\n", "assignment", "latency (ms)",
              "peers contacted", "failure ratio");
  std::printf("%-26s %14.1f %16.1f %14.3f\n", "random (baseline)",
              random_assign.mean_latency_ms, random_assign.mean_contacted,
              random_assign.failure_ratio);
  std::printf("%-26s %14.1f %16.1f %14.3f\n", "interest-based (Sec 5.3)",
              interest.mean_latency_ms, interest.mean_contacted,
              interest.failure_ratio);
  std::printf("\nInterest-based grouping keeps most fetches inside the local"
              " s-network: latency\ndrops and the t-network ring carries"
              " almost no query traffic.  The flip side is\nvisible in"
              " 'peers contacted': a local fetch floods its own community"
              " tree, while\na ring lookup touches only the peers on the"
              " path (Section 5.3's trade-off).\n");
  return 0;
}
