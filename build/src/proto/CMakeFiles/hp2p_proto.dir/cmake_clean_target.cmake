file(REMOVE_RECURSE
  "libhp2p_proto.a"
)
