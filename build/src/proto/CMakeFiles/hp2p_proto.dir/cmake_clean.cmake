file(REMOVE_RECURSE
  "CMakeFiles/hp2p_proto.dir/overlay_network.cpp.o"
  "CMakeFiles/hp2p_proto.dir/overlay_network.cpp.o.d"
  "libhp2p_proto.a"
  "libhp2p_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
