# Empty compiler generated dependencies file for hp2p_proto.
# This may be replaced when dependencies are built.
