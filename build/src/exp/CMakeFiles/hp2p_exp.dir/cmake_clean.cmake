file(REMOVE_RECURSE
  "CMakeFiles/hp2p_exp.dir/baselines.cpp.o"
  "CMakeFiles/hp2p_exp.dir/baselines.cpp.o.d"
  "CMakeFiles/hp2p_exp.dir/harness.cpp.o"
  "CMakeFiles/hp2p_exp.dir/harness.cpp.o.d"
  "libhp2p_exp.a"
  "libhp2p_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
