# Empty dependencies file for hp2p_exp.
# This may be replaced when dependencies are built.
