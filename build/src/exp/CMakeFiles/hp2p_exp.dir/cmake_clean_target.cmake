file(REMOVE_RECURSE
  "libhp2p_exp.a"
)
