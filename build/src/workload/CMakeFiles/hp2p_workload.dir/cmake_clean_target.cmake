file(REMOVE_RECURSE
  "libhp2p_workload.a"
)
