file(REMOVE_RECURSE
  "CMakeFiles/hp2p_workload.dir/workload.cpp.o"
  "CMakeFiles/hp2p_workload.dir/workload.cpp.o.d"
  "libhp2p_workload.a"
  "libhp2p_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
