# Empty dependencies file for hp2p_workload.
# This may be replaced when dependencies are built.
