file(REMOVE_RECURSE
  "CMakeFiles/hp2p_stats.dir/histogram.cpp.o"
  "CMakeFiles/hp2p_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/hp2p_stats.dir/summary.cpp.o"
  "CMakeFiles/hp2p_stats.dir/summary.cpp.o.d"
  "CMakeFiles/hp2p_stats.dir/table.cpp.o"
  "CMakeFiles/hp2p_stats.dir/table.cpp.o.d"
  "libhp2p_stats.a"
  "libhp2p_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
