file(REMOVE_RECURSE
  "libhp2p_stats.a"
)
