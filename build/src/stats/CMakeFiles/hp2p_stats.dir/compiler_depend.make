# Empty compiler generated dependencies file for hp2p_stats.
# This may be replaced when dependencies are built.
