file(REMOVE_RECURSE
  "CMakeFiles/hp2p_gnutella.dir/gnutella.cpp.o"
  "CMakeFiles/hp2p_gnutella.dir/gnutella.cpp.o.d"
  "libhp2p_gnutella.a"
  "libhp2p_gnutella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_gnutella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
