file(REMOVE_RECURSE
  "libhp2p_gnutella.a"
)
