# Empty dependencies file for hp2p_gnutella.
# This may be replaced when dependencies are built.
