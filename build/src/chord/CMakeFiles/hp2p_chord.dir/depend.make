# Empty dependencies file for hp2p_chord.
# This may be replaced when dependencies are built.
