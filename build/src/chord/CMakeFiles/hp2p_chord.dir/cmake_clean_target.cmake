file(REMOVE_RECURSE
  "libhp2p_chord.a"
)
