file(REMOVE_RECURSE
  "CMakeFiles/hp2p_chord.dir/chord.cpp.o"
  "CMakeFiles/hp2p_chord.dir/chord.cpp.o.d"
  "libhp2p_chord.a"
  "libhp2p_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
