# Empty compiler generated dependencies file for hp2p_hybrid.
# This may be replaced when dependencies are built.
