file(REMOVE_RECURSE
  "CMakeFiles/hp2p_hybrid.dir/hybrid_data.cpp.o"
  "CMakeFiles/hp2p_hybrid.dir/hybrid_data.cpp.o.d"
  "CMakeFiles/hp2p_hybrid.dir/hybrid_membership.cpp.o"
  "CMakeFiles/hp2p_hybrid.dir/hybrid_membership.cpp.o.d"
  "libhp2p_hybrid.a"
  "libhp2p_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
