file(REMOVE_RECURSE
  "libhp2p_hybrid.a"
)
