file(REMOVE_RECURSE
  "CMakeFiles/hp2p_sim.dir/simulator.cpp.o"
  "CMakeFiles/hp2p_sim.dir/simulator.cpp.o.d"
  "libhp2p_sim.a"
  "libhp2p_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
