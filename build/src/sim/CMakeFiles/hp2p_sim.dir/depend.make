# Empty dependencies file for hp2p_sim.
# This may be replaced when dependencies are built.
