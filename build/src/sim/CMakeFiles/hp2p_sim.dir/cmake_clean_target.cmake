file(REMOVE_RECURSE
  "libhp2p_sim.a"
)
