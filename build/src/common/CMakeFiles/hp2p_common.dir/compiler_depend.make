# Empty compiler generated dependencies file for hp2p_common.
# This may be replaced when dependencies are built.
