file(REMOVE_RECURSE
  "CMakeFiles/hp2p_common.dir/env.cpp.o"
  "CMakeFiles/hp2p_common.dir/env.cpp.o.d"
  "CMakeFiles/hp2p_common.dir/hashing.cpp.o"
  "CMakeFiles/hp2p_common.dir/hashing.cpp.o.d"
  "CMakeFiles/hp2p_common.dir/rng.cpp.o"
  "CMakeFiles/hp2p_common.dir/rng.cpp.o.d"
  "libhp2p_common.a"
  "libhp2p_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
