file(REMOVE_RECURSE
  "libhp2p_common.a"
)
