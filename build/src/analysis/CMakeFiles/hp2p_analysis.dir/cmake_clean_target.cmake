file(REMOVE_RECURSE
  "libhp2p_analysis.a"
)
