# Empty compiler generated dependencies file for hp2p_analysis.
# This may be replaced when dependencies are built.
