file(REMOVE_RECURSE
  "CMakeFiles/hp2p_analysis.dir/model.cpp.o"
  "CMakeFiles/hp2p_analysis.dir/model.cpp.o.d"
  "libhp2p_analysis.a"
  "libhp2p_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
