file(REMOVE_RECURSE
  "CMakeFiles/hp2p_net.dir/graph.cpp.o"
  "CMakeFiles/hp2p_net.dir/graph.cpp.o.d"
  "CMakeFiles/hp2p_net.dir/transit_stub.cpp.o"
  "CMakeFiles/hp2p_net.dir/transit_stub.cpp.o.d"
  "CMakeFiles/hp2p_net.dir/underlay.cpp.o"
  "CMakeFiles/hp2p_net.dir/underlay.cpp.o.d"
  "libhp2p_net.a"
  "libhp2p_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp2p_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
