# Empty compiler generated dependencies file for hp2p_net.
# This may be replaced when dependencies are built.
