file(REMOVE_RECURSE
  "libhp2p_net.a"
)
