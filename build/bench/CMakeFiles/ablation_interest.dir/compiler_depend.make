# Empty compiler generated dependencies file for ablation_interest.
# This may be replaced when dependencies are built.
