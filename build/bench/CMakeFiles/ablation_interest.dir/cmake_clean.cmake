file(REMOVE_RECURSE
  "CMakeFiles/ablation_interest.dir/ablation_interest.cpp.o"
  "CMakeFiles/ablation_interest.dir/ablation_interest.cpp.o.d"
  "ablation_interest"
  "ablation_interest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
