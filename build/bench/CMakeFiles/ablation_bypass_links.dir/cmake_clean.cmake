file(REMOVE_RECURSE
  "CMakeFiles/ablation_bypass_links.dir/ablation_bypass_links.cpp.o"
  "CMakeFiles/ablation_bypass_links.dir/ablation_bypass_links.cpp.o.d"
  "ablation_bypass_links"
  "ablation_bypass_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bypass_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
