# Empty compiler generated dependencies file for ablation_bypass_links.
# This may be replaced when dependencies are built.
