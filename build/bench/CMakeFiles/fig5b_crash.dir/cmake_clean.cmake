file(REMOVE_RECURSE
  "CMakeFiles/fig5b_crash.dir/fig5b_crash.cpp.o"
  "CMakeFiles/fig5b_crash.dir/fig5b_crash.cpp.o.d"
  "fig5b_crash"
  "fig5b_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
