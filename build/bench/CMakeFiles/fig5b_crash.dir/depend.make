# Empty dependencies file for fig5b_crash.
# This may be replaced when dependencies are built.
