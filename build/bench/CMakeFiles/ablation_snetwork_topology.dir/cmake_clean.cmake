file(REMOVE_RECURSE
  "CMakeFiles/ablation_snetwork_topology.dir/ablation_snetwork_topology.cpp.o"
  "CMakeFiles/ablation_snetwork_topology.dir/ablation_snetwork_topology.cpp.o.d"
  "ablation_snetwork_topology"
  "ablation_snetwork_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snetwork_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
