# Empty dependencies file for ablation_snetwork_topology.
# This may be replaced when dependencies are built.
