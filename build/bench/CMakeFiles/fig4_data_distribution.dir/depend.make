# Empty dependencies file for fig4_data_distribution.
# This may be replaced when dependencies are built.
