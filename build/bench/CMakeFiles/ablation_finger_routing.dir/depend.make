# Empty dependencies file for ablation_finger_routing.
# This may be replaced when dependencies are built.
