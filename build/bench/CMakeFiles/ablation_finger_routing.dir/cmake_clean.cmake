file(REMOVE_RECURSE
  "CMakeFiles/ablation_finger_routing.dir/ablation_finger_routing.cpp.o"
  "CMakeFiles/ablation_finger_routing.dir/ablation_finger_routing.cpp.o.d"
  "ablation_finger_routing"
  "ablation_finger_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_finger_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
