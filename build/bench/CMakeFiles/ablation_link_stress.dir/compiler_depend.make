# Empty compiler generated dependencies file for ablation_link_stress.
# This may be replaced when dependencies are built.
