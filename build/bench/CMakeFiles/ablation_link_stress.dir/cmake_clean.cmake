file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_stress.dir/ablation_link_stress.cpp.o"
  "CMakeFiles/ablation_link_stress.dir/ablation_link_stress.cpp.o.d"
  "ablation_link_stress"
  "ablation_link_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
