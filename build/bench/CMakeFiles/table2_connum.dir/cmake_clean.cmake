file(REMOVE_RECURSE
  "CMakeFiles/table2_connum.dir/table2_connum.cpp.o"
  "CMakeFiles/table2_connum.dir/table2_connum.cpp.o.d"
  "table2_connum"
  "table2_connum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_connum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
