# Empty dependencies file for table2_connum.
# This may be replaced when dependencies are built.
