# Empty compiler generated dependencies file for fig6b_topology_aware.
# This may be replaced when dependencies are built.
