
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6b_topology_aware.cpp" "bench/CMakeFiles/fig6b_topology_aware.dir/fig6b_topology_aware.cpp.o" "gcc" "bench/CMakeFiles/fig6b_topology_aware.dir/fig6b_topology_aware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/hp2p_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hp2p_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hp2p_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hp2p_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hybrid/CMakeFiles/hp2p_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/hp2p_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/gnutella/CMakeFiles/hp2p_gnutella.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/hp2p_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hp2p_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hp2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hp2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
