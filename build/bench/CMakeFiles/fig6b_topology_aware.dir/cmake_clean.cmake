file(REMOVE_RECURSE
  "CMakeFiles/fig6b_topology_aware.dir/fig6b_topology_aware.cpp.o"
  "CMakeFiles/fig6b_topology_aware.dir/fig6b_topology_aware.cpp.o.d"
  "fig6b_topology_aware"
  "fig6b_topology_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_topology_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
