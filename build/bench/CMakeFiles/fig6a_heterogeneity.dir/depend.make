# Empty dependencies file for fig6a_heterogeneity.
# This may be replaced when dependencies are built.
