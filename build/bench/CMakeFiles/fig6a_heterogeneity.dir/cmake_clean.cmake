file(REMOVE_RECURSE
  "CMakeFiles/fig6a_heterogeneity.dir/fig6a_heterogeneity.cpp.o"
  "CMakeFiles/fig6a_heterogeneity.dir/fig6a_heterogeneity.cpp.o.d"
  "fig6a_heterogeneity"
  "fig6a_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
