# Empty compiler generated dependencies file for fig5a_failure_ratio.
# This may be replaced when dependencies are built.
