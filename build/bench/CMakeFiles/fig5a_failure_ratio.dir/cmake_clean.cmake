file(REMOVE_RECURSE
  "CMakeFiles/fig5a_failure_ratio.dir/fig5a_failure_ratio.cpp.o"
  "CMakeFiles/fig5a_failure_ratio.dir/fig5a_failure_ratio.cpp.o.d"
  "fig5a_failure_ratio"
  "fig5a_failure_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_failure_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
