# Empty compiler generated dependencies file for ablation_bittorrent.
# This may be replaced when dependencies are built.
