file(REMOVE_RECURSE
  "CMakeFiles/ablation_bittorrent.dir/ablation_bittorrent.cpp.o"
  "CMakeFiles/ablation_bittorrent.dir/ablation_bittorrent.cpp.o.d"
  "ablation_bittorrent"
  "ablation_bittorrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bittorrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
