file(REMOVE_RECURSE
  "CMakeFiles/fig3_analysis.dir/fig3_analysis.cpp.o"
  "CMakeFiles/fig3_analysis.dir/fig3_analysis.cpp.o.d"
  "fig3_analysis"
  "fig3_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
