# Empty compiler generated dependencies file for fig3_analysis.
# This may be replaced when dependencies are built.
