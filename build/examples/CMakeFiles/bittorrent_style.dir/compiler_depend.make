# Empty compiler generated dependencies file for bittorrent_style.
# This may be replaced when dependencies are built.
