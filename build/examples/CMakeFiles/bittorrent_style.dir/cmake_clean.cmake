file(REMOVE_RECURSE
  "CMakeFiles/bittorrent_style.dir/bittorrent_style.cpp.o"
  "CMakeFiles/bittorrent_style.dir/bittorrent_style.cpp.o.d"
  "bittorrent_style"
  "bittorrent_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bittorrent_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
