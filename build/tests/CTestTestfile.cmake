# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_chord[1]_include.cmake")
include("/root/repo/build/tests/test_gnutella[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
include("/root/repo/build/tests/test_datastore[1]_include.cmake")
include("/root/repo/build/tests/test_finger_table[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_churn_soak[1]_include.cmake")
