# Empty dependencies file for test_datastore.
# This may be replaced when dependencies are built.
