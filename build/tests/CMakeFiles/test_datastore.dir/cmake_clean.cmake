file(REMOVE_RECURSE
  "CMakeFiles/test_datastore.dir/datastore_test.cpp.o"
  "CMakeFiles/test_datastore.dir/datastore_test.cpp.o.d"
  "test_datastore"
  "test_datastore.pdb"
  "test_datastore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
