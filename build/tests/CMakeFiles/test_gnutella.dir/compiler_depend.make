# Empty compiler generated dependencies file for test_gnutella.
# This may be replaced when dependencies are built.
