file(REMOVE_RECURSE
  "CMakeFiles/test_gnutella.dir/gnutella_test.cpp.o"
  "CMakeFiles/test_gnutella.dir/gnutella_test.cpp.o.d"
  "test_gnutella"
  "test_gnutella.pdb"
  "test_gnutella[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnutella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
