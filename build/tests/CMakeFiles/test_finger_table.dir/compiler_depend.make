# Empty compiler generated dependencies file for test_finger_table.
# This may be replaced when dependencies are built.
