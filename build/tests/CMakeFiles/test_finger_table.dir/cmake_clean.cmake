file(REMOVE_RECURSE
  "CMakeFiles/test_finger_table.dir/finger_table_test.cpp.o"
  "CMakeFiles/test_finger_table.dir/finger_table_test.cpp.o.d"
  "test_finger_table"
  "test_finger_table.pdb"
  "test_finger_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finger_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
