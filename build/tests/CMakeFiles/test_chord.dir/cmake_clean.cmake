file(REMOVE_RECURSE
  "CMakeFiles/test_chord.dir/chord_test.cpp.o"
  "CMakeFiles/test_chord.dir/chord_test.cpp.o.d"
  "test_chord"
  "test_chord.pdb"
  "test_chord[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
