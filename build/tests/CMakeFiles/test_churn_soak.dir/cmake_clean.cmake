file(REMOVE_RECURSE
  "CMakeFiles/test_churn_soak.dir/churn_soak_test.cpp.o"
  "CMakeFiles/test_churn_soak.dir/churn_soak_test.cpp.o.d"
  "test_churn_soak"
  "test_churn_soak.pdb"
  "test_churn_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_churn_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
