// Heavy exploration fixtures (ctest label: explore).  The exhaustive
// fixture model-checks a 4-peer join+crash+lookup world over every legal
// event ordering and measures how much work sleep-set pruning plus
// terminal-state dedup save against naive enumeration; the budgeted
// fixture random-walks an 8-peer world too large to exhaust.
#include <gtest/gtest.h>

#include <string>

#include "verify/explorer.hpp"
#include "verify/scenario.hpp"

namespace hp2p::verify {
namespace {

/// 2 t-peers + 2 s-peers, an s-peer crash at 2.7s and a storm lookup at
/// 2.75s, horizon 3s: small enough that naive enumeration terminates,
/// large enough to clear 1,000 interleavings by a wide margin.
ScenarioConfig exhaustive_config() {
  ScenarioConfig cfg;
  cfg.num_tpeers = 2;
  cfg.num_speers = 2;
  cfg.num_items = 2;
  cfg.num_lookups = 1;
  cfg.crash_peer = 4;
  cfg.crash_at = sim::SimTime::millis(2700);
  cfg.lookup_at = sim::SimTime::millis(2750);
  cfg.horizon = sim::SimTime::millis(3000);
  return cfg;
}

TEST(Exhaustive, FourPeerJoinCrashLookupIsOrderInsensitive) {
  const auto cfg = exhaustive_config();
  ExploreOptions opts;
  opts.max_runs = 200000;

  const auto por = explore(cfg, opts);
  opts.sleep_sets = false;
  const auto naive = explore(cfg, opts);

  // Terminates, and explores well past the 1,000-interleaving bar.
  ASSERT_FALSE(por.budget_exhausted);
  ASSERT_FALSE(naive.budget_exhausted);
  EXPECT_GE(naive.completed_runs, 1000u);

  // Every interleaving passes strict audit + the reference-model oracle.
  EXPECT_EQ(por.violating_runs, 0u)
      << (por.violation_details.empty() ? std::string()
                                        : por.violation_details[0]);
  EXPECT_EQ(naive.violating_runs, 0u)
      << (naive.violation_details.empty() ? std::string()
                                          : naive.violation_details[0]);

  // Pruning soundness: the same set of distinct terminal states.
  EXPECT_EQ(por.state_hashes, naive.state_hashes);

  // Pruning power: POR + dedup cut at least half of the naive enumeration
  // (in practice ~98% -- the bound is deliberately loose so protocol
  // changes that shift the tie structure don't flake the suite).
  EXPECT_LE(por.runs * 2, naive.completed_runs)
      << "sleep sets pruned less than half of the naive state space";

  std::cout << "[explore] por runs=" << por.runs
            << " completed=" << por.completed_runs
            << " pruned=" << por.pruned_runs
            << " sleeping=" << por.sleeping_branches
            << " | naive runs=" << naive.runs
            << " | distinct states=" << por.distinct_states << "\n";
}

TEST(RandomWalks, EightPeerBudgetedWalkStaysClean) {
  ScenarioConfig cfg;
  cfg.num_tpeers = 4;
  cfg.num_speers = 4;
  cfg.num_items = 3;
  cfg.num_lookups = 2;
  cfg.crash_peer = 7;
  cfg.window = sim::SimTime::millis(1);

  const auto res = random_walks(cfg, 200, 1);
  EXPECT_EQ(res.runs, 200u);
  EXPECT_EQ(res.violating_runs, 0u)
      << (res.violating.empty() ? std::string()
                                : res.violating[0].one_line())
      << (res.violation_details.empty() ? std::string()
                                        : "\n" + res.violation_details[0]);
  EXPECT_GE(res.decision_points, 200u)
      << "walks encountered almost no co-enabled choices";
  std::cout << "[walks] runs=" << res.runs
            << " distinct states=" << res.distinct_states
            << " decisions=" << res.decision_points
            << " max_depth=" << res.max_depth << "\n";
}

}  // namespace
}  // namespace hp2p::verify
