// Scale guard-rails (ctest label: scale -- excluded from the quick tier
// alongside chaos/soak/durability).
//
// 1. A 50,000-peer replica must complete correctly under a peak-RSS ceiling
//    the old all-pairs routing tables alone would blow through: dense
//    storage at 50k hosts is V^2 * 12 bytes ~ 31 GB, so staying under 4 GB
//    for the *whole process* proves the hierarchical O(V) path carried the
//    run.
// 2. The N=1,000 paper-scale configuration keeps a pinned metrics digest:
//    any change to RNG streams, event ordering, dense routing, or metric
//    accounting at paper scale trips this test.  If a change is intentional,
//    re-pin the constant from the failure message -- that is an explicit
//    statement that the paper benches moved.
// 3. The continuous profiler earns its keep at N=20,000 (bench_scale's top
//    default rung): >= 90% of measured dispatch time must be attributed to
//    named components, and attaching the profiler must cost <= 5% in
//    events/sec (min-of-2 wall times on both arms to damp scheduler noise).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/proc_stats.hpp"
#include "common/rng.hpp"
#include "exp/harness.hpp"
#include "exp/metrics_collect.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "stats/metrics.hpp"

namespace hp2p::exp {
namespace {

/// Same filtering as repro_test: every exported metric except host wall
/// times, flattened to "key=value" lines.
std::string filtered_dump(const RunConfig& cfg, const RunResult& result) {
  stats::MetricsRegistry reg;
  collect_run_config(reg, "config", cfg);
  collect_run_result(reg, "run", result);
  const std::string_view kWall = ".wall_ms";
  std::string out;
  for (const auto& [key, value] : reg.entries()) {
    if (key.size() >= kWall.size() &&
        key.compare(key.size() - kWall.size(), kWall.size(), kWall) == 0) {
      continue;
    }
    out += key;
    out += '=';
    out += value.dump();
    out += '\n';
  }
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

TEST(Scale, FiftyThousandPeersFitUnderRssCeiling) {
  RunConfig cfg;
  cfg.seed = 7;
  cfg.num_peers = 50'000;
  cfg.num_items = 500;
  cfg.num_lookups = 500;
  cfg.hybrid.ps = 0.99;  // ~500 t-peers; s-networks absorb the mass
  cfg.hybrid.ttl = 8;    // delta=3 trees of ~100 peers need flood radius 8
  cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
  cfg.tpeers_first = true;

  const RunResult r = run_hybrid_experiment(cfg);
  EXPECT_EQ(r.joins_completed, 50'000u);
  EXPECT_EQ(r.lookups.issued, 500u);
  EXPECT_GT(r.lookups.succeeded, 450u);
  EXPECT_EQ(r.audit_violations, 0u);

  const std::uint64_t peak = peak_rss_bytes();
  if (peak != 0) {  // procfs available
    EXPECT_LT(peak, std::uint64_t{4} << 30)
        << "50k-peer run peaked at " << (peak >> 20)
        << " MiB; dense all-pairs routing alone would need ~31 GB, so the "
           "hierarchical path has regressed";
  }
}

TEST(Scale, UnderlayMemoryStaysLinearAtFiftyThousandHosts) {
  Rng rng{7};
  Rng topo_rng = rng.fork(1);
  const auto params = net::TransitStubParams::for_total_nodes(50'001);
  const net::Underlay underlay{net::generate_transit_stub(params, topo_rng),
                               topo_rng};
  ASSERT_EQ(underlay.routing_mode(), net::RoutingMode::kHierarchical);
  // Per-host uplink state is ~16 B/host; the transit-core tables add a
  // V-independent few MB.  200 B/host is an order-of-magnitude cushion that
  // any O(V^2) structure bursts immediately.
  EXPECT_LT(underlay.routing_memory_bytes(),
            std::size_t{underlay.num_hosts()} * 200);
}

/// bench_scale's rung_config at its top default rung (20k peers, ~1%
/// t-peers, finger routing, t-peers-first build).
RunConfig profiled_rung_config() {
  RunConfig cfg;
  cfg.seed = 42;
  cfg.num_peers = 20'000;
  cfg.num_items = 1000;
  cfg.num_lookups = 1000;
  cfg.hybrid.ps = 0.99;
  cfg.hybrid.ttl = 8;
  cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
  cfg.tpeers_first = true;
  return cfg;
}

double total_wall_ms(const RunResult& r) {
  double wall = 0;
  for (const auto& phase : r.phases) wall += phase.wall_ms;
  return wall;
}

TEST(Scale, ProfilerAttributesDispatchTimeAtTwentyThousandPeers) {
  auto cfg = profiled_rung_config();
  stats::Profiler prof;
  cfg.profiler = &prof;
  const RunResult r = run_hybrid_experiment(cfg);
  ASSERT_EQ(r.joins_completed, 20'000u);

  ASSERT_GT(prof.dispatch_ns_total(), 0u);
  const double fraction = static_cast<double>(prof.attributed_ns()) /
                          static_cast<double>(prof.dispatch_ns_total());
  EXPECT_GE(fraction, 0.90)
      << "only " << fraction * 100 << "% of dispatch time reached a named "
      << "component; a new event source is being scheduled outside any "
      << "ComponentScope";
  EXPECT_LE(prof.attributed_ns(), prof.dispatch_ns_total());

  // The workload regime implies which components must have fired.
  for (const sim::Component c :
       {sim::Component::kMembership, sim::Component::kRing,
        sim::Component::kData, sim::Component::kWorkload}) {
    EXPECT_GT(prof.component_total(c).enters, 0u)
        << "component " << sim::component_name(c) << " never entered";
  }
  EXPECT_EQ(prof.truncated_frames(), 0u);
}

TEST(Scale, ProfilerOverheadStaysUnderFivePercent) {
  const auto cfg = profiled_rung_config();
  // events_executed is identical on both arms (the profiler schedules
  // nothing), so events/sec overhead reduces to the wall-time ratio.
  // Shared-host wall-time noise here dwarfs the real overhead, so each
  // back-to-back (plain, profiled) pair yields one ratio -- adjacent runs
  // see the same machine conditions, cancelling drift -- and the median
  // over the pairs rejects the occasional run a noise spike lands on.
  std::vector<double> ratios;
  std::uint64_t events = 0;
  std::uint64_t profiled_events = 0;
  for (int i = 0; i < 5; ++i) {
    const RunResult plain = run_hybrid_experiment(cfg);
    events = plain.sim_stats.events_executed;

    auto pcfg = cfg;
    stats::Profiler prof;
    pcfg.profiler = &prof;
    const RunResult profiled = run_hybrid_experiment(pcfg);
    profiled_events = profiled.sim_stats.events_executed;

    ASSERT_GT(total_wall_ms(plain), 0.0);
    ratios.push_back(total_wall_ms(profiled) / total_wall_ms(plain));
  }
  EXPECT_EQ(events, profiled_events)
      << "profiling must not change the event stream";
  std::sort(ratios.begin(), ratios.end());
  const double overhead = ratios[ratios.size() / 2] - 1.0;
  EXPECT_LE(overhead, 0.05)
      << "median profiled/plain wall ratio " << ratios[ratios.size() / 2]
      << " (" << overhead * 100 << "% overhead; ratios " << ratios.front()
      << " .. " << ratios.back() << ")";
}

TEST(Scale, PaperScaleDigestIsPinned) {
  // The stock N=1,000 configuration (RunConfig defaults, seed 42): dense
  // routing, ring t-network, interleaved joins -- the shape every fig/table
  // bench builds on.
  RunConfig cfg;
  cfg.seed = 42;
  const std::string dump = filtered_dump(cfg, run_hybrid_experiment(cfg));
  const std::uint64_t kPinned = 0x658944b218f7f980ull;
  const std::uint64_t actual = fnv1a(dump);
  EXPECT_EQ(actual, kPinned)
      << "N=1,000 paper-scale metrics changed (digest 0x" << std::hex << actual
      << std::dec << ", " << dump.size()
      << " bytes dumped); if intentional, update kPinned";
}

}  // namespace
}  // namespace hp2p::exp
