// Integration tests for the Chord/Gnutella experiment harnesses.
#include <gtest/gtest.h>

#include "exp/baselines.hpp"

namespace hp2p::exp {
namespace {

ChordRunConfig chord_config(std::uint64_t seed) {
  ChordRunConfig c;
  c.seed = seed;
  c.num_peers = 40;
  c.num_items = 80;
  c.num_lookups = 80;
  return c;
}

GnutellaRunConfig gnutella_config(std::uint64_t seed) {
  GnutellaRunConfig c;
  c.seed = seed;
  c.num_peers = 40;
  c.num_items = 80;
  c.num_lookups = 80;
  c.gnutella.ttl = 6;
  return c;
}

TEST(ChordHarness, ZeroFailuresWithoutChurn) {
  const auto r = run_chord_experiment(chord_config(1));
  EXPECT_EQ(r.joins_completed, 40u);
  EXPECT_EQ(r.lookups.issued, 80u);
  EXPECT_EQ(r.lookups.failed, 0u);
}

TEST(ChordHarness, AllItemsPlaced) {
  const auto r = run_chord_experiment(chord_config(2));
  std::size_t total = 0;
  for (const auto n : r.items_per_peer) total += n;
  EXPECT_EQ(total, 80u);
}

TEST(ChordHarness, RingRoutingContactsManyPeers) {
  auto cfg = chord_config(3);
  cfg.chord.routing = chord::RoutingMode::kRing;
  const auto r = run_chord_experiment(cfg);
  // ~N/2 per lookup on a 40-node ring.
  EXPECT_GT(static_cast<double>(r.connum()) / 80.0, 10.0);
}

TEST(ChordHarness, DeterministicForSeed) {
  const auto a = run_chord_experiment(chord_config(4));
  const auto b = run_chord_experiment(chord_config(4));
  EXPECT_EQ(a.connum(), b.connum());
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
}

TEST(GnutellaHarness, JoinsAreInstant) {
  const auto r = run_gnutella_experiment(gnutella_config(5));
  EXPECT_EQ(r.joins_completed, 40u);
  EXPECT_DOUBLE_EQ(r.join_latency_ms.mean(), 0.0);  // no latency recorded
}

TEST(GnutellaHarness, FloodingFindsMostItems) {
  const auto r = run_gnutella_experiment(gnutella_config(6));
  EXPECT_EQ(r.lookups.issued, 80u);
  EXPECT_LT(r.lookups.failure_ratio(), 0.2);
}

TEST(GnutellaHarness, SmallTtlFailsMore) {
  auto small = gnutella_config(7);
  small.gnutella.ttl = 1;
  auto big = gnutella_config(7);
  big.gnutella.ttl = 7;
  const auto r_small = run_gnutella_experiment(small);
  const auto r_big = run_gnutella_experiment(big);
  EXPECT_GE(r_small.lookups.failure_ratio(), r_big.lookups.failure_ratio());
}

TEST(GnutellaHarness, DataStaysAtPublishers) {
  const auto r = run_gnutella_experiment(gnutella_config(8));
  std::size_t total = 0;
  for (const auto n : r.items_per_peer) total += n;
  EXPECT_EQ(total, 80u);
}

TEST(Baselines, ChordJoinsSlowerThanGnutella) {
  // The framing comparison of Section 1 at miniature scale.
  const auto chord = run_chord_experiment(chord_config(9));
  const auto gnutella = run_gnutella_experiment(gnutella_config(9));
  EXPECT_GT(chord.join_latency_ms.mean(), gnutella.join_latency_ms.mean());
  EXPECT_EQ(chord.lookups.failed, 0u);
}

}  // namespace
}  // namespace hp2p::exp
