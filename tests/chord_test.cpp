// Tests for the Chord baseline: ring construction, routing, data placement,
// churn behaviour.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chord/chord.hpp"
#include "tests/test_util.hpp"

namespace hp2p::chord {
namespace {

using testing::SimWorld;

/// Builds an n-node ring by sequential joins; returns the node indices.
std::vector<PeerIndex> build_ring(SimWorld& world, ChordNetwork& chord,
                                  std::size_t n) {
  std::vector<PeerIndex> nodes;
  nodes.push_back(
      chord.create_ring(world.next_host(), PeerId{world.rng.uniform(0, kRingSize - 1)}));
  for (std::size_t i = 1; i < n; ++i) {
    const PeerIndex node = chord.register_node(
        world.next_host(), PeerId{world.rng.uniform(0, kRingSize - 1)});
    bool done = false;
    chord.join(node, nodes.front(), [&](proto::JoinResult) { done = true; });
    world.sim.run();
    EXPECT_TRUE(done) << "join " << i << " never completed";
    nodes.push_back(node);
  }
  return nodes;
}

TEST(Chord, SingleNodeRingOwnsAll) {
  SimWorld world{1};
  ChordNetwork chord{*world.network, {}};
  const PeerIndex a = chord.create_ring(world.next_host(), PeerId{100});
  EXPECT_TRUE(chord.verify_ring(a, 1));
  bool found = false;
  chord.store(a, "k", 7, [&] { found = true; });
  world.sim.run();
  EXPECT_TRUE(found);
  EXPECT_EQ(chord.store_of(a).size(), 1u);
}

TEST(Chord, SequentialJoinsFormValidRing) {
  SimWorld world{2};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 32);
  EXPECT_TRUE(chord.verify_ring(nodes.front(), 32));
}

TEST(Chord, JoinLatencyPositiveAndHopsCounted) {
  SimWorld world{3};
  ChordNetwork chord{*world.network, {}};
  const auto first =
      chord.create_ring(world.next_host(), PeerId{1});
  const PeerIndex n = chord.register_node(world.next_host(), PeerId{1u << 20});
  proto::JoinResult result;
  chord.join(n, first, [&](proto::JoinResult r) { result = r; });
  world.sim.run();
  EXPECT_GT(result.latency.as_micros(), 0);
  EXPECT_GE(result.request_hops, 1u);
}

TEST(Chord, IdConflictResolvedByMidpoint) {
  SimWorld world{4};
  ChordNetwork chord{*world.network, {}};
  const PeerIndex a = chord.create_ring(world.next_host(), PeerId{1000});
  const PeerIndex b = chord.register_node(world.next_host(), PeerId{1000});
  chord.join(b, a, {});
  world.sim.run();
  EXPECT_NE(chord.view(b).id, chord.view(a).id);
  EXPECT_TRUE(chord.verify_ring(a, 2));
}

TEST(Chord, StoreRoutesToOwner) {
  SimWorld world{5};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 16);
  for (int i = 0; i < 64; ++i) {
    chord.store(nodes[static_cast<std::size_t>(i) % nodes.size()],
                "key-" + std::to_string(i), static_cast<std::uint64_t>(i));
  }
  world.sim.run();
  EXPECT_EQ(chord.total_items(), 64u);
  EXPECT_TRUE(chord.placement_consistent());
}

TEST(Chord, LookupFindsStoredData) {
  SimWorld world{6};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 16);
  for (int i = 0; i < 32; ++i) {
    chord.store(nodes.front(), "key-" + std::to_string(i),
                static_cast<std::uint64_t>(i));
  }
  world.sim.run();
  int successes = 0;
  for (int i = 0; i < 32; ++i) {
    chord.lookup(nodes[static_cast<std::size_t>(i) % nodes.size()],
                 "key-" + std::to_string(i), [&](proto::LookupResult r) {
                   successes += r.success;
                   EXPECT_TRUE(r.success);
                   EXPECT_GE(r.peers_contacted, 1u);
                 });
  }
  world.sim.run();
  EXPECT_EQ(successes, 32);
}

TEST(Chord, LookupMissingKeyFails) {
  SimWorld world{7};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 8);
  bool called = false;
  chord.lookup(nodes.front(), "no-such-key", [&](proto::LookupResult r) {
    called = true;
    EXPECT_FALSE(r.success);
  });
  world.sim.run();
  EXPECT_TRUE(called);
}

TEST(Chord, StructuredLookupNeverFailsWithoutChurn) {
  // The paper's claim: structured overlays have zero lookup failure ratio.
  SimWorld world{8};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 24);
  for (int i = 0; i < 100; ++i) {
    chord.store(nodes[static_cast<std::size_t>(i) % nodes.size()],
                "item" + std::to_string(i), 1);
  }
  world.sim.run();
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    chord.lookup(nodes[(static_cast<std::size_t>(i) * 7) % nodes.size()],
                 "item" + std::to_string(i),
                 [&](proto::LookupResult r) { failures += !r.success; });
  }
  world.sim.run();
  EXPECT_EQ(failures, 0);
}

TEST(Chord, GracefulLeavePreservesData) {
  SimWorld world{9};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 12);
  for (int i = 0; i < 60; ++i) {
    chord.store(nodes.front(), "k" + std::to_string(i), 1);
  }
  world.sim.run();
  ASSERT_EQ(chord.total_items(), 60u);
  chord.leave(nodes[5]);
  world.sim.run();
  EXPECT_EQ(chord.total_items(), 60u);  // moved, not lost
  EXPECT_TRUE(chord.verify_ring(nodes.front(), 11));
}

TEST(Chord, LeaveRepairsNeighborPointers) {
  SimWorld world{10};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 6);
  const auto leaving = nodes[3];
  const auto pred = chord.view(leaving).predecessor;
  const auto succ = chord.view(leaving).successor;
  chord.leave(leaving);
  world.sim.run();
  EXPECT_EQ(chord.view(pred).successor, succ);
  EXPECT_EQ(chord.view(succ).predecessor, pred);
}

TEST(Chord, CrashLosesDataButLookupStillCompletes) {
  SimWorld world{11};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 10);
  chord.store(nodes.front(), "victim-key", 1);
  world.sim.run();
  // Find the owner and crash it.
  PeerIndex owner = kNoPeer;
  chord.lookup(nodes.front(), "victim-key",
               [&](proto::LookupResult r) { owner = r.found_at; });
  world.sim.run();
  ASSERT_NE(owner, kNoPeer);
  chord.crash(owner);
  bool called = false;
  std::size_t requester = 0;
  while (nodes[requester] == owner) ++requester;
  chord.lookup(nodes[requester], "victim-key", [&](proto::LookupResult r) {
    called = true;
    EXPECT_FALSE(r.success);
  });
  world.sim.run();
  EXPECT_TRUE(called);
}

TEST(Chord, StabilizationRepairsRingAfterCrash) {
  SimWorld world{12};
  ChordParams params;
  params.stabilize_interval = sim::SimTime::millis(200);
  params.probe_timeout = sim::SimTime::millis(400);
  ChordNetwork chord{*world.network, params};
  const auto nodes = build_ring(world, chord, 10);
  chord.start_maintenance(world.rng);
  world.sim.run_until(world.sim.now() + sim::SimTime::seconds(2));
  chord.crash(nodes[4]);
  world.sim.run_until(world.sim.now() + sim::SimTime::seconds(10));
  // The predecessor of the crashed node must have routed around it.
  std::size_t live = 0;
  std::size_t self_loops = 0;
  for (const auto n : nodes) {
    const auto v = chord.view(n);
    if (!v.joined) continue;
    ++live;
    if (v.successor == n) ++self_loops;
    EXPECT_NE(v.successor, nodes[4]) << "stale successor pointer";
  }
  EXPECT_EQ(live, 9u);
  EXPECT_EQ(self_loops, 0u);
}

TEST(Chord, FingerRoutingBeatsRingRouting) {
  SimWorld world{13};
  ChordParams ring_params;
  ring_params.routing = RoutingMode::kRing;
  ChordParams finger_params;
  finger_params.routing = RoutingMode::kFinger;
  finger_params.stabilize_interval = sim::SimTime::millis(100);
  finger_params.fix_fingers_interval = sim::SimTime::millis(100);

  auto measure = [](SimWorld& w, ChordParams p, bool maintain) {
    ChordNetwork chord{*w.network, p};
    std::vector<PeerIndex> nodes;
    nodes.push_back(chord.create_ring(
        w.next_host(), PeerId{w.rng.uniform(0, kRingSize - 1)}));
    for (int i = 1; i < 48; ++i) {
      const PeerIndex n = chord.register_node(
          w.next_host(), PeerId{w.rng.uniform(0, kRingSize - 1)});
      chord.join(n, nodes.front(), {});
      w.sim.run();
      nodes.push_back(n);
    }
    if (maintain) {
      chord.start_maintenance(w.rng);
      // Enough rounds for every node to refresh all 32 fingers.
      w.sim.run_until(w.sim.now() + sim::SimTime::seconds(20));
    }
    for (int i = 0; i < 40; ++i) {
      chord.store(nodes.front(), "k" + std::to_string(i), 1);
    }
    std::uint64_t hops = 0;
    int count = 0;
    for (int i = 0; i < 40; ++i) {
      chord.lookup(nodes[static_cast<std::size_t>(i) % nodes.size()],
                   "k" + std::to_string(i), [&](proto::LookupResult r) {
                     if (r.success) {
                       hops += r.request_hops;
                       ++count;
                     }
                   });
    }
    w.sim.run_until(w.sim.now() + sim::SimTime::seconds(30));
    return count > 0 ? static_cast<double>(hops) / count : 1e9;
  };

  SimWorld w1{14};
  SimWorld w2{14};
  const double ring_hops = measure(w1, ring_params, false);
  const double finger_hops = measure(w2, finger_params, true);
  EXPECT_LT(finger_hops, ring_hops * 0.6)
      << "ring=" << ring_hops << " finger=" << finger_hops;
}

TEST(Chord, ViewExposesConsistentPointers) {
  SimWorld world{15};
  ChordNetwork chord{*world.network, {}};
  const auto nodes = build_ring(world, chord, 8);
  std::set<std::uint64_t> ids;
  for (const auto n : nodes) {
    const auto v = chord.view(n);
    EXPECT_TRUE(v.joined);
    EXPECT_TRUE(v.alive);
    ids.insert(v.id.value());
    // Mutual pointers.
    EXPECT_EQ(chord.view(v.successor).predecessor, n);
    EXPECT_EQ(chord.view(v.predecessor).successor, n);
  }
  EXPECT_EQ(ids.size(), 8u);  // distinct ids after conflict resolution
}

TEST(Chord, LoadTransferMovesOnlyOwnedArc) {
  SimWorld world{16};
  ChordNetwork chord{*world.network, {}};
  // Two-node ring, all data at one node, then a third joins in between.
  const PeerIndex a = chord.create_ring(world.next_host(), PeerId{0});
  const PeerIndex b =
      chord.register_node(world.next_host(), PeerId{kRingSize / 2});
  chord.join(b, a, {});
  world.sim.run();
  for (int i = 0; i < 200; ++i) {
    chord.store(a, "k" + std::to_string(i), 1);
  }
  world.sim.run();
  const PeerIndex c =
      chord.register_node(world.next_host(), PeerId{kRingSize / 4});
  chord.join(c, a, {});
  world.sim.run();
  EXPECT_TRUE(chord.placement_consistent());
  EXPECT_EQ(chord.total_items(), 200u);
  EXPECT_GT(chord.store_of(c).size(), 0u) << "new node received no load";
}

}  // namespace
}  // namespace hp2p::chord
