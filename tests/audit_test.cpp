// OverlayAuditor tests: a quiescent system passes a strict audit cleanly;
// each white-box fault injector trips exactly its named invariant (and only
// that one); periodic lenient audits across a churn storm report zero
// violations; and the harness wiring surfaces audit counters in RunResult.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/fault_inject.hpp"
#include "audit/overlay_auditor.hpp"
#include "exp/harness.hpp"
#include "hybrid/hybrid_system.hpp"
#include "tests/test_util.hpp"
#include "workload/workload.hpp"

namespace hp2p::audit {
namespace {

using hybrid::FaultInjector;
using hybrid::HybridParams;
using hybrid::HybridSystem;
using hybrid::Role;
using testing::SimWorld;

/// Builds a small quiescent deployment: 8 t-peers, 24 s-peers, 60 items
/// stored and fully settled.  Every fault test starts from a state the
/// strict auditor certifies clean, so a post-injection violation is
/// attributable to the injection alone.
struct AuditFixture {
  explicit AuditFixture(std::uint64_t seed = 42, HybridParams params = {})
      : world{seed, 64},
        system{*world.network, params, HostIndex{0}, world.rng} {
    for (int i = 0; i < 8; ++i) {
      peers.push_back(
          system.add_peer_with_role(world.next_host(), Role::kTPeer, {}));
    }
    world.sim.run();
    for (int i = 0; i < 24; ++i) {
      peers.push_back(
          system.add_peer_with_role(world.next_host(), Role::kSPeer, {}));
    }
    world.sim.run();
    Rng op = world.rng.fork(7);
    for (const auto& item : workload::uniform_corpus(60, seed)) {
      system.store_id(peers[op.index(peers.size())], item.id, item.key,
                      item.value);
    }
    world.sim.run();
  }

  /// Registered t-peers in registry (pid) order.
  [[nodiscard]] std::vector<PeerIndex> tpeers() const {
    std::vector<PeerIndex> out;
    for (const auto& [pid, t] : system.registry()) out.push_back(t);
    return out;
  }

  /// Any live joined s-peer satisfying `pred`, or kNoPeer.
  template <typename Pred>
  [[nodiscard]] PeerIndex find_speer(Pred pred) const {
    for (const PeerIndex p : peers) {
      if (system.role_of(p) != Role::kSPeer) continue;
      if (!system.is_alive(p) || !system.is_joined(p)) continue;
      if (pred(p)) return p;
    }
    return kNoPeer;
  }

  SimWorld world;
  HybridSystem system;
  std::vector<PeerIndex> peers;
};

AuditOptions strict() {
  AuditOptions o;
  o.strict = true;
  return o;
}

TEST(OverlayAuditor, QuiescentSystemPassesStrictAudit) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  const AuditReport report = auditor.run();
  EXPECT_TRUE(report.clean())
      << report.to_json().dump(2) << "\nstrict audit found violations";
  EXPECT_GT(report.checks_run, 100u);
  EXPECT_EQ(auditor.runs(), 1u);
  EXPECT_EQ(auditor.total_violations(), 0u);
}

TEST(OverlayAuditor, ReportJsonCarriesViolationStructure) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  const auto ts = fx.tpeers();
  FaultInjector::corrupt_successor(fx.system, ts[0], ts[0]);
  const AuditReport report = auditor.run();
  ASSERT_FALSE(report.clean());
  const std::string json = report.to_json().dump(2);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"invariant\""), std::string::npos);
  EXPECT_NE(json.find("\"expected\""), std::string::npos);
}

// --- Fault injection: each injector trips exactly its named invariant ------

TEST(FaultInjection, CorruptSuccessorTripsRingSymmetryOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  const auto ts = fx.tpeers();
  ASSERT_GE(ts.size(), 3u);
  const PeerIndex t = ts[0];
  // A wrong target that is neither t nor its true successor.
  PeerIndex wrong = kNoPeer;
  for (const PeerIndex c : ts) {
    if (c != t && c != fx.system.successor_of(t)) wrong = c;
  }
  ASSERT_NE(wrong, kNoPeer);
  FaultInjector::corrupt_successor(fx.system, t, wrong);

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(),
            std::vector<std::string>{"ring_successor_symmetry"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, CorruptSuccessorIdTripsIdCacheOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  FaultInjector::corrupt_successor_id(fx.system, fx.tpeers()[1]);

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(), std::vector<std::string>{"ring_id_cache"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, OvercapDegreeTripsDegreeCapOnly) {
  HybridParams params;
  params.delta = 2;  // low cap so a small s-network can exceed it
  AuditFixture fx{43, params};
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  bool injected = false;
  for (const PeerIndex root : fx.tpeers()) {
    if (FaultInjector::overcap_degree(fx.system, root, params.delta)) {
      injected = true;
      break;
    }
  }
  ASSERT_TRUE(injected) << "no s-network had enough movable leaves";

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(), std::vector<std::string>{"tree_degree_cap"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, MisplacedItemTripsPlacementOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  // A holder with data, and a t-peer root of a *different* s-network.
  PeerIndex holder = kNoPeer;
  for (const PeerIndex p : fx.peers) {
    if (!fx.system.store_of(p).empty()) holder = p;
  }
  ASSERT_NE(holder, kNoPeer);
  const PeerIndex holder_root = fx.system.role_of(holder) == Role::kTPeer
                                    ? holder
                                    : fx.system.tpeer_of(holder);
  PeerIndex recipient = kNoPeer;
  for (const PeerIndex t : fx.tpeers()) {
    if (t != holder_root) recipient = t;
  }
  ASSERT_NE(recipient, kNoPeer);
  ASSERT_TRUE(FaultInjector::misplace_item(fx.system, holder, recipient));

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(), std::vector<std::string>{"data_misplaced"})
      << report.to_json().dump(2);
  EXPECT_EQ(report.count("data_misplaced"), 1u);
}

TEST(FaultInjection, OrphanedStoredItemTripsDataOrphanedOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  const PeerIndex victim = fx.find_speer([&](PeerIndex p) {
    return fx.system.parent_of(p) != kNoPeer && !fx.system.store_of(p).empty();
  });
  ASSERT_NE(victim, kNoPeer) << "no attached s-peer holds data";
  ASSERT_TRUE(FaultInjector::orphan_stored_item(fx.system, victim));

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(), std::vector<std::string>{"data_orphaned"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, DroppedTreeEdgeTripsParentChildSymmetryOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  const PeerIndex child = fx.find_speer(
      [&](PeerIndex p) { return fx.system.parent_of(p) != kNoPeer; });
  ASSERT_NE(child, kNoPeer);
  ASSERT_TRUE(FaultInjector::drop_tree_edge(fx.system, child));

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(),
            std::vector<std::string>{"tree_parent_child_symmetry"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, OversizedFloodTtlTripsFloodBoundOnly) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  ASSERT_TRUE(auditor.run().clean());

  FaultInjector::flood_with_ttl(fx.system, fx.peers[0], 99);

  const AuditReport report = auditor.run();
  EXPECT_EQ(report.invariants(), std::vector<std::string>{"flood_ttl_bound"})
      << report.to_json().dump(2);
}

TEST(FaultInjection, InBoundFloodTtlStaysClean) {
  AuditFixture fx;
  OverlayAuditor auditor{fx.system, *fx.world.network, fx.world.sim, strict()};
  FaultInjector::flood_with_ttl(fx.system, fx.peers[0],
                                fx.system.params().ttl);
  EXPECT_TRUE(auditor.run().clean());
}

// --- Lenient mode under churn ----------------------------------------------

TEST(OverlayAuditor, PeriodicLenientAuditStaysCleanAcrossChurn) {
  SimWorld world{77, 128};
  HybridParams params;
  params.ps = 0.6;
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  HybridSystem system{*world.network, params, HostIndex{0}, world.rng};
  OverlayAuditor auditor{system, *world.network, world.sim};
  auditor.set_period(sim::SimTime::millis(500));

  std::vector<PeerIndex> peers;
  for (std::size_t i = 0; i < 40; ++i) {
    const Role role = i < 16 ? Role::kTPeer : Role::kSPeer;
    world.sim.schedule_after(
        sim::SimTime::millis(static_cast<std::int64_t>(i) * 40),
        [&, role] {
          peers.push_back(system.add_peer_with_role(world.next_host(), role, {}));
        });
  }
  auditor.ensure_running();
  world.sim.run();

  Rng op = world.rng.fork(3);
  for (const auto& item : workload::uniform_corpus(80, 77)) {
    system.store_id(peers[op.index(peers.size())], item.id, item.key,
                    item.value);
  }
  auditor.ensure_running();
  world.sim.run();
  system.start_failure_detection();

  // Interleaved joins, leaves and crashes while periodic audits fire.
  for (int i = 0; i < 20; ++i) {
    world.sim.schedule_after(
        sim::SimTime::millis(300 + static_cast<std::int64_t>(i) * 500), [&] {
          const double dice = op.uniform01();
          if (dice < 0.4) {
            const Role role = op.chance(0.4) ? Role::kTPeer : Role::kSPeer;
            peers.push_back(
                system.add_peer_with_role(world.next_host(), role, {}));
            return;
          }
          for (int attempt = 0; attempt < 100; ++attempt) {
            const PeerIndex p = peers[op.index(peers.size())];
            if (!system.is_joined(p) || !system.is_alive(p)) continue;
            if (dice < 0.8) {
              system.leave(p);
            } else {
              system.crash(p);
            }
            return;
          }
        });
  }
  auditor.ensure_running();
  world.sim.run_until(world.sim.now() + sim::SimTime::seconds(40));

  EXPECT_GT(auditor.runs(), 10u) << "periodic audit never fired";
  EXPECT_EQ(auditor.total_violations(), 0u)
      << auditor.last_report().to_json().dump(2);
}

// --- Harness wiring ---------------------------------------------------------

TEST(OverlayAuditor, HarnessReportsAuditCounters) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.num_peers = 50;
  cfg.num_items = 80;
  cfg.num_lookups = 60;
  cfg.hybrid.ps = 0.7;
  cfg.audit_period = sim::SimTime::millis(500);
  const exp::RunResult result = exp::run_hybrid_experiment(cfg);
  EXPECT_GT(result.audit_runs, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
  EXPECT_GT(result.lookups.succeeded, 0u);
}

TEST(OverlayAuditor, HarnessAuditOffByDefault) {
  exp::RunConfig cfg;
  cfg.seed = 5;
  cfg.num_peers = 30;
  cfg.num_items = 20;
  cfg.num_lookups = 20;
  const exp::RunResult result = exp::run_hybrid_experiment(cfg);
#ifdef NDEBUG
  EXPECT_EQ(result.audit_runs, 0u);
#else
  // Debug builds always audit phase boundaries.
  EXPECT_GT(result.audit_runs, 0u);
#endif
  EXPECT_EQ(result.audit_violations, 0u);
}

}  // namespace
}  // namespace hp2p::audit
