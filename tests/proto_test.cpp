// Unit tests for the overlay transport.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"

namespace hp2p::proto {
namespace {

class OverlayNetworkTest : public ::testing::Test {
 protected:
  OverlayNetworkTest() : rng_(101) {
    auto p = net::TransitStubParams::for_total_nodes(100);
    underlay_.emplace(net::generate_transit_stub(p, rng_), rng_);
  }

  OverlayNetwork make_network(OverlayNetworkOptions opts = {}) {
    return OverlayNetwork{sim_, *underlay_, opts};
  }

  Rng rng_;
  sim::Simulator sim_;
  std::optional<net::Underlay> underlay_;
};

TEST_F(OverlayNetworkTest, AddPeerAssignsDenseIndices) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{1});
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(net.num_peers(), 2u);
  EXPECT_EQ(net.host_of(b), HostIndex{1});
  EXPECT_TRUE(net.alive(a));
}

TEST_F(OverlayNetworkTest, DeliveryAfterPropagationDelay) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{50});
  sim::SimTime delivered_at = sim::SimTime::never();
  net.send(a, b, TrafficClass::kControl, kControlBytes,
           [&] { delivered_at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(delivered_at, underlay_->latency(HostIndex{0}, HostIndex{50}));
  EXPECT_EQ(net.stats().messages_delivered, 1u);
}

TEST_F(OverlayNetworkTest, TransmissionDelayAddsWhenEnabled) {
  auto plain = make_network();
  auto hetero = make_network({.model_transmission_delay = true});
  const PeerIndex a1 = plain.add_peer(HostIndex{0});
  const PeerIndex b1 = plain.add_peer(HostIndex{50});
  const PeerIndex a2 = hetero.add_peer(HostIndex{0});
  const PeerIndex b2 = hetero.add_peer(HostIndex{50});
  EXPECT_GT(hetero.hop_latency(a2, b2, kDataBytes),
            plain.hop_latency(a1, b1, kDataBytes));
  EXPECT_EQ(plain.hop_latency(a1, b1, kDataBytes),
            underlay_->latency(HostIndex{0}, HostIndex{50}));
}

TEST_F(OverlayNetworkTest, DeadReceiverDropsAtDeliveryTime) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  bool delivered = false;
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [&] { delivered = true; });
  net.set_alive(b, false);  // crash while in flight
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().messages_sent, 1u);
}

TEST_F(OverlayNetworkTest, DeadSenderCannotSend) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  net.set_alive(a, false);
  bool delivered = false;
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [&] { delivered = true; });
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().messages_sent, 0u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST_F(OverlayNetworkTest, PerClassAccounting) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  net.send(a, b, TrafficClass::kData, kDataBytes, [] {});
  sim_.run();
  EXPECT_EQ(net.stats().class_messages(TrafficClass::kQuery), 2u);
  EXPECT_EQ(net.stats().class_messages(TrafficClass::kData), 1u);
  EXPECT_EQ(net.stats().class_bytes(TrafficClass::kData), kDataBytes);
  EXPECT_EQ(net.stats().bytes_sent, 2u * kQueryBytes + kDataBytes);
}

TEST_F(OverlayNetworkTest, LinkStressTracksPathEdges) {
  auto net = make_network({.track_link_stress = true});
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{77});
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  sim_.run();
  ASSERT_NE(net.link_stress(), nullptr);
  EXPECT_EQ(net.link_stress()->total_copies(),
            underlay_->path_hops(HostIndex{0}, HostIndex{77}));
}

TEST_F(OverlayNetworkTest, LinkStressDisabledByDefault) {
  auto net = make_network();
  EXPECT_EQ(net.link_stress(), nullptr);
}

TEST_F(OverlayNetworkTest, SelfSendDeliversAtOnce) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{3});
  sim::SimTime at = sim::SimTime::never();
  net.send(a, a, TrafficClass::kControl, kControlBytes, [&] { at = sim_.now(); });
  sim_.run();
  EXPECT_EQ(at, sim::SimTime{});
}

TEST_F(OverlayNetworkTest, PerPeerCountersTrackSendAndReceive) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  net.send(b, a, TrafficClass::kControl, kControlBytes, [] {});
  sim_.run();
  EXPECT_EQ(net.messages_sent_by(a), 2u);
  EXPECT_EQ(net.messages_received_by(b), 2u);
  EXPECT_EQ(net.messages_sent_by(b), 1u);
  EXPECT_EQ(net.messages_received_by(a), 1u);
}

TEST_F(OverlayNetworkTest, LossRateDropsSomeMessages) {
  OverlayNetworkOptions opts;
  opts.loss_rate = 0.5;
  auto net = make_network(opts);
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    net.send(a, b, TrafficClass::kQuery, kQueryBytes, [&] { ++delivered; });
  }
  sim_.run();
  EXPECT_GT(net.stats().messages_lost, 50u);
  EXPECT_GT(delivered, 50);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered) + net.stats().messages_lost,
            200u);
}

TEST_F(OverlayNetworkTest, ZeroLossRateLosesNothing) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  for (int i = 0; i < 50; ++i) {
    net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  }
  sim_.run();
  EXPECT_EQ(net.stats().messages_lost, 0u);
  EXPECT_EQ(net.stats().messages_delivered, 50u);
}

TEST_F(OverlayNetworkTest, ResurrectionAllowsDeliveryAgain) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  net.set_alive(b, false);
  net.set_alive(b, true);
  bool delivered = false;
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [&] { delivered = true; });
  sim_.run();
  EXPECT_TRUE(delivered);
}

TEST_F(OverlayNetworkTest, TraceHookSeesSendDeliverAndDrops) {
  auto net = make_network();
  const PeerIndex a = net.add_peer(HostIndex{0});
  const PeerIndex b = net.add_peer(HostIndex{10});
  std::vector<NetTraceEvent> events;
  net.set_trace([&](const NetTraceEvent& ev) { events.push_back(ev); });

  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  sim_.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, NetTraceEvent::Kind::kSend);
  EXPECT_EQ(events[0].from, a);
  EXPECT_EQ(events[0].to, b);
  EXPECT_EQ(events[0].cls, TrafficClass::kQuery);
  EXPECT_EQ(events[0].bytes, kQueryBytes);
  EXPECT_EQ(events[1].kind, NetTraceEvent::Kind::kDeliver);

  events.clear();
  net.set_alive(b, false);
  net.send(a, b, TrafficClass::kQuery, kQueryBytes, [] {});
  sim_.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, NetTraceEvent::Kind::kSend);
  EXPECT_EQ(events[1].kind, NetTraceEvent::Kind::kDropDeadReceiver);

  events.clear();
  net.send(b, a, TrafficClass::kControl, kControlBytes, [] {});
  sim_.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, NetTraceEvent::Kind::kDropDeadSender);
}

}  // namespace
}  // namespace hp2p::proto
