// Determinism regression: a replica is a pure function of (config, seed).
// Two runs with the same config must export byte-identical metrics -- the
// property the determinism lint (tools/lint_determinism.py) protects at the
// source level.  Wall-clock phase timings are the one legitimate exception
// and are filtered out before comparison.
#include <gtest/gtest.h>

#include <string>

#include "exp/harness.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/metrics.hpp"

namespace hp2p::exp {
namespace {

/// Flattens everything a replica measured into "key=value" lines, skipping
/// the host-time keys (*.wall_ms) that legitimately vary between runs.
std::string filtered_dump(const RunConfig& cfg, const RunResult& result) {
  stats::MetricsRegistry reg;
  collect_run_config(reg, "config", cfg);
  collect_run_result(reg, "run", result);
  const std::string_view kWall = ".wall_ms";
  std::string out;
  for (const auto& [key, value] : reg.entries()) {
    if (key.size() >= kWall.size() &&
        key.compare(key.size() - kWall.size(), kWall.size(), kWall) == 0) {
      continue;
    }
    out += key;
    out += '=';
    out += value.dump();
    out += '\n';
  }
  return out;
}

RunConfig small_fig3_config(std::uint64_t seed) {
  RunConfig cfg;
  cfg.seed = seed;
  cfg.num_peers = 60;
  cfg.num_items = 120;
  cfg.num_lookups = 120;
  cfg.hybrid.ps = 0.8;
  cfg.sample_period = sim::SimTime::millis(250);
  cfg.audit_period = sim::SimTime::seconds(1);
  return cfg;
}

TEST(Reproducibility, SameSeedProducesIdenticalMetrics) {
  const RunConfig cfg = small_fig3_config(1234);
  const std::string first = filtered_dump(cfg, run_hybrid_experiment(cfg));
  const std::string second = filtered_dump(cfg, run_hybrid_experiment(cfg));
  // Sanity: the comparison covers real content, including audit counters.
  EXPECT_GT(first.size(), 1000u);
  EXPECT_NE(first.find("run.lookup.succeeded="), std::string::npos);
  EXPECT_NE(first.find("run.audit.runs="), std::string::npos);
  EXPECT_EQ(first, second) << "same (config, seed) diverged between runs";
}

TEST(Reproducibility, DifferentSeedsDiverge) {
  const RunConfig a = small_fig3_config(1234);
  const RunConfig b = small_fig3_config(4321);
  EXPECT_NE(filtered_dump(a, run_hybrid_experiment(a)),
            filtered_dump(b, run_hybrid_experiment(b)))
      << "seed is not reaching the run (comparison would be vacuous)";
}

TEST(Reproducibility, TimeseriesSamplesAreIdenticalToo) {
  const RunConfig cfg = small_fig3_config(99);
  const RunResult first = run_hybrid_experiment(cfg);
  const RunResult second = run_hybrid_experiment(cfg);
  ASSERT_TRUE(first.timeseries.has_value());
  ASSERT_TRUE(second.timeseries.has_value());
  EXPECT_EQ(first.timeseries->to_json().dump(),
            second.timeseries->to_json().dump());
}

}  // namespace
}  // namespace hp2p::exp
