// Chaos-engine tests: JSON round-trips for schedules, one directed schedule
// per fault family checked against the model-based oracle, mid-storm lookup
// coverage, a deliberate-regression canary (ring retry disabled must be
// caught), the schedule shrinker, and the multi-seed randomized soak.
#include <gtest/gtest.h>

#include <string>

#include "chaos/chaos_runner.hpp"
#include "chaos/fault_schedule.hpp"
#include "chaos/shrinker.hpp"

namespace hp2p::chaos {
namespace {

FaultPhase make_phase(FaultKind kind, int start_s, int duration_s) {
  FaultPhase p;
  p.kind = kind;
  p.start = sim::SimTime::seconds(start_s);
  p.duration = sim::SimTime::seconds(duration_s);
  return p;
}

FaultSchedule single_phase(std::uint64_t seed, FaultPhase p) {
  FaultSchedule s;
  s.seed = seed;
  s.phases.push_back(p);
  return s;
}

ChaosConfig directed_config(std::uint64_t seed, FaultSchedule schedule) {
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.schedule = std::move(schedule);
  return cfg;
}

void expect_clean(const ChaosReport& report, const ChaosConfig& cfg) {
  EXPECT_TRUE(report.clean())
      << "reproducer: " << cfg.schedule.one_line() << "\nreport: "
      << report.to_json().dump(2);
  EXPECT_GT(report.must_issued, 0u);
  EXPECT_EQ(report.must_failed, 0u);
}

// --- Schedule serialization ---------------------------------------------------

TEST(FaultSchedule, PhaseJsonRoundTrip) {
  FaultPhase p = make_phase(FaultKind::kPartition, 15, 6);
  p.intensity = 0.37;
  p.count = 5;
  p.param = 3;
  p.symmetric = false;
  p.affect_control = true;
  const auto dumped = p.to_json().dump(0);
  const auto parsed = stats::JsonValue::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  const auto back = FaultPhase::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(FaultSchedule, ScheduleJsonRoundTrip) {
  const auto schedule = random_schedule(99, sim::SimTime::seconds(15), 8);
  ASSERT_FALSE(schedule.phases.empty());
  const auto dumped = schedule.to_json().dump(0);
  const auto parsed = stats::JsonValue::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  const auto back = FaultSchedule::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, schedule);
  // one_line embeds the same compact blob after "schedule=".
  const auto line = schedule.one_line();
  EXPECT_NE(line.find("seed=99 "), std::string::npos);
  EXPECT_NE(line.find(dumped), std::string::npos);
}

TEST(FaultSchedule, RandomSchedulesAreSeedDeterministic) {
  const auto a = random_schedule(7, sim::SimTime::seconds(15), 8);
  const auto b = random_schedule(7, sim::SimTime::seconds(15), 8);
  const auto c = random_schedule(8, sim::SimTime::seconds(15), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- Directed schedules, one per fault family ---------------------------------

TEST(ChaosDirected, LossBurst) {
  auto phase = make_phase(FaultKind::kLossBurst, 15, 6);
  phase.intensity = 0.35;
  const auto cfg = directed_config(101, single_phase(101, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
}

TEST(ChaosDirected, LatencyStorm) {
  auto phase = make_phase(FaultKind::kLatencyStorm, 15, 6);
  phase.intensity = 4.0;
  const auto cfg = directed_config(102, single_phase(102, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
}

TEST(ChaosDirected, AsymmetricPartition) {
  auto phase = make_phase(FaultKind::kPartition, 15, 6);
  phase.param = 3;  // cut underlay domains {0,1,2} off from the rest
  phase.symmetric = false;
  const auto cfg = directed_config(103, single_phase(103, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
}

TEST(ChaosDirected, SymmetricPartition) {
  auto phase = make_phase(FaultKind::kPartition, 15, 6);
  phase.param = 3;
  phase.symmetric = true;
  const auto cfg = directed_config(104, single_phase(104, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
}

TEST(ChaosDirected, TPeerCrashStorm) {
  auto phase = make_phase(FaultKind::kTPeerCrashStorm, 15, 8);
  phase.count = 4;
  const auto cfg = directed_config(105, single_phase(105, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
  EXPECT_GT(report.crashes, 0u);
}

TEST(ChaosDirected, SPeerCrashStorm) {
  auto phase = make_phase(FaultKind::kSPeerCrashStorm, 15, 8);
  phase.count = 6;
  const auto cfg = directed_config(106, single_phase(106, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
  EXPECT_GT(report.crashes, 0u);
}

TEST(ChaosDirected, JoinFlashCrowd) {
  auto phase = make_phase(FaultKind::kJoinFlashCrowd, 15, 4);
  phase.count = 8;
  const auto cfg = directed_config(107, single_phase(107, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
  EXPECT_EQ(report.joins, 8u);
}

TEST(ChaosDirected, StaleHelloDelivery) {
  auto phase = make_phase(FaultKind::kStaleHello, 15, 6);
  phase.param = 2500;  // > hello_timeout: forces false suspicions
  const auto cfg = directed_config(108, single_phase(108, phase));
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
}

// --- Mid-storm lookups and the deliberate-regression canary -------------------

TEST(ChaosStorm, LookupsDuringCrashStormSurviveWithRetry) {
  auto phase = make_phase(FaultKind::kTPeerCrashStorm, 15, 8);
  phase.count = 3;
  auto cfg = directed_config(109, single_phase(109, phase));
  cfg.storm_lookups = 40;
  const auto report = run_chaos(cfg);
  expect_clean(report, cfg);
  EXPECT_GT(report.storm_issued, 0u);
}

TEST(ChaosStorm, DisablingRingRetryIsCaught) {
  // Same scenario with the hardening switched off: the oracle must flag
  // mid-storm MUST lookups that stalled on a hop to a crashed t-peer.
  auto phase = make_phase(FaultKind::kTPeerCrashStorm, 15, 8);
  phase.count = 5;
  auto cfg = directed_config(109, single_phase(109, phase));
  cfg.storm_lookups = 60;
  cfg.params.ring_retry_limit = 0;
  const auto report = run_chaos(cfg);
  bool storm_must_failed = false;
  for (const auto& v : report.violations) {
    storm_must_failed |= std::string(v.kind) == "storm_must_failed";
  }
  EXPECT_TRUE(storm_must_failed)
      << "ring-retry disabled but no storm_must_failed violation; report: "
      << report.to_json().dump(2);
}

// --- Shrinker -----------------------------------------------------------------

TEST(ChaosShrink, ReducesFailingScheduleToMinimalReproducer) {
  // Three phases, only the crash storm matters once retries are disabled.
  FaultSchedule schedule;
  schedule.seed = 110;
  auto noise1 = make_phase(FaultKind::kLatencyStorm, 15, 4);
  noise1.intensity = 2.0;
  auto storm = make_phase(FaultKind::kTPeerCrashStorm, 21, 8);
  storm.count = 5;
  auto noise2 = make_phase(FaultKind::kStaleHello, 31, 4);
  noise2.param = 2000;
  schedule.phases = {noise1, storm, noise2};

  const auto run_with = [](const FaultSchedule& s) {
    auto cfg = directed_config(110, s);
    cfg.storm_lookups = 60;
    cfg.params.ring_retry_limit = 0;
    return run_chaos(cfg);
  };
  ASSERT_FALSE(run_with(schedule).clean())
      << "the unshrunk schedule must fail under ring_retry_limit = 0";

  const auto shrunk = shrink_schedule(
      schedule, [&](const FaultSchedule& s) { return !run_with(s).clean(); });
  EXPECT_LE(shrunk.phases.size(), 2u);
  ASSERT_GE(shrunk.phases.size(), 1u);

  // The minimal reproducer replays byte-identically from its printed form.
  const auto line = shrunk.one_line();
  const auto blob = line.substr(line.find("schedule=") + 9);
  const auto parsed = stats::JsonValue::parse(blob);
  ASSERT_TRUE(parsed.has_value());
  const auto replayed = FaultSchedule::from_json(*parsed);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, shrunk);
  const auto first = run_with(*replayed);
  const auto second = run_with(*replayed);
  EXPECT_FALSE(first.clean());
  EXPECT_EQ(first.to_json().dump(0), second.to_json().dump(0));
}

// --- Randomized soak ----------------------------------------------------------

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, RandomScheduleLeavesNoViolations) {
  const std::uint64_t seed = GetParam();
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.schedule = random_schedule(seed, sim::SimTime::seconds(15), 12);
  const auto report = run_chaos(cfg);
  EXPECT_TRUE(report.clean())
      << "reproducer: " << cfg.schedule.one_line() << "\nreport: "
      << report.to_json().dump(2);
  // The oracle must actually assert something each run.
  EXPECT_GT(report.must_issued, 0u);
  std::cout << "[soak] seed=" << seed << " phases="
            << cfg.schedule.phases.size() << " crashes=" << report.crashes
            << " joins=" << report.joins << " must=" << report.must_issued
            << " may=" << report.may_issued << " may_failed="
            << report.may_failed << " items_live=" << report.items_live
            << "/" << report.items_stored << "\n";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

// --- Shuffled-dispatch soak ---------------------------------------------------
// The same kind of randomized storm, but with the kernel's FIFO tie-break
// replaced by a seeded shuffle (the HP2P_TIEBREAK=shuffle:<seed> hook):
// equal-timestamp events now dispatch in random order.  A clean pass
// certifies no protocol invariant silently leans on scheduling order --
// the cheap statistical cousin of the verify/ interleaving explorer.
class ShuffledSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffledSoak, ShuffledTieOrderLeavesNoViolations) {
  const std::uint64_t seed = GetParam();
  ChaosConfig cfg;
  cfg.seed = seed;
  cfg.tie_break = "shuffle:" + std::to_string(seed * 7919 + 17);
  cfg.schedule = random_schedule(seed, sim::SimTime::seconds(15), 12);
  const auto report = run_chaos(cfg);
  EXPECT_TRUE(report.clean())
      << "tie_break: " << cfg.tie_break
      << "\nreproducer: " << cfg.schedule.one_line() << "\nreport: "
      << report.to_json().dump(2);
  EXPECT_GT(report.must_issued, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffledSoak,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{9}));

}  // namespace
}  // namespace hp2p::chaos
