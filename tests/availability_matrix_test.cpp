// Parameterized availability matrix: sweeps p_s x placement scheme under a
// fixed t-peer crash storm (the chaos runner's oracle doubles as the
// harness) and asserts the monotone relationships the paper implies.
//
// Two distinct availability notions fall out of the model:
//
//  - SERVICE availability: the success ratio of lookups issued WHILE the
//    storm runs.  Lookups route through the t-network, so the fewer
//    t-peers there are (high p_s), the more a fixed number of t-peer
//    crashes disrupts routing -- at p_s = 1 every query funnels through a
//    single root, and each crash stalls the whole system until the
//    s-network competition promotes an heir.  This is the "success ratio
//    at p_s = 0 >= p_s = 1 under t-peer crashes" relationship.
//
//  - DATA availability: the fraction of stored items still retrievable
//    after the storm settles.  The paper's insertion rule keeps in-segment
//    items at the generating peer, so s-networks double as replication
//    domains: items riding on s-peers survive t-peer crashes, while at
//    p_s = 0 every crashed loner t-peer takes its items with it.  Data
//    availability therefore RISES with p_s, and random-spread placement
//    (scheme 2) is no worse than t-peer-stores (scheme 1) once s-networks
//    carry real load.
//
// Every cell must additionally be free of MUST-lookup violations: only
// legitimate crash-induced losses (MAY failures) may reduce availability.
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"

namespace hp2p::chaos {
namespace {

constexpr double kPsSweep[] = {0.0, 0.25, 0.5, 0.75, 1.0};
constexpr double kTolerance = 0.05;
constexpr std::uint32_t kStormLookups = 60;

FaultSchedule fixed_crash_storm() {
  FaultSchedule s;
  s.seed = 200;
  FaultPhase storm;
  storm.kind = FaultKind::kTPeerCrashStorm;
  storm.start = sim::SimTime::seconds(15);
  storm.duration = sim::SimTime::seconds(8);
  storm.count = 5;  // fixed across the sweep: same external shock per cell
  s.phases.push_back(storm);
  return s;
}

struct Cell {
  double data_availability = 0.0;
  double service_ratio = 0.0;
  ChaosReport report;
};

std::string cell_name(hybrid::PlacementScheme placement, double ps) {
  return std::string(placement == hybrid::PlacementScheme::kTPeerStores
                         ? "tpeer_stores"
                         : "random_spread") +
         " ps=" + std::to_string(ps);
}

Cell run_cell(hybrid::PlacementScheme placement, double ps) {
  ChaosConfig cfg;
  cfg.seed = 200;
  cfg.ps = ps;
  cfg.params.placement = placement;
  cfg.schedule = fixed_crash_storm();
  cfg.storm_lookups = kStormLookups;
  Cell cell;
  cell.report = run_chaos(cfg);
  const double issued = cell.report.must_issued + cell.report.may_issued;
  const double failed = cell.report.must_failed + cell.report.may_failed;
  cell.data_availability = issued > 0 ? (issued - failed) / issued : 0.0;
  // Storm slots that found no live t-peer to issue from count as service
  // failures: "nobody can even take the query" is unavailability.
  cell.service_ratio =
      static_cast<double>(cell.report.storm_issued -
                          cell.report.storm_failed) /
      static_cast<double>(kStormLookups);
  std::cout << "[cell] " << cell_name(placement, ps)
            << " data=" << cell.data_availability
            << " service=" << cell.service_ratio << " ("
            << cell.report.storm_issued - cell.report.storm_failed << "/"
            << kStormLookups << ")\n";
  return cell;
}

TEST(AvailabilityMatrix, MonotoneUnderTPeerCrashStorm) {
  std::map<std::string, Cell> cells;
  for (const auto placement : {hybrid::PlacementScheme::kTPeerStores,
                               hybrid::PlacementScheme::kRandomSpread}) {
    for (const double ps : kPsSweep) {
      auto cell = run_cell(placement, ps);
      // No cell may show protocol violations: failures must all be
      // legitimate (MAY) crash losses.
      EXPECT_TRUE(cell.report.clean())
          << cell_name(placement, ps)
          << " report: " << cell.report.to_json().dump(2);
      EXPECT_EQ(cell.report.must_failed, 0u) << cell_name(placement, ps);
      cells[cell_name(placement, ps)] = std::move(cell);
    }
  }
  for (const auto placement : {hybrid::PlacementScheme::kTPeerStores,
                               hybrid::PlacementScheme::kRandomSpread}) {
    // Service under t-peer crashes: the structured-heavy end keeps
    // answering (many small segments, each crash disrupts one), the
    // unstructured-heavy end funnels everything through few roots.
    const double svc0 = cells[cell_name(placement, 0.0)].service_ratio;
    const double svc1 = cells[cell_name(placement, 1.0)].service_ratio;
    EXPECT_GE(svc0, svc1 - kTolerance)
        << "placement "
        << (placement == hybrid::PlacementScheme::kTPeerStores ? 1 : 2);
  }
  {
    // Data under t-peer crashes: with random spread, s-networks act as
    // replication domains, so durability improves as they grow.
    const double at0 =
        cells[cell_name(hybrid::PlacementScheme::kRandomSpread, 0.0)]
            .data_availability;
    const double at1 =
        cells[cell_name(hybrid::PlacementScheme::kRandomSpread, 1.0)]
            .data_availability;
    EXPECT_GE(at1, at0 - kTolerance);
  }
  for (const double ps : kPsSweep) {
    if (ps < 0.5) continue;
    // With loaded s-networks, spreading copies off the responsible t-peer
    // must not lose to concentrating them on it.
    const double spread =
        cells[cell_name(hybrid::PlacementScheme::kRandomSpread, ps)]
            .data_availability;
    const double concentrated =
        cells[cell_name(hybrid::PlacementScheme::kTPeerStores, ps)]
            .data_availability;
    EXPECT_GE(spread, concentrated - kTolerance) << "ps=" << ps;
  }
}

TEST(AvailabilityMatrix, DataAvailabilityMonotoneInReplicationFactor) {
  // Replication axis: same fixed shock, placement pinned to the scheme that
  // concentrates data on the crashing role (t-peer stores), replication
  // factor swept.  r = 2 must strictly beat r = 1 on data availability (the
  // whole point of keeping a second in-segment copy), r = 3 must not lose
  // to r = 2 beyond tolerance, and no cell may show protocol violations.
  std::map<unsigned, Cell> by_r;
  for (const unsigned r : {1u, 2u, 3u}) {
    ChaosConfig cfg;
    cfg.seed = 200;
    cfg.ps = 0.5;
    cfg.params.placement = hybrid::PlacementScheme::kTPeerStores;
    cfg.params.replication_factor = r;
    cfg.schedule = fixed_crash_storm();
    cfg.storm_lookups = kStormLookups;
    Cell cell;
    cell.report = run_chaos(cfg);
    const double issued = cell.report.must_issued + cell.report.may_issued;
    const double failed = cell.report.must_failed + cell.report.may_failed;
    cell.data_availability = issued > 0 ? (issued - failed) / issued : 0.0;
    cell.service_ratio =
        static_cast<double>(cell.report.storm_issued -
                            cell.report.storm_failed) /
        static_cast<double>(kStormLookups);
    std::cout << "[cell] r=" << r << " data=" << cell.data_availability
              << " service=" << cell.service_ratio << "\n";
    EXPECT_TRUE(cell.report.clean())
        << "r=" << r << " report: " << cell.report.to_json().dump(2);
    EXPECT_EQ(cell.report.must_failed, 0u) << "r=" << r;
    by_r[r] = std::move(cell);
  }
  EXPECT_GT(by_r[2].data_availability, by_r[1].data_availability)
      << "r=2 must strictly improve data availability over r=1";
  EXPECT_GE(by_r[3].data_availability,
            by_r[2].data_availability - kTolerance);
  EXPECT_GE(by_r[2].service_ratio, by_r[1].service_ratio - kTolerance);
}

}  // namespace
}  // namespace hp2p::chaos
