// Thread-pool stress for exp::parallel_map -- the TSan canary.  Built and
// run under -fsanitize=thread in the sanitizer CI pass (see EXPERIMENTS.md);
// as a plain test it still pins down ordering, exception and move semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exp/harness.hpp"

namespace hp2p::exp {
namespace {

TEST(ParallelMapStress, ManySmallTasksAcrossManyThreads) {
  std::vector<int> configs(256);
  std::iota(configs.begin(), configs.end(), 0);
  std::atomic<std::size_t> calls{0};
  const auto results = parallel_map(
      configs,
      [&calls](int x) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return x * 3;
      },
      8);
  ASSERT_EQ(results.size(), configs.size());
  EXPECT_EQ(calls.load(), configs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 3) << "result out of order";
  }
}

TEST(ParallelMapStress, RepeatedRoundsReuseCleanState) {
  // Many short-lived pools back to back: catches races on pool setup and
  // teardown rather than steady-state work distribution.
  std::vector<int> configs(32);
  std::iota(configs.begin(), configs.end(), 0);
  for (int round = 0; round < 50; ++round) {
    const auto results =
        parallel_map(configs, [round](int x) { return x + round; }, 4);
    ASSERT_EQ(results.size(), configs.size());
    EXPECT_EQ(results[31], 31 + round);
  }
}

TEST(ParallelMapStress, FirstExceptionPropagatesAfterJoin) {
  std::vector<int> configs(64);
  std::iota(configs.begin(), configs.end(), 0);
  std::atomic<std::size_t> calls{0};
  EXPECT_THROW(
      parallel_map(
          configs,
          [&calls](int x) {
            calls.fetch_add(1, std::memory_order_relaxed);
            if (x % 13 == 5) throw std::runtime_error("boom");
            return x;
          },
          8),
      std::runtime_error);
  // Every started task ran to completion before the rethrow (workers join
  // first), and at least one worker observed the failure flag and bailed.
  EXPECT_GE(calls.load(), 1u);
  EXPECT_LE(calls.load(), configs.size());
}

TEST(ParallelMapStress, MoveOnlyResultsSupported) {
  std::vector<int> configs(40);
  std::iota(configs.begin(), configs.end(), 0);
  const auto results = parallel_map(
      configs, [](int x) { return std::make_unique<int>(x * x); }, 6);
  ASSERT_EQ(results.size(), configs.size());
  EXPECT_EQ(*results[7], 49);
}

TEST(ParallelMapStress, ConcurrentReplicasShareNothing) {
  // Four real (tiny) replicas on four threads: any hidden shared state in
  // the harness or protocol stack shows up as a TSan report here, and as
  // nondeterminism in repro_test otherwise.
  std::vector<RunConfig> configs;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    RunConfig cfg;
    cfg.seed = s;
    cfg.num_peers = 25;
    cfg.num_items = 20;
    cfg.num_lookups = 20;
    configs.push_back(cfg);
  }
  const auto results = parallel_map(
      configs, [](const RunConfig& c) { return run_hybrid_experiment(c); }, 4);
  ASSERT_EQ(results.size(), configs.size());
  for (const RunResult& r : results) {
    EXPECT_GT(r.joins_completed, 0u);
  }
  // Identical configs on different threads agree with a fresh serial run.
  const RunResult serial = run_hybrid_experiment(configs[0]);
  EXPECT_EQ(results[0].lookups.succeeded, serial.lookups.succeeded);
  EXPECT_EQ(results[0].network.messages_sent, serial.network.messages_sent);
}

}  // namespace
}  // namespace hp2p::exp
