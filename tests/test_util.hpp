// Shared fixtures for protocol tests: one underlay + simulator + transport
// per test, deterministic per seed.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"

namespace hp2p::testing {

/// Bundles the simulation substrate every overlay test needs.
class SimWorld {
 public:
  explicit SimWorld(std::uint64_t seed, std::uint32_t hosts = 200,
                    proto::OverlayNetworkOptions opts = {})
      : rng(seed) {
    auto params = net::TransitStubParams::for_total_nodes(hosts);
    underlay.emplace(net::generate_transit_stub(params, rng), rng);
    network.emplace(sim, *underlay, opts);
  }

  /// Round-robin host assignment for peers, skipping host 0 (the server's
  /// in hybrid tests).
  HostIndex next_host() {
    const auto h = HostIndex{1 + host_cursor_ % (underlay->num_hosts() - 1)};
    ++host_cursor_;
    return h;
  }

  Rng rng;
  sim::Simulator sim;
  std::optional<net::Underlay> underlay;
  std::optional<proto::OverlayNetwork> network;

 private:
  std::uint32_t host_cursor_ = 0;
};

}  // namespace hp2p::testing
