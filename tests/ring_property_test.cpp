// Property-style tests for the ring arithmetic and segment ownership:
// randomized wraparound intervals checked against first-principles
// definitions, and successor/ownership agreement between the chord finger
// table, the hybrid registry, and a sorted-vector reference.  Every case
// prints its seed and operands so a failure is a one-line reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "chord/finger_table.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "tests/test_util.hpp"

namespace hp2p {
namespace {

constexpr std::uint64_t kSeed = 20260805;
constexpr int kCases = 2000;

std::uint64_t ring_point(Rng& rng) { return rng.uniform(0, kRingSize - 1); }

TEST(RingProperty, ArcPredicatesPartitionTheRing) {
  Rng rng(kSeed);
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t a = ring_point(rng);
    const std::uint64_t b = ring_point(rng);
    const std::uint64_t x = ring_point(rng);
    SCOPED_TRACE("seed=" + std::to_string(kSeed) + " case=" +
                 std::to_string(c) + " a=" + std::to_string(a) + " b=" +
                 std::to_string(b) + " x=" + std::to_string(x));
    if (a != b) {
      // (a, b] and (b, a] partition the whole ring.
      EXPECT_NE(ring::in_arc_open_closed(x, a, b),
                ring::in_arc_open_closed(x, b, a));
      if (x != a && x != b) {
        // Likewise (a, b) and (b, a) partition the ring minus endpoints.
        EXPECT_NE(ring::in_arc_open_open(x, a, b),
                  ring::in_arc_open_open(x, b, a));
      }
      // The open arc is the half-open arc minus its closed endpoint.
      EXPECT_EQ(ring::in_arc_open_open(x, a, b),
                ring::in_arc_open_closed(x, a, b) && x != b);
    }
    // Endpoints: `a` is never inside either arc from a.
    EXPECT_FALSE(ring::in_arc_open_closed(a, a, b) && a != b);
    EXPECT_FALSE(ring::in_arc_open_open(a, a, b));
  }
}

TEST(RingProperty, DistanceAndMidpointAreConsistent) {
  Rng rng(kSeed + 1);
  for (int c = 0; c < kCases; ++c) {
    const std::uint64_t a = ring_point(rng);
    const std::uint64_t b = ring_point(rng);
    SCOPED_TRACE("case=" + std::to_string(c) + " a=" + std::to_string(a) +
                 " b=" + std::to_string(b));
    if (a != b) {
      // Walking a->b then b->a goes exactly once around.
      EXPECT_EQ(ring::distance_cw(a, b) + ring::distance_cw(b, a),
                kRingSize);
    }
    const std::uint64_t mid = ring::midpoint_cw(a, b);
    // The midpoint bisects the clockwise arc (within integer truncation).
    EXPECT_EQ(ring::distance_cw(a, mid),
              (a == b ? kRingSize : ring::distance_cw(a, b)) / 2);
    if (a != b && ring::distance_cw(a, b) > 1) {
      EXPECT_TRUE(ring::in_arc_open_open(mid, a, b) || mid == a);
    }
  }
}

TEST(RingProperty, FingerStartsWrapAndOrder) {
  Rng rng(kSeed + 2);
  for (int c = 0; c < 500; ++c) {
    const std::uint64_t a = ring_point(rng);
    for (unsigned k = 0; k < kRingBits; ++k) {
      SCOPED_TRACE("case=" + std::to_string(c) + " a=" + std::to_string(a) +
                   " k=" + std::to_string(k));
      // start(k) is exactly 2^k past a.
      EXPECT_EQ(ring::distance_cw(a, ring::finger_start(a, k)),
                std::uint64_t{1} << k);
    }
  }
}

TEST(RingProperty, ClosestPrecedingMatchesBruteForce) {
  Rng rng(kSeed + 3);
  for (int c = 0; c < 200; ++c) {
    const std::uint64_t own = ring_point(rng);
    chord::FingerTable table;
    table.init(PeerId{own});
    // Populate a random subset of slots with random nodes.
    for (unsigned k = 0; k < kRingBits; ++k) {
      if (!rng.chance(0.4)) continue;
      table.set(k, PeerIndex{static_cast<std::uint32_t>(k + 1)},
                PeerId{ring_point(rng)});
    }
    for (int t = 0; t < 20; ++t) {
      const std::uint64_t target = ring_point(rng);
      SCOPED_TRACE("case=" + std::to_string(c) + " own=" +
                   std::to_string(own) + " target=" + std::to_string(target));
      const auto got = table.closest_preceding(target);
      // Brute force from the definition: the highest slot whose node id
      // lies strictly inside (own, target).
      chord::Finger expect;
      for (unsigned k = kRingBits; k-- > 0;) {
        const auto& f = table.entry(k);
        if (f.node == kNoPeer) continue;
        if (ring::in_arc_open_open(f.node_id.value(), own, target)) {
          expect = f;
          break;
        }
      }
      EXPECT_EQ(got.node, expect.node);
      EXPECT_EQ(got.node_id, expect.node_id);
    }
  }
}

TEST(RingProperty, HybridOwnershipAgreesWithSortedReference) {
  hybrid::HybridParams params;
  params.ps = 0.0;  // pure t-network: every peer owns a segment
  testing::SimWorld world(kSeed + 4, 120);
  hybrid::HybridSystem system(*world.network, params, HostIndex{0},
                              world.rng);
  std::vector<PeerIndex> peers;
  for (int i = 0; i < 24; ++i) {
    world.sim.schedule_after(
        sim::SimTime::millis(40 * (i + 1)), [&] {
          peers.push_back(system.add_peer_with_role(world.next_host(),
                                                    hybrid::Role::kTPeer));
        });
  }
  world.sim.run();

  std::vector<std::uint64_t> pids;
  for (const PeerIndex p : peers) {
    ASSERT_TRUE(system.is_joined(p));
    pids.push_back(system.pid_of(p).value());
  }
  std::sort(pids.begin(), pids.end());

  Rng rng(kSeed + 5);
  for (int c = 0; c < 500; ++c) {
    const std::uint64_t id = ring_point(rng);
    SCOPED_TRACE("case=" + std::to_string(c) + " id=" + std::to_string(id));
    const PeerIndex owner = system.owner_tpeer(DataId{id});
    ASSERT_NE(owner, kNoPeer);
    // The owner's segment (pred, pid] contains the id.
    const auto [lo, hi] = system.segment_of(owner);
    EXPECT_TRUE(ring::in_arc_open_closed(id, lo.value(), hi.value()));
    // Exactly one t-peer claims it.
    int claimants = 0;
    for (const PeerIndex p : peers) {
      const auto [plo, phi] = system.segment_of(p);
      claimants += ring::in_arc_open_closed(id, plo.value(), phi.value());
    }
    EXPECT_EQ(claimants, 1);
    // Sorted-vector reference: owner pid is the first pid >= id (wrapping).
    const auto it = std::lower_bound(pids.begin(), pids.end(), id);
    const std::uint64_t expect_pid = it == pids.end() ? pids.front() : *it;
    EXPECT_EQ(system.pid_of(owner).value(), expect_pid);
  }
}

}  // namespace
}  // namespace hp2p
