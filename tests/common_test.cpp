// Unit tests for the common module: ids, ring arithmetic, hashing, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/hashing.hpp"
#include "common/ids.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"

namespace hp2p {
namespace {

TEST(Ids, StrongTypesCompare) {
  const PeerId a{5};
  const PeerId b{9};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, PeerId{5});
  EXPECT_NE(a, b);
}

TEST(Ids, HashableInUnorderedSet) {
  std::unordered_set<PeerId> set;
  set.insert(PeerId{1});
  set.insert(PeerId{1});
  set.insert(PeerId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(RingMath, ReduceWraps) {
  EXPECT_EQ(ring::reduce(kRingSize), 0u);
  EXPECT_EQ(ring::reduce(kRingSize + 7), 7u);
  EXPECT_EQ(ring::reduce(kRingSize - 1), kRingSize - 1);
}

TEST(RingMath, ArcOpenClosedBasic) {
  EXPECT_TRUE(ring::in_arc_open_closed(5, 2, 8));
  EXPECT_TRUE(ring::in_arc_open_closed(8, 2, 8));  // closed at b
  EXPECT_FALSE(ring::in_arc_open_closed(2, 2, 8));  // open at a
  EXPECT_FALSE(ring::in_arc_open_closed(9, 2, 8));
}

TEST(RingMath, ArcOpenClosedWrapping) {
  // Arc from near the top of the space back around through zero.
  const std::uint64_t a = kRingSize - 10;
  EXPECT_TRUE(ring::in_arc_open_closed(kRingSize - 5, a, 5));
  EXPECT_TRUE(ring::in_arc_open_closed(0, a, 5));
  EXPECT_TRUE(ring::in_arc_open_closed(5, a, 5));
  EXPECT_FALSE(ring::in_arc_open_closed(6, a, 5));
  EXPECT_FALSE(ring::in_arc_open_closed(a, a, 5));
}

TEST(RingMath, SingleNodeRingOwnsEverything) {
  EXPECT_TRUE(ring::in_arc_open_closed(123, 42, 42));
  EXPECT_TRUE(ring::in_arc_open_closed(42, 42, 42));
}

TEST(RingMath, OpenOpenExcludesEndpoints) {
  EXPECT_TRUE(ring::in_arc_open_open(5, 2, 8));
  EXPECT_FALSE(ring::in_arc_open_open(8, 2, 8));
  EXPECT_FALSE(ring::in_arc_open_open(2, 2, 8));
  // wrap
  EXPECT_TRUE(ring::in_arc_open_open(1, kRingSize - 2, 3));
}

TEST(RingMath, DistanceCw) {
  EXPECT_EQ(ring::distance_cw(10, 15), 5u);
  EXPECT_EQ(ring::distance_cw(15, 10), kRingSize - 5);
  EXPECT_EQ(ring::distance_cw(7, 7), 0u);
}

TEST(RingMath, MidpointCwHalvesTheArc) {
  EXPECT_EQ(ring::midpoint_cw(10, 20), 15u);
  // Wrapping arc: from kRingSize-4 to 4 spans 8; midpoint lands at 0.
  EXPECT_EQ(ring::midpoint_cw(kRingSize - 4, 4), 0u);
}

TEST(RingMath, MidpointLiesInsideArc) {
  Rng rng{99};
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.uniform(0, kRingSize - 1);
    const std::uint64_t b = rng.uniform(0, kRingSize - 1);
    if (ring::distance_cw(a, b) < 2) continue;  // no interior point
    const std::uint64_t m = ring::midpoint_cw(a, b);
    EXPECT_TRUE(ring::in_arc_open_open(m, a, b) || m == a)
        << "a=" << a << " b=" << b << " m=" << m;
  }
}

TEST(RingMath, FingerStartPowersOfTwo) {
  EXPECT_EQ(ring::finger_start(0, 0), 1u);
  EXPECT_EQ(ring::finger_start(0, 5), 32u);
  EXPECT_EQ(ring::finger_start(kRingSize - 1, 0), 0u);
}

TEST(RingMath, OwnershipMatchesArc) {
  const PeerId owner{100};
  const PeerId pred{50};
  EXPECT_TRUE(ring::owns(owner, pred, DataId{100}));
  EXPECT_TRUE(ring::owns(owner, pred, DataId{51}));
  EXPECT_FALSE(ring::owns(owner, pred, DataId{50}));
  EXPECT_FALSE(ring::owns(owner, pred, DataId{101}));
}

TEST(Hashing, Fnv1aKnownValues) {
  // FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hashing, KeysStayInRingSpace) {
  for (const char* key : {"file.txt", "movie.mkv", "", "x", "longer key 123"}) {
    EXPECT_LT(hash_key(key).value(), kRingSize);
  }
}

TEST(Hashing, DistinctKeysRarelyCollide) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.insert(hash_key("key-" + std::to_string(i)).value());
  }
  EXPECT_GE(ids.size(), 9995u);  // 32-bit space, 10k keys: ~0 collisions
}

TEST(Hashing, SequentialKeysSpreadAcrossRing) {
  // Avalanche check: adjacent keys should not cluster in one ring quadrant.
  std::vector<int> quadrant(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const auto id = hash_key("item" + std::to_string(i)).value();
    ++quadrant[id / (kRingSize / 4)];
  }
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_GT(quadrant[q], 800) << "quadrant " << q;
    EXPECT_LT(quadrant[q], 1200) << "quadrant " << q;
  }
}

TEST(Rng, Deterministic) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(Rng, ForkDecorrelates) {
  Rng base{7};
  Rng c1 = base.fork(1);
  Rng c2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng{4};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{6};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{7};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng{8};
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{9};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, IndexIsUniformish) {
  Rng rng{10};
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 25000; ++i) ++counts[rng.index(5)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

}  // namespace
}  // namespace hp2p
