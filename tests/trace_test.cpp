// Deterministic-seed tests for the observability layer: the span tree a
// traced hybrid lookup records (ring hops, then flood, then reply), span
// nesting under churn, the catapult export, the time-series sampler, and
// the bounded flight recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/metrics.hpp"
#include "stats/timeseries.hpp"
#include "stats/trace.hpp"
#include "tests/test_util.hpp"

namespace hp2p {
namespace {

using testing::SimWorld;

hybrid::HybridParams traced_params() {
  hybrid::HybridParams p;
  p.ps = 0.5;
  p.delta = 3;
  p.ttl = 8;
  return p;
}

/// Hybrid deployment with the span recorder wired into both the transport
/// and the protocol layer, mirroring what the experiment harness does.
struct TracedFixture {
  explicit TracedFixture(std::uint64_t seed,
                         hybrid::HybridParams params = traced_params())
      : world(seed, 120),
        system(*world.network, params, HostIndex{0}, world.rng) {
    world.network->set_span_recorder(&recorder);
    system.set_tracer(&recorder);
  }

  void build(std::size_t n) {
    const double ps = system.params().ps;
    auto n_t = static_cast<std::size_t>(
        std::max(1.0, (1.0 - ps) * static_cast<double>(n) + 0.5));
    n_t = std::min(n_t, n);
    std::vector<hybrid::Role> roles(n, hybrid::Role::kSPeer);
    for (std::size_t i = 0; i < n_t; ++i) roles[i] = hybrid::Role::kTPeer;
    std::vector<hybrid::Role> tail(roles.begin() + 1, roles.end());
    world.rng.shuffle(tail);
    std::copy(tail.begin(), tail.end(), roles.begin() + 1);
    std::size_t completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const hybrid::Role role = roles[i];
      world.sim.schedule_after(
          sim::SimTime::millis(static_cast<std::int64_t>(i) * 40), [&, role] {
            peers.push_back(system.add_peer_with_role(
                world.next_host(), role, [&](proto::JoinResult) {
                  ++completed;
                }));
          });
    }
    world.sim.run();
    ASSERT_EQ(completed, n) << "not every join completed";
  }

  std::vector<std::string> populate(std::size_t count) {
    std::vector<std::string> keys;
    std::size_t done_count = 0;
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back("key-" + std::to_string(i));
      system.store(peers[i % peers.size()], keys.back(), i,
                   [&] { ++done_count; });
    }
    world.sim.run();
    EXPECT_EQ(done_count, count);
    return keys;
  }

  stats::SpanRecorder recorder;
  SimWorld world;
  hybrid::HybridSystem system;
  std::vector<PeerIndex> peers;
};

/// Root spans with the given category, in recording order.
std::vector<const stats::Span*> roots_of(const stats::SpanRecorder& r,
                                         std::string_view category) {
  std::vector<const stats::Span*> out;
  for (const stats::Span& s : r.spans()) {
    if (s.parent == 0 && !s.instant && category == s.category) {
      out.push_back(&s);
    }
  }
  return out;
}

std::int64_t arg_of(const stats::Span& s, std::string_view key,
                    std::int64_t fallback = -1) {
  for (const auto& [k, v] : s.args) {
    if (key == k) return v;
  }
  return fallback;
}

// --- Span trees of hybrid operations ----------------------------------------

TEST(Trace, UntracedRunRecordsNothing) {
  TracedFixture f{7};
  f.system.set_tracer(nullptr);
  f.world.network->set_span_recorder(nullptr);
  f.build(30);
  f.populate(10);
  std::size_t done = 0;
  f.system.lookup(f.peers[3], "key-5", [&](proto::LookupResult r) {
    EXPECT_TRUE(r.success);
    ++done;
  });
  f.world.sim.run();
  EXPECT_EQ(done, 1u);
  EXPECT_TRUE(f.recorder.spans().empty());
  EXPECT_EQ(f.recorder.num_traces(), 0u);
}

TEST(Trace, LookupRecordsClosedWellFormedSpanTree) {
  TracedFixture f{11};
  f.build(40);
  const auto keys = f.populate(30);

  std::size_t done = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 7) % f.peers.size()], keys[i],
                    [&](proto::LookupResult) { ++done; });
  }
  f.world.sim.run();
  ASSERT_EQ(done, keys.size());

  const auto lookup_roots = roots_of(f.recorder, "lookup");
  ASSERT_EQ(lookup_roots.size(), keys.size());
  for (const stats::Span* root : lookup_roots) {
    // finish_query closed the root and annotated the outcome.
    EXPECT_FALSE(root->open);
    EXPECT_NE(arg_of(*root, "success"), -1);
    EXPECT_NE(arg_of(*root, "qid"), -1);
  }

  // Every span: ends after it starts, parent exists within the same trace.
  for (const stats::Span& s : f.recorder.spans()) {
    EXPECT_GE((s.end - s.start).as_micros(), 0);
    EXPECT_NE(s.trace_id, 0u);
    if (s.parent != 0) {
      const stats::Span* parent = f.recorder.find(s.parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->trace_id, s.trace_id);
      EXPECT_FALSE(parent->instant);
    }
  }
  EXPECT_EQ(f.recorder.dropped_spans(), 0u);
}

TEST(Trace, RemoteLookupOrdersRingBeforeFloodBeforeReply) {
  TracedFixture f{13};
  f.build(40);
  const auto keys = f.populate(30);

  std::size_t done = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 7) % f.peers.size()], keys[i],
                    [&](proto::LookupResult) { ++done; });
  }
  f.world.sim.run();
  ASSERT_EQ(done, keys.size());

  // Stage spans are opened sequentially, so within one trace the recording
  // order is the execution order: any ring stage precedes any flood stage,
  // and the reply stage is last.
  std::size_t traces_with_ring_then_flood = 0;
  for (const stats::Span* root : roots_of(f.recorder, "lookup")) {
    std::vector<const stats::Span*> stages;
    for (const stats::Span* s : f.recorder.trace(root->trace_id)) {
      if (!s->instant && s->parent == root->id) stages.push_back(s);
    }
    std::ptrdiff_t first_flood = -1;
    std::ptrdiff_t last_ring = -1;
    for (std::ptrdiff_t i = 0;
         i < static_cast<std::ptrdiff_t>(stages.size()); ++i) {
      const std::string_view cat{stages[static_cast<std::size_t>(i)]->category};
      if (cat == "flood" && first_flood < 0) first_flood = i;
      if (cat == "ring") last_ring = i;
      if (cat == "reply") {
        EXPECT_EQ(i, static_cast<std::ptrdiff_t>(stages.size()) - 1)
            << "reply must be the final stage";
      }
    }
    if (last_ring >= 0 && first_flood >= 0) {
      EXPECT_LT(last_ring, first_flood)
          << "ring routing must finish before the s-network flood";
      ++traces_with_ring_then_flood;
    }
  }
  // The fixed seed produces cross-segment lookups; at least one trace must
  // exercise the full ring-then-flood pipeline.
  EXPECT_GT(traces_with_ring_then_flood, 0u);
}

TEST(Trace, HopInstantsNestUnderStageSpans) {
  TracedFixture f{17};
  f.build(40);
  const auto keys = f.populate(20);
  std::size_t done = 0;
  for (const auto& key : keys) {
    f.system.lookup(f.peers[1], key, [&](proto::LookupResult) { ++done; });
  }
  f.world.sim.run();
  ASSERT_EQ(done, keys.size());

  std::size_t hop_instants = 0;
  for (const stats::Span& s : f.recorder.spans()) {
    if (!s.instant) continue;
    const std::string_view name{s.name};
    if (name != "ring_hop" && name != "flood_hop" && name != "walk_hop" &&
        name != "climb_hop") {
      continue;
    }
    ++hop_instants;
    ASSERT_NE(s.parent, 0u) << "hop instants must nest under a span";
    const stats::Span* parent = f.recorder.find(s.parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->trace_id, s.trace_id);
    // Hop instants carry their ordinal annotation.
    if (name == "ring_hop" || name == "climb_hop") {
      EXPECT_GT(arg_of(s, "hop"), 0);
    } else {
      EXPECT_GT(arg_of(s, "depth"), 0);
    }
  }
  EXPECT_GT(hop_instants, 0u);
}

TEST(Trace, BreakdownsCoverEveryLookupAndMatchOutcome) {
  TracedFixture f{19};
  f.build(40);
  const auto keys = f.populate(25);
  std::size_t succeeded = 0;
  std::size_t done = 0;
  for (const auto& key : keys) {
    f.system.lookup(f.peers[2], key, [&](proto::LookupResult r) {
      ++done;
      if (r.success) ++succeeded;
    });
  }
  f.world.sim.run();
  ASSERT_EQ(done, keys.size());

  const auto breakdowns = f.recorder.lookup_breakdowns();
  ASSERT_EQ(breakdowns.size(), keys.size());
  std::size_t successful_breakdowns = 0;
  for (const auto& b : breakdowns) {
    EXPECT_GE(b.total_ms, 0.0);
    EXPECT_GE(b.total_ms + 1e-9,
              std::max({b.climb_ms, b.ring_ms, b.reply_ms}))
        << "no single stage may exceed the root extent";
    if (b.success) ++successful_breakdowns;
  }
  EXPECT_EQ(successful_breakdowns, succeeded);

  stats::MetricsRegistry reg;
  f.recorder.collect_critical_path(reg, "trace");
  EXPECT_DOUBLE_EQ(reg.number_or("trace.lookups", -1),
                   static_cast<double>(keys.size()));
  EXPECT_DOUBLE_EQ(reg.number_or("trace.succeeded", -1),
                   static_cast<double>(succeeded));
  EXPECT_GE(reg.number_or("trace.total_ms.p95", -1),
            reg.number_or("trace.total_ms.p50", 0));
}

TEST(Trace, SpanTreesStayWellFormedUnderChurn) {
  TracedFixture f{23};
  f.build(48);
  const auto keys = f.populate(30);

  // Crash a quarter of the peers without failure detection, then look up
  // every key: some lookups fail, but every recorded trace must still be a
  // closed, parent-consistent tree.
  for (std::size_t i = 0; i < f.peers.size(); i += 4) {
    f.system.crash(f.peers[i]);
  }
  std::size_t done = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const PeerIndex origin = f.peers[(3 + i) % f.peers.size()];
    if (!f.world.network->alive(origin)) continue;
    f.system.lookup(origin, keys[i], [&](proto::LookupResult r) {
      ++done;
      if (!r.success) ++failed;
    });
  }
  f.world.sim.run();
  ASSERT_GT(done, 0u);

  for (const stats::Span* root : roots_of(f.recorder, "lookup")) {
    EXPECT_FALSE(root->open) << "every lookup root must be closed";
  }
  for (const stats::Span& s : f.recorder.spans()) {
    EXPECT_GE((s.end - s.start).as_micros(), 0);
    if (s.parent != 0) {
      const stats::Span* parent = f.recorder.find(s.parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->trace_id, s.trace_id);
    }
  }
  // Crash-induced dead ends surface as enumerated drops, not silence.
  const auto& net = f.world.network->stats();
  EXPECT_GT(net.reason_drops(proto::DropReason::kDeadReceiver) +
                net.reason_drops(proto::DropReason::kNoRoute) +
                net.reason_drops(proto::DropReason::kTtlExhausted),
            0u);
}

TEST(Trace, StoreRecordsRootSpan) {
  TracedFixture f{29};
  f.build(30);
  std::size_t done = 0;
  f.system.store(f.peers[4], "stored-key", 99, [&] { ++done; });
  f.world.sim.run();
  ASSERT_EQ(done, 1u);
  const auto store_roots = roots_of(f.recorder, "store");
  ASSERT_EQ(store_roots.size(), 1u);
  EXPECT_FALSE(store_roots.front()->open);
}

// --- Recorder mechanics ------------------------------------------------------

TEST(Trace, CapacityBoundDropsAndCounts) {
  stats::SpanRecorder small{3};
  const auto t1 = small.start_trace("lookup", "lookup", 0, sim::SimTime{});
  const auto c1 = small.begin_span(t1, "ring", "ring", 1, sim::SimTime{});
  small.instant(c1, "ring_hop", 2, sim::SimTime{});
  EXPECT_EQ(small.spans().size(), 3u);
  EXPECT_EQ(small.dropped_spans(), 0u);
  const auto overflow =
      small.begin_span(t1, "flood", "flood", 3, sim::SimTime{});
  EXPECT_FALSE(overflow.valid());
  small.instant(c1, "ring_hop", 4, sim::SimTime{});
  EXPECT_EQ(small.spans().size(), 3u);
  EXPECT_EQ(small.dropped_spans(), 2u);
  // Ending a recorded span still works at capacity.
  small.end_span(c1, sim::SimTime::millis(5));
  EXPECT_FALSE(small.find(c1.span_id)->open);
}

TEST(Trace, BeginSpanOnInvalidParentIsNoop) {
  stats::SpanRecorder r;
  const auto child =
      r.begin_span(stats::TraceContext{}, "x", "y", 0, sim::SimTime{});
  EXPECT_FALSE(child.valid());
  EXPECT_TRUE(r.spans().empty());
  r.end_span(child, sim::SimTime{});           // no-op, must not crash
  r.add_arg(child, "k", 1);                    // no-op, must not crash
  r.instant(child, "i", 0, sim::SimTime{});    // no-op, must not crash
  EXPECT_TRUE(r.spans().empty());
}

TEST(Trace, CatapultExportIsBalancedAndLoadable) {
  TracedFixture f{31};
  f.build(30);
  const auto keys = f.populate(10);
  std::size_t done = 0;
  for (const auto& key : keys) {
    f.system.lookup(f.peers[5], key, [&](proto::LookupResult) { ++done; });
  }
  f.world.sim.run();
  ASSERT_EQ(done, keys.size());

  const auto root = f.recorder.to_catapult();
  const auto* unit = root.find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->as_string(), "ms");
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->items().empty());

  // First event is the process-name metadata record.
  const auto& meta = events->items().front();
  EXPECT_EQ(meta.find("ph")->as_string(), "M");

  std::size_t begins = 0;
  std::size_t ends = 0;
  std::set<std::int64_t> track_ids;
  for (std::size_t i = 1; i < events->items().size(); ++i) {
    const auto& ev = events->items()[i];
    const std::string& ph = ev.find("ph")->as_string();
    ASSERT_TRUE(ph == "b" || ph == "e" || ph == "n") << ph;
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("id"), nullptr);
    track_ids.insert(ev.find("id")->as_int());
  }
  EXPECT_EQ(begins, ends) << "every async begin needs a matching end";
  EXPECT_EQ(track_ids.size(), f.recorder.num_traces())
      << "each trace renders as its own async track";

  // The serialized document round-trips through the JSON parser.
  const auto parsed = stats::JsonValue::parse(root.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, root);
}

// --- Time-series sampling ----------------------------------------------------

TEST(TimeSeries, SamplesGaugesAtFixedPeriod) {
  sim::Simulator sim;
  std::int64_t work_done = 0;
  for (std::int64_t i = 1; i <= 100; ++i) {
    sim.schedule_at(sim::SimTime::millis(i * 10), [&] { ++work_done; });
  }
  stats::TimeSeriesSampler sampler{sim, sim::SimTime::millis(100)};
  sampler.add_gauge("work_done",
                    [&] { return static_cast<double>(work_done); });
  sampler.ensure_running();
  sim.run();
  const auto& series = sampler.series();
  // Events span [10ms, 1000ms]; ticks at 100, 200, ... while other events
  // remain pending.
  ASSERT_GE(series.num_samples(), 9u);
  ASSERT_EQ(series.columns.size(), 1u);
  ASSERT_EQ(series.columns[0].values.size(), series.num_samples());
  for (std::size_t i = 1; i < series.t_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(series.t_ms[i] - series.t_ms[i - 1], 100.0);
    EXPECT_GE(series.columns[0].values[i], series.columns[0].values[i - 1])
        << "cumulative gauge must be monotone";
  }
  // The sampler lapses with the queue; the simulation drained.
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(work_done, 100);
}

TEST(TimeSeries, EnsureRunningRearmsAcrossPhases) {
  sim::Simulator sim;
  stats::TimeSeriesSampler sampler{sim, sim::SimTime::millis(50)};
  sampler.add_gauge("x", [] { return 1.0; });
  // Phase 1.
  sim.schedule_at(sim::SimTime::millis(200), [] {});
  sampler.ensure_running();
  sim.run();
  const auto phase1 = sampler.series().num_samples();
  EXPECT_GE(phase1, 3u);
  // Phase 2 re-arms; more samples accumulate into the same series.
  sim.schedule_at(sim.now() + sim::SimTime::millis(200), [] {});
  sampler.ensure_running();
  sim.run();
  EXPECT_GT(sampler.series().num_samples(), phase1);
}

TEST(TimeSeries, TakeMovesDataAndKeepsSchema) {
  sim::Simulator sim;
  stats::TimeSeriesSampler sampler{sim, sim::SimTime::millis(10)};
  sampler.add_gauge("g", [] { return 4.0; });
  sampler.sample_now();
  auto taken = sampler.take();
  ASSERT_EQ(taken.num_samples(), 1u);
  EXPECT_DOUBLE_EQ(taken.columns[0].values[0], 4.0);
  EXPECT_EQ(sampler.series().num_samples(), 0u);
  ASSERT_EQ(sampler.series().columns.size(), 1u);
  EXPECT_EQ(sampler.series().columns[0].name, "g");

  const auto json = taken.to_json();
  ASSERT_NE(json.find("period_ms"), nullptr);
  ASSERT_NE(json.find("t_ms"), nullptr);
  const auto* cols = json.find("series");
  ASSERT_NE(cols, nullptr);
  ASSERT_NE(cols->find("g"), nullptr);
  EXPECT_EQ(cols->find("g")->items().size(), 1u);
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingIsBoundedAndOldestFirst) {
  stats::FlightRecorder flight{16};
  for (std::uint64_t i = 0; i < 100; ++i) {
    flight.record(sim::SimTime::micros(static_cast<std::int64_t>(i)), "ev", i);
  }
  EXPECT_EQ(flight.capacity(), 16u);
  EXPECT_EQ(flight.size(), 16u);
  EXPECT_EQ(flight.total_recorded(), 100u);
  const auto tail = flight.snapshot();
  ASSERT_EQ(tail.size(), 16u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].a, 84 + i) << "snapshot must be oldest-first";
  }
}

TEST(FlightRecorder, ZeroCapacityClampsToOne) {
  stats::FlightRecorder flight{0};
  EXPECT_EQ(flight.capacity(), 1u);
  flight.record(sim::SimTime{}, "a", 1);
  flight.record(sim::SimTime{}, "b", 2);
  const auto tail = flight.snapshot();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].b, 0u);
  EXPECT_EQ(tail[0].a, 2u);
}

TEST(FlightRecorder, DumpIsBoundedAndWellFormed) {
  stats::FlightRecorder flight{8};
  for (std::uint64_t i = 0; i < 40; ++i) {
    flight.record(sim::SimTime::millis(static_cast<std::int64_t>(i)),
                  "net:send", i, i + 1, 64);
  }
  std::ostringstream out;
  flight.dump(out, "lookup failure");
  const std::string text = out.str();
  EXPECT_NE(text.find("flight recorder: lookup failure"), std::string::npos);
  EXPECT_NE(text.find("last 8 of 40"), std::string::npos);
  EXPECT_NE(text.find("net:send"), std::string::npos);
  // Bounded: banner + 8 event lines + end banner.
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(lines, 10);
}

TEST(FlightRecorder, ToJsonMirrorsRingContents) {
  stats::FlightRecorder flight{4};
  for (std::uint64_t i = 0; i < 6; ++i) {
    flight.record(sim::SimTime::millis(static_cast<std::int64_t>(i)), "k", i);
  }
  const auto json = flight.to_json();
  EXPECT_EQ(json.find("capacity")->as_int(), 4);
  EXPECT_EQ(json.find("total_recorded")->as_int(), 6);
  const auto* events = json.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 4u);
  EXPECT_EQ(events->items().front().find("a")->as_int(), 2);
  EXPECT_EQ(events->items().back().find("a")->as_int(), 5);
}

TEST(FlightRecorder, TailsTheKernelTraceHook) {
  sim::Simulator sim;
  stats::FlightRecorder flight{32};
  sim.set_trace([&flight, &sim](const sim::TraceEvent& ev) {
    flight.record(sim.now(), "sim:event",
                  static_cast<std::uint64_t>(ev.kind), ev.seq);
  });
  for (std::int64_t i = 0; i < 200; ++i) {
    sim.schedule_at(sim::SimTime::micros(i), [] {});
  }
  sim.run();
  EXPECT_EQ(flight.size(), 32u);
  // 200 schedules + 200 fires went through the hook.
  EXPECT_EQ(flight.total_recorded(), 400u);
}

}  // namespace
}  // namespace hp2p
