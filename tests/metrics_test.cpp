// Tests for the observability layer: MetricsRegistry aggregation, JSON
// round-trips, and the BENCH_*.json schema emitted by bench::Reporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/json.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace hp2p::stats {
namespace {

TEST(MetricsRegistry, SetFindAndNumberOr) {
  MetricsRegistry reg;
  reg.set("net.messages", JsonValue{std::int64_t{42}});
  reg.set("net.loss_rate", JsonValue{0.25});
  reg.set("label", JsonValue{"hello"});
  ASSERT_NE(reg.find("net.messages"), nullptr);
  EXPECT_EQ(reg.find("net.messages")->as_int(), 42);
  EXPECT_DOUBLE_EQ(reg.number_or("net.loss_rate", -1.0), 0.25);
  EXPECT_DOUBLE_EQ(reg.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.number_or("label", -1.0), -1.0);  // non-numeric
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, AddAccumulates) {
  MetricsRegistry reg;
  reg.add("counter", std::uint64_t{3});
  reg.add("counter", std::uint64_t{4});
  EXPECT_DOUBLE_EQ(reg.number_or("counter", 0.0), 7.0);
  reg.add("ratio", 0.5);
  reg.add("ratio", 0.25);
  EXPECT_DOUBLE_EQ(reg.number_or("ratio", 0.0), 0.75);
}

TEST(MetricsRegistry, CollectSummary) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  MetricsRegistry reg;
  reg.collect_summary("latency", s);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.count", -1), 3.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.mean", -1), 2.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.min", -1), 1.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.max", -1), 3.0);
}

TEST(MetricsRegistry, ToJsonNestsDottedNames) {
  MetricsRegistry reg;
  reg.set("a.b.c", JsonValue{std::int64_t{1}});
  reg.set("a.b.d", JsonValue{std::int64_t{2}});
  reg.set("top", JsonValue{true});
  const JsonValue tree = reg.to_json();
  ASSERT_NE(tree.find_path("a.b.c"), nullptr);
  EXPECT_EQ(tree.find_path("a.b.c")->as_int(), 1);
  EXPECT_EQ(tree.find_path("a.b.d")->as_int(), 2);
  EXPECT_TRUE(tree.find_path("top")->as_bool());
}

TEST(MetricsRegistry, RoundTripPreservesIntDoubleDistinction) {
  MetricsRegistry reg;
  reg.set("count", JsonValue{std::int64_t{7}});
  reg.set("whole_double", JsonValue{7.0});
  reg.set("frac", JsonValue{0.125});
  reg.set("deep.nested.value", JsonValue{"x"});
  const MetricsRegistry back = MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
  EXPECT_TRUE(back.find("count")->is_int());
  EXPECT_TRUE(back.find("whole_double")->is_double());
}

TEST(MetricsRegistry, RoundTripSurvivesTextSerialization) {
  MetricsRegistry reg;
  reg.set("a.int", JsonValue{std::int64_t{123456789}});
  reg.set("a.dbl", JsonValue{0.1 + 0.2});
  reg.set("b", JsonValue{"text"});
  const auto parsed = JsonValue::parse(reg.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(MetricsRegistry::from_json(*parsed), reg);
}

TEST(MetricsRegistry, LeafAndPrefixCollisionRoundTrips) {
  MetricsRegistry reg;
  reg.set("a", JsonValue{std::int64_t{1}});
  reg.set("a.b", JsonValue{std::int64_t{2}});
  const MetricsRegistry back = MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
}

TEST(MetricsCollect, RunResultAggregatesAllCounterStructs) {
  exp::RunConfig cfg;
  cfg.seed = 9;
  cfg.num_peers = 40;
  cfg.num_items = 60;
  cfg.num_lookups = 60;
  cfg.hybrid.ps = 0.5;
  const auto r = exp::run_hybrid_experiment(cfg);

  MetricsRegistry reg;
  exp::collect_run_result(reg, "run", r);
  EXPECT_DOUBLE_EQ(reg.number_or("run.lookup.issued", -1),
                   static_cast<double>(r.lookups.issued));
  EXPECT_DOUBLE_EQ(reg.number_or("run.lookup.fast_failed", -1),
                   static_cast<double>(r.lookups.fast_failed));
  EXPECT_DOUBLE_EQ(reg.number_or("run.net.messages_sent", -1),
                   static_cast<double>(r.network.messages_sent));
  EXPECT_DOUBLE_EQ(reg.number_or("run.net.class.query.messages", -1),
                   static_cast<double>(r.network.class_messages(
                       proto::TrafficClass::kQuery)));
  EXPECT_DOUBLE_EQ(reg.number_or("run.sim.events_executed", -1),
                   static_cast<double>(r.sim_stats.events_executed));
  EXPECT_GT(reg.number_or("run.sim.events_executed", -1), 0.0);
  // Phase timings came along.
  EXPECT_GE(reg.number_or("run.phase.build.sim_ms", -1), 0.0);
  EXPECT_GE(reg.number_or("run.phase.lookup.wall_ms", -1), 0.0);
}

TEST(Reporter, JsonMatchesSchema) {
  bench::Scale scale{};
  scale.peers = 10;
  scale.items = 20;
  scale.lookups = 30;
  scale.replicas = 1;
  scale.seed = 7;
  bench::Reporter reporter{"selftest", scale};
  reporter.metrics().set("x.y", JsonValue{std::int64_t{5}});
  Table table{{"col_a", "col_b"}};
  table.row().cell(std::uint64_t{1}).cell(2.5, 1);
  reporter.add_table("demo", table);

  const JsonValue root = reporter.to_json();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find_path("schema_version")->as_int(),
            bench::Reporter::kSchemaVersion);
  EXPECT_EQ(root.find_path("bench")->as_string(), "selftest");
  EXPECT_EQ(root.find_path("seed")->as_int(), 7);
  EXPECT_EQ(root.find_path("config.peers")->as_int(), 10);
  EXPECT_EQ(root.find_path("config.lookups")->as_int(), 30);
  EXPECT_EQ(root.find_path("metrics.x.y")->as_int(), 5);

  const JsonValue* tables = root.find_path("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_TRUE(tables->is_array());
  ASSERT_EQ(tables->items().size(), 1u);
  const JsonValue& t = tables->items()[0];
  EXPECT_EQ(t.find_path("title")->as_string(), "demo");
  ASSERT_EQ(t.find_path("columns")->items().size(), 2u);
  EXPECT_EQ(t.find_path("columns")->items()[0].as_string(), "col_a");
  ASSERT_EQ(t.find_path("rows")->items().size(), 1u);
  EXPECT_EQ(t.find_path("rows")->items()[0].items().size(), 2u);
}

TEST(Reporter, WrittenFileParsesBack) {
  bench::Reporter reporter{"unit_selftest"};
  reporter.metrics().set("k", JsonValue{std::int64_t{1}});
  const std::string path = "BENCH_unit_selftest.json";
  ASSERT_TRUE(reporter.write(path));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto parsed = stats::JsonValue::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, reporter.to_json());
  std::remove(path.c_str());
}

TEST(MetricNum, ReplacesDecimalPoint) {
  EXPECT_EQ(bench::metric_num(0.4), "0p4");
  EXPECT_EQ(bench::metric_num(1.25, 2), "1p25");
  EXPECT_EQ(bench::metric_num(3.0), "3p0");
}

}  // namespace
}  // namespace hp2p::stats
