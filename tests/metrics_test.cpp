// Tests for the observability layer: MetricsRegistry aggregation, JSON
// round-trips, and the BENCH_*.json schema emitted by bench::Reporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "bench/bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/json.hpp"
#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "stats/trace.hpp"

namespace hp2p::stats {
namespace {

TEST(MetricsRegistry, SetFindAndNumberOr) {
  MetricsRegistry reg;
  reg.set("net.messages", JsonValue{std::int64_t{42}});
  reg.set("net.loss_rate", JsonValue{0.25});
  reg.set("label", JsonValue{"hello"});
  ASSERT_NE(reg.find("net.messages"), nullptr);
  EXPECT_EQ(reg.find("net.messages")->as_int(), 42);
  EXPECT_DOUBLE_EQ(reg.number_or("net.loss_rate", -1.0), 0.25);
  EXPECT_DOUBLE_EQ(reg.number_or("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(reg.number_or("label", -1.0), -1.0);  // non-numeric
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, AddAccumulates) {
  MetricsRegistry reg;
  reg.add("counter", std::uint64_t{3});
  reg.add("counter", std::uint64_t{4});
  EXPECT_DOUBLE_EQ(reg.number_or("counter", 0.0), 7.0);
  reg.add("ratio", 0.5);
  reg.add("ratio", 0.25);
  EXPECT_DOUBLE_EQ(reg.number_or("ratio", 0.0), 0.75);
}

TEST(MetricsRegistry, CollectSummary) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  MetricsRegistry reg;
  reg.collect_summary("latency", s);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.count", -1), 3.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.mean", -1), 2.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.min", -1), 1.0);
  EXPECT_DOUBLE_EQ(reg.number_or("latency.max", -1), 3.0);
}

TEST(MetricsRegistry, ToJsonNestsDottedNames) {
  MetricsRegistry reg;
  reg.set("a.b.c", JsonValue{std::int64_t{1}});
  reg.set("a.b.d", JsonValue{std::int64_t{2}});
  reg.set("top", JsonValue{true});
  const JsonValue tree = reg.to_json();
  ASSERT_NE(tree.find_path("a.b.c"), nullptr);
  EXPECT_EQ(tree.find_path("a.b.c")->as_int(), 1);
  EXPECT_EQ(tree.find_path("a.b.d")->as_int(), 2);
  EXPECT_TRUE(tree.find_path("top")->as_bool());
}

TEST(MetricsRegistry, RoundTripPreservesIntDoubleDistinction) {
  MetricsRegistry reg;
  reg.set("count", JsonValue{std::int64_t{7}});
  reg.set("whole_double", JsonValue{7.0});
  reg.set("frac", JsonValue{0.125});
  reg.set("deep.nested.value", JsonValue{"x"});
  const MetricsRegistry back = MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
  EXPECT_TRUE(back.find("count")->is_int());
  EXPECT_TRUE(back.find("whole_double")->is_double());
}

TEST(MetricsRegistry, RoundTripSurvivesTextSerialization) {
  MetricsRegistry reg;
  reg.set("a.int", JsonValue{std::int64_t{123456789}});
  reg.set("a.dbl", JsonValue{0.1 + 0.2});
  reg.set("b", JsonValue{"text"});
  const auto parsed = JsonValue::parse(reg.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(MetricsRegistry::from_json(*parsed), reg);
}

TEST(MetricsRegistry, LeafAndPrefixCollisionRoundTrips) {
  MetricsRegistry reg;
  reg.set("a", JsonValue{std::int64_t{1}});
  reg.set("a.b", JsonValue{std::int64_t{2}});
  const MetricsRegistry back = MetricsRegistry::from_json(reg.to_json());
  EXPECT_EQ(back, reg);
}

TEST(MetricsCollect, RunResultAggregatesAllCounterStructs) {
  exp::RunConfig cfg;
  cfg.seed = 9;
  cfg.num_peers = 40;
  cfg.num_items = 60;
  cfg.num_lookups = 60;
  cfg.hybrid.ps = 0.5;
  const auto r = exp::run_hybrid_experiment(cfg);

  MetricsRegistry reg;
  exp::collect_run_result(reg, "run", r);
  EXPECT_DOUBLE_EQ(reg.number_or("run.lookup.issued", -1),
                   static_cast<double>(r.lookups.issued));
  EXPECT_DOUBLE_EQ(reg.number_or("run.lookup.fast_failed", -1),
                   static_cast<double>(r.lookups.fast_failed));
  EXPECT_DOUBLE_EQ(reg.number_or("run.net.messages_sent", -1),
                   static_cast<double>(r.network.messages_sent));
  EXPECT_DOUBLE_EQ(reg.number_or("run.net.class.query.messages", -1),
                   static_cast<double>(r.network.class_messages(
                       proto::TrafficClass::kQuery)));
  EXPECT_DOUBLE_EQ(reg.number_or("run.sim.events_executed", -1),
                   static_cast<double>(r.sim_stats.events_executed));
  EXPECT_GT(reg.number_or("run.sim.events_executed", -1), 0.0);
  // Phase timings came along.
  EXPECT_GE(reg.number_or("run.phase.build.sim_ms", -1), 0.0);
  EXPECT_GE(reg.number_or("run.phase.lookup.wall_ms", -1), 0.0);
  // Per-reason drop counters are exported for all enumerated reasons.
  for (std::size_t i = 0; i < proto::kNumDropReasons; ++i) {
    const auto reason = static_cast<proto::DropReason>(i);
    const std::string key =
        std::string{"run.net.drop."} + proto::drop_reason_name(reason);
    EXPECT_DOUBLE_EQ(reg.number_or(key, -1),
                     static_cast<double>(r.network.reason_drops(reason)))
        << key;
  }
  // v3 replication namespace is always exported (counters zero at r = 1).
  EXPECT_DOUBLE_EQ(reg.number_or("run.replication.replica_pushes", -1), 0.0);
  EXPECT_DOUBLE_EQ(reg.number_or("run.replication.items_stored", -1),
                   static_cast<double>(r.items_stored));
  EXPECT_DOUBLE_EQ(reg.number_or("run.replication.data_availability", -1),
                   r.data_availability());
  EXPECT_GT(r.items_stored, 0u);
}

TEST(MetricsCollect, TracedRunExportsCriticalPathAndTimeseries) {
  SpanRecorder recorder;
  exp::RunConfig cfg;
  cfg.seed = 10;
  cfg.num_peers = 40;
  cfg.num_items = 60;
  cfg.num_lookups = 60;
  cfg.hybrid.ps = 0.5;
  cfg.tracer = &recorder;
  cfg.sample_period = sim::SimTime::millis(100);
  const auto r = exp::run_hybrid_experiment(cfg);

  // The tracer saw every lookup the harness issued.
  EXPECT_EQ(recorder.lookup_breakdowns().size(), r.lookups.issued);
  MetricsRegistry reg;
  recorder.collect_critical_path(reg, "trace.lookup_critical_path");
  EXPECT_DOUBLE_EQ(reg.number_or("trace.lookup_critical_path.lookups", -1),
                   static_cast<double>(r.lookups.issued));
  EXPECT_GE(reg.number_or("trace.lookup_critical_path.total_ms.p99", -1),
            reg.number_or("trace.lookup_critical_path.total_ms.p50", 0));

  // The sampler produced a time series covering the whole run.
  ASSERT_TRUE(r.timeseries.has_value());
  EXPECT_GT(r.timeseries->num_samples(), 1u);
  ASSERT_FALSE(r.timeseries->columns.empty());
  for (const auto& col : r.timeseries->columns) {
    EXPECT_EQ(col.values.size(), r.timeseries->num_samples()) << col.name;
  }
}

TEST(DropReasons, NamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < proto::kNumDropReasons; ++i) {
    names.insert(proto::drop_reason_name(static_cast<proto::DropReason>(i)));
  }
  EXPECT_EQ(names.size(), proto::kNumDropReasons);
  EXPECT_EQ(std::string{proto::drop_reason_name(proto::DropReason::kLoss)},
            "loss");
  EXPECT_EQ(std::string{proto::drop_reason_name(
                proto::DropReason::kTtlExhausted)},
            "ttl_exhausted");
}

TEST(Reporter, JsonMatchesSchema) {
  bench::Scale scale{};
  scale.peers = 10;
  scale.items = 20;
  scale.lookups = 30;
  scale.replicas = 1;
  scale.seed = 7;
  bench::Reporter reporter{"selftest", scale};
  reporter.metrics().set("x.y", JsonValue{std::int64_t{5}});
  Table table{{"col_a", "col_b"}};
  table.row().cell(std::uint64_t{1}).cell(2.5, 1);
  reporter.add_table("demo", table);

  const JsonValue root = reporter.to_json();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find_path("schema_version")->as_int(),
            bench::Reporter::kSchemaVersion);
  EXPECT_EQ(bench::Reporter::kSchemaVersion, 5);
  EXPECT_EQ(root.find_path("bench")->as_string(), "selftest");

  // v4: run provenance is always present.
  EXPECT_GT(root.find_path("run_info.wall_unix_s")->as_int(), 0);
  EXPECT_FALSE(root.find_path("run_info.git_describe")->as_string().empty());
  ASSERT_NE(root.find_path("run_info.host_threads"), nullptr);
  EXPECT_EQ(root.find_path("run_info.peers")->as_int(), 10);
  EXPECT_EQ(root.find_path("seed")->as_int(), 7);
  EXPECT_EQ(root.find_path("config.peers")->as_int(), 10);
  EXPECT_EQ(root.find_path("config.lookups")->as_int(), 30);
  EXPECT_EQ(root.find_path("metrics.x.y")->as_int(), 5);

  const JsonValue* tables = root.find_path("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_TRUE(tables->is_array());
  ASSERT_EQ(tables->items().size(), 1u);
  const JsonValue& t = tables->items()[0];
  EXPECT_EQ(t.find_path("title")->as_string(), "demo");
  ASSERT_EQ(t.find_path("columns")->items().size(), 2u);
  EXPECT_EQ(t.find_path("columns")->items()[0].as_string(), "col_a");
  ASSERT_EQ(t.find_path("rows")->items().size(), 1u);
  EXPECT_EQ(t.find_path("rows")->items()[0].items().size(), 2u);

  // v2: the timeseries array is always present, empty when nothing sampled.
  const JsonValue* timeseries = root.find_path("timeseries");
  ASSERT_NE(timeseries, nullptr);
  ASSERT_TRUE(timeseries->is_array());
  EXPECT_TRUE(timeseries->items().empty());

  // v5: the scenarios array is always present, empty when no scenario runs
  // were attached.
  const JsonValue* scenarios = root.find_path("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  EXPECT_TRUE(scenarios->items().empty());
}

TEST(Reporter, TimeseriesBlockEmbedsInReport) {
  bench::Reporter reporter{"ts_selftest"};
  TimeSeries ts;
  ts.name = "gauges";
  ts.period_ms = 250.0;
  ts.t_ms = {0.0, 250.0};
  ts.columns.push_back(TimeSeriesColumn{"live_peers", {10.0, 12.0}});
  reporter.add_timeseries(ts);

  const JsonValue root = reporter.to_json();
  const JsonValue* blocks = root.find_path("timeseries");
  ASSERT_NE(blocks, nullptr);
  ASSERT_EQ(blocks->items().size(), 1u);
  const JsonValue& block = blocks->items()[0];
  EXPECT_EQ(block.find_path("name")->as_string(), "gauges");
  EXPECT_DOUBLE_EQ(block.find_path("period_ms")->as_double(), 250.0);
  ASSERT_EQ(block.find_path("t_ms")->items().size(), 2u);
  const JsonValue* col = block.find_path("series.live_peers");
  ASSERT_NE(col, nullptr);
  ASSERT_EQ(col->items().size(), 2u);
  EXPECT_DOUBLE_EQ(col->items()[1].as_double(), 12.0);
}

TEST(Reporter, WrittenFileParsesBack) {
  bench::Reporter reporter{"unit_selftest"};
  reporter.metrics().set("k", JsonValue{std::int64_t{1}});
  const std::string path = "BENCH_unit_selftest.json";
  ASSERT_TRUE(reporter.write(path));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const auto parsed = stats::JsonValue::parse(buf.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, reporter.to_json());
  // The write was atomic: no temp file may linger next to the report.
  std::ifstream tmp{path + ".tmp"};
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
  std::remove(path.c_str());
}

TEST(MetricNum, ReplacesDecimalPoint) {
  EXPECT_EQ(bench::metric_num(0.4), "0p4");
  EXPECT_EQ(bench::metric_num(1.25, 2), "1p25");
  EXPECT_EQ(bench::metric_num(3.0), "3p0");
}

}  // namespace
}  // namespace hp2p::stats
