// Scenario-runner guard-rails (ctest label: workload -- excluded from the
// quick tier alongside chaos/soak/durability/scale/explore).
//
// 1. Dormancy: this binary links hp2p_scenario, and the stock N=1,000
//    paper-scale run must still produce the digest pinned in scale_test --
//    merely linking the workload/scenario layer must not perturb a run
//    that does not use it.
// 2. Tracker failover: the content swarm completes with zero MUST failures
//    and zero integrity mismatches while the chaos schedule crashes the
//    tracker t-peers mid-download; the reannounce-disabled canary proves
//    the oracle (not luck) is holding that bar, and the shrinker reduces
//    the canary's failing schedule to a one-line reproducer.
// 3. Hot-key storm: under rotating-hot-key churn the Section 7 cache keeps
//    the hottest peer's load bounded; with the cache off the same storm
//    must melt the holder (the DisablingCacheIsCaught-style canary).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "chaos/shrinker.hpp"
#include "exp/harness.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/metrics.hpp"
#include "workload/scenario_runner.hpp"

namespace hp2p::workload {
namespace {

/// Same filtering as scale_test / repro_test: every exported metric except
/// host wall times, flattened to "key=value" lines.
std::string filtered_dump(const exp::RunConfig& cfg,
                          const exp::RunResult& result) {
  stats::MetricsRegistry reg;
  exp::collect_run_config(reg, "config", cfg);
  exp::collect_run_result(reg, "run", result);
  const std::string_view kWall = ".wall_ms";
  std::string out;
  for (const auto& [key, value] : reg.entries()) {
    if (key.size() >= kWall.size() &&
        key.compare(key.size() - kWall.size(), kWall.size(), kWall) == 0) {
      continue;
    }
    out += key;
    out += '=';
    out += value.dump();
    out += '\n';
  }
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

TEST(ScenarioDormancy, PaperScaleDigestUnchangedWithScenarioLayerLinked) {
  // Touch the scenario layer so the linker cannot discard it, but run the
  // stock experiment without it.
  const ScenarioConfig unused = diurnal_scenario(1);
  ASSERT_NE(unused.workload, nullptr);

  exp::RunConfig cfg;
  cfg.seed = 42;
  const std::string dump = filtered_dump(cfg, exp::run_hybrid_experiment(cfg));
  // Must match scale_test's PaperScaleDigestIsPinned constant: the workload
  // subsystem is dormant unless a scenario actually runs.
  const std::uint64_t kPinned = 0x658944b218f7f980ull;
  EXPECT_EQ(fnv1a(dump), kPinned)
      << "linking hp2p_scenario changed the stock N=1,000 run (digest 0x"
      << std::hex << fnv1a(dump) << std::dec << ")";
}

TEST(ScenarioSwarm, CompletesThroughTrackerCrashWithZeroMustFailures) {
  const auto report = run_scenario(swarm_scenario(3));
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_GE(report.crashes, 1u) << "the tracker crash storm never fired";
  EXPECT_GT(report.lookups_issued, 0u);
  EXPECT_EQ(report.value_mismatches, 0u);
  EXPECT_EQ(report.must_failed, 0u);
  EXPECT_EQ(report.wave_must_failed, 0u);
  EXPECT_TRUE(report.ring_ok);
  EXPECT_TRUE(report.trees_ok);
  // The swarm actually downloads: every leecher x piece lookup succeeds
  // against its FNV-1a piece hash or the run is not clean above.
  EXPECT_GT(report.availability, 0.99);
}

TEST(ScenarioSwarm, DisablingTrackerReannounceIsCaughtAndShrinks) {
  // Canary: with index-rebuild failover off, the same tracker crash leaves
  // pieces unreachable (failed lookups), proving the clean pass above is
  // earned by the reannounce path.
  const auto failing_config = [](const chaos::FaultSchedule& schedule) {
    auto cfg = swarm_scenario(3);
    cfg.params.tracker_reannounce = false;
    cfg.schedule = schedule;
    return cfg;
  };
  const chaos::FaultSchedule original = swarm_scenario(3).schedule;
  const auto fails = [&](const chaos::FaultSchedule& schedule) {
    return run_scenario(failing_config(schedule)).lookups_failed > 0;
  };
  ASSERT_TRUE(fails(original))
      << "tracker_reannounce=false no longer degrades the swarm; the "
         "failover path is not being exercised";

  // The failing schedule shrinks to a minimal reproducer that replays
  // byte-identically from its one-line form.
  const auto shrunk = chaos::shrink_schedule(
      original, [&](const chaos::FaultSchedule& s) { return fails(s); });
  ASSERT_GE(shrunk.phases.size(), 1u);
  EXPECT_TRUE(fails(shrunk));
  const auto line = shrunk.one_line();
  const auto blob = line.substr(line.find("schedule=") + 9);
  const auto parsed = stats::JsonValue::parse(blob);
  ASSERT_TRUE(parsed.has_value());
  const auto replayed = chaos::FaultSchedule::from_json(*parsed);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(*replayed, shrunk);
  EXPECT_TRUE(fails(*replayed));
}

TEST(ScenarioHotKey, CacheBoundsMaxPeerLoadUnderKeyChurn) {
  const auto cached = run_scenario(hot_key_storm_scenario(5, true));
  EXPECT_TRUE(cached.clean()) << cached.to_json().dump(2);
  EXPECT_GT(cached.lookups_issued, 0u);
  EXPECT_GT(cached.cache_hits, 0u);
  // The rotating hot key never melts one holder: the cache spreads each
  // rotation across surrogates (the ablation's 520 -> 38 claim, now under
  // key churn and a crash storm).
  EXPECT_LT(cached.max_peer_load, 100u) << cached.to_json().dump(2);

  // DisablingCacheIsCaught-style canary: the identical storm with the cache
  // off must melt the hottest holder, or the bound above is vacuous.
  const auto uncached = run_scenario(hot_key_storm_scenario(5, false));
  EXPECT_GT(uncached.max_peer_load, 4 * cached.max_peer_load)
      << "cache off no longer concentrates load; the cached bound asserts "
         "nothing";
}

TEST(ScenarioFlashCrowd, CrowdJoinsAbsorbedCleanly) {
  const auto report = run_scenario(flash_crowd_scenario(7));
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_EQ(report.joins, FlashCrowdWorkload{}.burst_joins);
  EXPECT_GT(report.lookups_issued, 0u);
  EXPECT_GT(report.availability, 0.95);
}

TEST(ScenarioDiurnal, FullDayCurveSurvivesCrashStorm) {
  const auto report = run_scenario(diurnal_scenario(11));
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_GE(report.crashes, 1u);
  EXPECT_GT(report.joins, 0u);
  EXPECT_GT(report.leaves, 0u);
  EXPECT_GT(report.stores, 0u);
  EXPECT_GT(report.availability, 0.8);
}

TEST(ScenarioComposition, ChaosUnderCompositeWorkloadStaysClean) {
  // The combinator stacks two scenarios into one stream; the oracle bar is
  // unchanged.
  auto cfg = diurnal_scenario(13);
  cfg.workload = compose(std::make_shared<DiurnalWorkload>(),
                         std::make_shared<FlashCrowdWorkload>());
  const auto report = run_scenario(cfg);
  EXPECT_TRUE(report.clean()) << report.to_json().dump(2);
  EXPECT_GT(report.lookups_issued, 0u);
  EXPECT_GT(report.joins, 0u);
}

}  // namespace
}  // namespace hp2p::workload
