// Unit tests for the underlay: graph, transit-stub generation, routing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/graph.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"

namespace hp2p::net {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g{3};
  EXPECT_EQ(g.num_nodes(), 3u);
  const EdgeIndex e = g.add_edge(0, 1, 100);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_latency_us(e), 100u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSymmetric) {
  Graph g{2};
  g.add_edge(0, 1, 7);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0u);
  EXPECT_EQ(g.neighbors(0)[0].edge, g.neighbors(1)[0].edge);
}

TEST(Graph, Connectivity) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3, 1);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, EmptyGraphConnected) {
  Graph g{0};
  EXPECT_TRUE(g.connected());
  Graph one{1};
  EXPECT_TRUE(one.connected());
}

TEST(TransitStub, TotalNodesFormula) {
  TransitStubParams p;
  EXPECT_EQ(p.total_nodes(),
            p.transit_domains * p.transit_nodes_per_domain *
                (1 + p.stub_domains_per_transit_node * p.stub_nodes_per_domain));
}

TEST(TransitStub, ForTotalNodesReachesTarget) {
  for (std::uint32_t n : {100u, 500u, 1000u, 2000u}) {
    const auto p = TransitStubParams::for_total_nodes(n);
    EXPECT_GE(p.total_nodes(), n);
    EXPECT_LE(p.total_nodes(), n + 48u);  // at most one extra per stub domain
  }
}

TEST(TransitStub, GeneratesConnectedTopology) {
  Rng rng{11};
  const auto p = TransitStubParams::for_total_nodes(300);
  const Topology topo = generate_transit_stub(p, rng);
  EXPECT_TRUE(topo.graph.connected());
  EXPECT_EQ(topo.graph.num_nodes(), p.total_nodes());
  EXPECT_EQ(topo.num_transit_nodes,
            p.transit_domains * p.transit_nodes_per_domain);
}

TEST(TransitStub, RolesAssigned) {
  Rng rng{12};
  const auto p = TransitStubParams::for_total_nodes(200);
  const Topology topo = generate_transit_stub(p, rng);
  std::uint32_t transit = 0;
  for (auto r : topo.role) transit += (r == NodeRole::kTransit);
  EXPECT_EQ(transit, topo.num_transit_nodes);
  // Transit nodes come first.
  for (std::uint32_t i = 0; i < topo.num_transit_nodes; ++i) {
    EXPECT_EQ(topo.role[i], NodeRole::kTransit);
  }
}

TEST(TransitStub, DeterministicForSeed) {
  const auto p = TransitStubParams::for_total_nodes(150);
  Rng r1{77};
  Rng r2{77};
  const Topology a = generate_transit_stub(p, r1);
  const Topology b = generate_transit_stub(p, r2);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (std::size_t e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_latency_us(static_cast<EdgeIndex>(e)),
              b.graph.edge_latency_us(static_cast<EdgeIndex>(e)));
  }
}

class UnderlayTest : public ::testing::Test {
 protected:
  UnderlayTest() : rng_(21) {
    auto p = TransitStubParams::for_total_nodes(200);
    underlay_.emplace(generate_transit_stub(p, rng_), rng_);
  }
  Rng rng_;
  std::optional<Underlay> underlay_;
};

TEST_F(UnderlayTest, SelfLatencyZero) {
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); i += 17) {
    EXPECT_EQ(underlay_->latency(HostIndex{i}, HostIndex{i}),
              sim::SimTime{});
  }
}

TEST_F(UnderlayTest, LatencySymmetricForUndirectedGraph) {
  for (std::uint32_t i = 0; i < 20; ++i) {
    const HostIndex a{i};
    const HostIndex b{underlay_->num_hosts() - 1 - i};
    EXPECT_EQ(underlay_->latency(a, b), underlay_->latency(b, a));
  }
}

TEST_F(UnderlayTest, TriangleInequality) {
  // Shortest paths must satisfy d(a,c) <= d(a,b) + d(b,c).
  Rng rng{5};
  for (int trial = 0; trial < 200; ++trial) {
    const HostIndex a{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex b{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex c{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    EXPECT_LE(underlay_->latency(a, c).as_micros(),
              underlay_->latency(a, b).as_micros() +
                  underlay_->latency(b, c).as_micros());
  }
}

TEST_F(UnderlayTest, PathEdgeLatenciesSumToShortestPath) {
  Rng rng{6};
  const auto& g = underlay_->topology().graph;
  for (int trial = 0; trial < 100; ++trial) {
    const HostIndex a{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex b{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    std::int64_t sum = 0;
    std::uint32_t edges = 0;
    underlay_->for_each_path_edge(a, b, [&](EdgeIndex e) {
      sum += g.edge_latency_us(e);
      ++edges;
    });
    EXPECT_EQ(sum, underlay_->latency(a, b).as_micros());
    EXPECT_EQ(edges, underlay_->path_hops(a, b));
  }
}

TEST_F(UnderlayTest, CapacityClassesDealtInThirds) {
  std::size_t counts[3] = {};
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); ++i) {
    ++counts[static_cast<std::size_t>(underlay_->capacity(HostIndex{i}))];
  }
  const auto n = underlay_->num_hosts();
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 3.0, 2.0);
  }
}

TEST_F(UnderlayTest, TransmissionDelayUsesBottleneck) {
  // Find one low-capacity and one high-capacity host.
  HostIndex low = kNoHost;
  HostIndex high = kNoHost;
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); ++i) {
    if (underlay_->capacity(HostIndex{i}) == CapacityClass::kLow)
      low = HostIndex{i};
    if (underlay_->capacity(HostIndex{i}) == CapacityClass::kHigh)
      high = HostIndex{i};
  }
  ASSERT_NE(low, kNoHost);
  ASSERT_NE(high, kNoHost);
  const auto slow = underlay_->transmission_delay(low, high, 1000);
  const auto fast = underlay_->transmission_delay(high, high, 1000);
  // Bottleneck is the low side: 10x slower.
  EXPECT_NEAR(static_cast<double>(slow.as_micros()),
              10.0 * static_cast<double>(fast.as_micros()),
              static_cast<double>(fast.as_micros()) * 0.01 + 2);
}

TEST_F(UnderlayTest, CapacityRatioIsTen) {
  EXPECT_DOUBLE_EQ(capacity_bps(CapacityClass::kHigh) /
                       capacity_bps(CapacityClass::kLow),
                   10.0);
}

TEST_F(UnderlayTest, DistancesToLandmarks) {
  const std::vector<HostIndex> landmarks{HostIndex{0}, HostIndex{5}};
  const auto d = underlay_->distances_to(HostIndex{10}, landmarks);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], underlay_->latency(HostIndex{10}, HostIndex{0}));
  EXPECT_EQ(d[1], underlay_->latency(HostIndex{10}, HostIndex{5}));
}

TEST(LinkStress, Counters) {
  LinkStress ls{4};
  ls.bump(0);
  ls.bump(0);
  ls.bump(3);
  EXPECT_EQ(ls.count(0), 2u);
  EXPECT_EQ(ls.count(1), 0u);
  EXPECT_EQ(ls.max_stress(), 2u);
  EXPECT_EQ(ls.total_copies(), 3u);
  EXPECT_DOUBLE_EQ(ls.mean_stress(), 0.75);
}

TEST(LinkStress, SparseAgreesWithDense) {
  // The sparse (hash-map) counters must report exactly what the dense
  // per-edge vector reports, including the mean's full-edge-count
  // denominator.
  constexpr std::size_t kEdges = 64;
  LinkStress dense{kEdges, LinkStress::Mode::kDense};
  LinkStress sparse{kEdges, LinkStress::Mode::kSparse};
  ASSERT_FALSE(dense.sparse());
  ASSERT_TRUE(sparse.sparse());
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const auto e = static_cast<EdgeIndex>(rng.index(kEdges));
    dense.bump(e);
    sparse.bump(e);
  }
  for (std::uint32_t e = 0; e < kEdges; ++e) {
    EXPECT_EQ(sparse.count(e), dense.count(e)) << "edge " << e;
  }
  EXPECT_EQ(sparse.max_stress(), dense.max_stress());
  EXPECT_EQ(sparse.total_copies(), dense.total_copies());
  EXPECT_DOUBLE_EQ(sparse.mean_stress(), dense.mean_stress());
}

TEST(TransitStub, ForTotalNodesKeepsHistoricalShapeAtPaperScale) {
  // Up to 48*64+16 nodes the parameters must be exactly what the original
  // formula produced -- the paper-figure topologies (and their RNG streams)
  // depend on it.
  for (std::uint32_t n : {100u, 1001u, 2000u, 3088u}) {
    const auto p = TransitStubParams::for_total_nodes(n);
    EXPECT_EQ(p.transit_domains, 4u);
    EXPECT_EQ(p.transit_nodes_per_domain, 4u);
    EXPECT_EQ(p.stub_domains_per_transit_node, 3u);
    EXPECT_EQ(p.stub_nodes_per_domain,
              std::max(1u, (n - 16u + 47u) / 48u));
    EXPECT_GE(p.total_nodes(), n);
  }
}

TEST(TransitStub, ForTotalNodesGrowsTransitSkeletonAtScale) {
  // Past the paper-scale knee the stub size pins and the transit skeleton
  // widens, so stub domains (and intra-domain query cost) stay bounded.
  for (std::uint32_t n : {10'000u, 50'000u, 100'000u}) {
    const auto p = TransitStubParams::for_total_nodes(n);
    EXPECT_EQ(p.stub_nodes_per_domain,
              TransitStubParams::kMaxStubNodesPerDomain);
    EXPECT_GE(p.total_nodes(), n);
    EXPECT_LE(p.total_nodes(), n + 772u);  // at most one extra transit domain
    const std::uint32_t transit =
        p.transit_domains * p.transit_nodes_per_domain;
    EXPECT_LT(transit, p.total_nodes() / 100);  // core stays a sliver
  }
}

TEST(HierarchicalRouting, LatenciesMatchDenseExactly) {
  // The transit-stub decomposition is exact (single gateway edge per stub
  // domain), so on-demand answers must equal the all-pairs Dijkstra table
  // bit-for-bit -- every pair, not a sample.
  Rng topo_rng{41};
  const auto p = TransitStubParams::for_total_nodes(300);
  const Topology topo = generate_transit_stub(p, topo_rng);
  Rng cap_a{7};
  Rng cap_b{7};
  const Underlay dense{topo, cap_a, RoutingMode::kDense};
  const Underlay hier{topo, cap_b, RoutingMode::kHierarchical};
  ASSERT_EQ(dense.routing_mode(), RoutingMode::kDense);
  ASSERT_EQ(hier.routing_mode(), RoutingMode::kHierarchical);
  const std::uint32_t n = dense.num_hosts();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      ASSERT_EQ(dense.latency(HostIndex{a}, HostIndex{b}),
                hier.latency(HostIndex{a}, HostIndex{b}))
          << "pair (" << a << ", " << b << ")";
    }
  }
  // Capacity dealing consumed the same RNG stream in both modes.
  for (std::uint32_t h = 0; h < n; ++h) {
    EXPECT_EQ(dense.capacity(HostIndex{h}), hier.capacity(HostIndex{h}));
  }
}

TEST(HierarchicalRouting, PathWalksAreSelfConsistent) {
  // Edge walks must sum to the reported latency and count the reported
  // hops, for intra-domain, cross-domain, and transit-anchored pairs alike.
  Rng topo_rng{43};
  const auto p = TransitStubParams::for_total_nodes(400);
  Rng cap{3};
  const Underlay u{generate_transit_stub(p, topo_rng), cap,
                   RoutingMode::kHierarchical};
  ASSERT_EQ(u.routing_mode(), RoutingMode::kHierarchical);
  const auto& g = u.topology().graph;
  Rng pair_rng{6};
  auto check_pair = [&](HostIndex a, HostIndex b) {
    std::int64_t sum = 0;
    std::uint32_t edges = 0;
    u.for_each_path_edge(a, b, [&](EdgeIndex e) {
      sum += g.edge_latency_us(e);
      ++edges;
    });
    EXPECT_EQ(sum, u.latency(a, b).as_micros())
        << "pair (" << a.value() << ", " << b.value() << ")";
    EXPECT_EQ(edges, u.path_hops(a, b));
    EXPECT_EQ(u.latency(a, b), u.latency(b, a));
  };
  for (int trial = 0; trial < 300; ++trial) {
    check_pair(HostIndex{static_cast<std::uint32_t>(pair_rng.index(u.num_hosts()))},
               HostIndex{static_cast<std::uint32_t>(pair_rng.index(u.num_hosts()))});
  }
  // Same-stub-domain pairs specifically (consecutive ids past the transit
  // block usually share a domain).
  const std::uint32_t base = u.topology().num_transit_nodes;
  for (std::uint32_t i = base; i + 1 < u.num_hosts(); i += 7) {
    check_pair(HostIndex{i}, HostIndex{i + 1});
  }
  // Transit-to-transit and transit-to-stub pairs.
  for (std::uint32_t t = 0; t < base; ++t) {
    check_pair(HostIndex{t}, HostIndex{(t * 31) % base});
    check_pair(HostIndex{t}, HostIndex{base + (t * 53) % (u.num_hosts() - base)});
  }
}

TEST(HierarchicalRouting, RoutingMemoryIsLinearNotQuadratic) {
  Rng topo_rng{47};
  const auto p = TransitStubParams::for_total_nodes(2000);
  const Topology topo = generate_transit_stub(p, topo_rng);
  Rng cap_a{5};
  Rng cap_b{5};
  const Underlay dense{topo, cap_a, RoutingMode::kDense};
  const Underlay hier{topo, cap_b, RoutingMode::kHierarchical};
  const std::size_t v = dense.num_hosts();
  // Dense holds three V*V tables; hierarchical holds O(V) per-node state
  // plus the tiny transit-core tables.
  EXPECT_GE(dense.routing_memory_bytes(), v * v * 12);
  EXPECT_LT(hier.routing_memory_bytes(), v * 64 + 16u * 1024u);
  EXPECT_LT(hier.routing_memory_bytes() * 20,
            dense.routing_memory_bytes());
}

TEST(HierarchicalRouting, FallsBackToDenseOnUnstructuredTopology) {
  // A topology without the single-gateway transit-stub shape cannot use the
  // decomposition; the Underlay must quietly route densely instead.
  Topology topo;
  topo.graph = Graph{4};
  topo.graph.add_edge(0, 1, 10);
  topo.graph.add_edge(1, 2, 10);
  topo.graph.add_edge(2, 3, 10);
  topo.graph.add_edge(3, 0, 10);
  topo.role.assign(4, NodeRole::kStub);
  topo.domain.assign(4, 0);
  topo.num_transit_nodes = 0;
  Rng cap{1};
  const Underlay u{std::move(topo), cap, RoutingMode::kHierarchical};
  EXPECT_EQ(u.routing_mode(), RoutingMode::kDense);
  EXPECT_EQ(u.latency(HostIndex{0}, HostIndex{2}).as_micros(), 20);
}

TEST(LinkStress, IntraStubFasterThanInterTransit) {
  // Structural sanity of the latency classes: two hosts in the same stub
  // domain should typically be closer than hosts in different transit
  // domains.
  Rng rng{31};
  auto p = TransitStubParams::for_total_nodes(400);
  Topology topo = generate_transit_stub(p, rng);
  const std::vector<std::uint32_t> domain = topo.domain;  // copy before move
  Underlay u{std::move(topo), rng};
  // Hosts in the same stub domain (stub indices start after transit nodes).
  const std::uint32_t base = u.topology().num_transit_nodes;
  std::int64_t same = 0;
  std::int64_t diff = 0;
  int same_n = 0;
  int diff_n = 0;
  for (std::uint32_t i = base; i < u.num_hosts() - 1; i += 13) {
    for (std::uint32_t j = i + 1; j < u.num_hosts(); j += 29) {
      const auto l = u.latency(HostIndex{i}, HostIndex{j}).as_micros();
      if (domain[i] == domain[j]) {
        same += l;
        ++same_n;
      } else {
        diff += l;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same / same_n, diff / diff_n);
}

}  // namespace
}  // namespace hp2p::net
