// Unit tests for the underlay: graph, transit-stub generation, routing.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/graph.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"

namespace hp2p::net {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g{3};
  EXPECT_EQ(g.num_nodes(), 3u);
  const EdgeIndex e = g.add_edge(0, 1, 100);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_latency_us(e), 100u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSymmetric) {
  Graph g{2};
  g.add_edge(0, 1, 7);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(1)[0].to, 0u);
  EXPECT_EQ(g.neighbors(0)[0].edge, g.neighbors(1)[0].edge);
}

TEST(Graph, Connectivity) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3, 1);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, EmptyGraphConnected) {
  Graph g{0};
  EXPECT_TRUE(g.connected());
  Graph one{1};
  EXPECT_TRUE(one.connected());
}

TEST(TransitStub, TotalNodesFormula) {
  TransitStubParams p;
  EXPECT_EQ(p.total_nodes(),
            p.transit_domains * p.transit_nodes_per_domain *
                (1 + p.stub_domains_per_transit_node * p.stub_nodes_per_domain));
}

TEST(TransitStub, ForTotalNodesReachesTarget) {
  for (std::uint32_t n : {100u, 500u, 1000u, 2000u}) {
    const auto p = TransitStubParams::for_total_nodes(n);
    EXPECT_GE(p.total_nodes(), n);
    EXPECT_LE(p.total_nodes(), n + 48u);  // at most one extra per stub domain
  }
}

TEST(TransitStub, GeneratesConnectedTopology) {
  Rng rng{11};
  const auto p = TransitStubParams::for_total_nodes(300);
  const Topology topo = generate_transit_stub(p, rng);
  EXPECT_TRUE(topo.graph.connected());
  EXPECT_EQ(topo.graph.num_nodes(), p.total_nodes());
  EXPECT_EQ(topo.num_transit_nodes,
            p.transit_domains * p.transit_nodes_per_domain);
}

TEST(TransitStub, RolesAssigned) {
  Rng rng{12};
  const auto p = TransitStubParams::for_total_nodes(200);
  const Topology topo = generate_transit_stub(p, rng);
  std::uint32_t transit = 0;
  for (auto r : topo.role) transit += (r == NodeRole::kTransit);
  EXPECT_EQ(transit, topo.num_transit_nodes);
  // Transit nodes come first.
  for (std::uint32_t i = 0; i < topo.num_transit_nodes; ++i) {
    EXPECT_EQ(topo.role[i], NodeRole::kTransit);
  }
}

TEST(TransitStub, DeterministicForSeed) {
  const auto p = TransitStubParams::for_total_nodes(150);
  Rng r1{77};
  Rng r2{77};
  const Topology a = generate_transit_stub(p, r1);
  const Topology b = generate_transit_stub(p, r2);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (std::size_t e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge_latency_us(static_cast<EdgeIndex>(e)),
              b.graph.edge_latency_us(static_cast<EdgeIndex>(e)));
  }
}

class UnderlayTest : public ::testing::Test {
 protected:
  UnderlayTest() : rng_(21) {
    auto p = TransitStubParams::for_total_nodes(200);
    underlay_.emplace(generate_transit_stub(p, rng_), rng_);
  }
  Rng rng_;
  std::optional<Underlay> underlay_;
};

TEST_F(UnderlayTest, SelfLatencyZero) {
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); i += 17) {
    EXPECT_EQ(underlay_->latency(HostIndex{i}, HostIndex{i}),
              sim::SimTime{});
  }
}

TEST_F(UnderlayTest, LatencySymmetricForUndirectedGraph) {
  for (std::uint32_t i = 0; i < 20; ++i) {
    const HostIndex a{i};
    const HostIndex b{underlay_->num_hosts() - 1 - i};
    EXPECT_EQ(underlay_->latency(a, b), underlay_->latency(b, a));
  }
}

TEST_F(UnderlayTest, TriangleInequality) {
  // Shortest paths must satisfy d(a,c) <= d(a,b) + d(b,c).
  Rng rng{5};
  for (int trial = 0; trial < 200; ++trial) {
    const HostIndex a{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex b{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex c{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    EXPECT_LE(underlay_->latency(a, c).as_micros(),
              underlay_->latency(a, b).as_micros() +
                  underlay_->latency(b, c).as_micros());
  }
}

TEST_F(UnderlayTest, PathEdgeLatenciesSumToShortestPath) {
  Rng rng{6};
  const auto& g = underlay_->topology().graph;
  for (int trial = 0; trial < 100; ++trial) {
    const HostIndex a{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    const HostIndex b{static_cast<std::uint32_t>(rng.index(underlay_->num_hosts()))};
    std::int64_t sum = 0;
    std::uint32_t edges = 0;
    underlay_->for_each_path_edge(a, b, [&](EdgeIndex e) {
      sum += g.edge_latency_us(e);
      ++edges;
    });
    EXPECT_EQ(sum, underlay_->latency(a, b).as_micros());
    EXPECT_EQ(edges, underlay_->path_hops(a, b));
  }
}

TEST_F(UnderlayTest, CapacityClassesDealtInThirds) {
  std::size_t counts[3] = {};
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); ++i) {
    ++counts[static_cast<std::size_t>(underlay_->capacity(HostIndex{i}))];
  }
  const auto n = underlay_->num_hosts();
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 3.0, 2.0);
  }
}

TEST_F(UnderlayTest, TransmissionDelayUsesBottleneck) {
  // Find one low-capacity and one high-capacity host.
  HostIndex low = kNoHost;
  HostIndex high = kNoHost;
  for (std::uint32_t i = 0; i < underlay_->num_hosts(); ++i) {
    if (underlay_->capacity(HostIndex{i}) == CapacityClass::kLow)
      low = HostIndex{i};
    if (underlay_->capacity(HostIndex{i}) == CapacityClass::kHigh)
      high = HostIndex{i};
  }
  ASSERT_NE(low, kNoHost);
  ASSERT_NE(high, kNoHost);
  const auto slow = underlay_->transmission_delay(low, high, 1000);
  const auto fast = underlay_->transmission_delay(high, high, 1000);
  // Bottleneck is the low side: 10x slower.
  EXPECT_NEAR(static_cast<double>(slow.as_micros()),
              10.0 * static_cast<double>(fast.as_micros()),
              static_cast<double>(fast.as_micros()) * 0.01 + 2);
}

TEST_F(UnderlayTest, CapacityRatioIsTen) {
  EXPECT_DOUBLE_EQ(capacity_bps(CapacityClass::kHigh) /
                       capacity_bps(CapacityClass::kLow),
                   10.0);
}

TEST_F(UnderlayTest, DistancesToLandmarks) {
  const std::vector<HostIndex> landmarks{HostIndex{0}, HostIndex{5}};
  const auto d = underlay_->distances_to(HostIndex{10}, landmarks);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], underlay_->latency(HostIndex{10}, HostIndex{0}));
  EXPECT_EQ(d[1], underlay_->latency(HostIndex{10}, HostIndex{5}));
}

TEST(LinkStress, Counters) {
  LinkStress ls{4};
  ls.bump(0);
  ls.bump(0);
  ls.bump(3);
  EXPECT_EQ(ls.count(0), 2u);
  EXPECT_EQ(ls.count(1), 0u);
  EXPECT_EQ(ls.max_stress(), 2u);
  EXPECT_EQ(ls.total_copies(), 3u);
  EXPECT_DOUBLE_EQ(ls.mean_stress(), 0.75);
}

TEST(LinkStress, IntraStubFasterThanInterTransit) {
  // Structural sanity of the latency classes: two hosts in the same stub
  // domain should typically be closer than hosts in different transit
  // domains.
  Rng rng{31};
  auto p = TransitStubParams::for_total_nodes(400);
  Topology topo = generate_transit_stub(p, rng);
  const std::vector<std::uint32_t> domain = topo.domain;  // copy before move
  Underlay u{std::move(topo), rng};
  // Hosts in the same stub domain (stub indices start after transit nodes).
  const std::uint32_t base = u.topology().num_transit_nodes;
  std::int64_t same = 0;
  std::int64_t diff = 0;
  int same_n = 0;
  int diff_n = 0;
  for (std::uint32_t i = base; i < u.num_hosts() - 1; i += 13) {
    for (std::uint32_t j = i + 1; j < u.num_hosts(); j += 29) {
      const auto l = u.latency(HostIndex{i}, HostIndex{j}).as_micros();
      if (domain[i] == domain[j]) {
        same += l;
        ++same_n;
      } else {
        diff += l;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same / same_n, diff / diff_n);
}

}  // namespace
}  // namespace hp2p::net
