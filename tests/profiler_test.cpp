// stats::Profiler attribution tests: a synthetic simulator run with known
// per-component event counts must come back with exactly those counts, the
// nested-scope paths must roll up correctly, message classes must accrue
// bytes, and both the disabled and the enabled steady-state paths must be
// allocation-free.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_stats.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/json.hpp"
#include "stats/profiler.hpp"

namespace hp2p::stats {
namespace {

using sim::Component;
using sim::ComponentScope;
using sim::SimTime;

TEST(Profiler, AttributesEventCountsToSchedulingComponent) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);

  // Events inherit the component active at schedule time, so each of these
  // blocks pins a known number of dispatches on one component.
  {
    ComponentScope scope{sim, Component::kRing};
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(SimTime::millis(i + 1), [] {});
    }
  }
  {
    ComponentScope scope{sim, Component::kFlood};
    for (int i = 0; i < 25; ++i) {
      sim.schedule_at(SimTime::millis(100 + i), [] {});
    }
  }
  {
    ComponentScope scope{sim, Component::kMembership};
    for (int i = 0; i < 7; ++i) {
      sim.schedule_at(SimTime::millis(200 + i), [] {});
    }
  }
  sim.run();

  // enters = scope activation (1) + one frame per dispatched event.
  EXPECT_EQ(prof.component_total(Component::kRing).enters, 40u + 1u);
  EXPECT_EQ(prof.component_total(Component::kFlood).enters, 25u + 1u);
  EXPECT_EQ(prof.component_total(Component::kMembership).enters, 7u + 1u);
  EXPECT_EQ(prof.component_total(Component::kChaos).enters, 0u);
  EXPECT_EQ(prof.truncated_frames(), 0u);
}

TEST(Profiler, TagInheritanceIsTransitive) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);

  // An event scheduled *by* a ring-tagged event runs as ring too, without
  // any scope at the rescheduling site -- the kernel stamps the scheduler's
  // component on the new slot.
  {
    ComponentScope scope{sim, Component::kRing};
    sim.schedule_at(SimTime::millis(1), [&sim] {
      sim.schedule_after(SimTime::millis(1), [] {});
    });
  }
  sim.run();
  EXPECT_EQ(prof.component_total(Component::kRing).enters, 2u + 1u);
}

TEST(Profiler, NestedScopesSplitSelfTimeByInnermostComponent) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);

  {
    ComponentScope outer{sim, Component::kData};
    sim.schedule_at(SimTime::millis(1), [&sim] {
      ComponentScope inner{sim, Component::kBypass};
      (void)inner;
    });
  }
  sim.run();

  EXPECT_EQ(prof.component_total(Component::kData).enters, 1u + 1u);
  EXPECT_EQ(prof.component_total(Component::kBypass).enters, 1u);
  // Both the dispatch frame and the nested scope closed cleanly.
  EXPECT_LE(prof.attributed_ns(), prof.dispatch_ns_total());
}

TEST(Profiler, MessageClassesAccrueCountsAndBytes) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);

  {
    ComponentScope scope{sim, Component::kTransport};
    for (int i = 0; i < 3; ++i) {
      sim.schedule_at(SimTime::millis(i + 1), [&prof] {
        prof.message_delivered(2, "data", 512);
      });
    }
    sim.schedule_at(SimTime::millis(10), [&prof] {
      prof.message_delivered(0, "control", 64);
    });
  }
  sim.run();

  const JsonValue profile = prof.to_json();
  const JsonValue* data = profile.find_path("message_types.data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->find("messages")->as_int(), 3);
  EXPECT_EQ(data->find("bytes")->as_int(), 3 * 512);
  const JsonValue* control = profile.find_path("message_types.control");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->find("messages")->as_int(), 1);
  EXPECT_EQ(control->find("bytes")->as_int(), 64);
}

TEST(Profiler, DepthOverflowFoldsIntoAncestorWithoutCorruption) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);

  sim.schedule_at(SimTime::millis(1), [&sim] {
    // 1 dispatch frame + 20 nested scopes blows past kMaxDepth = 16; the
    // excess folds into the ancestor and must unwind cleanly.
    std::vector<std::unique_ptr<ComponentScope>> scopes;
    for (int i = 0; i < 20; ++i) {
      scopes.push_back(
          std::make_unique<ComponentScope>(sim, Component::kRing));
    }
  });
  sim.run();

  EXPECT_GT(prof.truncated_frames(), 0u);
  // Post-overflow the profiler still balances: a fresh tagged event lands
  // on its component as usual.
  {
    ComponentScope scope{sim, Component::kAudit};
    sim.schedule_after(SimTime::millis(1), [] {});
  }
  sim.run();
  EXPECT_EQ(prof.component_total(Component::kAudit).enters, 1u + 1u);
}

TEST(Profiler, ExportsWellFormedJsonAndCollapsedStacks) {
  sim::Simulator sim;
  Profiler prof;
  sim.set_dispatch_probe(&prof);
  {
    ComponentScope scope{sim, Component::kRing};
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::millis(i + 1), [&sim] {
        ComponentScope inner{sim, Component::kFlood};
        (void)inner;
      });
    }
  }
  sim.run();

  const JsonValue profile = prof.to_json();
  EXPECT_TRUE(profile.find("enabled")->as_bool());
  EXPECT_GT(profile.find("dispatch_ns_total")->as_int(), 0);
  const JsonValue* components = profile.find("components");
  ASSERT_NE(components, nullptr);
  EXPECT_NE(components->find("ring"), nullptr);

  const std::string path = ::testing::TempDir() + "profiler_test.collapsed";
  ASSERT_TRUE(prof.write_collapsed(path));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_nested = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    // Suffix must be a plain integer (self nanoseconds).
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      ASSERT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
    }
    if (line.rfind("kernel;ring;flood ", 0) == 0) saw_nested = true;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_nested) << "nested ring;flood path missing";
  std::remove(path.c_str());
}

TEST(Profiler, CountsAreDeterministicAcrossRuns) {
  const auto run_once = [] {
    sim::Simulator sim;
    Profiler prof;
    sim.set_dispatch_probe(&prof);
    {
      ComponentScope scope{sim, Component::kReplication};
      for (int i = 0; i < 64; ++i) {
        sim.schedule_at(SimTime::millis(i + 1), [&sim] {
          if (sim.now() < SimTime::millis(32)) {
            sim.schedule_after(SimTime::seconds(1), [] {});
          }
        });
      }
    }
    sim.run();
    return prof.component_total(Component::kReplication);
  };
  const auto a = run_once();
  const auto b = run_once();
  // CPU time differs run to run; the attributed structure must not.
  EXPECT_EQ(a.enters, b.enters);
  EXPECT_GT(a.enters, 64u);
}

/// Steady-state scheduling through a warm arena must not allocate -- first
/// with the probe disabled (the zero-cost-off guarantee), then with the
/// profiler attached (its accumulators are preallocated).
void expect_zero_alloc_steady_state(Profiler* prof) {
  sim::Simulator sim;
  if (prof != nullptr) sim.set_dispatch_probe(prof);

  // Warm-up: grow the arena, the heap, and (when profiling) insert every
  // path into the accumulator table.
  {
    ComponentScope scope{sim, Component::kRing};
    for (int i = 0; i < 256; ++i) {
      sim.schedule_after(SimTime::millis(i + 1), [] {});
    }
  }
  sim.run();

  const std::uint64_t allocs_before = alloc_stats::allocation_count();
  {
    ComponentScope scope{sim, Component::kRing};
    for (int i = 0; i < 256; ++i) {
      sim.schedule_after(SimTime::millis(i + 1), [] {});
    }
  }
  sim.run();
  const std::uint64_t allocs_after = alloc_stats::allocation_count();
  EXPECT_EQ(allocs_after - allocs_before, 0u);
}

TEST(Profiler, DisabledPathSteadyStateIsAllocationFree) {
  expect_zero_alloc_steady_state(nullptr);
}

TEST(Profiler, EnabledPathSteadyStateIsAllocationFree) {
  Profiler prof;
  expect_zero_alloc_steady_state(&prof);
}

}  // namespace
}  // namespace hp2p::stats
