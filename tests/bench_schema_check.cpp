// Standalone validator for the observability artifacts a traced bench run
// leaves behind: the BENCH_*.json report (schema v3, with at least one
// sampled time-series block and the critical-path metrics) and the
// TRACE_*.json catapult file (Perfetto-loadable: balanced async begin/end
// pairs, metadata record, microsecond timestamps).  Used by the
// bench_trace_validate ctest entry, which runs after the bench_trace_smoke
// fixture produced both files.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/json.hpp"

namespace {

using hp2p::stats::JsonValue;

int fail(const std::string& message) {
  std::fprintf(stderr, "bench_schema_check: %s\n", message.c_str());
  return 1;
}

std::optional<JsonValue> load(const std::string& path) {
  std::ifstream in{path};
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

int check_bench(const std::string& path) {
  const auto root = load(path);
  if (!root) return fail("cannot read or parse " + path);
  const auto* version = root->find_path("schema_version");
  if (version == nullptr || version->as_int() != 3) {
    return fail(path + ": schema_version must be 3");
  }
  for (const char* field : {"bench", "seed", "config", "metrics", "tables"}) {
    if (root->find_path(field) == nullptr) {
      return fail(path + ": missing v1 field '" + field + "'");
    }
  }
  const auto* timeseries = root->find_path("timeseries");
  if (timeseries == nullptr || !timeseries->is_array()) {
    return fail(path + ": missing v2 'timeseries' array");
  }
  if (timeseries->items().empty()) {
    return fail(path + ": traced run must embed at least one timeseries");
  }
  for (const JsonValue& block : timeseries->items()) {
    const auto* t_ms = block.find_path("t_ms");
    const auto* series = block.find_path("series");
    if (t_ms == nullptr || !t_ms->is_array() || t_ms->items().empty()) {
      return fail(path + ": timeseries block has no samples");
    }
    if (series == nullptr || !series->is_object() ||
        series->members().empty()) {
      return fail(path + ": timeseries block has no gauge columns");
    }
    for (const auto& [name, values] : series->members()) {
      if (!values.is_array() ||
          values.items().size() != t_ms->items().size()) {
        return fail(path + ": gauge '" + name + "' misaligned with t_ms");
      }
    }
  }
  const auto* lookups = root->find_path("metrics.trace.lookups");
  if (lookups == nullptr || lookups->as_int() <= 0) {
    return fail(path + ": metrics.trace.lookups missing or zero");
  }
  if (root->find_path("metrics.trace.total_ms.p95") == nullptr) {
    return fail(path + ": critical-path percentiles missing");
  }
  // v3: every collect_run_result export carries the replication namespace
  // (counters are 0 at replication_factor = 1, but the keys must exist).
  for (const char* field :
       {"metrics.traced.replication.replica_pushes",
        "metrics.traced.replication.items_stored",
        "metrics.traced.replication.data_availability"}) {
    if (root->find_path(field) == nullptr) {
      return fail(path + ": missing v3 field '" + std::string(field) + "'");
    }
  }
  return 0;
}

int check_catapult(const std::string& path) {
  const auto root = load(path);
  if (!root) return fail("cannot read or parse " + path);
  const auto* unit = root->find_path("displayTimeUnit");
  if (unit == nullptr || unit->as_string() != "ms") {
    return fail(path + ": displayTimeUnit must be 'ms'");
  }
  const auto* events = root->find_path("traceEvents");
  if (events == nullptr || !events->is_array() || events->items().empty()) {
    return fail(path + ": empty traceEvents");
  }
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t metadata = 0;
  for (const JsonValue& ev : events->items()) {
    const auto* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return fail(path + ": event without phase");
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      ++metadata;
      continue;
    }
    if (phase != "b" && phase != "e" && phase != "n") {
      return fail(path + ": unexpected phase '" + phase + "'");
    }
    for (const char* field : {"name", "cat", "id", "pid", "tid", "ts"}) {
      if (ev.find(field) == nullptr) {
        return fail(path + ": event missing '" + field + "'");
      }
    }
    if (phase == "b") ++begins;
    if (phase == "e") ++ends;
  }
  if (metadata == 0) return fail(path + ": missing process metadata event");
  if (begins == 0) return fail(path + ": no spans recorded");
  if (begins != ends) {
    return fail(path + ": unbalanced async begin/end events");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    return fail("usage: bench_schema_check <BENCH_*.json> <TRACE_*.json>");
  }
  if (const int rc = check_bench(argv[1]); rc != 0) return rc;
  if (const int rc = check_catapult(argv[2]); rc != 0) return rc;
  std::printf("bench_schema_check: %s and %s OK\n", argv[1], argv[2]);
  return 0;
}
