// Standalone validator for the observability artifacts an instrumented
// bench run leaves behind.  Two modes:
//
//   bench_schema_check <BENCH_*.json> <TRACE_*.json>
//     Traced run: schema-v4 report with at least one sampled time-series
//     block and the critical-path metrics, plus the TRACE_*.json catapult
//     file (Perfetto-loadable: balanced async begin/end pairs, metadata
//     record).  Used by the bench_trace_validate ctest entry.
//
//   bench_schema_check --profile <BENCH_*.json> <PROFILE_*.collapsed>
//     Profiled run (HP2P_PROFILE=1): schema-v4 report with the `profile`
//     section (non-empty component attribution, attributed_ns <=
//     dispatch_ns_total > 0) plus the collapsed-stack file in the exact
//     format flamegraph.pl / speedscope consume ("frame(;frame)* <int>").
//     Used by the profile_validate ctest entry.
//
//   bench_schema_check --scenarios <BENCH_scenarios.json>
//     Scenario-suite run: schema-v5 report whose `scenarios` array carries
//     at least one ScenarioReport object with the headline fields
//     (scenario/availability/max_peer_load/must_failed/violations) and no
//     oracle violations.  Used by the scenarios_validate ctest entry.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/json.hpp"

namespace {

using hp2p::stats::JsonValue;

int fail(const std::string& message) {
  std::fprintf(stderr, "bench_schema_check: %s\n", message.c_str());
  return 1;
}

std::optional<JsonValue> load(const std::string& path) {
  std::ifstream in{path};
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

/// Shared v1..v5 envelope checks; returns the parsed report on success.
std::optional<JsonValue> check_envelope(const std::string& path) {
  auto root = load(path);
  if (!root) {
    fail("cannot read or parse " + path);
    return std::nullopt;
  }
  const auto* version = root->find_path("schema_version");
  if (version == nullptr || version->as_int() != 5) {
    fail(path + ": schema_version must be 5");
    return std::nullopt;
  }
  for (const char* field : {"bench", "seed", "config", "metrics", "tables"}) {
    if (root->find_path(field) == nullptr) {
      fail(path + ": missing v1 field '" + field + "'");
      return std::nullopt;
    }
  }
  // v4: provenance object, always present.
  const auto* wall = root->find_path("run_info.wall_unix_s");
  if (wall == nullptr || wall->as_int() <= 0) {
    fail(path + ": run_info.wall_unix_s missing or zero");
    return std::nullopt;
  }
  const auto* describe = root->find_path("run_info.git_describe");
  if (describe == nullptr || !describe->is_string() ||
      describe->as_string().empty()) {
    fail(path + ": run_info.git_describe missing or empty");
    return std::nullopt;
  }
  for (const char* field : {"run_info.host_threads", "run_info.peers"}) {
    if (root->find_path(field) == nullptr) {
      fail(path + ": missing v4 field '" + std::string(field) + "'");
      return std::nullopt;
    }
  }
  // v5: the scenarios array is always present (empty when the bench runs
  // no production-traffic scenarios).
  const auto* scenarios = root->find_path("scenarios");
  if (scenarios == nullptr || !scenarios->is_array()) {
    fail(path + ": missing v5 'scenarios' array");
    return std::nullopt;
  }
  return root;
}

int check_scenarios(const std::string& path) {
  const auto root = check_envelope(path);
  if (!root) return 1;
  const auto* scenarios = root->find_path("scenarios");
  if (scenarios->items().empty()) {
    return fail(path + ": scenario suite must embed at least one scenario");
  }
  for (const JsonValue& sc : scenarios->items()) {
    const auto* name = sc.find("scenario");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return fail(path + ": scenario entry without a name");
    }
    for (const char* field :
         {"seed", "ops", "stores", "lookups_issued", "lookups_succeeded",
          "availability", "mean_latency_ms", "max_peer_load", "load_skew",
          "must_failed", "wave_must_issued", "wave_must_failed",
          "value_mismatches", "audit_violations", "ring_ok", "trees_ok"}) {
      if (sc.find(field) == nullptr) {
        return fail(path + ": scenario '" + name->as_string() +
                    "' missing field '" + field + "'");
      }
    }
    const auto* violations = sc.find("violations");
    if (violations == nullptr || !violations->is_array()) {
      return fail(path + ": scenario '" + name->as_string() +
                  "' missing violations array");
    }
    if (!violations->items().empty()) {
      return fail(path + ": scenario '" + name->as_string() + "' has " +
                  std::to_string(violations->items().size()) +
                  " oracle/audit violations");
    }
  }
  return 0;
}

int check_bench(const std::string& path) {
  const auto root = check_envelope(path);
  if (!root) return 1;
  const auto* timeseries = root->find_path("timeseries");
  if (timeseries == nullptr || !timeseries->is_array()) {
    return fail(path + ": missing v2 'timeseries' array");
  }
  if (timeseries->items().empty()) {
    return fail(path + ": traced run must embed at least one timeseries");
  }
  for (const JsonValue& block : timeseries->items()) {
    const auto* t_ms = block.find_path("t_ms");
    const auto* series = block.find_path("series");
    if (t_ms == nullptr || !t_ms->is_array() || t_ms->items().empty()) {
      return fail(path + ": timeseries block has no samples");
    }
    if (series == nullptr || !series->is_object() ||
        series->members().empty()) {
      return fail(path + ": timeseries block has no gauge columns");
    }
    for (const auto& [name, values] : series->members()) {
      if (!values.is_array() ||
          values.items().size() != t_ms->items().size()) {
        return fail(path + ": gauge '" + name + "' misaligned with t_ms");
      }
    }
  }
  const auto* lookups = root->find_path("metrics.trace.lookups");
  if (lookups == nullptr || lookups->as_int() <= 0) {
    return fail(path + ": metrics.trace.lookups missing or zero");
  }
  if (root->find_path("metrics.trace.total_ms.p95") == nullptr) {
    return fail(path + ": critical-path percentiles missing");
  }
  // v3: every collect_run_result export carries the replication namespace
  // (counters are 0 at replication_factor = 1, but the keys must exist).
  for (const char* field :
       {"metrics.traced.replication.replica_pushes",
        "metrics.traced.replication.items_stored",
        "metrics.traced.replication.data_availability"}) {
    if (root->find_path(field) == nullptr) {
      return fail(path + ": missing v3 field '" + std::string(field) + "'");
    }
  }
  return 0;
}

int check_profile(const std::string& path) {
  const auto root = check_envelope(path);
  if (!root) return 1;
  const auto* profile = root->find_path("profile");
  if (profile == nullptr || !profile->is_object()) {
    return fail(path + ": missing v4 'profile' section");
  }
  const auto* enabled = profile->find("enabled");
  if (enabled == nullptr || !enabled->as_bool()) {
    return fail(path + ": profile.enabled must be true");
  }
  for (const char* field : {"clock", "ns_per_tick", "truncated_frames"}) {
    if (profile->find(field) == nullptr) {
      return fail(path + ": missing profile field '" + field + "'");
    }
  }
  const auto* dispatch = profile->find("dispatch_ns_total");
  const auto* attributed = profile->find("attributed_ns");
  if (dispatch == nullptr || dispatch->as_int() <= 0) {
    return fail(path + ": profile.dispatch_ns_total missing or zero");
  }
  if (attributed == nullptr ||
      attributed->as_int() > dispatch->as_int()) {
    return fail(path + ": profile.attributed_ns missing or exceeds "
                       "dispatch_ns_total");
  }
  const auto* components = profile->find("components");
  if (components == nullptr || !components->is_object() ||
      components->members().empty()) {
    return fail(path + ": profile.components empty");
  }
  for (const auto& [name, totals] : components->members()) {
    for (const char* field : {"events", "cpu_ns", "allocs", "alloc_bytes"}) {
      if (totals.find(field) == nullptr) {
        return fail(path + ": component '" + name + "' missing '" + field +
                    "'");
      }
    }
  }
  const auto* messages = profile->find("message_types");
  if (messages == nullptr || !messages->is_object()) {
    return fail(path + ": profile.message_types missing");
  }
  return 0;
}

/// One collapsed-stack line: `frame(;frame)* <uint>` -- the exact grammar
/// flamegraph.pl and speedscope parse.
bool valid_collapsed_line(const std::string& line) {
  const auto space = line.rfind(' ');
  if (space == std::string::npos || space == 0 ||
      space + 1 >= line.size()) {
    return false;
  }
  for (std::size_t i = space + 1; i < line.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(line[i])) == 0) return false;
  }
  const std::string stack = line.substr(0, space);
  if (stack.front() == ';' || stack.back() == ';') return false;
  bool prev_semi = false;
  for (const char c : stack) {
    if (c == ';') {
      if (prev_semi) return false;
      prev_semi = true;
    } else if (std::isalnum(static_cast<unsigned char>(c)) == 0 &&
               c != '_' && c != '-') {
      return false;
    } else {
      prev_semi = false;
    }
  }
  return true;
}

int check_collapsed(const std::string& path) {
  std::ifstream in{path};
  if (!in.good()) return fail("cannot read " + path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!valid_collapsed_line(line)) {
      return fail(path + ": malformed collapsed-stack line: " + line);
    }
    ++lines;
  }
  if (lines == 0) return fail(path + ": no stacks recorded");
  return 0;
}

int check_catapult(const std::string& path) {
  const auto root = load(path);
  if (!root) return fail("cannot read or parse " + path);
  const auto* unit = root->find_path("displayTimeUnit");
  if (unit == nullptr || unit->as_string() != "ms") {
    return fail(path + ": displayTimeUnit must be 'ms'");
  }
  const auto* events = root->find_path("traceEvents");
  if (events == nullptr || !events->is_array() || events->items().empty()) {
    return fail(path + ": empty traceEvents");
  }
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t metadata = 0;
  for (const JsonValue& ev : events->items()) {
    const auto* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return fail(path + ": event without phase");
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      ++metadata;
      continue;
    }
    if (phase != "b" && phase != "e" && phase != "n") {
      return fail(path + ": unexpected phase '" + phase + "'");
    }
    for (const char* field : {"name", "cat", "id", "pid", "tid", "ts"}) {
      if (ev.find(field) == nullptr) {
        return fail(path + ": event missing '" + field + "'");
      }
    }
    if (phase == "b") ++begins;
    if (phase == "e") ++ends;
  }
  if (metadata == 0) return fail(path + ": missing process metadata event");
  if (begins == 0) return fail(path + ": no spans recorded");
  if (begins != ends) {
    return fail(path + ": unbalanced async begin/end events");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string{argv[1]} == "--profile") {
    if (const int rc = check_profile(argv[2]); rc != 0) return rc;
    if (const int rc = check_collapsed(argv[3]); rc != 0) return rc;
    std::printf("bench_schema_check: %s and %s OK\n", argv[2], argv[3]);
    return 0;
  }
  if (argc == 3 && std::string{argv[1]} == "--scenarios") {
    if (const int rc = check_scenarios(argv[2]); rc != 0) return rc;
    std::printf("bench_schema_check: %s OK\n", argv[2]);
    return 0;
  }
  if (argc != 3) {
    return fail("usage: bench_schema_check <BENCH_*.json> <TRACE_*.json>\n"
                "       bench_schema_check --profile <BENCH_*.json> "
                "<PROFILE_*.collapsed>\n"
                "       bench_schema_check --scenarios "
                "<BENCH_scenarios.json>");
  }
  if (const int rc = check_bench(argv[1]); rc != 0) return rc;
  if (const int rc = check_catapult(argv[2]); rc != 0) return rc;
  std::printf("bench_schema_check: %s and %s OK\n", argv[1], argv[2]);
  return 0;
}
