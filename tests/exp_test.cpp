// Integration tests for the experiment harness: small replicas of the
// paper's workload phases end to end.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exp/harness.hpp"

namespace hp2p::exp {
namespace {

RunConfig small_config(std::uint64_t seed, double ps) {
  RunConfig c;
  c.seed = seed;
  c.num_peers = 60;
  c.num_items = 120;
  c.num_lookups = 120;
  c.hybrid.ps = ps;
  c.hybrid.ttl = 8;
  return c;
}

TEST(Harness, AllJoinsAndOpsComplete) {
  const auto r = run_hybrid_experiment(small_config(1, 0.5));
  EXPECT_EQ(r.joins_completed, 60u);
  EXPECT_EQ(r.lookups.issued, 120u);
  EXPECT_EQ(r.num_tpeers + r.num_speers, 60u);
}

TEST(Harness, NoChurnNoFailures) {
  const auto r = run_hybrid_experiment(small_config(2, 0.5));
  EXPECT_EQ(r.lookups.failed, 0u);
  EXPECT_DOUBLE_EQ(r.lookups.failure_ratio(), 0.0);
}

TEST(Harness, DeterministicForSeed) {
  const auto a = run_hybrid_experiment(small_config(3, 0.6));
  const auto b = run_hybrid_experiment(small_config(3, 0.6));
  EXPECT_EQ(a.connum(), b.connum());
  EXPECT_DOUBLE_EQ(a.lookup_latency_ms.mean(), b.lookup_latency_ms.mean());
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
}

TEST(Harness, DifferentSeedsDiffer) {
  const auto a = run_hybrid_experiment(small_config(4, 0.6));
  const auto b = run_hybrid_experiment(small_config(5, 0.6));
  EXPECT_NE(a.network.messages_sent, b.network.messages_sent);
}

TEST(Harness, ConnumDecreasesWithPs) {
  // Table 2's headline trend (ring routing).
  auto low = small_config(6, 0.1);
  auto high = small_config(6, 0.9);
  const auto r_low = run_hybrid_experiment(low);
  const auto r_high = run_hybrid_experiment(high);
  EXPECT_GT(r_low.connum(), r_high.connum());
}

TEST(Harness, CrashFractionRaisesFailureRatio) {
  auto base = small_config(7, 0.5);
  base.hybrid.lookup_timeout = sim::SimTime::seconds(5);
  auto crashed = base;
  crashed.crash_fraction = 0.3;
  const auto r0 = run_hybrid_experiment(base);
  const auto r1 = run_hybrid_experiment(crashed);
  EXPECT_GT(r1.lookups.failure_ratio(), r0.lookups.failure_ratio());
}

TEST(Harness, ItemsPerPeerAccountsForEverything) {
  const auto r = run_hybrid_experiment(small_config(8, 0.5));
  std::size_t total = 0;
  for (const auto n : r.items_per_peer) total += n;
  EXPECT_EQ(total, 120u);
}

TEST(Harness, TransmissionDelayIncreasesLatency) {
  auto plain = small_config(9, 0.5);
  auto hetero = plain;
  hetero.model_transmission_delay = true;
  const auto r_plain = run_hybrid_experiment(plain);
  const auto r_hetero = run_hybrid_experiment(hetero);
  EXPECT_GT(r_hetero.lookup_latency_ms.mean(),
            r_plain.lookup_latency_ms.mean());
}

TEST(Harness, CapacitySortedRolesReduceLatencyUnderHeterogeneity) {
  // Fig. 6a's claim: with transmission delays modeled, putting fast hosts
  // on the t-network shortens lookups.
  auto base = small_config(10, 0.7);
  base.model_transmission_delay = true;
  auto sorted = base;
  sorted.capacity_sorted_roles = true;
  const auto r_base = run_hybrid_experiment(base);
  const auto r_sorted = run_hybrid_experiment(sorted);
  EXPECT_LT(r_sorted.lookup_latency_ms.mean(),
            r_base.lookup_latency_ms.mean() * 1.05);
}

TEST(Harness, InterestLocalityReducesLookupLatency) {
  // Interest-local lookups stay inside the local s-network: a few tree hops
  // instead of cp-chain + ring walk + remote flood.  (Contacted-peer counts
  // can go either way at small scale -- a local flood touches the whole
  // tree -- so latency is the discriminating metric, as in Section 5.3.)
  auto base = small_config(11, 0.8);
  auto local = base;
  local.interest_locality = 0.9;
  local.hybrid.interest_based = true;
  local.hybrid.num_interests = 4;
  local.tpeers_first = true;  // anchors must not drift during the build
  const auto r_base = run_hybrid_experiment(base);
  const auto r_local = run_hybrid_experiment(local);
  EXPECT_LT(r_local.lookup_latency_ms.mean(),
            r_base.lookup_latency_ms.mean());
}

TEST(Harness, LinkStressTrackedWhenEnabled) {
  auto c = small_config(12, 0.5);
  c.track_link_stress = true;
  const auto r = run_hybrid_experiment(c);
  EXPECT_GT(r.max_link_stress, 0u);
}

TEST(Harness, ParallelMapMatchesSequential) {
  std::vector<RunConfig> configs;
  for (int i = 0; i < 4; ++i) configs.push_back(small_config(20 + static_cast<std::uint64_t>(i), 0.5));
  const auto parallel = parallel_map(
      configs, [](const RunConfig& c) { return run_hybrid_experiment(c); }, 4);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto seq = run_hybrid_experiment(configs[i]);
    EXPECT_EQ(parallel[i].connum(), seq.connum()) << "replica " << i;
    EXPECT_EQ(parallel[i].network.messages_sent, seq.network.messages_sent);
  }
}

TEST(Harness, TPeersCarryMoreTrafficThanSPeers) {
  // The load-imbalance observation behind Section 5.1.
  auto cfg = small_config(30, 0.7);
  const auto r = run_hybrid_experiment(cfg);
  EXPECT_GT(r.mean_tpeer_traffic, r.mean_speer_traffic * 1.5)
      << "t=" << r.mean_tpeer_traffic << " s=" << r.mean_speer_traffic;
}

TEST(Harness, MeanOfHelper) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Harness, RecordsPhaseTimingsAndSimStats) {
  const auto r = run_hybrid_experiment(small_config(31, 0.5));
  ASSERT_GE(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].name, "build");
  for (const auto& ph : r.phases) {
    EXPECT_GE(ph.wall_ms, 0.0) << ph.name;
    EXPECT_GE(ph.sim_ms, 0.0) << ph.name;
  }
  EXPECT_GT(r.sim_stats.events_executed, 0u);
  EXPECT_GE(r.sim_stats.events_scheduled, r.sim_stats.events_executed);
}

TEST(ParallelMap, PropagatesWorkerExceptions) {
  const std::vector<int> configs{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW(parallel_map(
                   configs,
                   [](int c) -> int {
                     if (c == 3) throw std::runtime_error{"boom"};
                     return c * 2;
                   },
                   2),
               std::runtime_error);
}

TEST(ParallelMap, SupportsNonDefaultConstructibleResults) {
  struct Wrapped {
    explicit Wrapped(int v) : value(v) {}
    int value;
  };
  const std::vector<int> configs{1, 2, 3};
  const auto out =
      parallel_map(configs, [](int c) { return Wrapped{c * 10}; }, 2);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, 10);
  EXPECT_EQ(out[1].value, 20);
  EXPECT_EQ(out[2].value, 30);
}

}  // namespace
}  // namespace hp2p::exp
