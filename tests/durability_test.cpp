// Data-durability tests for segment-local replication: deterministic
// replica-holder selection, crash-storm survival at r >= 2 (the chaos
// oracle's sharper MUST rule), anti-entropy convergence after a partition
// heals, a deliberate-regression canary (repair disabled must be caught by
// the replica_count audit), and the r = 1 dormancy contract (the new knobs
// must not perturb unreplicated runs at all).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "common/hashing.hpp"
#include "hybrid/hybrid_system.hpp"
#include "tests/test_util.hpp"

namespace hp2p::chaos {
namespace {

// --- Replica-set selection ----------------------------------------------------

/// Minimal staged-join fixture (mirrors hybrid_test's HybridFixture).
struct Fixture {
  explicit Fixture(std::uint64_t seed, hybrid::HybridParams params)
      : world(seed, 200), system(*world.network, params, HostIndex{0},
                                 world.rng) {}

  void build(std::size_t n) {
    const double ps = system.params().ps;
    auto n_t = static_cast<std::size_t>(
        std::max(1.0, (1.0 - ps) * static_cast<double>(n) + 0.5));
    n_t = std::min(n_t, n);
    std::vector<hybrid::Role> roles(n, hybrid::Role::kSPeer);
    for (std::size_t i = 0; i < n_t; ++i) roles[i] = hybrid::Role::kTPeer;
    std::vector<hybrid::Role> tail(roles.begin() + 1, roles.end());
    world.rng.shuffle(tail);
    std::copy(tail.begin(), tail.end(), roles.begin() + 1);
    std::size_t completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const hybrid::Role role = roles[i];
      world.sim.schedule_after(
          sim::SimTime::millis(static_cast<std::int64_t>(i) * 40), [&, role] {
            peers.push_back(system.add_peer_with_role(
                world.next_host(), role,
                [&](proto::JoinResult) { ++completed; }));
          });
    }
    world.sim.run();
    ASSERT_EQ(completed, n);
  }

  testing::SimWorld world;
  hybrid::HybridSystem system;
  std::vector<PeerIndex> peers;
};

hybrid::HybridParams replicated_params(unsigned r) {
  hybrid::HybridParams p;
  p.ps = 0.6;
  p.delta = 3;
  p.ttl = 8;
  p.replication_factor = r;
  return p;
}

TEST(Durability, ReplicaSetSelectionIsDeterministic) {
  Fixture a{91, replicated_params(2)};
  Fixture b{91, replicated_params(2)};
  a.build(40);
  b.build(40);
  for (std::uint64_t v = 1; v <= 64; ++v) {
    const DataId id{mix64(v)};
    const auto ra = a.system.replica_set(id);
    const auto rb = b.system.replica_set(id);
    // Same seed => same overlay => byte-identical holder choice, and the
    // choice is a pure function of the state (stable across calls).
    EXPECT_EQ(ra, rb) << "id " << id.value();
    EXPECT_EQ(ra, a.system.replica_set(id)) << "id " << id.value();
    ASSERT_FALSE(ra.empty());
    EXPECT_EQ(ra.front(), a.system.owner_tpeer(id));
    EXPECT_LE(ra.size(), 2u + 1u);  // r holders + successor fallback at most
    for (std::size_t i = 0; i < ra.size(); ++i) {
      for (std::size_t j = i + 1; j < ra.size(); ++j) {
        EXPECT_NE(ra[i], ra[j]) << "duplicate holder for id " << id.value();
      }
    }
  }
}

// --- Chaos-driven durability --------------------------------------------------

FaultSchedule fixed_crash_storm() {
  FaultSchedule s;
  s.seed = 200;
  FaultPhase storm;
  storm.kind = FaultKind::kTPeerCrashStorm;
  storm.start = sim::SimTime::seconds(15);
  storm.duration = sim::SimTime::seconds(8);
  storm.count = 5;
  s.phases.push_back(storm);
  return s;
}

ChaosConfig storm_config(unsigned replication_factor) {
  ChaosConfig cfg;
  cfg.seed = 200;
  cfg.schedule = fixed_crash_storm();
  cfg.storm_lookups = 60;
  cfg.params.replication_factor = replication_factor;
  return cfg;
}

TEST(Durability, CrashStormWithReplicationHasZeroMustFailures) {
  // Acceptance bar: with r = 2 the single-t-peer crash-storm schedule loses
  // no MUST-succeed lookup -- every item a live replica survives for is
  // restored to its (possibly new) owner and found.
  const auto cfg = storm_config(2);
  const auto report = run_chaos(cfg);
  EXPECT_TRUE(report.clean())
      << "reproducer: " << cfg.schedule.one_line()
      << "\nreport: " << report.to_json().dump(2);
  EXPECT_GT(report.must_issued, 0u);
  EXPECT_EQ(report.must_failed, 0u);
}

TEST(Durability, AntiEntropyConvergesAfterPartitionHeals) {
  // A symmetric partition splits replica sets from their owners; after the
  // heal + settle, the strict audit (including replica_count) must pass --
  // i.e. the anti-entropy sweep re-converged every item's holder set.
  ChaosConfig cfg;
  cfg.seed = 203;
  FaultSchedule s;
  s.seed = 203;
  FaultPhase cut;
  cut.kind = FaultKind::kPartition;
  cut.start = sim::SimTime::seconds(15);
  cut.duration = sim::SimTime::seconds(6);
  cut.param = 3;
  cut.symmetric = true;
  s.phases.push_back(cut);
  cfg.schedule = s;
  cfg.params.replication_factor = 2;
  const auto report = run_chaos(cfg);
  EXPECT_TRUE(report.clean())
      << "reproducer: " << cfg.schedule.one_line()
      << "\nreport: " << report.to_json().dump(2);
  EXPECT_GT(report.must_issued, 0u);
  EXPECT_EQ(report.must_failed, 0u);
}

TEST(Durability, DisablingRepairIsCaught) {
  // Canary (mirrors ChaosStorm.DisablingRingRetryIsCaught): replication is
  // configured but both repair channels are switched off.  After the crash
  // storm the promoted owners never recover their segments' items, so the
  // strict replica_count invariant must flag the run.
  auto cfg = storm_config(2);
  cfg.params.re_replicate_on_churn = false;
  cfg.params.anti_entropy_period = sim::Duration{};
  const auto report = run_chaos(cfg);
  bool replica_count_flagged = false;
  for (const auto& v : report.violations) {
    replica_count_flagged |=
        std::string(v.kind) == "audit" &&
        v.detail.find("replica_count") != std::string::npos;
  }
  EXPECT_TRUE(replica_count_flagged)
      << "repair disabled but no replica_count audit violation; report: "
      << report.to_json().dump(2);
}

TEST(Durability, ReplicationKnobsAreDormantAtROne) {
  // r = 1 must be bit-for-bit the unreplicated system: toggling the repair
  // knobs can change nothing, so the full chaos reports (every counter,
  // every verdict) are byte-identical.
  auto base = storm_config(1);
  const auto baseline = run_chaos(base);
  auto toggled = base;
  toggled.params.anti_entropy_period = sim::Duration{};
  toggled.params.re_replicate_on_churn = false;
  const auto variant = run_chaos(toggled);
  EXPECT_EQ(baseline.to_json().dump(0), variant.to_json().dump(0));
  auto longer = base;
  longer.params.anti_entropy_period = sim::SimTime::seconds(1);
  EXPECT_EQ(baseline.to_json().dump(0), run_chaos(longer).to_json().dump(0));
}

}  // namespace
}  // namespace hp2p::chaos
