// Interleaving-explorer tests: choice-trace codec round-trips, footprint
// independence semantics, independence soundness (flipping a decision whose
// candidates all commute cannot change the terminal state), sleep-set
// pruning vs naive enumeration on a 3-peer world (same terminal-state set,
// far fewer runs), and the order-dependence canary: a test-only knob
// disables the HELLO re-adopt repair rule, and the explorer must find the
// HELLO-timeout vs late-HELLO race as a shrunk, byte-identical reproducer.
#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"
#include "verify/choice_trace.hpp"
#include "verify/explorer.hpp"
#include "verify/scenario.hpp"

namespace hp2p::verify {
namespace {

// --- Choice-trace codec -------------------------------------------------------

TEST(ChoiceTraceCodec, JsonRoundTrip) {
  ChoiceTrace t;
  t.seed = 42;
  t.choices = {{3, 1}, {17, 2}, {120, 1}};
  const auto parsed = stats::JsonValue::parse(t.to_json().dump(0));
  ASSERT_TRUE(parsed.has_value());
  const auto back = ChoiceTrace::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(ChoiceTraceCodec, OneLineRoundTrip) {
  ChoiceTrace t;
  t.seed = 7;
  t.choices = {{9, 1}, {10, 3}};
  const auto line = t.one_line();
  EXPECT_NE(line.find("seed=7"), std::string::npos);
  const auto back = ChoiceTrace::parse_one_line(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(ChoiceTraceCodec, EmptyTraceRoundTrips) {
  ChoiceTrace t;  // FIFO run: no non-default choices
  const auto back = ChoiceTrace::parse_one_line(t.one_line());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(ChoiceTraceCodec, RejectsMalformedInput) {
  EXPECT_FALSE(ChoiceTrace::parse_one_line("garbage").has_value());
  EXPECT_FALSE(ChoiceTrace::parse_one_line("choices=[[1]]").has_value());
  EXPECT_FALSE(
      ChoiceTrace::parse_one_line("choices={\"seed\":1}").has_value());
}

// --- Footprint independence ---------------------------------------------------

TEST(Footprint, WildcardNeverCommutes) {
  const auto w = sim::Footprint::wild();
  const auto a = sim::Footprint::on({1});
  EXPECT_FALSE(independent(w, w));
  EXPECT_FALSE(independent(w, a));
  EXPECT_FALSE(independent(a, w));
}

TEST(Footprint, DisjointPeerSetsCommute) {
  const auto a = sim::Footprint::on({1, 2});
  const auto b = sim::Footprint::on({3, 4});
  const auto c = sim::Footprint::on({2, 3});
  EXPECT_TRUE(independent(a, b));
  EXPECT_FALSE(independent(a, c));
  EXPECT_FALSE(independent(b, c));
}

TEST(Footprint, TooManyPeersFallsBackToWildcard) {
  const auto wide = sim::Footprint::on({1, 2, 3, 4, 5});
  EXPECT_TRUE(wide.wildcard);
  EXPECT_FALSE(independent(wide, sim::Footprint::on({9})));
}

// --- Scenario determinism -----------------------------------------------------

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.num_tpeers = 2;
  cfg.num_speers = 1;
  cfg.num_items = 2;
  cfg.num_lookups = 1;
  cfg.lookup_at = sim::SimTime::millis(2750);
  cfg.horizon = sim::SimTime::millis(3000);
  return cfg;
}

TEST(Scenario, FifoRunIsCleanAndDeterministic) {
  const auto cfg = small_config();
  const auto a = run_scenario(cfg, nullptr);
  const auto b = run_scenario(cfg, nullptr);
  EXPECT_TRUE(a.clean()) << a.dump();
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_GT(a.events_executed, 0u);
}

TEST(Scenario, EmptyTraceReplaysTheFifoRun) {
  const auto cfg = small_config();
  const auto fifo = run_scenario(cfg, nullptr);
  ChoiceTrace empty;
  empty.seed = cfg.seed;
  EXPECT_EQ(replay(cfg, empty).dump(), fifo.dump());
}

// --- Independence soundness ---------------------------------------------------

/// Finds the first decision point whose candidates are all pairwise
/// independent (by footprint), while running plain FIFO order.
class IndependentDecisionScout final : public ScenarioPolicy {
 public:
  std::size_t choose(const sim::CoEnabledEvent* events,
                     std::size_t n) override {
    if (n >= 2) {
      if (found_decision_ < 0) {
        bool all = true;
        for (std::size_t i = 0; i < n && all; ++i) {
          for (std::size_t j = i + 1; j < n && all; ++j) {
            all = independent(events[i].fp, events[j].fp);
          }
        }
        if (all) {
          found_decision_ = static_cast<std::int64_t>(counter_);
          branches_ = n;
        }
      }
      ++counter_;
    }
    return 0;
  }

  [[nodiscard]] std::int64_t found_decision() const {
    return found_decision_;
  }
  [[nodiscard]] std::size_t branches() const { return branches_; }

 private:
  std::uint32_t counter_ = 0;
  std::int64_t found_decision_ = -1;
  std::size_t branches_ = 0;
};

TEST(Explorer, SwappingCommutingEventsPreservesTerminalHash) {
  const auto cfg = small_config();
  IndependentDecisionScout scout;
  const auto fifo = run_scenario(cfg, &scout);
  ASSERT_TRUE(fifo.clean()) << fifo.dump();
  ASSERT_GE(scout.found_decision(), 0)
      << "no decision point with an all-independent candidate set";
  ASSERT_GE(scout.branches(), 2u);
  for (std::uint32_t b = 1; b < scout.branches(); ++b) {
    ChoiceTrace flipped;
    flipped.seed = cfg.seed;
    flipped.choices = {
        {static_cast<std::uint32_t>(scout.found_decision()), b}};
    const auto out = replay(cfg, flipped);
    EXPECT_EQ(out.state_hash, fifo.state_hash)
        << "commuting swap changed the terminal state: "
        << flipped.one_line();
    EXPECT_TRUE(out.clean()) << out.dump();
  }
}

// --- Sleep-set pruning soundness ----------------------------------------------

TEST(Explorer, SleepSetsDropNoTerminalStateOnThreePeers) {
  const auto cfg = small_config();
  ExploreOptions opts;
  opts.max_runs = 100000;

  const auto por = explore(cfg, opts);
  opts.sleep_sets = false;
  const auto naive = explore(cfg, opts);

  ASSERT_FALSE(por.budget_exhausted);
  ASSERT_FALSE(naive.budget_exhausted);
  EXPECT_EQ(por.violating_runs, 0u);
  EXPECT_EQ(naive.violating_runs, 0u);
  EXPECT_EQ(naive.pruned_runs, 0u);

  // Soundness: pruning must not lose a single distinct terminal state.
  EXPECT_EQ(por.state_hashes, naive.state_hashes);
  // And it must actually prune: strictly fewer completed interleavings.
  EXPECT_LT(por.completed_runs, naive.completed_runs);
  EXPECT_GT(por.pruned_runs + por.sleeping_branches, 0u);
}

// --- Order-dependence canary --------------------------------------------------

/// The engineered race: peer 3 (an s-peer child of t-peer 2) has its HELLOs
/// delayed so one arrives a few ms before the parent's timeout scan.  FIFO
/// delivers the HELLO first (clean); under a 10ms commutation window the
/// explorer may fire the scan first, which falsely buries the child.  With
/// the child_readopt repair rule disabled (test-only knob) the false
/// positive leaves a persistent parent/child asymmetry that strict audit
/// reports at the horizon.
ScenarioConfig canary_config(bool readopt) {
  ScenarioConfig cfg;
  cfg.num_tpeers = 2;
  cfg.num_speers = 1;
  cfg.num_items = 2;
  cfg.num_lookups = 0;
  cfg.horizon = sim::SimTime::millis(4800);
  cfg.window = sim::SimTime::millis(10);
  cfg.params.child_readopt = readopt;
  cfg.hello_delay_from = 3;
  cfg.hello_delay_to = 2;
  cfg.hello_delay_by = sim::SimTime::millis(1458);
  cfg.hello_delay_start = sim::SimTime::millis(2000);
  cfg.hello_delay_end = sim::SimTime::millis(3600);
  return cfg;
}

TEST(Canary, FifoRunStaysClean) {
  const auto out = run_scenario(canary_config(false), nullptr);
  EXPECT_TRUE(out.clean()) << out.dump();
}

TEST(Canary, ExactTieExplorationStaysClean) {
  // Without the commutation window the delayed HELLO and the timeout scan
  // are never co-enabled, so no interleaving exhibits the race.
  auto cfg = canary_config(false);
  cfg.window = sim::Duration{};
  ExploreOptions opts;
  opts.max_runs = 50000;
  const auto res = explore(cfg, opts);
  ASSERT_FALSE(res.budget_exhausted);
  EXPECT_EQ(res.violating_runs, 0u)
      << (res.violation_details.empty() ? std::string()
                                        : res.violation_details[0]);
}

TEST(Canary, ExplorerCatchesDisabledReadoptWithShortReproducer) {
  const auto cfg = canary_config(false);
  ExploreOptions opts;
  opts.max_runs = 50000;
  opts.stop_on_violation = true;
  const auto res = explore(cfg, opts);
  ASSERT_EQ(res.violating_runs, 1u) << "explorer missed the canary race";
  ASSERT_FALSE(res.violating.empty());
  bool symmetry = false;
  for (const auto& v : res.violation_details) {
    symmetry |= v.find("tree_parent_child_symmetry") != std::string::npos;
  }
  EXPECT_TRUE(symmetry) << "unexpected violation kind: "
                        << res.violation_details[0];

  const auto shrunk = shrink_trace(cfg, res.violating[0]);
  EXPECT_LE(shrunk.choices.size(), 12u);

  // The reproducer replays byte-identically from its printed form.
  const auto parsed = ChoiceTrace::parse_one_line(shrunk.one_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, shrunk);
  const auto first = replay(cfg, shrunk);
  const auto second = replay(cfg, *parsed);
  EXPECT_FALSE(first.clean());
  EXPECT_EQ(first.dump(), second.dump());
}

TEST(Canary, ReadoptRuleMasksTheRace) {
  // With the repair rule enabled (the production default) the same race
  // heals on the next heard HELLO; a budgeted prefix of the exploration
  // that is more than deep enough to contain the violating branch above
  // must stay clean.
  const auto cfg = canary_config(true);
  ExploreOptions opts;
  opts.max_runs = 3000;
  const auto res = explore(cfg, opts);
  EXPECT_EQ(res.violating_runs, 0u)
      << (res.violating.empty() ? std::string()
                                : res.violating[0].one_line());
}

}  // namespace
}  // namespace hp2p::verify
