// Unit tests for histograms, summaries, and table output.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace hp2p::stats {
namespace {

TEST(Histogram, BinsAndMass) {
  Histogram h{0.0, 10.0, 5};
  for (double v : {0.5, 1.5, 2.5, 3.5, 9.5}) h.add(v);
  EXPECT_EQ(h.total(), 5u);
  const auto pdf = h.pdf();
  ASSERT_EQ(pdf.size(), 5u);
  EXPECT_EQ(pdf[0].count, 2u);  // bin [0,2): 0.5 and 1.5
  EXPECT_EQ(pdf[1].count, 2u);  // bin [2,4): 2.5 and 3.5
  EXPECT_DOUBLE_EQ(pdf[1].mass, 0.4);
  EXPECT_EQ(pdf[4].count, 1u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h{0.0, 10.0, 2};
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, PdfMassSumsToOne) {
  Histogram h{0.0, 1.0, 7};
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double mass = 0;
  for (const auto& bin : h.pdf()) mass += bin.mass;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram, EmptyPdf) {
  Histogram h{0.0, 1.0, 3};
  EXPECT_TRUE(h.pdf().empty());
  EXPECT_DOUBLE_EQ(h.cdf_at(0.5), 0.0);
}

TEST(Histogram, CdfAtBinBoundary) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.cdf_at(5.0), 0.5, 1e-12);
  EXPECT_NEAR(h.cdf_at(10.0), 1.0, 1e-12);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, PercentileSingleSampleInterpolatesItsBin) {
  Histogram h{0.0, 10.0, 10};
  h.add(5.2);  // the single occupied bin is [5, 6)
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.p50(), 5.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 6.0);
}

TEST(Histogram, PercentileTwoBucketsInterpolatesAcross) {
  Histogram h{0.0, 10.0, 10};
  h.add(1.5);  // bin [1, 2)
  h.add(3.5);  // bin [3, 4)
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 1.5);
  EXPECT_DOUBLE_EQ(h.p50(), 2.0);  // exactly drains the first bin
  EXPECT_DOUBLE_EQ(h.percentile(75.0), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
}

TEST(Histogram, PercentileAccessorsMatchPercentile) {
  Histogram h{0.0, 100.0, 50};
  for (int i = 0; i < 1000; ++i) h.add(i % 100 + 0.5);
  EXPECT_DOUBLE_EQ(h.p50(), h.percentile(50.0));
  EXPECT_DOUBLE_EQ(h.p95(), h.percentile(95.0));
  EXPECT_DOUBLE_EQ(h.p99(), h.percentile(99.0));
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_NEAR(h.p50(), 50.0, 2.0);
}

TEST(Histogram, PercentileClampsOutOfRangeP) {
  Histogram h{0.0, 10.0, 10};
  h.add(5.2);
  EXPECT_DOUBLE_EQ(h.percentile(-10.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(CountDistribution, FractionZero) {
  CountDistribution d;
  d.add(0);
  d.add(0);
  d.add(3);
  d.add(7);
  EXPECT_DOUBLE_EQ(d.fraction_zero(), 0.5);
  EXPECT_EQ(d.max_value(), 7u);
  EXPECT_DOUBLE_EQ(d.fraction_below(4), 0.75);
}

TEST(CountDistribution, EmptyIsSafe) {
  CountDistribution d;
  EXPECT_DOUBLE_EQ(d.fraction_zero(), 0.0);
  EXPECT_EQ(d.max_value(), 0u);
  EXPECT_TRUE(d.to_pdf(4).empty());
}

TEST(CountDistribution, PdfBinsCoverAllSamples) {
  CountDistribution d;
  for (std::uint64_t v = 0; v < 100; ++v) d.add(v);
  const auto pdf = d.to_pdf(10);
  ASSERT_EQ(pdf.size(), 10u);
  std::uint64_t total = 0;
  double mass = 0;
  for (const auto& bin : pdf) {
    total += bin.count;
    mass += bin.mass;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Summary, MeanVarianceMinMax) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all;
  Summary a;
  Summary b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10 + i;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(3.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 5.0);
}

TEST(Samples, MeanOfEmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t{{"p_s", "latency"}};
  t.row().cell(0.5, 1).cell(std::uint64_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("p_s"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t{{"a", "b"}};
  t.row().cell(std::uint64_t{1}).cell(std::uint64_t{2});
  t.row().cell(std::uint64_t{3}).cell(std::uint64_t{4});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.row_cells(1)[0], "3");
}

TEST(Table, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace hp2p::stats
