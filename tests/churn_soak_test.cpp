// Churn soak tests: sustained joins, graceful leaves and crashes against a
// live hybrid system with failure detection running, followed by invariant
// checks and a data-availability audit.  Parameterized over seeds and p_s
// so each instantiation explores a different interleaving.
#include <gtest/gtest.h>

#include <iostream>
#include <optional>
#include <set>
#include <vector>

#include "audit/overlay_auditor.hpp"
#include "common/env.hpp"
#include "exp/harness.hpp"
#include "hybrid/hybrid_system.hpp"
#include "stats/flight_recorder.hpp"
#include "tests/test_util.hpp"
#include "workload/workload.hpp"

namespace hp2p::hybrid {
namespace {

using testing::SimWorld;

struct SoakParams {
  std::uint64_t seed;
  double ps;
};

class ChurnSoak : public ::testing::TestWithParam<SoakParams> {};

TEST_P(ChurnSoak, SystemSurvivesSustainedChurn) {
  const auto [seed, ps] = GetParam();
  SimWorld world{seed, 220};
  HybridParams params;
  params.ps = ps;
  params.ttl = 10;
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  params.lookup_timeout = sim::SimTime::seconds(10);
  HybridSystem system{*world.network, params, HostIndex{0}, world.rng};

  // Always-on flight recorder over the kernel + transport trace hooks: on
  // an availability failure below, its tail shows the run's final moments.
  stats::FlightRecorder flight{512};
  exp::attach_flight_recorder(flight, world.sim, *world.network);

  // HP2P_AUDIT=1: lenient invariant audits every simulated second across
  // the whole soak -- any violation under churn is real corruption.
  std::optional<audit::OverlayAuditor> auditor;
  if (env_or("HP2P_AUDIT", std::int64_t{0}) != 0) {
    auditor.emplace(system, *world.network, world.sim);
    auditor->set_period(sim::SimTime::seconds(1));
    auditor->set_flight_recorder(&flight);
  }
  const auto arm_audit = [&auditor] {
    if (auditor) auditor->ensure_running();
  };

  // Build 60 peers.
  std::vector<PeerIndex> peers;
  const auto n_t = static_cast<std::size_t>(
      std::max(1.0, (1.0 - ps) * 60.0 + 0.5));
  for (std::size_t i = 0; i < 60; ++i) {
    const Role role = i < n_t ? Role::kTPeer : Role::kSPeer;
    world.sim.schedule_after(
        sim::SimTime::millis(static_cast<std::int64_t>(i) * 40),
        [&, role] {
          peers.push_back(
              system.add_peer_with_role(world.next_host(), role, {}));
        });
  }
  arm_audit();
  world.sim.run();
  ASSERT_TRUE(system.verify_ring());

  // Seed data.
  Rng op = world.rng.fork(11);
  const auto corpus = workload::uniform_corpus(150, seed);
  for (const auto& item : corpus) {
    system.store_id(peers[op.index(peers.size())], item.id, item.key,
                    item.value);
  }
  arm_audit();
  world.sim.run();
  system.start_failure_detection();

  // Churn storm: interleaved joins, graceful leaves and crashes over ~20 s.
  std::size_t crashes = 0;
  std::size_t leaves = 0;
  std::size_t joins = 0;
  for (int i = 0; i < 30; ++i) {
    world.sim.schedule_after(
        sim::SimTime::millis(300 + static_cast<std::int64_t>(i) * 600),
        [&] {
          const double dice = op.uniform01();
          if (dice < 0.4) {
            // Join a fresh peer (role by coin weighted by ps).
            const Role role =
                op.chance(1.0 - ps) ? Role::kTPeer : Role::kSPeer;
            peers.push_back(
                system.add_peer_with_role(world.next_host(), role, {}));
            ++joins;
            return;
          }
          // Pick a live victim.
          for (int attempt = 0; attempt < 100; ++attempt) {
            const PeerIndex p = peers[op.index(peers.size())];
            if (!system.is_joined(p) || !system.is_alive(p)) continue;
            if (dice < 0.75) {
              system.leave(p);
              ++leaves;
            } else {
              system.crash(p);
              ++crashes;
            }
            return;
          }
        });
  }
  // Let the churn play out and the detectors repair everything.
  arm_audit();
  world.sim.run_until(world.sim.now() + sim::SimTime::seconds(60));

  EXPECT_GT(joins + leaves + crashes, 25u) << "churn did not execute";
  EXPECT_TRUE(system.verify_ring()) << "ring broken after churn";
  EXPECT_TRUE(system.verify_trees()) << "trees broken after churn";

  // Every surviving item must still be reachable (graceful leaves moved
  // their load; only crashed peers lost data).
  std::set<std::uint64_t> surviving;
  for (const PeerIndex p : system.live_peers()) {
    system.store_of(p).for_each([&](const proto::DataItem& item) {
      surviving.insert(item.id.value());
    });
  }
  int failures = 0;
  int issued = 0;
  const auto live = system.live_peers();
  ASSERT_FALSE(live.empty());
  for (const auto& item : corpus) {
    if (surviving.count(item.id.value()) == 0) continue;  // crash-lost
    system.lookup_id(live[op.index(live.size())], item.id,
                     [&](proto::LookupResult r) { failures += !r.success; });
    ++issued;
  }
  arm_audit();
  world.sim.run_until(world.sim.now() + sim::SimTime::seconds(40));
  EXPECT_GT(issued, 0);
  // A small tolerance: lookups racing a concurrent rejoin can miss.
  if (failures > issued / 20) {
    flight.dump(std::cerr, "surviving items unreachable after churn");
  }
  EXPECT_LE(failures, issued / 20)
      << failures << "/" << issued << " surviving items unreachable";

  if (auditor) {
    EXPECT_GT(auditor->runs(), 0u);
    EXPECT_EQ(auditor->total_violations(), 0u)
        << auditor->last_failing_report().to_json().dump(2);
  }

  // The recorder ran the whole soak and stayed bounded.
  EXPECT_GT(flight.total_recorded(), flight.capacity());
  EXPECT_EQ(flight.size(), flight.capacity());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPs, ChurnSoak,
    ::testing::Values(SoakParams{1001, 0.3}, SoakParams{1002, 0.5},
                      SoakParams{1003, 0.7}, SoakParams{1004, 0.85},
                      SoakParams{1005, 0.5}, SoakParams{1006, 0.7}));

}  // namespace
}  // namespace hp2p::hybrid
