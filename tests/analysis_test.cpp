// Tests for the Section 4 closed-form models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/model.hpp"

namespace hp2p::analysis {
namespace {

ModelParams make(double ps, double delta = 3, double ttl = 4,
                 double n = 1000) {
  ModelParams p;
  p.n = n;
  p.ps = ps;
  p.delta = delta;
  p.ttl = ttl;
  return p;
}

TEST(Model, SNetworkSizeMatchesFormula) {
  EXPECT_DOUBLE_EQ(snetwork_size(make(0.5)), 1.0);
  EXPECT_DOUBLE_EQ(snetwork_size(make(0.9)), 0.9 / 0.1);
  EXPECT_DOUBLE_EQ(snetwork_size(make(0.0)), 0.0);
}

TEST(Model, LocalHitProbabilitySmallAndIncreasing) {
  const double p_low = local_hit_probability(make(0.3));
  const double p_high = local_hit_probability(make(0.9));
  EXPECT_GT(p_high, p_low);
  EXPECT_LT(p_high, 0.1);  // 9 peers out of 1000
}

TEST(Model, TPeerJoinHopsDecreaseWithPs) {
  // More s-peers -> smaller ring -> shorter t-joins (Section 4.1).
  double prev = 1e9;
  for (double ps : {0.0, 0.3, 0.6, 0.9}) {
    const double hops = tpeer_join_hops(make(ps));
    EXPECT_LT(hops, prev);
    prev = hops;
  }
}

TEST(Model, SPeerJoinHopsIncreaseWithPs) {
  double prev = -1;
  for (double ps : {0.5, 0.7, 0.9, 0.97}) {
    const double hops = speer_join_hops(make(ps));
    EXPECT_GE(hops, prev);
    prev = hops;
  }
}

TEST(Model, LargerDeltaShortensSpeerJoins) {
  // Fig. 3a: given ps, larger delta -> shorter join latency.
  const double d2 = speer_join_hops(make(0.9, 2));
  const double d8 = speer_join_hops(make(0.9, 8));
  EXPECT_GT(d2, d8);
}

TEST(Model, JoinLatencyHasInteriorMinimum) {
  // Fig. 3a's headline: the hybrid beats both pure systems.
  const double at0 = average_join_hops(make(0.0, 2));
  const double at_opt = average_join_hops(make(0.72, 2));
  EXPECT_LT(at_opt, at0);
  const double opt = optimal_ps_for_join(1000, 2);
  EXPECT_GT(opt, 0.5);
  EXPECT_LT(opt, 0.95);
}

TEST(Model, OptimalPsNearPaperValue) {
  // "the shortest join latency is achieved when ps is around 0.7 for
  // delta=2"
  const double opt = optimal_ps_for_join(1000, 2);
  EXPECT_NEAR(opt, 0.72, 0.12);
}

TEST(Model, OutOfRangeGrowsWithPs) {
  // Eq. (2) conclusion: "lookup failure ratio increases if ps increases".
  const double low = peers_out_of_flood_range(make(0.6, 3, 1));
  const double high = peers_out_of_flood_range(make(0.95, 3, 1));
  EXPECT_GE(high, low);
}

TEST(Model, OutOfRangeShrinksWithTtl) {
  // "...while it decreases when ttl increases."
  const double t1 = peers_out_of_flood_range(make(0.95, 3, 1));
  const double t4 = peers_out_of_flood_range(make(0.95, 3, 4));
  EXPECT_GE(t1, t4);
}

TEST(Model, FailureRatioBoundedAndZeroForSmallPs) {
  for (double ps : {0.0, 0.2, 0.4}) {
    EXPECT_DOUBLE_EQ(lookup_failure_ratio(make(ps, 3, 2)), 0.0)
        << "ps=" << ps;
  }
  for (double ps : {0.9, 0.97}) {
    const double r = lookup_failure_ratio(make(ps, 3, 1));
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(Model, LookupHopsDecreaseWithPsWhenConstrained) {
  // Fig. 3b / Fig. 6a: structured slowest, more s-peers shorter.
  const double at0 = lookup_hops_constrained(make(0.05));
  const double at9 = lookup_hops_constrained(make(0.9));
  EXPECT_GT(at0, at9);
}

TEST(Model, LargerDeltaShortensConstrainedLookups) {
  const double d2 = lookup_hops_constrained(make(0.95, 2));
  const double d8 = lookup_hops_constrained(make(0.95, 8));
  EXPECT_GE(d2, d8);
}

TEST(Model, UnconstrainedLatencyBelowRingPlusTwo) {
  const auto p = make(0.5);
  EXPECT_LE(lookup_hops_unconstrained(p),
            2.0 + tpeer_join_hops(p) + 1.0);
}

TEST(Model, DegenerateEndsAreFinite) {
  for (double ps : {0.0, 0.999, 1.0}) {
    EXPECT_TRUE(std::isfinite(average_join_hops(make(std::min(ps, 0.999)))));
    EXPECT_TRUE(
        std::isfinite(lookup_hops_constrained(make(std::min(ps, 0.999)))));
  }
}

}  // namespace
}  // namespace hp2p::analysis
