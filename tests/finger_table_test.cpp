// Unit tests for the Chord finger table shared by the baseline and the
// t-network.
#include <gtest/gtest.h>

#include "chord/finger_table.hpp"
#include "common/rng.hpp"

namespace hp2p::chord {
namespace {

TEST(FingerTable, InitSetsPowerOfTwoStarts) {
  FingerTable t;
  t.init(PeerId{100});
  for (unsigned k = 0; k < FingerTable::size(); ++k) {
    EXPECT_EQ(t.entry(k).start,
              ring::reduce(100 + (std::uint64_t{1} << k)));
    EXPECT_EQ(t.entry(k).node, kNoPeer);
  }
}

TEST(FingerTable, SetAndEvict) {
  FingerTable t;
  t.init(PeerId{0});
  t.set(3, PeerIndex{7}, PeerId{500});
  t.set(5, PeerIndex{7}, PeerId{500});
  t.set(6, PeerIndex{9}, PeerId{900});
  t.evict(PeerIndex{7});
  EXPECT_EQ(t.entry(3).node, kNoPeer);
  EXPECT_EQ(t.entry(5).node, kNoPeer);
  EXPECT_EQ(t.entry(6).node, PeerIndex{9});
}

TEST(FingerTable, SubstituteRewritesAllEntries) {
  FingerTable t;
  t.init(PeerId{0});
  t.set(1, PeerIndex{4}, PeerId{100});
  t.set(2, PeerIndex{4}, PeerId{100});
  t.substitute(PeerIndex{4}, PeerIndex{8}, PeerId{100});
  EXPECT_EQ(t.entry(1).node, PeerIndex{8});
  EXPECT_EQ(t.entry(2).node, PeerIndex{8});
  EXPECT_EQ(t.entry(1).node_id, PeerId{100});
}

TEST(FingerTable, ClosestPrecedingEmptyTableReturnsNoPeer) {
  FingerTable t;
  t.init(PeerId{10});
  EXPECT_EQ(t.closest_preceding(5000).node, kNoPeer);
}

TEST(FingerTable, ClosestPrecedingPicksFurthestBeforeTarget) {
  FingerTable t;
  t.init(PeerId{0});
  t.set(4, PeerIndex{1}, PeerId{20});     // 2^4 = 16 -> node at 20
  t.set(8, PeerIndex{2}, PeerId{300});    // 2^8 = 256 -> node at 300
  t.set(12, PeerIndex{3}, PeerId{5000});  // 2^12 -> node at 5000
  // Target 400: node 300 is the furthest finger strictly before it.
  EXPECT_EQ(t.closest_preceding(400).node, PeerIndex{2});
  // Target 21: only node 20 precedes it.
  EXPECT_EQ(t.closest_preceding(21).node, PeerIndex{1});
  // Target 10: no finger lies in (0, 10).
  EXPECT_EQ(t.closest_preceding(10).node, kNoPeer);
}

TEST(FingerTable, ClosestPrecedingWrapsRing) {
  FingerTable t;
  const PeerId own{kRingSize - 100};
  t.init(own);
  t.set(4, PeerIndex{1}, PeerId{kRingSize - 50});
  t.set(8, PeerIndex{2}, PeerId{40});
  // Target 60 (past zero): node at 40 precedes it on the wrapped arc.
  EXPECT_EQ(t.closest_preceding(60).node, PeerIndex{2});
  // Target kRingSize-40: only the finger at kRingSize-50 lies in
  // (kRingSize-100, kRingSize-40).
  EXPECT_EQ(t.closest_preceding(kRingSize - 40).node, PeerIndex{1});
  // Target kRingSize-60: no finger lies in the short arc before it.
  EXPECT_EQ(t.closest_preceding(kRingSize - 60).node, kNoPeer);
}

TEST(FingerTable, ClosestPrecedingNeverReturnsNodeAtOrPastTarget) {
  // Property over random tables: the returned node id always lies strictly
  // inside (own, target).
  Rng rng{13};
  for (int trial = 0; trial < 200; ++trial) {
    FingerTable t;
    const PeerId own{rng.uniform(0, kRingSize - 1)};
    t.init(own);
    for (unsigned k = 0; k < FingerTable::size(); k += 2) {
      t.set(k, PeerIndex{k}, PeerId{rng.uniform(0, kRingSize - 1)});
    }
    const std::uint64_t target = rng.uniform(0, kRingSize - 1);
    const Finger f = t.closest_preceding(target);
    if (f.node != kNoPeer) {
      EXPECT_TRUE(ring::in_arc_open_open(f.node_id.value(), own.value(),
                                         target));
    }
  }
}

}  // namespace
}  // namespace hp2p::chord
