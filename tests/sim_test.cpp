// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hp2p::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3000);
  EXPECT_DOUBLE_EQ(SimTime::micros(1500).as_millis(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.5).as_seconds(), 2.5);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(SimTime::millis(1) + SimTime::millis(2), SimTime::millis(3));
  EXPECT_EQ(SimTime::millis(5) - SimTime::millis(2), SimTime::millis(3));
  SimTime t = SimTime::millis(1);
  t += SimTime::millis(4);
  EXPECT_EQ(t, SimTime::millis(5));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LT(SimTime::millis(999), SimTime::never());
}

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime{});
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::millis(30));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  SimTime fired{};
  s.schedule_at(SimTime::millis(10), [&] {
    s.schedule_after(SimTime::millis(5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, SimTime::millis(15));
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator s;
  SimTime fired = SimTime::never();
  s.schedule_at(SimTime::millis(10), [&] {
    s.schedule_at(SimTime::millis(1), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, SimTime::millis(10));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const TimerId id = s.schedule_at(SimTime::millis(5), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.stats().events_cancelled, 1u);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator s;
  const TimerId id = s.schedule_at(SimTime::millis(5), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelNullHandleFails) {
  Simulator s;
  EXPECT_FALSE(s.cancel(TimerId{}));
}

TEST(Simulator, CancelAfterFireFails) {
  Simulator s;
  const TimerId id = s.schedule_at(SimTime::millis(5), [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::millis(10), [&] { ++fired; });
  s.schedule_at(SimTime::millis(20), [&] { ++fired; });
  s.schedule_at(SimTime::millis(30), [&] { ++fired; });
  s.run_until(SimTime::millis(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), SimTime::millis(20));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator s;
  s.run_until(SimTime::millis(100));
  EXPECT_EQ(s.now(), SimTime::millis(100));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(SimTime::millis(1), chain);
  };
  s.schedule_after(SimTime::millis(1), chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), SimTime::millis(100));
}

TEST(Simulator, StatsCountScheduledAndExecuted) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_after(SimTime::millis(i), [] {});
  s.run();
  EXPECT_EQ(s.stats().events_scheduled, 5u);
  EXPECT_EQ(s.stats().events_executed, 5u);
}

TEST(Simulator, PendingEventsTracksLiveCount) {
  Simulator s;
  const TimerId a = s.schedule_after(SimTime::millis(1), [] {});
  s.schedule_after(SimTime::millis(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ManyTimersStressOrdering) {
  // Property: with many interleaved schedules/cancels, execution times are
  // monotone non-decreasing.
  Simulator s;
  std::vector<std::int64_t> times;
  std::vector<TimerId> ids;
  for (int i = 0; i < 1000; ++i) {
    const auto when = SimTime::micros((i * 7919) % 5000);
    ids.push_back(
        s.schedule_at(when, [&times, &s] { times.push_back(s.now().as_micros()); }));
  }
  for (size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
  s.run();
  for (size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i - 1], times[i]);
  EXPECT_EQ(times.size(), 1000u - (1000u + 2) / 3);
}

TEST(SimTime, ExpiredBoundaryIsInclusive) {
  // The one expiry convention everywhere: expired iff deadline <= now.
  const SimTime deadline = SimTime::millis(5);
  EXPECT_FALSE(expired(deadline, SimTime::millis(4)));
  EXPECT_TRUE(expired(deadline, deadline));
  EXPECT_TRUE(expired(deadline, SimTime::millis(6)));
}

TEST(Simulator, TraceHookSeesScheduleFireCancel) {
  Simulator s;
  std::vector<TraceEvent> events;
  s.set_trace([&](const TraceEvent& ev) { events.push_back(ev); });
  s.schedule_at(SimTime::millis(1), [] {});
  const TimerId gone = s.schedule_at(SimTime::millis(2), [] {});
  ASSERT_TRUE(s.cancel(gone));
  s.run();
  ASSERT_EQ(events.size(), 4u);  // two schedules, one cancel, one fire
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSchedule);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kSchedule);
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kCancel);
  EXPECT_EQ(events[2].seq, events[1].seq);
  EXPECT_EQ(events[2].when, SimTime::millis(2));
  EXPECT_EQ(events[3].kind, TraceEvent::Kind::kFire);
  EXPECT_EQ(events[3].seq, events[0].seq);
  EXPECT_EQ(events[3].when, SimTime::millis(1));
}

TEST(Simulator, CorpseSkipAccountingIsConsistent) {
  Simulator s;
  std::vector<TimerId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(s.schedule_at(SimTime::millis(i + 1), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending_events(), 3u);
  s.run_until(SimTime::millis(10));
  EXPECT_EQ(s.stats().events_scheduled, 6u);
  EXPECT_EQ(s.stats().events_cancelled, 3u);
  EXPECT_EQ(s.stats().events_executed, 3u);
  EXPECT_EQ(s.stats().corpses_skipped, 3u);
  EXPECT_EQ(s.now(), SimTime::millis(10));
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, StepSkipsCorpsesLikeRunUntil) {
  Simulator s;
  const TimerId a = s.schedule_at(SimTime::millis(1), [] {});
  s.schedule_at(SimTime::millis(2), [] {});
  s.cancel(a);
  EXPECT_TRUE(s.step());  // fires the live event, discarding the corpse
  EXPECT_EQ(s.now(), SimTime::millis(2));
  EXPECT_EQ(s.stats().corpses_skipped, 1u);
  EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace hp2p::sim
