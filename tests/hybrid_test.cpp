// Tests for the hybrid system: construction invariants, join/leave/crash
// protocols, data placement, lookup behaviour, and the Section 5
// enhancements.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "common/hashing.hpp"
#include "common/ring_math.hpp"
#include "hybrid/hybrid_system.hpp"
#include "tests/test_util.hpp"

namespace hp2p::hybrid {
namespace {

using testing::SimWorld;

/// Builds a hybrid system of `n` peers with an exact t/s split derived from
/// params.ps.  Joins are staggered; the simulation drains between batches so
/// the build is deterministic but still exercises some concurrency.
struct HybridFixture {
  explicit HybridFixture(std::uint64_t seed, HybridParams params,
                         std::uint32_t hosts = 200,
                         proto::OverlayNetworkOptions net_opts = {})
      : world(seed, hosts, net_opts),
        system(*world.network, params, HostIndex{0}, world.rng) {}

  void build(std::size_t n, bool tpeers_first = false) {
    const double ps = system.params().ps;
    auto n_t = static_cast<std::size_t>(
        std::max(1.0, (1.0 - ps) * static_cast<double>(n) + 0.5));
    n_t = std::min(n_t, n);
    std::vector<Role> roles(n, Role::kSPeer);
    for (std::size_t i = 0; i < n_t; ++i) roles[i] = Role::kTPeer;
    if (!tpeers_first) {
      // First peer must seed the ring; shuffle the rest.
      std::vector<Role> tail(roles.begin() + 1, roles.end());
      world.rng.shuffle(tail);
      std::copy(tail.begin(), tail.end(), roles.begin() + 1);
    }

    std::size_t completed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Role role = roles[i];
      world.sim.schedule_after(
          sim::SimTime::millis(static_cast<std::int64_t>(i) * 40), [&, role] {
            peers.push_back(system.add_peer_with_role(
                world.next_host(), role,
                [&](proto::JoinResult r) {
                  ++completed;
                  join_results.push_back(r);
                }));
          });
    }
    world.sim.run();
    ASSERT_EQ(completed, n) << "not every join completed";
  }

  /// Stores `count` uniform-keyed items from round-robin origins; returns
  /// the keys.
  std::vector<std::string> populate(std::size_t count) {
    std::vector<std::string> keys;
    std::size_t done_count = 0;
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back("key-" + std::to_string(i));
      const PeerIndex origin = peers[i % peers.size()];
      system.store(origin, keys.back(), i, [&] { ++done_count; });
    }
    world.sim.run();
    EXPECT_EQ(done_count, count);
    return keys;
  }

  SimWorld world;
  HybridSystem system;
  std::vector<PeerIndex> peers;
  std::vector<proto::JoinResult> join_results;
};

HybridParams defaults() {
  HybridParams p;
  p.ps = 0.5;
  p.delta = 3;
  p.ttl = 8;
  return p;
}

// --- Construction invariants ---------------------------------------------------

TEST(Hybrid, BuildProducesValidRingAndTrees) {
  HybridFixture f{41, defaults()};
  f.build(60);
  EXPECT_TRUE(f.system.verify_ring());
  EXPECT_TRUE(f.system.verify_trees());
  EXPECT_EQ(f.system.num_tpeers() + f.system.num_speers(), 60u);
}

TEST(Hybrid, RoleSplitMatchesPs) {
  HybridFixture f{42, defaults()};
  f.build(60);
  EXPECT_NEAR(static_cast<double>(f.system.num_tpeers()), 30.0, 1.0);
  EXPECT_NEAR(static_cast<double>(f.system.num_speers()), 30.0, 1.0);
}

TEST(Hybrid, PsZeroDegeneratesToPureRing) {
  auto p = defaults();
  p.ps = 0.0;
  HybridFixture f{43, p};
  f.build(30);
  EXPECT_EQ(f.system.num_tpeers(), 30u);
  EXPECT_EQ(f.system.num_speers(), 0u);
  EXPECT_TRUE(f.system.verify_ring());
}

TEST(Hybrid, HighPsYieldsLargeSNetworks) {
  auto p = defaults();
  p.ps = 0.9;
  HybridFixture f{44, p};
  f.build(50);
  EXPECT_NEAR(static_cast<double>(f.system.num_tpeers()), 5.0, 1.0);
  EXPECT_TRUE(f.system.verify_trees());
}

TEST(Hybrid, SPeersInheritTPeerPid) {
  HybridFixture f{45, defaults()};
  f.build(40);
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer) {
      EXPECT_EQ(f.system.pid_of(p),
                f.system.pid_of(f.system.tpeer_of(p)));
    }
  }
}

TEST(Hybrid, TreeDegreeRespectsDelta) {
  auto params = defaults();
  params.ps = 0.85;
  params.delta = 3;
  HybridFixture f{46, params};
  f.build(60);
  for (const auto p : f.peers) {
    unsigned degree = static_cast<unsigned>(f.system.children_of(p).size());
    if (f.system.role_of(p) == Role::kSPeer) ++degree;  // cp link
    EXPECT_LE(degree, params.delta) << "peer " << p.value();
  }
}

TEST(Hybrid, SegmentsPartitionTheRing) {
  HybridFixture f{47, defaults()};
  f.build(40);
  // Each t-peer's segment is (pred, self]; walking successors the segments
  // must tile the whole id space.
  std::uint64_t covered = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) != Role::kTPeer) continue;
    const auto [lo, hi] = f.system.segment_of(p);
    covered += ring::distance_cw(lo.value(), hi.value());
  }
  EXPECT_EQ(covered, kRingSize);
}

TEST(Hybrid, JoinLatencyMeasured) {
  HybridFixture f{48, defaults()};
  f.build(30);
  ASSERT_EQ(f.join_results.size(), 30u);
  // All but the seed require at least a server round trip.
  for (std::size_t i = 1; i < f.join_results.size(); ++i) {
    EXPECT_GT(f.join_results[i].latency.as_micros(), 0);
  }
}

TEST(Hybrid, SmallestSNetworkAssignmentBalances) {
  // With the ring in place first, smallest-first assignment must keep the
  // s-network sizes within a couple of peers of each other.  (Interleaved
  // t-joins necessarily skew sizes: peers assigned before a t-peer exists
  // cannot retroactively move.)
  auto params = defaults();
  params.ps = 0.8;
  HybridFixture f{49, params};
  f.build(50, /*tpeers_first=*/true);
  std::vector<std::size_t> sizes;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer) {
      sizes.push_back(f.system.snetwork_members(p).size());
    }
  }
  ASSERT_FALSE(sizes.empty());
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*mx - *mn, 3u) << "s-network sizes spread too far";
}

// --- Data placement ----------------------------------------------------------------

TEST(Hybrid, StoreKeepsLocalSegmentDataAtOrigin) {
  HybridFixture f{50, defaults()};
  f.build(30);
  // Find a peer and a data id inside its own segment.
  const PeerIndex origin = f.peers[3];
  const auto [lo, hi] = f.system.segment_of(f.system.tpeer_of(origin));
  const DataId id{ring::midpoint_cw(lo.value(), hi.value())};
  bool done = false;
  f.system.store_id(origin, id, "local", 1, [&] { done = true; });
  f.world.sim.run();
  EXPECT_TRUE(done);
  EXPECT_NE(f.system.store_of(origin).find(id), nullptr);
}

TEST(Hybrid, StoreRoutesCrossSegmentDataToOwnerSNetwork) {
  HybridFixture f{51, defaults()};
  f.build(30);
  std::size_t placed = 0;
  for (int i = 0; i < 50; ++i) {
    f.system.store(f.peers[static_cast<std::size_t>(i) % f.peers.size()],
                   "x" + std::to_string(i), 1, [&] { ++placed; });
  }
  f.world.sim.run();
  EXPECT_EQ(placed, 50u);
  EXPECT_EQ(f.system.total_items(), 50u);
  // Every item must live inside the s-network that owns its id.
  for (const auto p : f.peers) {
    const PeerIndex my_root = f.system.tpeer_of(p);
    f.system.store_of(p).for_each([&](const proto::DataItem& item) {
      EXPECT_EQ(f.system.owner_tpeer(item.id), my_root)
          << "item misplaced at peer " << p.value();
    });
  }
}

TEST(Hybrid, Scheme1ConcentratesDataAtTPeers) {
  auto params = defaults();
  params.ps = 0.8;
  params.placement = PlacementScheme::kTPeerStores;
  HybridFixture f{52, params};
  f.build(40);
  f.populate(120);
  std::size_t at_tpeers = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer) {
      at_tpeers += f.system.store_of(p).size();
    }
  }
  // Under scheme 1 only locally generated items can sit at s-peers.
  EXPECT_GT(static_cast<double>(at_tpeers), 0.7 * 120);
}

TEST(Hybrid, Scheme2SpreadsDataAcrossSNetworks) {
  auto params = defaults();
  params.ps = 0.8;
  params.placement = PlacementScheme::kRandomSpread;
  HybridFixture f{53, params};
  f.build(40);
  f.populate(200);
  std::size_t at_speers = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer) {
      at_speers += f.system.store_of(p).size();
    }
  }
  EXPECT_GT(at_speers, 40u) << "scheme 2 left everything at t-peers";
}

TEST(Hybrid, Scheme2LeavesFewerEmptyPeersThanScheme1) {
  // The headline contrast of Fig. 4.
  auto run = [](PlacementScheme scheme) {
    auto params = defaults();
    params.ps = 0.8;
    params.placement = scheme;
    HybridFixture f{54, params};
    f.build(40);
    f.populate(200);
    const auto counts = f.system.items_per_peer();
    return static_cast<double>(
               std::count(counts.begin(), counts.end(), 0u)) /
           static_cast<double>(counts.size());
  };
  const double empty1 = run(PlacementScheme::kTPeerStores);
  const double empty2 = run(PlacementScheme::kRandomSpread);
  EXPECT_LT(empty2, empty1);
}

// --- Lookup ---------------------------------------------------------------------------

TEST(Hybrid, LookupFindsAllStoredKeys) {
  HybridFixture f{55, defaults()};
  f.build(40);
  const auto keys = f.populate(80);
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 7) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  EXPECT_EQ(successes, 80);
}

TEST(Hybrid, LookupMissingKeyTimesOut) {
  HybridFixture f{56, defaults()};
  f.build(20);
  bool called = false;
  const auto t0 = f.world.sim.now();
  f.system.lookup(f.peers[0], "missing", [&](proto::LookupResult r) {
    called = true;
    EXPECT_FALSE(r.success);
  });
  f.world.sim.run();
  EXPECT_TRUE(called);
  EXPECT_GE((f.world.sim.now() - t0).as_micros(),
            defaults().lookup_timeout.as_micros());
}

TEST(Hybrid, LookupReportsHopsAndContacts) {
  HybridFixture f{57, defaults()};
  f.build(40);
  const auto keys = f.populate(40);
  f.world.sim.run();
  std::uint64_t total_contacted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i + 11) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) {
                      if (r.success) total_contacted += r.peers_contacted;
                    });
  }
  f.world.sim.run();
  EXPECT_GT(total_contacted, 0u);
}

TEST(Hybrid, TinyTtlRaisesFailures) {
  auto run = [](unsigned ttl) {
    auto params = defaults();
    params.ps = 0.9;
    params.ttl = ttl;
    params.lookup_timeout = sim::SimTime::seconds(3);
    HybridFixture f{58, params};
    f.build(60);
    const auto keys = f.populate(80);
    int failures = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      f.system.lookup(f.peers[(i * 13) % f.peers.size()], keys[i],
                      [&](proto::LookupResult r) { failures += !r.success; });
    }
    f.world.sim.run();
    return failures;
  };
  const int fail_ttl1 = run(1);
  const int fail_ttl8 = run(8);
  EXPECT_GE(fail_ttl1, fail_ttl8);
  EXPECT_GT(fail_ttl1, 0);
}

TEST(Hybrid, RefloodRecoversDeepLocalItems) {
  auto params = defaults();
  params.ps = 0.9;
  params.ttl = 1;
  params.reflood_on_timeout = true;
  params.lookup_timeout = sim::SimTime::seconds(6);
  HybridFixture f{59, params};
  f.build(40);
  const auto keys = f.populate(60);
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 3) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  // Re-flooding with doubled TTL must beat the plain TTL=1 run.
  auto params2 = params;
  params2.reflood_on_timeout = false;
  HybridFixture g{59, params2};
  g.build(40);
  const auto keys2 = g.populate(60);
  int successes2 = 0;
  for (std::size_t i = 0; i < keys2.size(); ++i) {
    g.system.lookup(g.peers[(i * 3) % g.peers.size()], keys2[i],
                    [&](proto::LookupResult r) { successes2 += r.success; });
  }
  g.world.sim.run();
  EXPECT_GE(successes, successes2);
}

// Shared setup for the two reflood-regression tests: a system whose biggest
// s-network root owns a known item held below the root, plus a fault window
// that eats query traffic long enough to kill the first flood but not the
// armed re-flood (which fires at lookup_timeout / 2).
namespace reflood_regression {

constexpr auto kDropWindow = sim::SimTime::seconds(2);

PeerIndex biggest_root(HybridFixture& f) {
  PeerIndex root = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) != Role::kTPeer || !f.system.is_joined(p)) {
      continue;
    }
    if (root == kNoPeer || f.system.snetwork_members(p).size() >
                               f.system.snetwork_members(root).size()) {
      root = p;
    }
  }
  return root;
}

bool holds(const HybridFixture& f, PeerIndex p, DataId id) {
  return f.system.store_of(p).find(id) != nullptr;
}

HybridParams reflood_params(bool reflood) {
  auto params = defaults();
  params.ps = 0.9;
  params.reflood_on_timeout = reflood;
  params.lookup_timeout = sim::SimTime::seconds(6);
  // These scenarios drop query floods, not carriers: keep the ring-retry
  // hardening (and its end-to-end reroute, which would re-run the whole
  // lookup after the drop window closes) out of the picture so that
  // reflood_on_timeout stays the only discriminating variable.
  params.ring_retry_limit = 0;
  return params;
}

}  // namespace reflood_regression

TEST(Hybrid, RefloodRecoversLocalLookupFromQueryLossWindow) {
  using namespace reflood_regression;
  auto run = [](bool reflood) {
    HybridFixture f{61, reflood_params(reflood)};
    f.build(40, /*tpeers_first=*/true);
    const PeerIndex root = biggest_root(f);
    if (root == kNoPeer) {
      ADD_FAILURE() << "no t-peer with an s-network";
      return false;
    }
    // The root's own pid is always inside its segment (pred, pid].
    const DataId id{f.system.pid_of(root).value()};
    f.system.store_id(f.peers[0], id, "reflood-local", 1);
    f.world.sim.run();
    // Local-segment origin: a member of the root's s-network that does not
    // hold the item itself.
    PeerIndex origin = kNoPeer;
    for (const PeerIndex m : f.system.snetwork_members(root)) {
      if (m != root && !holds(f, m, id)) {
        origin = m;
        break;
      }
    }
    if (origin == kNoPeer) {
      ADD_FAILURE() << "no non-holding s-network member to look up from";
      return false;
    }
    const sim::SimTime window_end = f.world.sim.now() + kDropWindow;
    f.world.network->set_fault([&f, window_end](PeerIndex, PeerIndex,
                                                proto::TrafficClass cls,
                                                std::uint32_t) {
      proto::FaultAction a;
      a.drop = cls == proto::TrafficClass::kQuery &&
               f.world.sim.now() < window_end;
      return a;
    });
    bool success = false;
    f.system.lookup_id(origin, id,
                       [&success](proto::LookupResult r) {
                         success = r.success;
                       });
    f.world.sim.run();
    return success;
  };
  EXPECT_TRUE(run(true)) << "re-flood should recover the dropped flood";
  EXPECT_FALSE(run(false)) << "without re-flood the lookup must time out";
}

TEST(Hybrid, RefloodRecoversRemoteLookupFromOwnerFloodLoss) {
  using namespace reflood_regression;
  auto run = [](bool reflood) {
    HybridFixture f{62, reflood_params(reflood)};
    f.build(40, /*tpeers_first=*/true);
    const PeerIndex owner_root = biggest_root(f);
    if (owner_root == kNoPeer) {
      ADD_FAILURE() << "no t-peer with an s-network";
      return false;
    }
    // Store from outside the owner's s-network (a storer inside the
    // owner's segment would just keep the item locally) so items route to
    // the owner and spread down its tree.
    PeerIndex storer = kNoPeer;
    for (const auto p : f.peers) {
      if (f.system.is_joined(p) && f.system.role_of(p) == Role::kSPeer &&
          f.system.tpeer_of(p) != owner_root) {
        storer = p;
        break;
      }
    }
    if (storer == kNoPeer) {
      ADD_FAILURE() << "no storer outside the owner's s-network";
      return false;
    }
    // Store candidates in the owner's segment until one is spread below
    // the owner (the owner keeping a copy would answer without flooding).
    const auto [seg_lo, seg_hi] = f.system.segment_of(owner_root);
    DataId id{};
    bool found = false;
    int stored = 0;
    int held_by_owner = 0;
    for (std::uint64_t k = 0; k < 24 && !found; ++k) {
      const DataId candidate{ring::reduce(seg_hi.value() - k)};
      if (!ring::in_arc_open_closed(candidate.value(), seg_lo.value(),
                                    seg_hi.value())) {
        continue;
      }
      ++stored;
      f.system.store_id(storer, candidate,
                        "reflood-remote-" + std::to_string(k), k);
      f.world.sim.run();
      if (holds(f, owner_root, candidate)) {
        ++held_by_owner;
      } else {
        id = candidate;
        found = true;
      }
    }
    if (!found) {
      ADD_FAILURE() << "every candidate stuck at the owner t-peer; stored="
                    << stored << " held_by_owner=" << held_by_owner
                    << " children=" << f.system.children_of(owner_root).size()
                    << " members="
                    << f.system.snetwork_members(owner_root).size();
      return false;
    }
    // Remote origin: an s-peer from a different s-network.
    PeerIndex origin = kNoPeer;
    for (const auto p : f.peers) {
      if (f.system.is_joined(p) && f.system.role_of(p) == Role::kSPeer &&
          f.system.tpeer_of(p) != owner_root && !holds(f, p, id)) {
        origin = p;
        break;
      }
    }
    if (origin == kNoPeer) {
      ADD_FAILURE() << "no remote s-peer origin";
      return false;
    }
    // Eat only the owner's outgoing query traffic: the ring forward still
    // reaches the owner, whose s-network flood is what the window kills.
    const sim::SimTime window_end = f.world.sim.now() + kDropWindow;
    f.world.network->set_fault(
        [&f, owner_root, window_end](PeerIndex from, PeerIndex,
                                     proto::TrafficClass cls, std::uint32_t) {
          proto::FaultAction a;
          a.drop = from == owner_root &&
                   cls == proto::TrafficClass::kQuery &&
                   f.world.sim.now() < window_end;
          return a;
        });
    bool success = false;
    f.system.lookup_id(origin, id,
                       [&success](proto::LookupResult r) {
                         success = r.success;
                       });
    f.world.sim.run();
    return success;
  };
  EXPECT_TRUE(run(true))
      << "the remote path must arm a re-flood at the owner";
  EXPECT_FALSE(run(false)) << "without re-flood the lookup must time out";
}

// --- Graceful leave -----------------------------------------------------------------

TEST(Hybrid, TPeerLeavePromotesSPeerAndKeepsRingSize) {
  auto params = defaults();
  params.ps = 0.7;
  HybridFixture f{60, params};
  f.build(40);
  const std::size_t tpeers_before = f.system.num_tpeers();
  // Pick a t-peer with a non-empty s-network.
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer &&
        f.system.snetwork_members(p).size() > 1) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const PeerId victim_pid = f.system.pid_of(victim);
  f.system.leave(victim);
  f.world.sim.run();
  EXPECT_EQ(f.system.num_tpeers(), tpeers_before);
  EXPECT_TRUE(f.system.verify_ring());
  // The promoted peer inherits the exact ring position.
  bool pid_alive = false;
  for (const auto p : f.peers) {
    if (p != victim && f.system.is_joined(p) &&
        f.system.role_of(p) == Role::kTPeer &&
        f.system.pid_of(p) == victim_pid) {
      pid_alive = true;
    }
  }
  EXPECT_TRUE(pid_alive);
}

TEST(Hybrid, TPeerLeaveTransfersData) {
  auto params = defaults();
  params.ps = 0.7;
  HybridFixture f{61, params};
  f.build(40);
  f.populate(100);
  const std::size_t before = f.system.total_items();
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer &&
        f.system.snetwork_members(p).size() > 1) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  f.system.leave(victim);
  f.world.sim.run();
  EXPECT_EQ(f.system.total_items(), before);
}

TEST(Hybrid, LonerTPeerLeaveShrinksRing) {
  auto params = defaults();
  params.ps = 0.0;
  HybridFixture f{62, params};
  f.build(20);
  f.populate(50);
  const std::size_t before_items = f.system.total_items();
  f.system.leave(f.peers[7]);
  f.world.sim.run();
  EXPECT_EQ(f.system.num_tpeers(), 19u);
  EXPECT_TRUE(f.system.verify_ring());
  EXPECT_EQ(f.system.total_items(), before_items);  // loaddump to successor
}

TEST(Hybrid, SPeerLeaveRejoinsOrphans) {
  auto params = defaults();
  params.ps = 0.85;
  params.delta = 2;  // deep trees -> leaves have parents with children
  HybridFixture f{63, params};
  f.build(50);
  // Find an s-peer with children.
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer &&
        !f.system.children_of(p).empty()) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const auto orphans = f.system.children_of(victim);
  f.system.leave(victim);
  f.world.sim.run();
  EXPECT_FALSE(f.system.is_joined(victim));
  for (const auto o : orphans) {
    EXPECT_TRUE(f.system.is_joined(o)) << "orphan " << o.value();
  }
  EXPECT_TRUE(f.system.verify_trees());
}

TEST(Hybrid, SPeerLeaveTransfersLoad) {
  auto params = defaults();
  params.ps = 0.8;
  HybridFixture f{64, params};
  f.build(40);
  f.populate(150);
  const std::size_t before = f.system.total_items();
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer &&
        f.system.store_of(p).size() > 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  f.system.leave(victim);
  f.world.sim.run();
  EXPECT_EQ(f.system.total_items(), before);
}

TEST(Hybrid, SPeerLeaveSurvivesDeadHeirMidHandover) {
  // Regression: the graceful-leave handover used to be fire-and-forget; if
  // the chosen heir (the leaver's cp) crashed before the kData transfer
  // landed, the leaver's items vanished silently.  The sender now waits for
  // an ack and re-hands the load to the next live candidate.
  auto params = defaults();
  params.ps = 0.9;  // single t-peer, deep tree
  params.delta = 2;
  HybridFixture f{68, params};
  f.build(10);
  ASSERT_EQ(f.system.num_tpeers(), 1u);
  // An s-peer whose cp is itself an s-peer: that parent is the handover's
  // first-choice heir.
  PeerIndex leaver = kNoPeer;
  for (const auto p : f.peers) {
    const PeerIndex cp = f.system.parent_of(p);
    if (f.system.role_of(p) == Role::kSPeer && cp != kNoPeer &&
        f.system.role_of(cp) == Role::kSPeer) {
      leaver = p;
      break;
    }
  }
  ASSERT_NE(leaver, kNoPeer);
  const PeerIndex heir = f.system.parent_of(leaver);
  // One item, held by the leaver (single segment -> stores stay local).
  f.system.store_id(leaver, DataId{12345}, "survivor", 7);
  f.world.sim.run();
  ASSERT_NE(f.system.store_of(leaver).find(DataId{12345}), nullptr);
  // The heir crashes; the leave starts before anyone could have noticed.
  f.system.crash(heir);
  f.system.leave(leaver);
  f.world.sim.run();
  EXPECT_FALSE(f.system.is_joined(leaver));
  bool held = false;
  for (const auto p : f.peers) {
    if (!f.system.is_alive(p) || !f.system.is_joined(p)) continue;
    held |= f.system.store_of(p).find(DataId{12345}) != nullptr;
  }
  EXPECT_TRUE(held) << "handover to a dead heir lost the item";
  EXPECT_EQ(f.system.total_items(), 1u);
}

// --- Crash handling ------------------------------------------------------------------

TEST(Hybrid, CrashLosesOnlyTheVictimsData) {
  HybridFixture f{65, defaults()};
  f.build(30);
  f.populate(100);
  const std::size_t before = f.system.total_items();
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.store_of(p).size() > 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const std::size_t lost = f.system.store_of(victim).size();
  f.system.crash(victim);
  f.world.sim.run();
  EXPECT_EQ(f.system.total_items(), before - lost);
}

TEST(Hybrid, CrashedTPeerReplacedByOrphanCompetition) {
  auto params = defaults();
  params.ps = 0.7;
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  HybridFixture f{66, params};
  f.build(40);
  f.system.start_failure_detection();
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(3));

  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer &&
        f.system.children_of(p).size() > 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const std::size_t tpeers_before = f.system.num_tpeers();
  const PeerId victim_pid = f.system.pid_of(victim);
  f.system.crash(victim);
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(20));

  EXPECT_EQ(f.system.num_tpeers(), tpeers_before)
      << "no replacement was promoted";
  bool pid_taken = false;
  for (const auto p : f.peers) {
    if (p != victim && f.system.is_joined(p) &&
        f.system.role_of(p) == Role::kTPeer &&
        f.system.pid_of(p) == victim_pid) {
      pid_taken = true;
    }
  }
  EXPECT_TRUE(pid_taken);
  EXPECT_TRUE(f.system.verify_ring());
}

TEST(Hybrid, CrashedSPeerChildrenRejoin) {
  auto params = defaults();
  params.ps = 0.85;
  params.delta = 2;
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  HybridFixture f{67, params};
  f.build(50);
  f.system.start_failure_detection();
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(2));

  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer &&
        !f.system.children_of(p).empty()) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  const auto orphans = f.system.children_of(victim);
  f.system.crash(victim);
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(20));
  for (const auto o : orphans) {
    EXPECT_TRUE(f.system.is_joined(o));
    EXPECT_NE(f.system.parent_of(o), victim) << "stale connect point";
  }
}

TEST(Hybrid, LookupAfterCrashRecoveryFailsOnlyForLostData) {
  // With failure detection running, a crashed s-peer's subtree rejoins; the
  // only items that stay unreachable are the ones the victim itself held.
  auto params = defaults();
  params.lookup_timeout = sim::SimTime::seconds(5);
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  HybridFixture f{68, params};
  f.build(30);
  const auto keys = f.populate(60);  // before heartbeats so run() drains
  f.system.start_failure_detection();
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer &&
        f.system.store_of(p).size() > 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  std::set<std::string> lost_keys;
  f.system.store_of(victim).for_each(
      [&](const proto::DataItem& item) { lost_keys.insert(item.key); });
  f.system.crash(victim);
  // Let the HELLO timeouts fire and the orphans re-attach.
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(20));

  int wrong = 0;
  for (const auto& key : keys) {
    const bool expect_success = lost_keys.count(key) == 0;
    PeerIndex origin = f.peers[0];
    std::size_t i = 0;
    while (origin == victim) origin = f.peers[++i];
    f.system.lookup(origin, key, [&, expect_success](proto::LookupResult r) {
      wrong += (r.success != expect_success);
    });
  }
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(30));
  EXPECT_EQ(wrong, 0);
}

// --- Concurrency (Section 3.3) ---------------------------------------------------------

TEST(Hybrid, ConcurrentTJoinsKeepRingConsistent) {
  auto params = defaults();
  params.ps = 0.0;
  HybridFixture f{69, params};
  f.build(5);
  // Fire 20 joins at the same instant; the join queueing must serialize
  // them into a valid ring.
  std::size_t completed = 0;
  for (int i = 0; i < 20; ++i) {
    f.world.sim.schedule_after(sim::SimTime::millis(1), [&] {
      f.peers.push_back(f.system.add_peer_with_role(
          f.world.next_host(), Role::kTPeer,
          [&](proto::JoinResult) { ++completed; }));
    });
  }
  f.world.sim.run();
  EXPECT_EQ(completed, 20u);
  EXPECT_EQ(f.system.num_tpeers(), 25u);
  EXPECT_TRUE(f.system.verify_ring());
}

TEST(Hybrid, ConcurrentSJoinsKeepTreesConsistent) {
  auto params = defaults();
  params.ps = 0.9;
  HybridFixture f{70, params};
  f.build(10);
  std::size_t completed = 0;
  for (int i = 0; i < 30; ++i) {
    f.world.sim.schedule_after(sim::SimTime::millis(1), [&] {
      f.peers.push_back(f.system.add_peer_with_role(
          f.world.next_host(), Role::kSPeer,
          [&](proto::JoinResult) { ++completed; }));
    });
  }
  f.world.sim.run();
  EXPECT_EQ(completed, 30u);
  EXPECT_TRUE(f.system.verify_trees());
}

TEST(Hybrid, JoinDuringLeaveSettlesConsistently) {
  auto params = defaults();
  params.ps = 0.0;
  HybridFixture f{71, params};
  f.build(10);
  std::size_t completed = 0;
  f.world.sim.schedule_after(sim::SimTime::millis(1),
                             [&] { f.system.leave(f.peers[4]); });
  f.world.sim.schedule_after(sim::SimTime::millis(1), [&] {
    f.peers.push_back(f.system.add_peer_with_role(
        f.world.next_host(), Role::kTPeer,
        [&](proto::JoinResult) { ++completed; }));
  });
  f.world.sim.run();
  EXPECT_EQ(completed, 1u);
  EXPECT_TRUE(f.system.verify_ring());
  EXPECT_EQ(f.system.num_tpeers(), 10u);  // 10 - 1 + 1
}

TEST(Hybrid, ConcurrentRingLeavesSettleConsistently) {
  auto params = defaults();
  params.ps = 0.0;
  HybridFixture f{218, params};
  f.build(16);
  f.populate(50);
  const std::size_t items_before = f.system.total_items();
  // Two non-adjacent loner t-peers leave at the same instant: their leave
  // triangles must interleave without corrupting the ring or losing data.
  f.world.sim.schedule_after(sim::SimTime::millis(1),
                             [&] { f.system.leave(f.peers[3]); });
  f.world.sim.schedule_after(sim::SimTime::millis(1),
                             [&] { f.system.leave(f.peers[9]); });
  f.world.sim.run();
  EXPECT_EQ(f.system.num_tpeers(), 14u);
  EXPECT_TRUE(f.system.verify_ring());
  EXPECT_EQ(f.system.total_items(), items_before);
}

TEST(Hybrid, AdjacentRingLeavesSettleConsistently) {
  auto params = defaults();
  params.ps = 0.0;
  HybridFixture f{219, params};
  f.build(16);
  // Find two ring-adjacent peers: peer and its successor.
  // (Walk the build list and use pids.)
  PeerIndex a = f.peers[2];
  // Leave a, then its ring neighbour shortly after (overlapping triangles).
  f.world.sim.schedule_after(sim::SimTime::millis(1),
                             [&] { f.system.leave(a); });
  f.world.sim.schedule_after(sim::SimTime::millis(5),
                             [&] { f.system.leave(f.peers[5]); });
  f.world.sim.run();
  EXPECT_EQ(f.system.num_tpeers(), 14u);
  EXPECT_TRUE(f.system.verify_ring());
}

// --- Enhancements (Section 5) -----------------------------------------------------------

TEST(Hybrid, InterestBasedAssignmentGroupsByInterest) {
  auto params = defaults();
  params.ps = 0.8;
  params.interest_based = true;
  params.num_interests = 4;
  HybridFixture f{72, params};
  f.build(50);
  // Peers sharing an interest must share an s-network (same t-peer).
  std::map<std::uint32_t, std::set<std::uint32_t>> roots_by_interest;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer) {
      roots_by_interest[f.system.interest_of(p)].insert(
          f.system.tpeer_of(p).value());
    }
  }
  for (const auto& [interest, roots] : roots_by_interest) {
    EXPECT_EQ(roots.size(), 1u) << "interest " << interest << " split";
  }
}

TEST(Hybrid, TopologyAwareGroupsNearbyPeers) {
  auto params = defaults();
  params.ps = 0.8;
  params.topology_aware = true;
  params.num_landmarks = 8;
  HybridFixture base{73, defaults()};
  HybridFixture aware{73, params};
  auto mean_intra_latency = [](HybridFixture& f) {
    f.build(60);
    double total = 0;
    int count = 0;
    for (const auto p : f.peers) {
      if (f.system.role_of(p) != Role::kTPeer) continue;
      const auto members = f.system.snetwork_members(p);
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          total += static_cast<double>(
              f.world.underlay
                  ->latency(f.world.network->host_of(members[i]),
                            f.world.network->host_of(members[j]))
                  .as_micros());
          ++count;
        }
      }
    }
    return count > 0 ? total / count : 0.0;
  };
  auto params_base = defaults();
  params_base.ps = 0.8;
  HybridFixture base2{73, params_base};
  const double base_latency = mean_intra_latency(base2);
  const double aware_latency = mean_intra_latency(aware);
  EXPECT_LT(aware_latency, base_latency)
      << "landmark binning did not reduce intra-s-network distance";
}

TEST(Hybrid, BypassLinksFormAndShortcut) {
  auto params = defaults();
  params.ps = 0.8;
  params.bypass_links = true;
  HybridFixture f{74, params};
  f.build(40);
  const auto keys = f.populate(60);
  // Stores already create bypass links (rule 2 of Section 5.4).
  const std::size_t links_after_stores = f.system.num_bypass_links();
  // A leaf s-peer (tree degree 1) can always accept bypass links.
  PeerIndex origin = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer &&
        f.system.children_of(p).empty()) {
      origin = p;
      break;
    }
  }
  ASSERT_NE(origin, kNoPeer);
  int round1_contacts = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(origin, keys[i], [&](proto::LookupResult r) {
      if (r.success) round1_contacts += static_cast<int>(r.peers_contacted);
    });
  }
  f.world.sim.run();
  EXPECT_GE(f.system.num_bypass_links(), links_after_stores);
  EXPECT_GT(f.system.num_bypass_links(), 0u);
  // Second round from the same origin: bypass links shortcut the ring.
  int round2_contacts = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(origin, keys[i], [&](proto::LookupResult r) {
      if (r.success) round2_contacts += static_cast<int>(r.peers_contacted);
    });
  }
  f.world.sim.run();
  EXPECT_LT(round2_contacts, round1_contacts);
}

TEST(Hybrid, BypassLinksExpire) {
  auto params = defaults();
  params.ps = 0.8;
  params.bypass_links = true;
  params.bypass_lifetime = sim::SimTime::seconds(1);
  HybridFixture f{75, params};
  f.build(30);
  const auto keys = f.populate(40);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[0], keys[i], [](proto::LookupResult) {});
  }
  f.world.sim.run();
  const std::size_t links = f.system.num_bypass_links();
  EXPECT_GT(links, 0u);
  // After the lifetime passes, find_bypass treats them as dead; a new
  // lookup must go around the ring again (no assertion on count -- expired
  // links are pruned lazily, so we check behaviourally).
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(5));
  bool success = false;
  f.system.lookup(f.peers[0], keys[0],
                  [&](proto::LookupResult r) { success = r.success; });
  f.world.sim.run();
  EXPECT_TRUE(success);
}

TEST(Hybrid, StarTopologyKeepsDiameterTwo) {
  auto params = defaults();
  params.ps = 0.9;
  params.style = SNetworkStyle::kStar;
  HybridFixture f{76, params};
  f.build(40);
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kSPeer) {
      EXPECT_EQ(f.system.parent_of(p), f.system.tpeer_of(p));
    }
  }
}

TEST(Hybrid, BitTorrentStyleLookupAvoidsFlooding) {
  auto params = defaults();
  params.ps = 0.9;
  params.style = SNetworkStyle::kBitTorrent;
  HybridFixture f{77, params};
  f.build(40);
  const auto keys = f.populate(60);
  int successes = 0;
  std::uint64_t contacted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 7) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) {
                      successes += r.success;
                      contacted += r.peers_contacted;
                    });
  }
  f.world.sim.run();
  EXPECT_EQ(successes, 60);
  // Tracker mode contacts: cp chain + ring + tracker + holder; far fewer
  // than flooding a whole s-network per lookup.
  EXPECT_LT(static_cast<double>(contacted) / 60.0, 10.0);
}

TEST(Hybrid, MeshStyleFloodsWithDuplicateSuppression) {
  auto params = defaults();
  params.ps = 0.9;
  params.style = SNetworkStyle::kMesh;
  params.mesh_links = 3;
  HybridFixture f{78, params};
  f.build(40);
  const auto keys = f.populate(40);
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 3) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  EXPECT_GT(successes, 30);
}

TEST(Hybrid, CapacityAwareRolesPreferFastTPeers) {
  auto params = defaults();
  params.ps = 0.6;
  params.capacity_aware_roles = true;
  HybridFixture f{79, params, 300};
  // Use server-picked roles (add_peer) rather than forced ones.
  std::size_t completed = 0;
  for (int i = 0; i < 90; ++i) {
    f.world.sim.schedule_after(
        sim::SimTime::millis(static_cast<std::int64_t>(i) * 40), [&] {
          f.peers.push_back(f.system.add_peer(
              f.world.next_host(), [&](proto::JoinResult) { ++completed; }));
        });
  }
  f.world.sim.run();
  ASSERT_EQ(completed, 90u);
  // Among t-peers, the high-capacity share must exceed the population share
  // (1/3).
  std::size_t t_total = 0;
  std::size_t t_high = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer && f.system.is_joined(p)) {
      ++t_total;
      const auto host = f.world.network->host_of(p);
      t_high +=
          (f.world.underlay->capacity(host) == net::CapacityClass::kHigh);
    }
  }
  ASSERT_GT(t_total, 0u);
  EXPECT_GT(static_cast<double>(t_high) / static_cast<double>(t_total), 0.40);
}

// --- Additional recovery / enhancement paths ---------------------------------------

TEST(Hybrid, LonerTPeerCrashRepairsRingViaServer) {
  // A crashed t-peer with an empty s-network has no orphans to compete for
  // its slot: its ring neighbours must report it and the server reconnects
  // them (server_handle_ring_repair).
  auto params = defaults();
  params.ps = 0.0;  // every t-peer is a loner
  params.hello_interval = sim::SimTime::millis(500);
  params.hello_timeout = sim::SimTime::millis(1500);
  HybridFixture f{210, params};
  f.build(20);
  f.system.start_failure_detection();
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(2));
  const PeerIndex victim = f.peers[7];
  f.system.crash(victim);
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(20));
  EXPECT_EQ(f.system.num_tpeers(), 19u);
  EXPECT_TRUE(f.system.verify_ring()) << "ring not repaired around loner";
}

TEST(Hybrid, LinkUsageConnectLetsFastPeersTakeMoreChildren) {
  auto params = defaults();
  params.ps = 0.9;
  params.delta = 2;
  params.link_usage_connect = true;
  HybridFixture f{211, params, 300};
  f.build(80);
  // Some peer must exceed the base cap thanks to its fast access link.
  unsigned max_degree = 0;
  for (const auto p : f.peers) {
    unsigned degree = static_cast<unsigned>(f.system.children_of(p).size());
    if (f.system.role_of(p) == Role::kSPeer) ++degree;
    max_degree = std::max(max_degree, degree);
    // And nobody exceeds the scaled cap.
    const auto host = f.world.network->host_of(p);
    unsigned limit = params.delta;
    switch (f.world.underlay->capacity(host)) {
      case net::CapacityClass::kLow:
        break;
      case net::CapacityClass::kMedium:
        limit *= 2;
        break;
      case net::CapacityClass::kHigh:
        limit *= 3;
        break;
    }
    EXPECT_LE(degree, limit);
  }
  EXPECT_GT(max_degree, params.delta);
}

TEST(Hybrid, BitTorrentTrackerSurvivesTPeerLeave) {
  auto params = defaults();
  params.ps = 0.9;
  params.style = SNetworkStyle::kBitTorrent;
  HybridFixture f{212, params};
  f.build(40);
  const auto keys = f.populate(60);
  // Gracefully retire a t-peer with members; its tracker index must move to
  // the promoted heir.
  PeerIndex victim = kNoPeer;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) == Role::kTPeer &&
        f.system.snetwork_members(p).size() > 2) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  f.system.leave(victim);
  f.world.sim.run();
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    PeerIndex origin = f.peers[(i * 7) % f.peers.size()];
    if (origin == victim) origin = f.peers[(i * 7 + 1) % f.peers.size()];
    f.system.lookup(origin, keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  EXPECT_EQ(successes, static_cast<int>(keys.size()))
      << "tracker index lost in the promotion";
}

TEST(Hybrid, LossyTransportDegradesButDoesNotWedge) {
  auto params = defaults();
  params.ttl = 8;
  params.lookup_timeout = sim::SimTime::seconds(5);
  proto::OverlayNetworkOptions lossy;
  lossy.loss_rate = 0.02;
  HybridFixture f{213, params, 200, lossy};
  // Builds can stall if a triangle message is lost; accept partial builds
  // and just require the system to remain usable and consistent.
  const double ps = params.ps;
  auto n_t = static_cast<std::size_t>(std::max(1.0, (1.0 - ps) * 40.0));
  std::vector<Role> roles(40, Role::kSPeer);
  for (std::size_t i = 0; i < n_t; ++i) roles[i] = Role::kTPeer;
  for (std::size_t i = 0; i < 40; ++i) {
    const Role role = roles[i];
    f.world.sim.schedule_after(
        sim::SimTime::millis(static_cast<std::int64_t>(i) * 60),
        [&, role] {
          f.peers.push_back(
              f.system.add_peer_with_role(f.world.next_host(), role, {}));
        });
  }
  f.world.sim.run();
  const auto live = f.system.live_peers();
  ASSERT_GT(live.size(), 10u);
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    f.system.store(live[static_cast<std::size_t>(i) % live.size()],
                   "lk" + std::to_string(i), 1);
  }
  f.world.sim.run();
  for (int i = 0; i < 40; ++i) {
    f.system.lookup(live[static_cast<std::size_t>(i * 3) % live.size()],
                    "lk" + std::to_string(i),
                    [&](proto::LookupResult) { ++done; });
  }
  f.world.sim.run();
  EXPECT_EQ(done, 40) << "every lookup must resolve (success or timeout)";
  EXPECT_GT(f.world.network->stats().messages_lost, 0u);
}

TEST(Hybrid, QueryTrafficSubstitutesForHellos) {
  // Section 3.2.2: acknowledgments to data queries reset the HELLO timers,
  // so steady query traffic suppresses scheduled HELLO messages.
  auto run = [](bool with_queries) {
    auto params = defaults();
    params.ps = 0.8;
    params.hello_interval = sim::SimTime::millis(500);
    params.hello_timeout = sim::SimTime::millis(2000);
    HybridFixture f{214, params};
    f.build(30);
    const auto keys = f.populate(30);
    f.system.start_failure_detection();
    if (with_queries) {
      // Sustained lookups for 10 seconds.
      for (int i = 0; i < 100; ++i) {
        f.world.sim.schedule_after(
            sim::SimTime::millis(static_cast<std::int64_t>(i) * 100), [&, i] {
              f.system.lookup(
                  f.peers[static_cast<std::size_t>(i) % f.peers.size()],
                  keys[static_cast<std::size_t>(i) % keys.size()],
                  [](proto::LookupResult) {});
            });
      }
    }
    f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(10));
    return f.world.network->stats().class_messages(
        proto::TrafficClass::kHeartbeat);
  };
  const auto idle_hellos = run(false);
  const auto busy_hellos = run(true);
  // Acks replace some HELLOs but each ack is itself a heartbeat-class
  // message; the invariant is that the busy system does not flood more
  // heartbeat traffic than idle + the ack budget.
  EXPECT_GT(idle_hellos, 0u);
  EXPECT_LE(busy_hellos, idle_hellos * 2);
}

TEST(Hybrid, KeywordSearchRespectsTtl) {
  auto params = defaults();
  params.ps = 0.95;
  params.delta = 2;  // deep tree
  params.ttl = 1;    // keyword flood radius
  HybridFixture f{215, params};
  f.build(40);
  // Plant matches everywhere in one s-network.
  const PeerIndex origin = f.peers[10];
  const auto root = f.system.tpeer_of(origin);
  const auto members = f.system.snetwork_members(root);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto [lo, hi] = f.system.segment_of(root);
    f.system.store_id(members[i], DataId{ring::reduce(lo.value() + 1 + i)},
                      "ttltest-" + std::to_string(i), 1);
  }
  f.world.sim.run();
  HybridSystem::KeywordResult result;
  f.system.lookup_keyword(origin, "ttltest", sim::SimTime::seconds(5),
                          [&](HybridSystem::KeywordResult r) {
                            result = std::move(r);
                          });
  f.world.sim.run();
  // TTL=1 reaches only the origin's direct neighbours; a deep tree has
  // more members than that.
  EXPECT_LT(result.keys.size(), members.size());
  EXPECT_LE(result.peers_contacted, 3u);  // cp + at most delta-1 children
}

// --- Random-walk search (Sections 1/3.1) ----------------------------------------------

TEST(Hybrid, RandomWalkFindsLocalData) {
  auto params = defaults();
  params.ps = 0.9;
  params.s_search = SSearch::kRandomWalk;
  params.ttl = 30;
  params.walkers = 6;
  HybridFixture f{200, params};
  f.build(40);
  const auto keys = f.populate(60);
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 5) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  EXPECT_GT(successes, 45) << "random walks should find most items";
}

TEST(Hybrid, SingleWalkerUsesFewerMessagesThanFloodOnBigTrees) {
  // A flood always covers the whole TTL ball; one walker stops at the first
  // hit.  The gap shows on big, well-mixed s-networks (random walks mix
  // poorly on trees, which is why the paper pairs walks with arbitrary
  // topologies).
  auto run = [](SSearch mode) {
    auto params = defaults();
    params.ps = 0.95;
    params.style = SNetworkStyle::kMesh;
    params.mesh_links = 3;
    params.s_search = mode;
    params.ttl = mode == SSearch::kFlood ? 10 : 40;
    params.walkers = 1;
    params.lookup_timeout = sim::SimTime::seconds(8);
    HybridFixture f{201, params};
    f.build(60);
    const auto keys = f.populate(60);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      f.system.lookup(f.peers[(i * 3) % f.peers.size()], keys[i],
                      [](proto::LookupResult) {});
    }
    f.world.sim.run();
    return f.world.network->stats().class_messages(
        proto::TrafficClass::kQuery);
  };
  EXPECT_LT(run(SSearch::kRandomWalk), run(SSearch::kFlood));
}

// --- Section 7 caching scheme ------------------------------------------------------

TEST(Hybrid, CachingServesRepeatLookupsFromRequesters) {
  auto params = defaults();
  params.ps = 0.8;
  params.enable_caching = true;
  params.cache_capacity = 8;
  HybridFixture f{202, params};
  f.build(40);
  const auto keys = f.populate(20);
  // Round 1: everyone fetches the same hot key.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < f.peers.size(); i += 3) {
      f.system.lookup(f.peers[i], keys[0], [](proto::LookupResult) {});
    }
    f.world.sim.run();
  }
  EXPECT_GT(f.system.cache_hits(), 0u);
}

TEST(Hybrid, CachingReducesHotSpotLoad) {
  auto run = [](bool caching) {
    auto params = defaults();
    params.ps = 0.8;
    params.enable_caching = caching;
    HybridFixture f{203, params};
    f.build(40);
    const auto keys = f.populate(10);
    for (int round = 0; round < 4; ++round) {
      for (std::size_t i = 0; i < f.peers.size(); i += 2) {
        f.system.lookup(f.peers[i], keys[0], [](proto::LookupResult) {});
      }
      f.world.sim.run();
    }
    return f.system.max_answers_served();
  };
  const auto hot_without = run(false);
  const auto hot_with = run(true);
  EXPECT_LT(hot_with, hot_without)
      << "caching should spread the hosting peer's load";
}

TEST(Hybrid, CacheEntriesExpire) {
  auto params = defaults();
  params.ps = 0.8;
  params.enable_caching = true;
  params.cache_ttl = sim::SimTime::seconds(1);
  HybridFixture f{204, params};
  f.build(30);
  const auto keys = f.populate(10);
  f.system.lookup(f.peers[2], keys[0], [](proto::LookupResult) {});
  f.world.sim.run();
  const auto hits_before = f.system.cache_hits();
  // Long after expiry, a fresh lookup must not be served from the stale
  // cache entry at the earlier requester.
  f.world.sim.run_until(f.world.sim.now() + sim::SimTime::seconds(30));
  bool success = false;
  f.system.lookup(f.peers[2], keys[0],
                  [&](proto::LookupResult r) { success = r.success; });
  f.world.sim.run();
  EXPECT_TRUE(success);
  // The origin's own cache is consulted only via try_answer at other peers;
  // its local expired entry cannot produce a hit.
  EXPECT_GE(f.system.cache_hits(), hits_before);
}

// --- Keyword / partial search (Section 5.3) -------------------------------------------

TEST(Hybrid, KeywordSearchFindsMatchesInOwnSNetwork) {
  auto params = defaults();
  params.ps = 0.9;
  params.ttl = 10;
  HybridFixture f{205, params};
  f.build(30);
  // Plant keyword-bearing items inside one s-network.
  const PeerIndex origin = f.peers[5];
  const auto members = f.system.snetwork_members(f.system.tpeer_of(origin));
  ASSERT_GE(members.size(), 3u);
  int planted = 0;
  for (std::size_t i = 0; i < members.size() && planted < 3; ++i, ++planted) {
    const auto [lo, hi] = f.system.segment_of(f.system.tpeer_of(origin));
    const DataId id{ring::midpoint_cw(lo.value(), hi.value()) +
                    static_cast<std::uint64_t>(planted)};
    f.system.store_id(members[i], id,
                      "holiday-video-" + std::to_string(planted), 1);
  }
  f.world.sim.run();
  HybridSystem::KeywordResult result;
  bool called = false;
  f.system.lookup_keyword(origin, "holiday", sim::SimTime::seconds(5),
                          [&](HybridSystem::KeywordResult r) {
                            called = true;
                            result = std::move(r);
                          });
  f.world.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result.keys.size(), 3u);
}

TEST(Hybrid, KeywordSearchIgnoresNonMatches) {
  auto params = defaults();
  params.ps = 0.8;
  HybridFixture f{206, params};
  f.build(30);
  f.populate(50);  // keys are "key-N", no "zebra" anywhere
  bool called = false;
  f.system.lookup_keyword(f.peers[3], "zebra", sim::SimTime::seconds(5),
                          [&](HybridSystem::KeywordResult r) {
                            called = true;
                            EXPECT_TRUE(r.keys.empty());
                          });
  f.world.sim.run();
  EXPECT_TRUE(called);
}

TEST(Hybrid, GlobalKeywordSearchReachesEverySNetwork) {
  auto params = defaults();
  params.ps = 0.8;
  params.ttl = 10;
  HybridFixture f{216, params};
  f.build(40);
  // Plant one matching item in every s-network (stored at the t-peer so
  // the ring walk alone suffices to see it).
  int planted = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) != Role::kTPeer) continue;
    const auto [lo, hi] = f.system.segment_of(p);
    f.system.store_id(p, DataId{ring::midpoint_cw(lo.value(), hi.value())},
                      "global-hit-" + std::to_string(planted), 1);
    ++planted;
  }
  f.world.sim.run();
  ASSERT_GT(planted, 3);
  HybridSystem::KeywordResult result;
  f.system.lookup_keyword_global(f.peers[5], "global-hit",
                                 sim::SimTime::seconds(60),
                                 [&](HybridSystem::KeywordResult r) {
                                   result = std::move(r);
                                 });
  f.world.sim.run();
  EXPECT_EQ(result.keys.size(), static_cast<std::size_t>(planted));
}

TEST(Hybrid, LocalKeywordSearchStaysLocal) {
  auto params = defaults();
  params.ps = 0.8;
  params.ttl = 10;
  HybridFixture f{217, params};
  f.build(40);
  int planted = 0;
  for (const auto p : f.peers) {
    if (f.system.role_of(p) != Role::kTPeer) continue;
    const auto [lo, hi] = f.system.segment_of(p);
    f.system.store_id(p, DataId{ring::midpoint_cw(lo.value(), hi.value())},
                      "local-only-" + std::to_string(planted), 1);
    ++planted;
  }
  f.world.sim.run();
  HybridSystem::KeywordResult result;
  f.system.lookup_keyword(f.peers[5], "local-only", sim::SimTime::seconds(10),
                          [&](HybridSystem::KeywordResult r) {
                            result = std::move(r);
                          });
  f.world.sim.run();
  // Only the requester's own s-network is searched.
  EXPECT_LE(result.keys.size(), 1u);
}

// --- Parameterized invariant sweep over p_s ----------------------------------------------

class HybridPsSweep : public ::testing::TestWithParam<double> {};

TEST_P(HybridPsSweep, InvariantsAndLookupsHoldAcrossPs) {
  auto params = defaults();
  params.ps = GetParam();
  params.ttl = 10;
  HybridFixture f{80 + static_cast<std::uint64_t>(GetParam() * 100), params};
  f.build(40);
  EXPECT_TRUE(f.system.verify_ring());
  EXPECT_TRUE(f.system.verify_trees());
  const auto keys = f.populate(60);
  int successes = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    f.system.lookup(f.peers[(i * 7 + 3) % f.peers.size()], keys[i],
                    [&](proto::LookupResult r) { successes += r.success; });
  }
  f.world.sim.run();
  EXPECT_EQ(successes, 60) << "lookup failures at ps=" << GetParam();
  EXPECT_EQ(f.system.total_items(), 60u);
}

INSTANTIATE_TEST_SUITE_P(PsValues, HybridPsSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.95));

// --- Parameterized sweep over delta -------------------------------------------------------

class HybridDeltaSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HybridDeltaSweep, TreeDegreeCapHolds) {
  auto params = defaults();
  params.ps = 0.9;
  params.delta = GetParam();
  HybridFixture f{90 + GetParam(), params};
  f.build(50);
  EXPECT_TRUE(f.system.verify_trees());
  for (const auto p : f.peers) {
    unsigned degree = static_cast<unsigned>(f.system.children_of(p).size());
    if (f.system.role_of(p) == Role::kSPeer) ++degree;
    EXPECT_LE(degree, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, HybridDeltaSweep,
                         ::testing::Values(2u, 3u, 4u, 8u));

// --- Lookup edge cases -------------------------------------------------------

TEST(Hybrid, DetachedOrphanLookupFailsFast) {
  HybridFixture f{77, defaults()};
  f.build(30);
  const auto keys = f.populate(20);
  // A freshly added s-peer has neither a tree parent nor a t-peer until its
  // join completes; a lookup issued from it has no upward path and must
  // fail immediately instead of burning the whole lookup_timeout.
  const PeerIndex orphan =
      f.system.add_peer_with_role(f.world.next_host(), Role::kSPeer);
  bool called = false;
  proto::LookupResult res;
  f.system.lookup(orphan, keys[0], [&](proto::LookupResult r) {
    called = true;
    res = r;
  });
  EXPECT_TRUE(called) << "fast fail must not wait for the simulator";
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.fast_fail);

  proto::LookupStats stats;
  stats.record(res);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.fast_failed, 1u);
}

TEST(Hybrid, CacheEntryExpiresExactlyAtDeadline) {
  auto params = defaults();
  params.enable_caching = true;
  params.cache_capacity = 8;
  params.cache_ttl = sim::SimTime::seconds(10);
  HybridFixture f{78, params};
  f.build(40);
  const auto keys = f.populate(40);

  // Pick a key the origin neither stores nor owns, so a successful lookup
  // caches it at the origin.
  const PeerIndex origin = f.peers[1];
  std::string key;
  for (const auto& k : keys) {
    const DataId id = hash_key(k);
    if (f.system.owner_tpeer(id) != f.system.tpeer_of(origin) &&
        f.system.store_of(origin).find(id) == nullptr) {
      key = k;
      break;
    }
  }
  ASSERT_FALSE(key.empty());

  sim::SimTime cached_at{};
  bool fetched = false;
  f.system.lookup(origin, key, [&](proto::LookupResult r) {
    fetched = r.success;
    cached_at = f.world.sim.now();  // cache_put runs in this same event
  });
  f.world.sim.run();
  ASSERT_TRUE(fetched);
  const std::uint64_t hits_after_fetch = f.system.cache_hits();

  const sim::SimTime deadline = cached_at + params.cache_ttl;
  bool hit_before = false;
  f.world.sim.schedule_at(deadline - sim::SimTime::micros(1), [&] {
    f.system.lookup(origin, key, [&](proto::LookupResult r) {
      hit_before = r.success && r.found_at == origin;
    });
  });
  bool miss_checked = false;
  f.world.sim.schedule_at(deadline, [&] {
    f.system.lookup(origin, key, [&](proto::LookupResult r) {
      miss_checked = true;
      // Entry exactly at expires == now is dead: served remotely again.
      EXPECT_TRUE(r.success);
      EXPECT_NE(r.found_at, origin);
      EXPECT_GT(r.latency, sim::SimTime{});
    });
  });
  f.world.sim.run();
  EXPECT_TRUE(hit_before) << "one microsecond early must still hit";
  EXPECT_TRUE(miss_checked);
  EXPECT_EQ(f.system.cache_hits(), hits_after_fetch + 1)
      << "only the pre-deadline lookup may count as a cache hit";
}

}  // namespace
}  // namespace hp2p::hybrid
