// Tests for workload generation.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "workload/scenario.hpp"
#include "workload/workload.hpp"

namespace hp2p::workload {
namespace {

TEST(Workload, UniformCorpusDistinctKeys) {
  const auto items = uniform_corpus(500, 7);
  std::set<std::string> keys;
  std::set<std::uint64_t> ids;
  for (const auto& item : items) {
    keys.insert(item.key);
    ids.insert(item.id.value());
    EXPECT_EQ(item.id, hash_key(item.key));
  }
  EXPECT_EQ(keys.size(), 500u);
  EXPECT_GE(ids.size(), 499u);  // hash collisions essentially impossible
}

TEST(Workload, CorpusDeterministicInSeed) {
  const auto a = uniform_corpus(10, 3);
  const auto b = uniform_corpus(10, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
  }
  const auto c = uniform_corpus(10, 4);
  EXPECT_NE(a[0].value, c[0].value);
}

TEST(Workload, RandomIdInArcStaysInside) {
  Rng rng{5};
  const PeerId lo{100};
  const PeerId hi{500};
  for (int i = 0; i < 1000; ++i) {
    const DataId id = random_id_in_arc(rng, lo, hi);
    EXPECT_TRUE(
        ring::in_arc_open_closed(id.value(), lo.value(), hi.value()))
        << id.value();
  }
}

TEST(Workload, RandomIdInWrappingArc) {
  Rng rng{6};
  const PeerId lo{kRingSize - 50};
  const PeerId hi{50};
  for (int i = 0; i < 1000; ++i) {
    const DataId id = random_id_in_arc(rng, lo, hi);
    EXPECT_TRUE(
        ring::in_arc_open_closed(id.value(), lo.value(), hi.value()));
  }
}

TEST(Workload, RandomIdFullCircleWhenDegenerate) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(random_id_in_arc(rng, PeerId{42}, PeerId{42}).value());
  }
  EXPECT_GT(seen.size(), 90u);  // spans the whole ring
}

TEST(Workload, ZipfRankZeroMostPopular) {
  Rng rng{8};
  ZipfSampler zipf{100, 1.0};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(Workload, ZipfExponentZeroIsUniform) {
  Rng rng{9};
  ZipfSampler zipf{10, 0.0};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(Workload, ZipfSamplesInRange) {
  Rng rng{10};
  ZipfSampler zipf{7, 1.2};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(Workload, ChurnScheduleSortedAndBounded) {
  Rng rng{11};
  const auto events =
      churn_schedule(rng, sim::SimTime::seconds(60), 1.0, 0.5, 0.2);
  EXPECT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  for (const auto& e : events) {
    EXPECT_LT(e.at, sim::SimTime::seconds(60));
    EXPECT_GE(e.at.as_micros(), 0);
  }
}

TEST(Workload, ChurnRatesApproximatelyRespected) {
  Rng rng{12};
  const auto events =
      churn_schedule(rng, sim::SimTime::seconds(1000), 2.0, 0.0, 0.0);
  EXPECT_NEAR(static_cast<double>(events.size()), 2000.0, 200.0);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, ChurnEvent::Kind::kJoin);
  }
}

TEST(Workload, ZeroRatesYieldNoEvents) {
  Rng rng{13};
  EXPECT_TRUE(
      churn_schedule(rng, sim::SimTime::seconds(10), 0, 0, 0).empty());
}

// --- Scenario op streams ------------------------------------------------------

TEST(Scenario, SameSeedStreamsByteIdentical) {
  const std::vector<std::shared_ptr<const Workload>> workloads = {
      std::make_shared<DiurnalWorkload>(),
      std::make_shared<HotKeyStormWorkload>(),
      std::make_shared<FlashCrowdWorkload>(),
      std::make_shared<SwarmWorkload>(),
  };
  for (const auto& w : workloads) {
    const std::string a = dump_stream(w->generate(17));
    const std::string b = dump_stream(w->generate(17));
    EXPECT_EQ(a, b) << w->name() << " is not deterministic in its seed";
    EXPECT_FALSE(a.empty()) << w->name();
    EXPECT_NE(a, dump_stream(w->generate(18)))
        << w->name() << " ignores its seed";
  }
}

TEST(Scenario, StreamsAreTimeSorted) {
  for (const std::shared_ptr<const Workload>& w :
       {std::shared_ptr<const Workload>{std::make_shared<DiurnalWorkload>()},
        std::shared_ptr<const Workload>{std::make_shared<SwarmWorkload>()}}) {
    const auto ops = w->generate(5);
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_LE(ops[i - 1].at, ops[i].at) << w->name() << " op " << i;
    }
  }
}

/// Fixed-stream workload: every op at the same instant, marked by `item`.
class MarkerWorkload final : public Workload {
 public:
  MarkerWorkload(std::string name, std::uint32_t marker, std::uint32_t count)
      : name_(std::move(name)), marker_(marker), count_(count) {}
  [[nodiscard]] const char* name() const override { return name_.c_str(); }
  [[nodiscard]] std::uint32_t num_items() const override { return 8; }
  [[nodiscard]] std::vector<Op> generate(std::uint64_t) const override {
    std::vector<Op> ops;
    for (std::uint32_t i = 0; i < count_; ++i) {
      ops.push_back(Op{Op::Kind::kLookup, Op::Origin::kAny,
                       sim::SimTime::seconds(1), marker_, i});
    }
    return ops;
  }

 private:
  std::string name_;
  std::uint32_t marker_;
  std::uint32_t count_;
};

TEST(Scenario, CompositionIsOrderStable) {
  // All ops tie on time, so a stable merge must keep every op of the first
  // child ahead of the second's, in original relative order.
  const auto a = std::make_shared<MarkerWorkload>("a", 100, 3);
  const auto b = std::make_shared<MarkerWorkload>("b", 200, 3);
  const auto ab = compose(a, b)->generate(1);
  ASSERT_EQ(ab.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ab[i].item, 100u) << i;
    EXPECT_EQ(ab[i].pick, i);
    EXPECT_EQ(ab[i + 3].item, 200u) << i;
    EXPECT_EQ(ab[i + 3].pick, i);
  }
  const auto ba = compose(b, a)->generate(1);
  ASSERT_EQ(ba.size(), 6u);
  EXPECT_EQ(ba[0].item, 200u);
  EXPECT_EQ(ba[3].item, 100u);
}

TEST(Scenario, CompositionOfRealScenariosIsDeterministic) {
  const auto w = compose(std::make_shared<DiurnalWorkload>(),
                         std::make_shared<HotKeyStormWorkload>());
  const auto once = dump_stream(w->generate(9));
  EXPECT_EQ(once, dump_stream(w->generate(9)));
  const auto ops = w->generate(9);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LE(ops[i - 1].at, ops[i].at);
  }
  // The composite inherits the widest child's catalogue.
  EXPECT_EQ(w->num_items(),
            std::max(DiurnalWorkload{}.num_items(),
                     HotKeyStormWorkload{}.num_items()));
}

TEST(Scenario, CurveTimesMonotonicAndSized) {
  Rng rng{21};
  const RateCurve curve{{RatePhase{sim::SimTime::seconds(10), 2.0},
                         RatePhase{sim::SimTime::seconds(5), 8.0}}};
  const auto times = curve_times(curve, sim::SimTime{}, rng);
  EXPECT_EQ(times.size(), 60u);  // 10s*2/s + 5s*8/s
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]) << i;
  }
  EXPECT_LT(times.back(), sim::SimTime::seconds(15));
}

TEST(Scenario, SwarmCorpusCarriesPieceHashes) {
  const SwarmWorkload w;
  const auto corpus = w.corpus(33);
  ASSERT_EQ(corpus.size(), w.num_items());
  for (std::uint32_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].value, SwarmWorkload::piece_hash(33, i)) << i;
    EXPECT_EQ(corpus[i].id, hash_key(corpus[i].key)) << i;
  }
  // Payloads differ piece to piece and hash to the advertised digest.
  EXPECT_NE(SwarmWorkload::piece_payload(33, 0),
            SwarmWorkload::piece_payload(33, 1));
  EXPECT_NE(SwarmWorkload::piece_hash(33, 0), SwarmWorkload::piece_hash(34, 0));
}

}  // namespace
}  // namespace hp2p::workload
