// Tests for workload generation.
#include <gtest/gtest.h>

#include <set>

#include "workload/workload.hpp"

namespace hp2p::workload {
namespace {

TEST(Workload, UniformCorpusDistinctKeys) {
  const auto items = uniform_corpus(500, 7);
  std::set<std::string> keys;
  std::set<std::uint64_t> ids;
  for (const auto& item : items) {
    keys.insert(item.key);
    ids.insert(item.id.value());
    EXPECT_EQ(item.id, hash_key(item.key));
  }
  EXPECT_EQ(keys.size(), 500u);
  EXPECT_GE(ids.size(), 499u);  // hash collisions essentially impossible
}

TEST(Workload, CorpusDeterministicInSeed) {
  const auto a = uniform_corpus(10, 3);
  const auto b = uniform_corpus(10, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value);
  }
  const auto c = uniform_corpus(10, 4);
  EXPECT_NE(a[0].value, c[0].value);
}

TEST(Workload, RandomIdInArcStaysInside) {
  Rng rng{5};
  const PeerId lo{100};
  const PeerId hi{500};
  for (int i = 0; i < 1000; ++i) {
    const DataId id = random_id_in_arc(rng, lo, hi);
    EXPECT_TRUE(
        ring::in_arc_open_closed(id.value(), lo.value(), hi.value()))
        << id.value();
  }
}

TEST(Workload, RandomIdInWrappingArc) {
  Rng rng{6};
  const PeerId lo{kRingSize - 50};
  const PeerId hi{50};
  for (int i = 0; i < 1000; ++i) {
    const DataId id = random_id_in_arc(rng, lo, hi);
    EXPECT_TRUE(
        ring::in_arc_open_closed(id.value(), lo.value(), hi.value()));
  }
}

TEST(Workload, RandomIdFullCircleWhenDegenerate) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(random_id_in_arc(rng, PeerId{42}, PeerId{42}).value());
  }
  EXPECT_GT(seen.size(), 90u);  // spans the whole ring
}

TEST(Workload, ZipfRankZeroMostPopular) {
  Rng rng{8};
  ZipfSampler zipf{100, 1.0};
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(Workload, ZipfExponentZeroIsUniform) {
  Rng rng{9};
  ZipfSampler zipf{10, 0.0};
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(Workload, ZipfSamplesInRange) {
  Rng rng{10};
  ZipfSampler zipf{7, 1.2};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(Workload, ChurnScheduleSortedAndBounded) {
  Rng rng{11};
  const auto events =
      churn_schedule(rng, sim::SimTime::seconds(60), 1.0, 0.5, 0.2);
  EXPECT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  for (const auto& e : events) {
    EXPECT_LT(e.at, sim::SimTime::seconds(60));
    EXPECT_GE(e.at.as_micros(), 0);
  }
}

TEST(Workload, ChurnRatesApproximatelyRespected) {
  Rng rng{12};
  const auto events =
      churn_schedule(rng, sim::SimTime::seconds(1000), 2.0, 0.0, 0.0);
  EXPECT_NEAR(static_cast<double>(events.size()), 2000.0, 200.0);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, ChurnEvent::Kind::kJoin);
  }
}

TEST(Workload, ZeroRatesYieldNoEvents) {
  Rng rng{13};
  EXPECT_TRUE(
      churn_schedule(rng, sim::SimTime::seconds(10), 0, 0, 0).empty());
}

}  // namespace
}  // namespace hp2p::workload
