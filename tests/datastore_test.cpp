// Unit tests for the shared per-peer data store.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "proto/data_store.hpp"

namespace hp2p::proto {
namespace {

DataItem make(const std::string& key, std::uint64_t value = 0) {
  return DataItem{hash_key(key), key, value, kNoPeer};
}

TEST(DataStore, InsertAndFind) {
  DataStore store;
  store.insert(make("a", 1));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.empty());
  const DataItem* item = store.find(hash_key("a"));
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->key, "a");
  EXPECT_EQ(item->value, 1u);
  EXPECT_EQ(store.find(hash_key("b")), nullptr);
}

TEST(DataStore, FindKeyDistinguishesChainedItems) {
  DataStore store;
  // Force two keys onto the same d_id by constructing items directly.
  DataItem x{DataId{7}, "x", 1, kNoPeer};
  DataItem y{DataId{7}, "y", 2, kNoPeer};
  store.insert(x);
  store.insert(y);
  EXPECT_EQ(store.size(), 2u);
  const DataItem* found = store.find_key(DataId{7}, "y");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 2u);
  EXPECT_EQ(store.find_key(DataId{7}, "z"), nullptr);
  // Plain find returns the first of the chain.
  EXPECT_NE(store.find(DataId{7}), nullptr);
}

TEST(DataStore, ExtractArcMovesOnlyOwnedIds) {
  DataStore store;
  store.insert(DataItem{DataId{10}, "in1", 0, kNoPeer});
  store.insert(DataItem{DataId{20}, "in2", 0, kNoPeer});
  store.insert(DataItem{DataId{30}, "out", 0, kNoPeer});
  auto moved = store.extract_arc(PeerId{5}, PeerId{25});
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(DataId{30}), nullptr);
  EXPECT_EQ(store.find(DataId{10}), nullptr);
}

TEST(DataStore, ExtractArcWrapsAroundZero) {
  DataStore store;
  store.insert(DataItem{DataId{kRingSize - 2}, "high", 0, kNoPeer});
  store.insert(DataItem{DataId{3}, "low", 0, kNoPeer});
  store.insert(DataItem{DataId{kRingSize / 2}, "mid", 0, kNoPeer});
  auto moved = store.extract_arc(PeerId{kRingSize - 5}, PeerId{5});
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find(DataId{kRingSize / 2}), nullptr);
}

TEST(DataStore, ExtractArcBoundarySemantics) {
  // (from, to]: excludes `from`, includes `to`.
  DataStore store;
  store.insert(DataItem{DataId{5}, "from", 0, kNoPeer});
  store.insert(DataItem{DataId{9}, "to", 0, kNoPeer});
  auto moved = store.extract_arc(PeerId{5}, PeerId{9});
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.front().key, "to");
}

TEST(DataStore, ExtractAllEmptiesStore) {
  DataStore store;
  for (int i = 0; i < 20; ++i) store.insert(make("k" + std::to_string(i)));
  auto all = store.extract_all();
  EXPECT_EQ(all.size(), 20u);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
}

TEST(DataStore, ForEachVisitsEverything) {
  DataStore store;
  for (int i = 0; i < 15; ++i) {
    store.insert(make("k" + std::to_string(i), static_cast<std::uint64_t>(i)));
  }
  std::uint64_t sum = 0;
  std::size_t count = 0;
  store.for_each([&](const DataItem& item) {
    sum += item.value;
    ++count;
  });
  EXPECT_EQ(count, 15u);
  EXPECT_EQ(sum, 105u);
}

TEST(DataStore, ArcExtractionConservesItems) {
  // Property: splitting a store along random arcs never loses or
  // duplicates an item.
  Rng rng{77};
  for (int trial = 0; trial < 50; ++trial) {
    DataStore store;
    const std::size_t n = 100;
    for (std::size_t i = 0; i < n; ++i) {
      store.insert(
          DataItem{DataId{rng.uniform(0, kRingSize - 1)},
                   "item" + std::to_string(i), i, kNoPeer});
    }
    const PeerId a{rng.uniform(0, kRingSize - 1)};
    const PeerId b{rng.uniform(0, kRingSize - 1)};
    const auto moved = store.extract_arc(a, b);
    EXPECT_EQ(moved.size() + store.size(), n);
    for (const auto& item : moved) {
      EXPECT_TRUE(ring::in_arc_open_closed(item.id.value(), a.value(),
                                           b.value()));
    }
    store.for_each([&](const DataItem& item) {
      EXPECT_FALSE(ring::in_arc_open_closed(item.id.value(), a.value(),
                                            b.value()));
    });
  }
}

TEST(DataStore, MergeDedupsByIdAndKeyWithPrimaryWinning) {
  DataStore store;
  DataItem replica{DataId{7}, "k", 1, kNoPeer};
  replica.replica = true;
  EXPECT_TRUE(store.merge(replica));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.find(DataId{7})->replica);
  // Same (id, key) as a primary: no new item, but primary-ness upgrades.
  DataItem primary{DataId{7}, "k", 1, kNoPeer};
  EXPECT_FALSE(store.merge(primary));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.find(DataId{7})->replica);
  // A replica never downgrades an existing primary.
  EXPECT_FALSE(store.merge(replica));
  EXPECT_FALSE(store.find(DataId{7})->replica);
  // A colliding id with a distinct key still chains.
  EXPECT_TRUE(store.merge(DataItem{DataId{7}, "other", 2, kNoPeer}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(DataStore, ContainsAndIdsInArc) {
  DataStore store;
  store.insert(DataItem{DataId{10}, "a", 0, kNoPeer});
  store.insert(DataItem{DataId{900}, "b", 1, kNoPeer});
  store.insert(DataItem{DataId{kRingSize - 5}, "c", 2, kNoPeer});
  EXPECT_TRUE(store.contains(DataId{10}));
  EXPECT_FALSE(store.contains(DataId{11}));
  // Wrapping arc (kRingSize-10, 20]: catches both ends of the ring.
  const auto digest = store.ids_in_arc(PeerId{kRingSize - 10}, PeerId{20});
  ASSERT_EQ(digest.size(), 2u);
  EXPECT_EQ(digest[0].value(), 10u);  // sorted by id
  EXPECT_EQ(digest[1].value(), kRingSize - 5);
  EXPECT_TRUE(store.ids_in_arc(PeerId{30}, PeerId{40}).empty());
}

}  // namespace
}  // namespace hp2p::proto
