// Tests for the Gnutella-style unstructured baseline.
#include <gtest/gtest.h>

#include <vector>

#include "gnutella/gnutella.hpp"
#include "tests/test_util.hpp"

namespace hp2p::gnutella {
namespace {

using testing::SimWorld;

std::vector<PeerIndex> build_mesh(SimWorld& world, GnutellaNetwork& g,
                                  std::size_t n) {
  std::vector<PeerIndex> peers;
  for (std::size_t i = 0; i < n; ++i) {
    peers.push_back(g.join(world.next_host(), world.rng));
  }
  return peers;
}

TEST(Gnutella, JoinWiresRandomNeighbors) {
  SimWorld world{21};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 20);
  EXPECT_EQ(g.num_peers(), 20u);
  // First peer has no one to link to at join time but gains links later.
  EXPECT_FALSE(g.neighbors(peers.back()).empty());
  for (std::size_t i = 1; i < peers.size(); ++i) {
    EXPECT_GE(g.neighbors(peers[i]).size(), 1u);
  }
  EXPECT_TRUE(g.overlay_connected());
}

TEST(Gnutella, NeighborLinksAreSymmetric) {
  SimWorld world{22};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 15);
  for (const auto p : peers) {
    for (const auto n : g.neighbors(p)) {
      const auto& back = g.neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), p), back.end());
    }
  }
}

TEST(Gnutella, DataStaysAtGeneratingPeer) {
  SimWorld world{23};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 5);
  g.store(peers[2], "file.txt", 42);
  EXPECT_EQ(g.store_of(peers[2]).size(), 1u);
  for (const auto p : peers) {
    if (p != peers[2]) {
      EXPECT_EQ(g.store_of(p).size(), 0u);
    }
  }
}

TEST(Gnutella, FloodFindsNearbyData) {
  SimWorld world{24};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 30);
  g.store(peers[7], "needle", 1);
  bool called = false;
  g.lookup(peers[8], "needle", [&](proto::LookupResult r) {
    called = true;
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.found_at, peers[7]);
    EXPECT_GT(r.peers_contacted, 0u);
  });
  world.sim.run();
  EXPECT_TRUE(called);
}

TEST(Gnutella, OriginLocalHitIsInstant) {
  SimWorld world{25};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 5);
  g.store(peers[0], "mine", 1);
  proto::LookupResult result;
  g.lookup(peers[0], "mine", [&](proto::LookupResult r) { result = r; });
  world.sim.run();
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.latency.as_micros(), 0);
  EXPECT_EQ(result.peers_contacted, 0u);
}

TEST(Gnutella, TtlZeroReachesNothing) {
  SimWorld world{26};
  GnutellaParams params;
  params.ttl = 0;
  GnutellaNetwork g{*world.network, params};
  const auto peers = build_mesh(world, g, 10);
  g.store(peers[5], "far", 1);
  bool success = true;
  g.lookup(peers[0], "far",
           [&](proto::LookupResult r) { success = r.success; });
  world.sim.run();
  EXPECT_FALSE(success);
}

TEST(Gnutella, LargerTtlLowersFailureRatio) {
  // Property from Section 4.2: failure ratio decreases with TTL.
  auto run = [](unsigned ttl) {
    SimWorld world{27};
    GnutellaParams params;
    params.ttl = ttl;
    params.neighbors_per_join = 2;
    GnutellaNetwork g{*world.network, params};
    std::vector<PeerIndex> peers;
    for (int i = 0; i < 60; ++i) peers.push_back(g.join(world.next_host(), world.rng));
    for (int i = 0; i < 40; ++i) {
      g.store(peers[static_cast<std::size_t>(world.rng.index(peers.size()))],
              "k" + std::to_string(i), 1);
    }
    int failures = 0;
    for (int i = 0; i < 40; ++i) {
      g.lookup(peers[static_cast<std::size_t>(world.rng.index(peers.size()))],
               "k" + std::to_string(i),
               [&](proto::LookupResult r) { failures += !r.success; });
    }
    world.sim.run();
    return failures;
  };
  const int fail_small = run(1);
  const int fail_large = run(6);
  EXPECT_LE(fail_large, fail_small);
  EXPECT_GT(fail_small, 0);  // TTL=1 cannot cover a 60-peer mesh
}

TEST(Gnutella, DuplicateSuppressionBoundsContacts) {
  SimWorld world{28};
  GnutellaParams params;
  params.ttl = 10;  // flood everywhere
  GnutellaNetwork g{*world.network, params};
  const auto peers = build_mesh(world, g, 25);
  bool called = false;
  g.lookup(peers[0], "absent", [&](proto::LookupResult r) {
    called = true;
    // Even with a huge TTL each peer is contacted at most once.
    EXPECT_LE(r.peers_contacted, 24u);
  });
  world.sim.run();
  EXPECT_TRUE(called);
}

TEST(Gnutella, RandomWalkFindsData) {
  SimWorld world{29};
  GnutellaParams params;
  params.search = SearchMode::kRandomWalk;
  params.ttl = 30;
  params.walkers = 8;
  GnutellaNetwork g{*world.network, params};
  const auto peers = build_mesh(world, g, 20);
  g.store(peers[10], "walked", 1);
  int successes = 0;
  for (int trial = 0; trial < 5; ++trial) {
    g.lookup(peers[0], "walked",
             [&](proto::LookupResult r) { successes += r.success; });
    world.sim.run();
  }
  EXPECT_GT(successes, 0);
}

TEST(Gnutella, GracefulLeaveRemovesLinks) {
  SimWorld world{30};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 12);
  const auto victim = peers[4];
  const auto nbrs = g.neighbors(victim);
  ASSERT_FALSE(nbrs.empty());
  g.leave(victim);
  for (const auto n : nbrs) {
    const auto& list = g.neighbors(n);
    EXPECT_EQ(std::find(list.begin(), list.end(), victim), list.end());
  }
  EXPECT_TRUE(g.neighbors(victim).empty());
}

TEST(Gnutella, CrashedPeerDataUnreachable) {
  SimWorld world{31};
  GnutellaNetwork g{*world.network, {}};
  const auto peers = build_mesh(world, g, 15);
  g.store(peers[3], "lost", 1);
  g.crash(peers[3]);
  bool success = true;
  g.lookup(peers[0], "lost",
           [&](proto::LookupResult r) { success = r.success; });
  world.sim.run();
  EXPECT_FALSE(success);
}

TEST(Gnutella, FloodAroundCrashStillFindsOtherCopies) {
  SimWorld world{32};
  GnutellaParams params;
  params.ttl = 8;
  GnutellaNetwork g{*world.network, params};
  const auto peers = build_mesh(world, g, 20);
  g.store(peers[5], "copy", 1);
  g.store(peers[15], "copy", 1);
  g.crash(peers[5]);
  bool success = false;
  g.lookup(peers[0], "copy",
           [&](proto::LookupResult r) { success = r.success; });
  world.sim.run();
  EXPECT_TRUE(success);
}

TEST(Gnutella, BfsRadiusSmallInWellConnectedMesh) {
  SimWorld world{33};
  GnutellaParams params;
  params.neighbors_per_join = 4;
  GnutellaNetwork g{*world.network, params};
  const auto peers = build_mesh(world, g, 50);
  EXPECT_LE(g.bfs_radius(peers[0]), 8u);
}

}  // namespace
}  // namespace hp2p::gnutella
