// Strong identifier types shared by every layer of the hybrid P2P system.
//
// The paper works with three id spaces:
//   * p_id  -- position of a t-peer on the ring (s-peers inherit the p_id of
//              their s-network's t-peer),
//   * d_id  -- hash of a data key, drawn from the *same* space as p_id,
//   * physical node ids in the underlay topology.
// Mixing these up is the classic P2P-simulator bug, so each gets a distinct
// C++ type.  Dense array indices (peer slots, hosts) are separate again from
// the sparse ring ids.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace hp2p {

/// Number of bits in the ring identifier space (p_id / d_id).  The paper uses
/// "a positive integer"; 32 bits matches Chord's common configuration and
/// leaves headroom for midpoint-splitting on id conflicts.
inline constexpr unsigned kRingBits = 32;

/// Size of the ring identifier space, i.e. ids live in [0, kRingSize).
inline constexpr std::uint64_t kRingSize = std::uint64_t{1} << kRingBits;

namespace detail {

/// CRTP-free strong wrapper around an integer.  Tag makes each instantiation
/// a distinct type; arithmetic is intentionally *not* provided (ring
/// arithmetic is modular and lives in ring_math.hpp).
template <typename Tag, typename Rep>
class StrongId {
 public:
  using rep = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{};
};

}  // namespace detail

/// Ring position of a peer (the paper's p_id), in [0, kRingSize).
using PeerId = detail::StrongId<struct PeerIdTag, std::uint64_t>;

/// Hashed data key (the paper's d_id), in [0, kRingSize).
using DataId = detail::StrongId<struct DataIdTag, std::uint64_t>;

/// Dense index of a peer slot inside a simulation (0..num_peers-1).  Stable
/// for the lifetime of a run; a crashed/left peer keeps its index but is
/// marked dead.
using PeerIndex = detail::StrongId<struct PeerIndexTag, std::uint32_t>;

/// Dense index of a physical host in the underlay topology.
using HostIndex = detail::StrongId<struct HostIndexTag, std::uint32_t>;

/// Sentinel for "no peer".
inline constexpr PeerIndex kNoPeer{std::numeric_limits<std::uint32_t>::max()};

/// Sentinel for "no host".
inline constexpr HostIndex kNoHost{std::numeric_limits<std::uint32_t>::max()};

}  // namespace hp2p

namespace std {
template <typename Tag, typename Rep>
struct hash<hp2p::detail::StrongId<Tag, Rep>> {
  size_t operator()(hp2p::detail::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
