// Environment-variable knobs for benchmarks and examples.
//
// Benchmarks default to paper-scale parameters (1,000 peers) but can be
// scaled up/down without recompiling, e.g. HP2P_PEERS=5000 HP2P_REPLICAS=10.
#pragma once

#include <cstdint>
#include <string>

namespace hp2p {

/// Returns the integer value of environment variable `name`, or `fallback`
/// when unset or unparsable.
[[nodiscard]] std::int64_t env_or(const std::string& name,
                                  std::int64_t fallback);

/// Returns the double value of environment variable `name`, or `fallback`.
[[nodiscard]] double env_or(const std::string& name, double fallback);

/// Returns the string value of environment variable `name`, or `fallback`
/// when unset or empty.
[[nodiscard]] std::string env_or(const std::string& name,
                                 const char* fallback);

}  // namespace hp2p
