#include "common/rng.hpp"

#include <bit>
#include <cmath>

#include "common/hashing.hpp"

namespace hp2p {

Rng::Rng(std::uint64_t seed) {
  // splitmix64 seeding per the xoshiro authors' recommendation.
  std::uint64_t x = seed;
  for (auto& lane : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    lane = mix64(x);
  }
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix all lanes with the stream id so forked streams are decorrelated
  // even for adjacent stream ids.
  std::uint64_t digest = mix64(stream_id ^ 0xd1b54a32d192ed03ULL);
  for (auto lane : s_) digest = mix64(digest ^ lane);
  return Rng{digest};
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo;  // inclusive range size - 1
  if (span == ~std::uint64_t{0}) return next();
  // Lemire-style rejection for unbiased bounded generation.
  const std::uint64_t n = span + 1;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + r % n;
  }
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform(0, static_cast<std::uint64_t>(n) - 1));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; uniform01() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - uniform01());
}

}  // namespace hp2p
