#include "common/env.hpp"

#include <cstdlib>

namespace hp2p {

std::int64_t env_or(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_or(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_or(const std::string& name, const char* fallback) {
  const char* v = std::getenv(name.c_str());
  return (v == nullptr || *v == '\0') ? std::string(fallback)
                                      : std::string(v);
}

}  // namespace hp2p
