// Process-level memory accounting, read from /proc/self/status.  The scale
// bench and the 50k-peer guard-rail test use these to assert the O(V)
// memory budget.  On platforms without procfs both readers return 0, so
// callers can skip their assertions instead of failing spuriously.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace hp2p {

namespace detail {

/// Returns the numeric value (in KiB, as /proc reports it) of one
/// "Key:   <n> kB" line of /proc/self/status, or 0 when missing.
[[nodiscard]] inline std::uint64_t proc_status_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kib = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

}  // namespace detail

/// Peak resident set size of this process (VmHWM), in bytes; 0 when
/// unavailable.  Monotone over the process lifetime -- measure ascending
/// workloads in increasing order so each step's peak is its own.
[[nodiscard]] inline std::uint64_t peak_rss_bytes() {
  return detail::proc_status_kib("VmHWM:") * 1024;
}

/// Current resident set size (VmRSS), in bytes; 0 when unavailable.
/// On Linux this reads /proc/self/statm (one short line, resident field)
/// with raw open/read -- roughly 20x cheaper than scanning
/// /proc/self/status, which matters because the profiler's time-series
/// gauge samples this every sampler tick.
[[nodiscard]] inline std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  const int fd = ::open("/proc/self/statm", O_RDONLY);
  if (fd < 0) return 0;
  char buf[64];
  const ssize_t n = ::read(fd, buf, sizeof buf - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  const char* p = buf;            // first field: total program pages
  while (*p != '\0' && *p != ' ') ++p;
  const std::uint64_t pages = std::strtoull(p, nullptr, 10);
  static const auto kPageSize =
      static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  return pages * kPageSize;
#else
  return detail::proc_status_kib("VmRSS:") * 1024;
#endif
}

}  // namespace hp2p
