#include "common/hashing.hpp"

namespace hp2p {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

DataId hash_key(std::string_view key) {
  return DataId{mix64(fnv1a64(key)) & (kRingSize - 1)};
}

PeerId hash_address(std::uint64_t address) {
  return PeerId{mix64(address) & (kRingSize - 1)};
}

}  // namespace hp2p
