// Deterministic random number generation.
//
// Every simulation replica owns one Rng seeded from (experiment seed,
// replica index); no global RNG state exists anywhere in the library, which
// is what makes replicas safe to run on a thread pool and runs bit-exactly
// reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace hp2p {

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator
/// so it composes with <random> distributions, but the convenience members
/// below avoid distribution-object boilerplate at call sites.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes via splitmix64 so any 64-bit seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; used to give each replica and each
  /// workload generator its own stream from one experiment seed.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n); requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::uint64_t next();
  std::uint64_t s_[4];
};

}  // namespace hp2p
