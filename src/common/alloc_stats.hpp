// Process-wide heap-allocation counters.
//
// alloc_stats.cpp replaces the global operator new/delete with a counting
// shim (one relaxed atomic increment per allocation).  Because the shim
// lives in the same translation unit as the counter definitions, any
// binary that reads a counter links the replacement operators in -- that
// is the promotion contract micro_kernel and stats::Profiler rely on:
// both read the same counters from a single definition instead of each
// bench re-declaring its own hook.  Binaries that never reference
// alloc_stats keep the default (uncounted) allocator.  The accessors are
// inline relaxed loads: the profiler snapshots them on its per-event hot
// path, where an out-of-line call would be a measurable share of the
// <= 5% overhead budget.
//
// The counters are cumulative and monotone, which is exactly what delta-
// based attribution needs: the profiler snapshots them around each
// dispatch frame; micro_kernel asserts the steady-state delta is zero.
#pragma once

#include <atomic>
#include <cstdint>

namespace hp2p::alloc_stats {

namespace detail {
/// Defined in alloc_stats.cpp -- the same translation unit as the operator
/// new/delete replacements, so referencing them links the counting shim in.
extern std::atomic<std::uint64_t> g_allocs;
extern std::atomic<std::uint64_t> g_alloc_bytes;
extern std::atomic<std::uint64_t> g_live_bytes;
}  // namespace detail

/// Number of operator-new calls since process start (thread-safe, relaxed).
[[nodiscard]] inline std::uint64_t allocation_count() {
  return detail::g_allocs.load(std::memory_order_relaxed);
}

/// Cumulative requested bytes across all operator-new calls.
[[nodiscard]] inline std::uint64_t allocated_bytes() {
  return detail::g_alloc_bytes.load(std::memory_order_relaxed);
}

/// Bytes currently outstanding (allocated minus freed, measured in
/// allocator usable sizes when malloc_usable_size is available, requested
/// sizes otherwise).  Suitable as a live-heap gauge.
[[nodiscard]] inline std::uint64_t live_bytes() {
  return detail::g_live_bytes.load(std::memory_order_relaxed);
}

}  // namespace hp2p::alloc_stats
