// Hash functions used to map data keys and peer addresses into the ring id
// space.  The paper only requires a uniform hash from keys to d_ids; we use
// FNV-1a for strings followed by a splitmix64 finalizer for avalanche, so
// nearby keys ("file1", "file2") land far apart on the ring.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/ids.hpp"

namespace hp2p {

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// splitmix64 finalizer: bijective 64-bit mixing with full avalanche.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes a data key (file name etc.) to its d_id, as `lookup(key)` and
/// `store(key, value)` do before touching the overlay.
[[nodiscard]] DataId hash_key(std::string_view key);

/// Hashes a synthetic "IP address" (any 64-bit host identity) to a p_id;
/// one of the server's id-generation options in Section 3.2.1.
[[nodiscard]] PeerId hash_address(std::uint64_t address);

}  // namespace hp2p
