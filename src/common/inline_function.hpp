// Move-only type-erased callable with inline (small-buffer) storage.
//
// std::function heap-allocates any closure larger than two pointers, which
// turns every scheduled event and every in-flight overlay message into a
// malloc/free pair -- the dominant cost of the event loop past ~10k peers.
// InlineFunction stores closures up to `Capacity` bytes inside the object
// itself; only oversized closures fall back to the heap (they keep working,
// they just pay the old price).  The steady-state dispatch path of the
// simulator is zero-allocation as long as its closures fit, a property the
// micro_kernel bench asserts with an operator-new counting hook.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hp2p {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;  // primary template; only the R(Args...) form exists

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  /// True when a callable of type F is stored inline (no heap allocation).
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&storage_, &other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs *src into dst, then destroys *src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>) {
      ::new (&storage_) Fn(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* s, Args&&... args) -> R {
            return std::invoke(*std::launder(reinterpret_cast<Fn*>(s)),
                               std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};
      ops_ = &ops;
    } else {
      // Oversized closure: boxed on the heap, pointer stored inline.
      using Box = Fn*;
      ::new (&storage_) Box(new Fn(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* s, Args&&... args) -> R {
            return std::invoke(**std::launder(reinterpret_cast<Box*>(s)),
                               std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            Box* from = std::launder(reinterpret_cast<Box*>(src));
            ::new (dst) Box(*from);
            from->~Box();
          },
          [](void* s) {
            Box* box = std::launder(reinterpret_cast<Box*>(s));
            delete *box;
            box->~Box();
          }};
      ops_ = &ops;
    }
  }

  static_assert(Capacity >= sizeof(void*),
                "capacity must at least hold the heap-fallback pointer");

  alignas(std::max_align_t) std::byte storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hp2p
