// Global operator-new counting hook (see alloc_stats.hpp for the linkage
// contract).  Replacement operators and accessors deliberately share this
// translation unit: referencing an accessor pulls the operators into the
// final binary.
#include "common/alloc_stats.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__has_include)
#if __has_include(<malloc.h>)
#include <malloc.h>
#define HP2P_HAVE_MALLOC_USABLE_SIZE 1
#endif
#endif

namespace hp2p::alloc_stats::detail {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};

}  // namespace hp2p::alloc_stats::detail

namespace {

using hp2p::alloc_stats::detail::g_alloc_bytes;
using hp2p::alloc_stats::detail::g_allocs;
using hp2p::alloc_stats::detail::g_live_bytes;

inline std::uint64_t usable_size(void* p, std::size_t requested) {
#if defined(HP2P_HAVE_MALLOC_USABLE_SIZE)
  (void)requested;
  return static_cast<std::uint64_t>(malloc_usable_size(p));
#else
  (void)p;
  return static_cast<std::uint64_t>(requested);
#endif
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::uint64_t>(size),
                          std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    g_live_bytes.fetch_add(usable_size(p, size), std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc{};
}

void counted_free(void* p, std::size_t requested) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(usable_size(p, requested),
                         std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p, 0); }
void operator delete[](void* p) noexcept { counted_free(p, 0); }
void operator delete(void* p, std::size_t size) noexcept {
  counted_free(p, size);
}
void operator delete[](void* p, std::size_t size) noexcept {
  counted_free(p, size);
}
