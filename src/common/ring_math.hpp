// Modular arithmetic helpers for the circular identifier space.
//
// All the overlay protocols (Chord baseline, t-network) reason about
// half-open arcs on the ring.  Centralizing the wrap-around logic here keeps
// the protocol code free of off-by-one modular bugs.
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace hp2p::ring {

/// Reduces an arbitrary 64-bit value into the ring id space.
[[nodiscard]] constexpr std::uint64_t reduce(std::uint64_t v) {
  return v & (kRingSize - 1);
}

/// True iff `x` lies on the half-open arc (a, b] walking clockwise
/// (increasing ids, wrapping at kRingSize).  This is the ownership test:
/// a peer with id b and predecessor a owns exactly the keys in (a, b].
[[nodiscard]] constexpr bool in_arc_open_closed(std::uint64_t x,
                                                std::uint64_t a,
                                                std::uint64_t b) {
  if (a == b) return true;  // single-node ring owns everything
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;  // arc wraps zero
}

/// True iff `x` lies on the open arc (a, b) walking clockwise.
[[nodiscard]] constexpr bool in_arc_open_open(std::uint64_t x,
                                              std::uint64_t a,
                                              std::uint64_t b) {
  if (a == b) return x != a;  // full circle minus the endpoint
  if (a < b) return a < x && x < b;
  return x > a || x < b;
}

/// Clockwise distance from `a` to `b` (how far b is "ahead" of a).
[[nodiscard]] constexpr std::uint64_t distance_cw(std::uint64_t a,
                                                  std::uint64_t b) {
  return reduce(b - a);
}

/// Midpoint of the clockwise arc from `a` to `b`; used by the paper's
/// conflict-resolution rule "n.id = (id + suc.id)/2" generalized to the
/// wrapped ring.  Consistent with the arc predicates, a == b means the full
/// circle, so the midpoint is the antipode.
[[nodiscard]] constexpr std::uint64_t midpoint_cw(std::uint64_t a,
                                                  std::uint64_t b) {
  if (a == b) return reduce(a + kRingSize / 2);
  return reduce(a + distance_cw(a, b) / 2);
}

/// The id exactly 2^k past `a`, the k-th Chord finger start.
[[nodiscard]] constexpr std::uint64_t finger_start(std::uint64_t a,
                                                   unsigned k) {
  return reduce(a + (std::uint64_t{1} << k));
}

/// Ownership test phrased on the strong types: does the peer with id
/// `owner` and predecessor id `pred` own data id `d`?
[[nodiscard]] constexpr bool owns(PeerId owner, PeerId pred, DataId d) {
  return in_arc_open_closed(d.value(), pred.value(), owner.value());
}

}  // namespace hp2p::ring
