#include "gnutella/gnutella.hpp"

#include <algorithm>
#include <cassert>

namespace hp2p::gnutella {

using proto::TrafficClass;

GnutellaNetwork::GnutellaNetwork(proto::OverlayNetwork& network,
                                 GnutellaParams params)
    : net_(network), sim_(network.simulator()), params_(params) {}

PeerIndex GnutellaNetwork::join(HostIndex host, Rng& rng) {
  const PeerIndex i = net_.add_peer(host);
  assert(i.value() == peers_.size());
  Peer p;
  p.self = i;
  peers_.push_back(std::move(p));

  // Link to up to neighbors_per_join distinct random alive peers.
  std::vector<PeerIndex> candidates;
  for (const Peer& other : peers_) {
    if (other.self != i && other.alive) candidates.push_back(other.self);
  }
  rng.shuffle(candidates);
  const std::size_t links =
      std::min<std::size_t>(params_.neighbors_per_join, candidates.size());
  for (std::size_t k = 0; k < links; ++k) {
    peers_[i.value()].neighbors.push_back(candidates[k]);
    peers_[candidates[k].value()].neighbors.push_back(i);
  }
  return i;
}

void GnutellaNetwork::leave(PeerIndex leaving) {
  Peer& p = peer(leaving);
  p.alive = false;
  for (PeerIndex n : p.neighbors) {
    auto& list = peer(n).neighbors;
    list.erase(std::remove(list.begin(), list.end(), leaving), list.end());
  }
  p.neighbors.clear();
  net_.set_alive(leaving, false);
}

void GnutellaNetwork::crash(PeerIndex crashing) {
  peer(crashing).alive = false;
  net_.set_alive(crashing, false);
  // Neighbors keep their stale links; the transport drops what they send.
}

void GnutellaNetwork::store(PeerIndex at, const std::string& key,
                            std::uint64_t value) {
  const DataId id = hash_key(key);
  peer(at).store.insert(proto::DataItem{id, key, value, at});
}

void GnutellaNetwork::lookup(PeerIndex from, const std::string& key,
                             LookupCallback done) {
  const std::uint64_t qid = next_query_id_++;
  Query q;
  q.origin = from;
  q.target = hash_key(key);
  q.started = sim_.now();
  q.done = std::move(done);
  q.timer = sim_.schedule_after(params_.lookup_timeout, [this, qid] {
    finish(qid, proto::LookupResult{});
  });
  if (tracer_ != nullptr) {
    q.trace = tracer_->start_trace("lookup", "lookup", from.value(), sim_.now());
    tracer_->add_arg(q.trace, "qid", static_cast<std::int64_t>(qid));
    tracer_->add_arg(q.trace, "target",
                     static_cast<std::int64_t>(q.target.value()));
  }
  queries_.emplace(qid, std::move(q));

  // The origin checks its own database first (zero cost, not counted as a
  // contact), then launches the search.
  Peer& p = peer(from);
  p.seen_queries.insert(qid);
  if (p.store.find(queries_[qid].target) != nullptr) {
    proto::LookupResult r;
    r.success = true;
    r.latency = sim::SimTime{};
    r.found_at = from;
    finish(qid, r);
    return;
  }

  if (params_.search == SearchMode::kFlood) {
    flood_step(from, kNoPeer, qid, params_.ttl, 0);
  } else {
    for (unsigned w = 0; w < params_.walkers; ++w) {
      walk_step(from, qid, params_.ttl, 0, walk_rng_);
    }
  }
}

bool GnutellaNetwork::try_answer(PeerIndex at, std::uint64_t qid,
                                 std::uint32_t hops) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second.finished) return false;
  Query& q = it->second;
  const proto::DataItem* item = peer(at).store.find(q.target);
  if (item == nullptr) return false;
  // Hit: data travels straight back to the requester.
  const PeerIndex origin = q.origin;
  stats::TraceContext reply;
  if (tracer_ != nullptr && q.trace.valid()) {
    reply = tracer_->begin_span(q.trace, "reply", "reply", at.value(),
                                sim_.now());
  }
  net_.send(at, origin, TrafficClass::kData, proto::kDataBytes,
            reply.valid() ? reply : q.trace, [this, qid, at, hops, reply] {
              if (tracer_ != nullptr && reply.valid()) {
                tracer_->end_span(reply, sim_.now());
              }
              auto qit = queries_.find(qid);
              if (qit == queries_.end() || qit->second.finished) return;
              proto::LookupResult r;
              r.success = true;
              r.latency = sim_.now() - qit->second.started;
              r.request_hops = hops;
              r.peers_contacted = qit->second.contacted;
              r.found_at = at;
              finish(qid, r);
            });
  return true;
}

void GnutellaNetwork::flood_step(PeerIndex at, PeerIndex from_neighbor,
                                 std::uint64_t qid, unsigned ttl,
                                 std::uint32_t hops) {
  if (ttl == 0) {
    net_.note_drop(at, proto::DropReason::kTtlExhausted, TrafficClass::kQuery,
                   query_trace(qid));
    return;
  }
  const stats::TraceContext ctx = query_trace(qid);
  for (PeerIndex n : peer(at).neighbors) {
    if (n == from_neighbor) continue;
    net_.send(at, n, TrafficClass::kQuery, proto::kQueryBytes, ctx,
              [this, n, at, qid, ttl, hops] {
                auto it = queries_.find(qid);
                if (it == queries_.end() || it->second.finished) return;
                Peer& receiver = peer(n);
                // Duplicate suppression: a peer processes each query once.
                if (!receiver.seen_queries.insert(qid).second) return;
                ++it->second.contacted;
                if (tracer_ != nullptr) {
                  tracer_->instant(it->second.trace, "flood_hop", n.value(),
                                   sim_.now(), "depth",
                                   static_cast<std::int64_t>(hops + 1));
                }
                if (try_answer(n, qid, hops + 1)) return;
                flood_step(n, at, qid, ttl - 1, hops + 1);
              });
  }
}

void GnutellaNetwork::walk_step(PeerIndex at, std::uint64_t qid, unsigned ttl,
                                std::uint32_t hops, Rng& rng) {
  if (ttl == 0) {
    net_.note_drop(at, proto::DropReason::kTtlExhausted, TrafficClass::kQuery,
                   query_trace(qid));
    return;
  }
  const auto& nbrs = peer(at).neighbors;
  if (nbrs.empty()) {
    net_.note_drop(at, proto::DropReason::kNoRoute, TrafficClass::kQuery,
                   query_trace(qid));
    return;
  }
  const PeerIndex next = nbrs[rng.index(nbrs.size())];
  net_.send(at, next, TrafficClass::kQuery, proto::kQueryBytes,
            query_trace(qid), [this, next, qid, ttl, hops] {
              auto it = queries_.find(qid);
              if (it == queries_.end() || it->second.finished) return;
              // Walkers may revisit peers; only first visits count as
              // contacts.
              if (peer(next).seen_queries.insert(qid).second) {
                ++it->second.contacted;
              }
              if (tracer_ != nullptr) {
                tracer_->instant(it->second.trace, "walk_hop", next.value(),
                                 sim_.now(), "depth",
                                 static_cast<std::int64_t>(hops + 1));
              }
              if (try_answer(next, qid, hops + 1)) return;
              walk_step(next, qid, ttl - 1, hops + 1, walk_rng_);
            });
}

void GnutellaNetwork::finish(std::uint64_t qid, proto::LookupResult result) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second.finished) return;
  Query& q = it->second;
  q.finished = true;
  sim_.cancel(q.timer);
  if (!result.success) result.peers_contacted = q.contacted;
  if (tracer_ != nullptr && q.trace.valid()) {
    tracer_->add_arg(q.trace, "success", result.success ? 1 : 0);
    tracer_->add_arg(q.trace, "contacted",
                     static_cast<std::int64_t>(result.peers_contacted));
    tracer_->end_span(q.trace, sim_.now());
  }
  auto done = std::move(q.done);
  queries_.erase(it);
  if (done) done(result);
}

bool GnutellaNetwork::overlay_connected() const {
  std::vector<PeerIndex> alive;
  for (const Peer& p : peers_) {
    if (p.alive) alive.push_back(p.self);
  }
  if (alive.empty()) return true;
  std::vector<bool> seen(peers_.size(), false);
  std::vector<PeerIndex> stack{alive.front()};
  seen[alive.front().value()] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const PeerIndex u = stack.back();
    stack.pop_back();
    for (PeerIndex n : peers_[u.value()].neighbors) {
      if (!seen[n.value()] && peers_[n.value()].alive) {
        seen[n.value()] = true;
        ++visited;
        stack.push_back(n);
      }
    }
  }
  return visited == alive.size();
}

unsigned GnutellaNetwork::bfs_radius(PeerIndex from) const {
  std::vector<int> dist(peers_.size(), -1);
  std::vector<PeerIndex> frontier{from};
  dist[from.value()] = 0;
  unsigned radius = 0;
  while (!frontier.empty()) {
    std::vector<PeerIndex> next;
    for (PeerIndex u : frontier) {
      for (PeerIndex n : peers_[u.value()].neighbors) {
        if (dist[n.value()] < 0 && peers_[n.value()].alive) {
          dist[n.value()] = dist[u.value()] + 1;
          radius = std::max(radius, static_cast<unsigned>(dist[n.value()]));
          next.push_back(n);
        }
      }
    }
    frontier = std::move(next);
  }
  return radius;
}

}  // namespace hp2p::gnutella
