// Standalone Gnutella-style unstructured overlay, the flexible baseline of
// the paper and the p_s = 1 degenerate case of the hybrid system.
//
// Peers connect to a handful of random existing peers (arbitrary mesh
// topology), data stays wherever it was generated, and lookups are either
// TTL-bounded floods with duplicate suppression or bounded random walks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "proto/data_store.hpp"
#include "proto/metrics.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace hp2p::gnutella {

/// Search strategy inside the unstructured mesh.
enum class SearchMode : std::uint8_t { kFlood, kRandomWalk };

struct GnutellaParams {
  /// Random neighbors a joining peer links to.
  unsigned neighbors_per_join = 3;
  SearchMode search = SearchMode::kFlood;
  /// Flood radius / walk length.
  unsigned ttl = 4;
  /// Parallel walkers when search == kRandomWalk.
  unsigned walkers = 4;
  sim::Duration lookup_timeout = sim::SimTime::seconds(15);
};

/// One unstructured overlay inside a simulation replica.
class GnutellaNetwork {
 public:
  using LookupCallback = std::function<void(proto::LookupResult)>;

  GnutellaNetwork(proto::OverlayNetwork& network, GnutellaParams params);

  /// Adds a peer and wires it to up to neighbors_per_join random existing
  /// peers.  The first peer has no neighbors.
  PeerIndex join(HostIndex host, Rng& rng);

  /// Graceful leave: neighbors drop their links to the peer.
  void leave(PeerIndex peer);

  /// Crash: the peer stops; stale neighbor links remain (messages to it are
  /// dropped by the transport), matching Gnutella's failure behaviour
  /// between keep-alive rounds.
  void crash(PeerIndex peer);

  /// Stores (key, value) at the generating peer -- in an unstructured
  /// overlay the data does not move.
  void store(PeerIndex at, const std::string& key, std::uint64_t value);

  /// Looks up a key by flooding / random walk from `from`.
  void lookup(PeerIndex from, const std::string& key, LookupCallback done);

  // --- Introspection --------------------------------------------------------
  [[nodiscard]] std::size_t num_peers() const { return peers_.size(); }
  [[nodiscard]] const std::vector<PeerIndex>& neighbors(PeerIndex peer) const {
    return peers_[peer.value()].neighbors;
  }
  [[nodiscard]] const proto::DataStore& store_of(PeerIndex peer) const {
    return peers_[peer.value()].store;
  }
  /// True when the alive-peer overlay graph is connected.
  [[nodiscard]] bool overlay_connected() const;
  /// Overlay-hop eccentricity bound: longest BFS distance from `from`.
  [[nodiscard]] unsigned bfs_radius(PeerIndex from) const;

  /// Installs (or, with nullptr, removes) the span recorder: lookups then
  /// record a root span with per-fan-out flood_hop/walk_hop instants (TTL
  /// depth annotated).  Not owned.
  void set_tracer(stats::SpanRecorder* tracer) { tracer_ = tracer; }
  [[nodiscard]] stats::SpanRecorder* tracer() const { return tracer_; }

 private:
  struct Peer {
    PeerIndex self = kNoPeer;
    std::vector<PeerIndex> neighbors;
    proto::DataStore store;
    std::unordered_set<std::uint64_t> seen_queries;
    bool alive = true;
  };

  /// Central bookkeeping for an in-flight lookup.
  struct Query {
    PeerIndex origin = kNoPeer;
    DataId target{};
    sim::SimTime started{};
    std::uint32_t contacted = 0;
    bool finished = false;
    sim::TimerId timer{};
    LookupCallback done;
    stats::TraceContext trace;  // root span (invalid when untraced)
  };

  Peer& peer(PeerIndex i) { return peers_[i.value()]; }
  /// The query's root trace context; invalid when untraced or finished.
  [[nodiscard]] stats::TraceContext query_trace(std::uint64_t qid) const {
    if (tracer_ == nullptr) return {};
    const auto it = queries_.find(qid);
    return it == queries_.end() ? stats::TraceContext{} : it->second.trace;
  }

  void flood_step(PeerIndex at, PeerIndex from_neighbor, std::uint64_t qid,
                  unsigned ttl, std::uint32_t hops);
  void walk_step(PeerIndex at, std::uint64_t qid, unsigned ttl,
                 std::uint32_t hops, Rng& rng);
  /// Store check + reply at a peer the query reached; returns true on hit.
  bool try_answer(PeerIndex at, std::uint64_t qid, std::uint32_t hops);
  void finish(std::uint64_t qid, proto::LookupResult result);

  proto::OverlayNetwork& net_;
  sim::Simulator& sim_;
  GnutellaParams params_;
  std::vector<Peer> peers_;
  std::unordered_map<std::uint64_t, Query> queries_;
  std::uint64_t next_query_id_ = 1;
  Rng walk_rng_{0xabcdef};
  stats::SpanRecorder* tracer_ = nullptr;
};

}  // namespace hp2p::gnutella
