// The hybrid peer-to-peer system (Section 3) -- the paper's primary
// contribution.
//
// A structured ring of t-peers (the t-network) partitions the data-id space
// into segments; each t-peer roots one unstructured s-network of s-peers.
// Stores and lookups are served by the local s-network when the key falls in
// the local segment and otherwise travel up the tree, around the ring, and
// down into the responsible s-network.
//
// Everything is message-driven over proto::OverlayNetwork: joins, the
// concurrent join/leave triangles of Fig. 2, both data-placement schemes,
// TTL-bounded flooding, HELLO/ack failure detection, server-arbitrated crash
// replacement, bypass links, and the Section 5 enhancements.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chord/finger_table.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "hybrid/params.hpp"
#include "proto/data_store.hpp"
#include "proto/metrics.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace hp2p::hybrid {

/// The full hybrid system inside one simulation replica, including the
/// well-known bootstrap server (modeled as a host so that contacting it
/// costs real latency).
class HybridSystem {
 public:
  using JoinCallback = std::function<void(proto::JoinResult)>;
  using LookupCallback = std::function<void(proto::LookupResult)>;
  using StoreCallback = std::function<void()>;

  /// `server_host` is where the well-known server lives.
  HybridSystem(proto::OverlayNetwork& network, HybridParams params,
               HostIndex server_host, Rng& rng);

  // --- Membership ------------------------------------------------------------

  /// A new peer contacts the server, which picks its role with probability
  /// p_s (respecting capacity_aware_roles) and runs the matching join
  /// protocol.  `done` fires once the peer is fully inserted.
  PeerIndex add_peer(HostIndex host, JoinCallback done = {});

  /// Same, but the role is forced (benches use this for exact p_s ratios).
  PeerIndex add_peer_with_role(HostIndex host, Role role,
                               JoinCallback done = {});

  /// Same, with a forced interest category (Section 5.3 workloads).
  PeerIndex add_peer_with_interest(HostIndex host, Role role,
                                   std::uint32_t interest,
                                   JoinCallback done = {});

  /// Graceful departure (Section 3.2): a leaving t-peer promotes an s-peer
  /// from its own s-network (or truly leaves the ring when it has none); a
  /// leaving s-peer hands its load to a neighbour and its orphans rejoin.
  void leave(PeerIndex peer);

  /// Abrupt departure: the peer silently stops.  Its data is lost; HELLO
  /// timeouts and the server-arbitrated replacement repair the topology
  /// when failure detection is running.
  void crash(PeerIndex peer);

  /// Starts HELLO heartbeats and timeout scanning on all live peers
  /// (required for crash *recovery*; crashes without it just lose data).
  void start_failure_detection();

  // --- Data operations --------------------------------------------------------

  /// store(key, value): hashes the key and inserts the item (Section 3.4).
  void store(PeerIndex from, const std::string& key, std::uint64_t value,
             StoreCallback done = {});

  /// Direct-id variant used by workload generators that control placement.
  void store_id(PeerIndex from, DataId id, const std::string& key,
                std::uint64_t value, StoreCallback done = {});

  /// lookup(key): local s-network first, then the t-network (Section 3.4).
  /// `done` always fires: success, or failure after lookup_timeout.
  void lookup(PeerIndex from, const std::string& key, LookupCallback done);

  /// Direct-id variant.
  void lookup_id(PeerIndex from, DataId id, LookupCallback done);

  /// Result of a partial/keyword search (Section 5.3): keys matching a
  /// substring within the requester's own s-network.
  struct KeywordResult {
    std::vector<std::string> keys;
    std::uint32_t peers_contacted = 0;
  };
  using KeywordCallback = std::function<void(KeywordResult)>;

  /// Floods a substring query through the local s-network and collects all
  /// matches that arrive before `collect_window` elapses.  This is the
  /// paper's "partial search ... conducted in the corresponding s-network".
  void lookup_keyword(PeerIndex from, const std::string& substring,
                      sim::Duration collect_window, KeywordCallback done);

  /// System-wide complex lookup (Section 3.1): "the query message is first
  /// flooded within the same s-network; in the meanwhile, it is forwarded
  /// to other s-networks through the t-network."  The query circulates the
  /// whole ring, every t-peer floods its own s-network, and all matches
  /// stream back to the requester until the window closes.
  void lookup_keyword_global(PeerIndex from, const std::string& substring,
                             sim::Duration collect_window,
                             KeywordCallback done);

  // --- Introspection -----------------------------------------------------------

  [[nodiscard]] Role role_of(PeerIndex p) const { return peer(p).role; }
  [[nodiscard]] PeerId pid_of(PeerIndex p) const { return peer(p).pid; }
  [[nodiscard]] bool is_joined(PeerIndex p) const { return peer(p).joined; }
  [[nodiscard]] bool is_alive(PeerIndex p) const { return net_.alive(p); }
  [[nodiscard]] std::uint32_t interest_of(PeerIndex p) const {
    return peer(p).interest;
  }
  [[nodiscard]] PeerIndex tpeer_of(PeerIndex p) const { return peer(p).tpeer; }
  [[nodiscard]] PeerIndex parent_of(PeerIndex p) const { return peer(p).cp; }
  [[nodiscard]] PeerIndex successor_of(PeerIndex p) const {
    return peer(p).successor;
  }
  [[nodiscard]] PeerId successor_id_of(PeerIndex p) const {
    return peer(p).successor_id;
  }
  [[nodiscard]] PeerIndex predecessor_of(PeerIndex p) const {
    return peer(p).predecessor;
  }
  [[nodiscard]] PeerId predecessor_id_of(PeerIndex p) const {
    return peer(p).predecessor_id;
  }
  [[nodiscard]] const chord::FingerTable& fingers_of(PeerIndex p) const {
    return peer(p).fingers;
  }
  /// Mid-join / mid-leave flags (Section 3.3 mutexes).  The auditor uses
  /// them to tell transient protocol states from genuine corruption.
  [[nodiscard]] bool is_joining(PeerIndex p) const {
    return peer(p).joining_mutex;
  }
  [[nodiscard]] bool is_leaving(PeerIndex p) const {
    return peer(p).leaving_mutex;
  }
  [[nodiscard]] bool is_server_peer(PeerIndex p) const {
    return peer(p).is_server;
  }
  /// Server-side ring registry (pid -> t-peer), the ground truth for
  /// segment-responsibility checks.
  [[nodiscard]] const std::map<std::uint64_t, PeerIndex>& registry() const {
    return registry_;
  }
  [[nodiscard]] const std::vector<PeerIndex>& children_of(PeerIndex p) const {
    return peer(p).children;
  }
  [[nodiscard]] const proto::DataStore& store_of(PeerIndex p) const {
    return peer(p).store;
  }
  [[nodiscard]] std::size_t num_peers() const { return peers_.size(); }
  [[nodiscard]] std::size_t num_tpeers() const;
  [[nodiscard]] std::size_t num_speers() const;

  /// Segment (pred_pid, pid] served by the s-network of t-peer `t`.
  [[nodiscard]] std::pair<PeerId, PeerId> segment_of(PeerIndex t) const;

  /// Live members of the s-network rooted at t-peer `t` (incl. the t-peer).
  [[nodiscard]] std::vector<PeerIndex> snetwork_members(PeerIndex t) const;

  /// Ring invariant: successor/predecessor pointers form one cycle over all
  /// joined t-peers, ids strictly increasing around the cycle.
  [[nodiscard]] bool verify_ring() const;

  /// Tree invariants: every joined s-peer's cp chain reaches its t-peer and
  /// parent/child pointers agree.  (The degree cap is enforced at admission
  /// but may be legitimately exceeded after a promotion absorbs the old
  /// root's children, so it is asserted by tests on churn-free builds
  /// rather than here.)
  [[nodiscard]] bool verify_trees() const;

  /// Total stored items across live peers.
  [[nodiscard]] std::size_t total_items() const;

  /// Items-per-peer across live joined peers (Fig. 4 raw data).
  [[nodiscard]] std::vector<std::size_t> items_per_peer() const;

  /// Live joined peers (for workload generators to draw from), in peer-index
  /// order.  Served from a cache invalidated on membership/liveness changes:
  /// workload generators call this per operation, and the O(N) rebuild per
  /// op dominated whole runs past ~20k peers.  The reference is valid until
  /// the next membership change.
  [[nodiscard]] const std::vector<PeerIndex>& live_peers() const;

  /// Number of bypass links currently installed system-wide.
  [[nodiscard]] std::size_t num_bypass_links() const;

  /// Lifetime counters for the Section 5.4 mechanism.
  [[nodiscard]] std::uint64_t bypass_installs() const {
    return bypass_installs_;
  }
  [[nodiscard]] std::uint64_t bypass_uses() const { return bypass_uses_; }

  /// How many lookups each peer has answered (from store or cache); the
  /// load metric of the Section 7 caching scheme.
  [[nodiscard]] std::uint64_t answers_served(PeerIndex p) const {
    return peer(p).answers_served;
  }
  /// Largest per-peer answer count (the "overwhelmed host" indicator).
  [[nodiscard]] std::uint64_t max_answers_served() const;
  /// Lookups answered from a cache rather than the authoritative store.
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

  /// T-peer responsible for a data id (server-registry view).
  [[nodiscard]] PeerIndex owner_tpeer(DataId id) const {
    return registry_owner(id.value());
  }

  /// Holders the tracker at `t` has indexed for `id` (BitTorrent-style
  /// s-networks; empty otherwise).  The chaos oracle uses this to decide
  /// whether a tracker-mode lookup MUST succeed.
  [[nodiscard]] std::vector<PeerIndex> tracker_holders(PeerIndex t,
                                                       DataId id) const;

  // --- Data durability (segment-local replication) ------------------------------

  /// Deterministic replica set for `id`: the owning t-peer first, then up to
  /// replication_factor - 1 live members of its s-network ranked by a
  /// per-id hash, then the successor t-peer as a fallback when the s-network
  /// is too small.  Depends only on the current overlay state, never on rng.
  [[nodiscard]] std::vector<PeerIndex> replica_set(DataId id) const;

  /// Replica copies pushed when a primary item lands in its home segment.
  [[nodiscard]] std::uint64_t replica_pushes() const {
    return replica_pushes_;
  }
  /// Copies re-pushed by anti-entropy sweeps / churn-triggered repair.
  [[nodiscard]] std::uint64_t re_replication_pushes() const {
    return re_replication_pushes_;
  }
  /// Sweep-pushed copies that actually filled a hole at the receiver.
  [[nodiscard]] std::uint64_t anti_entropy_repairs() const {
    return anti_entropy_repairs_;
  }
  /// Primary copies restored at the owner after a lookup was answered from
  /// a non-primary replica.
  [[nodiscard]] std::uint64_t read_repairs() const { return read_repairs_; }

  /// Bulk-refreshes every t-peer's finger table from the server registry.
  /// Stand-in for Chord's background fix_fingers: the hybrid paper keeps
  /// finger maintenance out of scope (substitution updates aside), so
  /// benches call this once after the build phase when t_routing==kFinger.
  void refresh_all_fingers();

  [[nodiscard]] const HybridParams& params() const { return params_; }

  /// Installs (or, with nullptr, removes) the span recorder.  Every store
  /// and lookup then records a span tree: a root span, one child per
  /// protocol stage (cp-chain climb, ring routing, s-network flood, reply),
  /// and instant events per hop.  Not owned.
  void set_tracer(stats::SpanRecorder* tracer) { tracer_ = tracer; }
  [[nodiscard]] stats::SpanRecorder* tracer() const { return tracer_; }

  /// Lookups currently in flight (issued, neither answered nor timed out).
  [[nodiscard]] std::size_t pending_lookups() const { return queries_.size(); }

  /// Called with (peer, ttl) each time a flood/walk wave starts at `peer`
  /// with `ttl` hops left.  The auditor uses it to bound in-flight TTLs.
  using FloodObserver = std::function<void(PeerIndex, unsigned)>;
  void set_flood_observer(FloodObserver fn) { flood_observer_ = std::move(fn); }

 private:
  /// Test-only white-box corruption hooks (src/audit/fault_inject.hpp).
  friend struct FaultInjector;

  // --- Internal state ---------------------------------------------------------

  struct BypassLink {
    PeerIndex to = kNoPeer;
    PeerId segment_lo{};  // predecessor pid of the remote t-peer
    PeerId segment_hi{};  // pid of the remote t-peer
    sim::SimTime expires{};
  };

  /// A queued t-peer join request (Section 3.3 serialization).
  struct PendingJoin {
    PeerIndex joiner = kNoPeer;
    std::uint32_t hops = 0;
    sim::SimTime started{};
    JoinCallback done;
  };

  struct Peer {
    PeerIndex self = kNoPeer;
    HostIndex host = kNoHost;
    Role role = Role::kSPeer;
    PeerId pid{};
    std::uint32_t interest = 0;
    bool joined = false;

    // T-peer ring state.
    PeerIndex successor = kNoPeer;
    PeerId successor_id{};
    PeerIndex predecessor = kNoPeer;
    PeerId predecessor_id{};
    chord::FingerTable fingers;
    // Concurrency control of Section 3.3.
    bool joining_mutex = false;
    bool leaving_mutex = false;
    std::deque<PendingJoin> pending_joins;
    bool is_server = false;

    // S-network membership (t-peers are tree roots; cp == kNoPeer).
    PeerIndex tpeer = kNoPeer;  // root of my s-network (self for t-peers)
    PeerIndex cp = kNoPeer;     // connect point (tree parent)
    std::vector<PeerIndex> children;
    std::vector<PeerIndex> mesh_links;  // kMesh style extra links
    std::vector<BypassLink> bypass;

    proto::DataStore store;
    // BitTorrent style: tracker index at the t-peer (d_id -> holders, in
    // announce order).  Multiple holders per id is what makes multi-peer
    // swarm downloads work: the tracker hands the query to every announced
    // holder and the first live one answers.  Ordered map: the promotion
    // and pruning paths iterate it, and iteration feeds message emission.
    std::map<DataId, std::vector<PeerIndex>> tracker_index;
    // Section 7 caching scheme: recently fetched items.  The map gives O(1)
    // hits on the lookup fast path; the deque preserves FIFO eviction order
    // (each cached id appears in it exactly once).
    struct CacheEntry {
      proto::DataItem item;
      sim::SimTime expires{};
    };
    std::unordered_map<DataId, CacheEntry> cache;
    std::deque<DataId> cache_fifo;  // oldest first
    std::uint64_t answers_served = 0;

    // Failure-detection bookkeeping.
    std::unordered_map<std::uint32_t, sim::SimTime> last_heard;  // by peer idx
    std::unordered_map<std::uint32_t, sim::SimTime> last_sent;
    bool heartbeat_running = false;
    /// Last time this orphaned s-peer asked to rejoin a tree; throttles the
    /// heartbeat-driven re-attach retry to one request per hello_timeout.
    sim::SimTime last_rejoin_attempt{};
    /// Last anti-entropy sweep started by this t-peer (replication only).
    sim::SimTime last_sweep{};
  };

  struct Query {
    PeerIndex origin = kNoPeer;
    DataId target{};
    sim::SimTime started{};
    std::uint32_t contacted = 0;
    bool finished = false;
    bool reflooded = false;
    bool rerouted = false;
    sim::TimerId timer{};
    LookupCallback done;
    std::unordered_set<std::uint32_t> visited;  // flood dedup + contacted
    stats::TraceContext trace;  // root span of the lookup (when traced)
    stats::TraceContext stage;  // currently open stage span (climb/ring/...)
  };

  Peer& peer(PeerIndex i) { return peers_[i.value()]; }
  [[nodiscard]] const Peer& peer(PeerIndex i) const {
    return peers_[i.value()];
  }

  // --- Server logic (runs at server_) -----------------------------------------

  [[nodiscard]] Role server_pick_role(HostIndex host);
  [[nodiscard]] PeerId server_generate_pid();
  /// Picks the s-network for a joining s-peer: interest match, landmark
  /// cluster, or smallest size (Section 3.2.2 / 5.2 / 5.3).
  [[nodiscard]] PeerIndex server_pick_snetwork(PeerIndex joiner);
  [[nodiscard]] PeerIndex server_random_tpeer();
  void server_handle_compete(PeerIndex orphan, PeerIndex dead_tpeer);
  /// Ring repair when a t-peer with no surviving s-network crashes: the
  /// server drops it from the registry and reconnects its ring neighbors.
  void server_handle_ring_repair(PeerIndex reporter, PeerIndex dead);
  /// A t-peer reported `dead` after its slot was already taken over: tell
  /// the reporter who holds the slot now, so a raced/suppressed adoption
  /// message cannot leave its ring pointers dangling forever.
  void server_refresh_ring_pointers(PeerIndex reporter, PeerIndex dead);
  /// Registry maintenance.  insert/erase also keep snetwork_by_size_ in
  /// step, so every s-network size change must flow through
  /// set_snetwork_size()/erase_snetwork_size() rather than writing
  /// snetwork_size_ directly.
  void registry_insert(PeerId pid, PeerIndex t);
  void registry_erase(PeerId pid);
  [[nodiscard]] PeerIndex registry_owner(std::uint64_t id) const;
  /// Server's view of t's s-network size (missing entry reads as 0, the
  /// same convention the smallest-first scan always used).
  [[nodiscard]] std::size_t snetwork_size_of(PeerIndex t) const;
  void set_snetwork_size(PeerIndex t, std::size_t size);
  void erase_snetwork_size(PeerIndex t);

  // --- Join protocols ----------------------------------------------------------

  void start_tpeer_join(PeerIndex joiner, sim::SimTime started,
                        JoinCallback done);
  void route_tjoin(PeerIndex at, PeerIndex joiner, std::uint32_t hops,
                   sim::SimTime started, JoinCallback done);
  void tjoin_at_pre(PeerIndex pre, PendingJoin req);
  void run_join_triangle(PeerIndex pre, PendingJoin req);
  void process_pending_joins(PeerIndex pre);
  void start_speer_join(PeerIndex joiner, PeerIndex target_tpeer,
                        sim::SimTime started, JoinCallback done);
  void descend_sjoin(PeerIndex at, PeerIndex joiner, std::uint32_t hops,
                     sim::SimTime started, JoinCallback done);
  [[nodiscard]] bool accepts_child(const Peer& p) const;
  [[nodiscard]] unsigned tree_degree(const Peer& p) const;

  // --- Leave / crash -----------------------------------------------------------

  void tpeer_leave(PeerIndex leaving);
  void speer_leave(PeerIndex leaving);
  /// Hands a leaving s-peer's items to the first live candidate, retrying
  /// down the list when the transfer is never acknowledged (the chosen heir
  /// crashed or left with the kData message in flight).  The leaver only
  /// goes dark once an heir acked receipt -- or every candidate is gone.
  void speer_leave_handoff(PeerIndex leaving,
                           std::shared_ptr<std::vector<PeerIndex>> candidates,
                           std::size_t next,
                           std::shared_ptr<std::vector<proto::DataItem>> items);
  /// Promotes s-peer `heir` into the ring position of `old_t` (graceful
  /// role transfer or crash replacement).  `with_data` carries old_t's
  /// store across (graceful only).
  void promote_speer(PeerIndex heir, PeerIndex old_t, bool with_data);
  void ring_leave(PeerIndex leaving);
  void ring_leave_wait_pre(PeerIndex leaving);
  void ring_leave_step2(PeerIndex pre, PeerIndex suc, PeerId suc_id,
                        PeerIndex leaving, PeerId pre_id);
  void broadcast_substitution(PeerIndex old_t, PeerIndex new_t);
  void detach_from_tree(PeerIndex p, bool notify_children);
  void rejoin_subtree(PeerIndex child);

  // --- Failure detection -------------------------------------------------------

  void heartbeat_tick(PeerIndex p);
  void heartbeat_step(PeerIndex p);
  [[nodiscard]] std::vector<PeerIndex> link_neighbors(const Peer& p) const;
  void on_neighbor_dead(PeerIndex at, PeerIndex dead);
  void note_heard(PeerIndex at, PeerIndex from);
  void maybe_ack(PeerIndex at, PeerIndex to);

  // --- Data path ---------------------------------------------------------------

  [[nodiscard]] bool in_local_segment(const Peer& p, DataId id) const;
  /// Forwards up the cp chain to the s-network's t-peer, then runs `at_root`
  /// there.  When the upward path is gone (detached orphan, mid-churn)
  /// `on_dead` runs instead -- lookups use it to fail fast rather than
  /// letting the requester wait out lookup_timeout.
  void forward_up_to_tpeer(PeerIndex at, std::uint32_t bytes,
                           proto::TrafficClass cls,
                           std::function<void(PeerIndex, std::uint32_t)> at_root,
                           std::uint32_t hops,
                           std::function<void()> on_dead = {},
                           stats::TraceContext ctx = {});
  /// Forwards around the t-network until the owner of `target` is reached.
  /// When `intercept` is set it runs at every intermediate t-peer; returning
  /// true consumes the request there (cache hits at surrogate peers,
  /// Section 7).
  void route_ring(PeerIndex at, std::uint64_t target, std::uint32_t hops,
                  std::uint32_t contacted, proto::TrafficClass cls,
                  std::uint32_t bytes,
                  std::function<void(PeerIndex, std::uint32_t, std::uint32_t)>
                      at_owner,
                  std::function<bool(PeerIndex, std::uint32_t)> intercept = {},
                  stats::TraceContext ctx = {});
  /// One ring hop with retry: sends to the next hop and, while
  /// params_.ring_retry_limit allows, re-resolves and resends after
  /// 2x hop latency + capped exponential backoff if the hop was never
  /// delivered (receiver crashed with the message in flight).
  void ring_forward(
      PeerIndex at, std::uint64_t target, std::uint32_t hops,
      std::uint32_t contacted, proto::TrafficClass cls, std::uint32_t bytes,
      std::shared_ptr<std::function<void(PeerIndex, std::uint32_t,
                                         std::uint32_t)>> at_owner,
      std::shared_ptr<std::function<bool(PeerIndex, std::uint32_t)>> intercept,
      stats::TraceContext ctx, unsigned attempt);
  void place_item(PeerIndex at, proto::DataItem item, StoreCallback done);
  void spread_item(PeerIndex at, proto::DataItem item, StoreCallback done);
  /// Routes `item` from `from` to the responsible t-peer's s-network
  /// (cp-chain climb + ring forwarding + place_item).  Used to re-home
  /// items that ended up outside their segment after churn.
  void route_and_place(PeerIndex from, proto::DataItem item);
  /// Inserts locally when `at` is (or can't determine) the responsible
  /// s-network; otherwise forwards via route_and_place.
  void insert_or_rehome(PeerIndex at, proto::DataItem item);
  /// Re-homes every stored item at `at` that falls outside its s-network's
  /// segment (called after `at` lands in a possibly different s-network).
  void rehome_foreign_items(PeerIndex at);

  // --- Replication (segment-local durability) ----------------------------------

  /// True when the replication layer is on at all: r > 1 and a style whose
  /// placement the replica set can reason about (tracker mode indexes every
  /// copy explicitly, so it is excluded).
  [[nodiscard]] bool replication_active() const {
    return params_.replication_factor > 1 &&
           params_.style != SNetworkStyle::kBitTorrent;
  }
  /// Pushes replica-tagged copies of a freshly placed primary item to the
  /// other members of its replica set.  No-op when replication is off or
  /// `item` is itself a replica copy (no fan-out cascades).
  void replicate_item(PeerIndex at, const proto::DataItem& item);
  /// Idempotent local insert on the replication paths: merge (dedup by
  /// id + key) when replication is active, plain insert otherwise -- the
  /// r = 1 byte-identity guarantee keeps insert() on the legacy path.
  void store_or_merge(Peer& p, proto::DataItem item);
  /// One anti-entropy round started by t-peer `root`: the root sends its
  /// in-segment id digest to every live member (plus the successor fallback
  /// when the s-network is too small); members push items the root lacks and
  /// request in-segment items they should hold but don't.
  void replication_sweep(PeerIndex root);
  void sweep_at_member(PeerIndex member, PeerIndex root,
                       std::shared_ptr<const std::vector<DataId>> digest);
  /// Schedules a near-term sweep at `at`'s root after a churn event
  /// (gated on re_replicate_on_churn).
  void trigger_re_replication(PeerIndex at);
  /// True when `at` is the designated successor-fallback holder for `id`
  /// (the owner's successor t-peer, standing in for a too-small s-network).
  [[nodiscard]] bool is_fallback_holder(PeerIndex at, DataId id) const;
  /// Restores the primary copy at the owner after `item` answered a lookup
  /// from a non-primary replica at `at`.
  void maybe_read_repair(PeerIndex at, const proto::DataItem& item);

  /// Dispatches to flood() or random walks per params_.s_search.
  void search_snetwork(PeerIndex at, PeerIndex from, std::uint64_t qid,
                       unsigned ttl, std::uint32_t hops);
  void flood(PeerIndex at, PeerIndex from, std::uint64_t qid, unsigned ttl,
             std::uint32_t hops);
  void walk(PeerIndex at, std::uint64_t qid, unsigned ttl,
            std::uint32_t hops);
  [[nodiscard]] std::vector<PeerIndex> snetwork_neighbors(const Peer& p) const;
  bool try_answer(PeerIndex at, std::uint64_t qid, std::uint32_t hops);
  /// Store first, then cache (when enabled); nullptr on miss.
  [[nodiscard]] const proto::DataItem* answer_source(Peer& p, DataId id,
                                                     bool& from_cache);
  void cache_put(PeerIndex at, const proto::DataItem& item);
  /// Ends the query's current stage span (if any) and opens a new one named
  /// `name` under its root.  No-op when untraced.
  void trace_stage(std::uint64_t qid, const char* name, const char* category,
                   PeerIndex at);
  /// Context new work on this query should record under: the open stage
  /// span when one exists, else the root.  Invalid when untraced.
  [[nodiscard]] stats::TraceContext query_trace(std::uint64_t qid) const;

  void finish_query(std::uint64_t qid, proto::LookupResult result);
  /// Immediate failure (no timeout wait); sets LookupResult::fast_fail.
  void fail_query_fast(std::uint64_t qid);
  /// Arms the Section 3.4 re-flood for query `qid`: at lookup_timeout/2,
  /// if still unanswered, re-flood from `at` with doubled TTL.  Shared by
  /// the local-segment and remote-segment lookup paths.
  void arm_reflood(std::uint64_t qid, PeerIndex at);
  void arm_reroute(std::uint64_t qid, PeerIndex origin, DataId id);
  void start_remote_lookup(PeerIndex origin, std::uint64_t qid, DataId id);
  void bt_lookup(PeerIndex origin, std::uint64_t qid, PeerIndex tracker,
                 std::uint32_t hops);

  // --- Tracker index maintenance (BitTorrent style) -----------------------------

  /// Records `holder` for `id` in tracker `t`'s index (idempotent).
  static void tracker_index_add(Peer& t, DataId id, PeerIndex holder);
  /// Sends one announce for `id` from `member` up to its tracker root.
  /// No-op outside kBitTorrent or when tracker_reannounce is off.
  void tracker_announce(PeerIndex member, DataId id);
  /// Re-announces every id in `member`'s store to its (possibly new)
  /// tracker root: the index-healing path after crash promotion, orphan
  /// rejoin, and subtree re-attach.  Gated like tracker_announce.
  void tracker_reannounce_store(PeerIndex member);
  /// Drops `dead` from every entry of tracker `t`'s index (crash cleanup,
  /// driven by the tracker's own failure detection).
  static void tracker_index_prune(Peer& t, PeerIndex dead);
  void maybe_add_bypass(PeerIndex a, PeerIndex b);
  /// Drops expired links so they stop consuming the delta budget.
  void prune_bypass(Peer& p);
  /// Live link covering `id`, if any; using it refreshes its expiry timer
  /// ("transmitting a packet through the bypass link will refresh the
  /// attached timer", Section 5.4).
  [[nodiscard]] BypassLink* find_bypass(Peer& p, DataId id);

  // --- Landmark binning (Section 5.2) -------------------------------------------

  [[nodiscard]] std::uint64_t coordinate_of(HostIndex host) const;

  proto::OverlayNetwork& net_;
  sim::Simulator& sim_;
  HybridParams params_;
  Rng& rng_;

  /// Drops the live_peers() and role-census caches.  MUST be called after
  /// any change to a peer's `joined` flag or (post-join) role -- every such
  /// mutation site in hybrid_membership.cpp pairs with a call to this.
  /// Transport liveness changes are tracked separately via
  /// OverlayNetwork::liveness_epoch().
  void membership_changed() const {
    live_peers_dirty_ = true;
    role_counts_dirty_ = true;
  }
  /// Rebuilds the memoized t/s-peer census when dirty.  num_tpeers() and
  /// num_speers() feed the per-sim-second sampler gauges; an O(peers) scan
  /// of the fat Peer structs on every tick was the hottest non-event cost
  /// the dispatch profiler found at 20k peers.
  void refresh_role_counts() const;

  PeerIndex server_ = kNoPeer;  // the well-known server's transport endpoint
  std::vector<Peer> peers_;
  /// live_peers() cache; rebuilt lazily after membership_changed() or a
  /// transport liveness-epoch bump.
  mutable std::vector<PeerIndex> live_peers_cache_;
  mutable bool live_peers_dirty_ = true;
  mutable std::uint64_t live_peers_net_epoch_ = 0;
  /// Memoized joined-peer census by role, rebuilt via refresh_role_counts().
  mutable std::size_t tpeer_count_ = 0;
  mutable std::size_t speer_count_ = 0;
  mutable bool role_counts_dirty_ = true;
  /// Server-side ring registry: pid -> t-peer (ordered for owner queries).
  std::map<std::uint64_t, PeerIndex> registry_;
  /// Server-side round-robin cursors: interest/cluster -> t-peer list slot.
  std::unordered_map<std::uint64_t, std::size_t> assignment_cursor_;
  /// Server's (approximate) view of each s-network's size, for
  /// smallest-first assignment.
  std::unordered_map<std::uint32_t, std::size_t> snetwork_size_;
  /// Ascending (size, pid) over *registered* t-peers: begin() is the
  /// smallest-first assignment target in O(log N_t), where the old per-join
  /// registry scan was O(N_t) -- the dominant server cost past ~20k peers.
  /// Ties break toward the lowest pid, exactly like the scan it replaces.
  std::set<std::pair<std::size_t, std::uint64_t>> snetwork_by_size_;
  /// Reverse of registry_ (t-peer -> registered pid), so a size change can
  /// reposition the t-peer's snetwork_by_size_ entry without a search.
  /// Lookup-only; never iterated.
  std::unordered_map<std::uint32_t, std::uint64_t> registered_pid_of_;
  /// Sticky interest -> s-network anchor (Section 5.3).
  std::unordered_map<std::uint32_t, PeerIndex> interest_snetwork_;
  std::vector<HostIndex> landmarks_;
  std::unordered_map<std::uint64_t, Query> queries_;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t next_key_ = 1;
  bool failure_detection_ = false;
  /// Orphans already competing for a given dead t-peer (server-side memory
  /// so the first competitor wins).
  std::unordered_set<std::uint32_t> replaced_tpeers_;
  std::uint64_t bypass_installs_ = 0;
  std::uint64_t bypass_uses_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t replica_pushes_ = 0;
  std::uint64_t re_replication_pushes_ = 0;
  std::uint64_t anti_entropy_repairs_ = 0;
  std::uint64_t read_repairs_ = 0;
  stats::SpanRecorder* tracer_ = nullptr;
  FloodObserver flood_observer_;

  /// In-flight keyword searches.
  struct KeywordQuery {
    PeerIndex origin = kNoPeer;
    std::string substring;
    KeywordResult result;
    std::unordered_set<std::uint32_t> visited;
    sim::TimerId timer{};
    KeywordCallback done;
  };
  std::unordered_map<std::uint64_t, KeywordQuery> keyword_queries_;
  void keyword_flood(PeerIndex at, PeerIndex from, std::uint64_t qid,
                     unsigned ttl);
  /// Circulates a keyword query clockwise around the ring; each t-peer
  /// contributes its own matches and floods its s-network, until the walk
  /// returns to `stop_at`.
  void keyword_ring_walk(PeerIndex at, PeerIndex stop_at, std::uint64_t qid);
  std::uint64_t start_keyword_query(PeerIndex from,
                                    const std::string& substring,
                                    sim::Duration collect_window,
                                    KeywordCallback done);
};

}  // namespace hp2p::hybrid
