// HybridSystem: segment-local replication and repair.
//
// Every stored item is kept on up to `replication_factor` holders inside its
// owning segment: the responsible t-peer (primary) plus replica holders
// chosen deterministically from its s-network, falling back to the successor
// t-peer when the s-network is too small.  Re-replication hooks into the
// churn paths (crash detection, promotion, leave handover, join segment
// transfer), a periodic anti-entropy sweep exchanges per-segment store
// digests along s-network edges, and lookups answered from a non-primary
// replica trigger read-repair at the owner.
//
// Everything here is gated on replication_active(): with r = 1 no message,
// rng draw, or timer differs from the unreplicated system.
#include <algorithm>
#include <memory>

#include "hybrid/hybrid_system.hpp"

namespace hp2p::hybrid {

using proto::TrafficClass;

std::vector<PeerIndex> HybridSystem::replica_set(DataId id) const {
  std::vector<PeerIndex> out;
  const PeerIndex owner = registry_owner(id.value());
  if (owner == kNoPeer) return out;
  out.push_back(owner);
  const unsigned r = params_.replication_factor;
  if (r <= 1) return out;
  // Rank the owner's live members by a per-id hash so each item picks its
  // own holders (spreading replica load) while the choice stays a pure
  // function of the overlay state.  Ties break on the peer index.
  std::vector<std::pair<std::uint64_t, PeerIndex>> ranked;
  for (const PeerIndex m : snetwork_members(owner)) {
    if (m == owner || !net_.alive(m) || !peer(m).joined) continue;
    ranked.emplace_back(mix64(id.value() ^ mix64(m.value())), m);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [hash, m] : ranked) {
    if (out.size() >= r) break;
    out.push_back(m);
  }
  if (out.size() < r) {
    // S-network too small: the successor t-peer stands in as a fallback
    // holder so a lone t-peer's segment still survives its crash.
    const PeerIndex suc = peer(owner).successor;
    if (suc != kNoPeer && suc != owner && net_.alive(suc) &&
        peer(suc).joined) {
      out.push_back(suc);
    }
  }
  return out;
}

bool HybridSystem::is_fallback_holder(PeerIndex at, DataId id) const {
  const Peer& p = peer(at);
  if (p.role != Role::kTPeer || !p.joined) return false;
  const PeerIndex owner = registry_owner(id.value());
  if (owner == kNoPeer || owner == at) return false;
  return peer(owner).successor == at;
}

void HybridSystem::store_or_merge(Peer& p, proto::DataItem item) {
  if (replication_active()) {
    p.store.merge(std::move(item));
  } else {
    p.store.insert(std::move(item));
  }
}

void HybridSystem::replicate_item(PeerIndex at, const proto::DataItem& item) {
  if (!replication_active() || item.replica) return;
  sim::ComponentScope prof{sim_, sim::Component::kReplication};
  const PeerIndex owner = registry_owner(item.id.value());
  if (owner == kNoPeer) return;
  for (const PeerIndex m : replica_set(item.id)) {
    if (m == at || !net_.alive(m) || !peer(m).joined) continue;
    proto::DataItem copy = item;
    // The copy at the owner is the primary; everyone else holds replicas.
    copy.replica = (m != owner);
    ++replica_pushes_;
    net_.send(at, m, TrafficClass::kData, proto::kDataBytes,
              [this, m, copy = std::move(copy)]() mutable {
                if (!peer(m).joined) return;
                peer(m).store.merge(std::move(copy));
              });
  }
}

void HybridSystem::maybe_read_repair(PeerIndex at,
                                     const proto::DataItem& item) {
  if (!replication_active() || !item.replica) return;
  sim::ComponentScope prof{sim_, sim::Component::kReplication};
  const PeerIndex owner = registry_owner(item.id.value());
  if (owner == kNoPeer || owner == at) return;
  if (!net_.alive(owner) || !peer(owner).joined) return;
  proto::DataItem copy = item;
  copy.replica = false;  // restoring the primary
  net_.send(at, owner, TrafficClass::kData, proto::kDataBytes,
            [this, owner, copy = std::move(copy)]() mutable {
              if (!peer(owner).joined) return;
              if (peer(owner).store.merge(std::move(copy))) ++read_repairs_;
            });
}

void HybridSystem::trigger_re_replication(PeerIndex at) {
  if (!replication_active() || !params_.re_replicate_on_churn) return;
  sim::ComponentScope prof{sim_, sim::Component::kReplication};
  const Peer& p = peer(at);
  const PeerIndex root = p.role == Role::kTPeer ? at : p.tpeer;
  if (root == kNoPeer) return;
  // One hello interval of slack lets the membership repair that triggered
  // us (pointer adoption, re-parenting) land before the digest round.
  sim_.schedule_after(params_.hello_interval,
                      [this, root] { replication_sweep(root); });
}

void HybridSystem::replication_sweep(PeerIndex root) {
  if (!replication_active()) return;
  sim::ComponentScope prof{sim_, sim::Component::kReplication};
  Peer& t = peer(root);
  if (!net_.alive(root) || !t.joined || t.role != Role::kTPeer) return;
  auto digest = std::make_shared<const std::vector<DataId>>(
      t.store.ids_in_arc(t.predecessor_id, t.pid));
  std::vector<PeerIndex> targets;
  for (const PeerIndex m : snetwork_members(root)) {
    if (m == root || !net_.alive(m) || !peer(m).joined) continue;
    targets.push_back(m);
  }
  if (targets.size() + 1 < params_.replication_factor) {
    const PeerIndex suc = t.successor;
    if (suc != kNoPeer && suc != root && net_.alive(suc) &&
        peer(suc).joined) {
      targets.push_back(suc);
    }
  }
  const auto digest_bytes = static_cast<std::uint32_t>(
      proto::kControlBytes + 8 * digest->size());
  for (const PeerIndex m : targets) {
    net_.send(root, m, TrafficClass::kControl, digest_bytes,
              [this, m, root, digest] { sweep_at_member(m, root, digest); });
  }
}

void HybridSystem::sweep_at_member(
    PeerIndex member, PeerIndex root,
    std::shared_ptr<const std::vector<DataId>> digest) {
  sim::ComponentScope prof{sim_, sim::Component::kReplication};
  Peer& m = peer(member);
  Peer& t = peer(root);
  if (!m.joined || !net_.alive(root) || !t.joined ||
      t.role != Role::kTPeer) {
    return;
  }
  const PeerId lo = t.predecessor_id;
  const PeerId hi = t.pid;
  const auto in_digest = [&digest](DataId id) {
    return std::binary_search(digest->begin(), digest->end(), id);
  };

  // Direction 1: in-segment items the root lacks travel up.  The root is
  // the owner, so these restore the primary copy; the merge at the root
  // fans the item back out to the rest of its replica set.
  std::vector<proto::DataItem> push;
  m.store.for_each([&](const proto::DataItem& item) {
    if (!ring::in_arc_open_closed(item.id.value(), lo.value(), hi.value())) {
      return;
    }
    if (in_digest(item.id)) return;
    proto::DataItem copy = item;
    copy.replica = false;
    push.push_back(std::move(copy));
  });
  if (!push.empty()) {
    re_replication_pushes_ += push.size();
    net_.send(member, root, TrafficClass::kData,
              proto::kDataBytes * static_cast<std::uint32_t>(push.size()),
              [this, root, push = std::move(push)]() mutable {
                Peer& rt = peer(root);
                if (!rt.joined) return;
                for (auto& item : push) {
                  const proto::DataItem primary = item;
                  if (rt.store.merge(std::move(item))) {
                    ++anti_entropy_repairs_;
                    replicate_item(root, primary);
                  }
                }
              });
  }

  // Direction 2: digest ids this member should hold (it is in the replica
  // set, or it is the successor fallback) but doesn't travel down.
  std::vector<DataId> want;
  for (const DataId id : *digest) {
    if (m.store.contains(id)) continue;
    const auto rs = replica_set(id);
    if (std::find(rs.begin(), rs.end(), member) != rs.end()) {
      want.push_back(id);
    }
  }
  if (want.empty()) return;
  const auto want_bytes = static_cast<std::uint32_t>(
      proto::kControlBytes + 8 * want.size());
  net_.send(member, root, TrafficClass::kControl, want_bytes,
            [this, member, root, want = std::move(want)] {
              Peer& rt = peer(root);
              if (!rt.joined || !net_.alive(member) || !peer(member).joined) {
                return;
              }
              std::vector<proto::DataItem> fill;
              for (const DataId id : want) {
                const proto::DataItem* item = rt.store.find(id);
                if (item == nullptr) continue;
                proto::DataItem copy = *item;
                copy.replica = true;
                fill.push_back(std::move(copy));
              }
              if (fill.empty()) return;
              re_replication_pushes_ += fill.size();
              net_.send(root, member, TrafficClass::kData,
                        proto::kDataBytes *
                            static_cast<std::uint32_t>(fill.size()),
                        [this, member, fill = std::move(fill)]() mutable {
                          Peer& mm = peer(member);
                          if (!mm.joined) return;
                          for (auto& item : fill) {
                            if (mm.store.merge(std::move(item))) {
                              ++anti_entropy_repairs_;
                            }
                          }
                        });
            });
}

}  // namespace hp2p::hybrid
