// HybridSystem: construction, server logic, join/leave/crash protocols and
// failure detection (Sections 3.2, 3.3, 5.1, 5.2, 5.3).
#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>

#include "hybrid/hybrid_system.hpp"

namespace hp2p::hybrid {

using proto::TrafficClass;

HybridSystem::HybridSystem(proto::OverlayNetwork& network,
                           HybridParams params, HostIndex server_host,
                           Rng& rng)
    : net_(network), sim_(network.simulator()), params_(params), rng_(rng) {
  // The server occupies a transport endpoint so contacting it costs real
  // latency; it is not a peer of either overlay.
  server_ = net_.add_peer(server_host);
  Peer s;
  s.self = server_;
  s.host = server_host;
  s.is_server = true;
  peers_.push_back(std::move(s));

  if (params_.topology_aware) {
    // "Predetermined so that they are uniformly distributed around the
    // network" (Section 6): evenly spaced host indices.  Host blocks follow
    // domain order, so equal spacing spreads landmarks across domains.
    const std::uint32_t hosts = net_.underlay().num_hosts();
    const std::uint32_t n = std::max(1u, params_.num_landmarks);
    for (std::uint32_t k = 0; k < n; ++k) {
      landmarks_.push_back(HostIndex{(k * hosts) / n});
    }
  }
}

// --- Server logic -------------------------------------------------------------

Role HybridSystem::server_pick_role(HostIndex host) {
  if (registry_.empty()) return Role::kTPeer;  // someone must seed the ring
  double p_t = 1.0 - params_.ps;
  if (params_.capacity_aware_roles) {
    // Section 5.1: bias t-peer roles toward fast access links while keeping
    // the overall expected t-peer fraction at 1 - p_s (weights average 1).
    switch (net_.underlay().capacity(host)) {
      case net::CapacityClass::kLow:
        p_t *= 0.2;
        break;
      case net::CapacityClass::kMedium:
        p_t *= 1.0;
        break;
      case net::CapacityClass::kHigh:
        p_t *= 1.8;
        break;
    }
  }
  return rng_.chance(p_t) ? Role::kTPeer : Role::kSPeer;
}

PeerId HybridSystem::server_generate_pid() {
  return PeerId{rng_.uniform(0, kRingSize - 1)};
}

PeerIndex HybridSystem::server_random_tpeer() {
  if (registry_.empty()) return kNoPeer;
  auto it = registry_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng_.index(registry_.size())));
  return it->second;
}

void HybridSystem::registry_insert(PeerId pid, PeerIndex t) {
  auto it = registry_.find(pid.value());
  if (it != registry_.end()) {
    // Pid re-registration (promotion: the heir adopts the dead t-peer's
    // pid): retire the old holder's index entry first.
    snetwork_by_size_.erase({snetwork_size_of(it->second), pid.value()});
    registered_pid_of_.erase(it->second.value());
    it->second = t;
  } else {
    registry_.emplace(pid.value(), t);
  }
  registered_pid_of_[t.value()] = pid.value();
  snetwork_by_size_.insert({snetwork_size_of(t), pid.value()});
}

void HybridSystem::registry_erase(PeerId pid) {
  auto it = registry_.find(pid.value());
  if (it == registry_.end()) return;
  snetwork_by_size_.erase({snetwork_size_of(it->second), pid.value()});
  registered_pid_of_.erase(it->second.value());
  registry_.erase(it);
}

std::size_t HybridSystem::snetwork_size_of(PeerIndex t) const {
  const auto it = snetwork_size_.find(t.value());
  return it == snetwork_size_.end() ? 0 : it->second;
}

void HybridSystem::set_snetwork_size(PeerIndex t, std::size_t size) {
  const auto reg = registered_pid_of_.find(t.value());
  if (reg != registered_pid_of_.end()) {
    snetwork_by_size_.erase({snetwork_size_of(t), reg->second});
    snetwork_by_size_.insert({size, reg->second});
  }
  snetwork_size_[t.value()] = size;
}

void HybridSystem::erase_snetwork_size(PeerIndex t) {
  // A missing entry reads as size 0, so an erase while still registered
  // must park the index entry at 0 rather than drop it.
  const auto reg = registered_pid_of_.find(t.value());
  if (reg != registered_pid_of_.end()) {
    snetwork_by_size_.erase({snetwork_size_of(t), reg->second});
    snetwork_by_size_.insert({0, reg->second});
  }
  snetwork_size_.erase(t.value());
}

PeerIndex HybridSystem::registry_owner(std::uint64_t id) const {
  if (registry_.empty()) return kNoPeer;
  // Owner = first t-peer whose pid >= id (clockwise successor of the id).
  auto it = registry_.lower_bound(id);
  if (it == registry_.end()) it = registry_.begin();  // wrap
  return it->second;
}

std::uint64_t HybridSystem::coordinate_of(HostIndex host) const {
  // Landmark binning (Section 5.2).  The full distance-ordered permutation
  // of the paper's scheme makes nearly every host its own cluster at our
  // landmark counts (k! permutations), so we bin by the coarsest consistent
  // prefix: the nearest landmark.  More landmarks => finer clusters, which
  // preserves the paper's "more landmarks, lower latency" trend.
  std::size_t best = 0;
  std::int64_t best_dist = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    const std::int64_t d =
        net_.underlay().latency(host, landmarks_[i]).as_micros();
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

PeerIndex HybridSystem::server_pick_snetwork(PeerIndex joiner) {
  assert(!registry_.empty());
  const auto record = [this](PeerIndex t) {
    // The server counts assignments at assignment time so that a burst of
    // joins spreads out instead of piling onto one momentarily-small
    // s-network.
    set_snetwork_size(t, snetwork_size_of(t) + 1);
    return t;
  };
  if (params_.interest_based) {
    // Section 5.3: the first peer of an interest anchors it to the
    // s-network owning the interest's hash; later same-interest joiners
    // reuse the mapping, so an interest is never split across s-networks by
    // ring growth.
    const std::uint32_t interest = peer(joiner).interest;
    auto cached = interest_snetwork_.find(interest);
    if (cached != interest_snetwork_.end()) {
      const PeerIndex t = cached->second;
      if (peer(t).joined && net_.alive(t)) return record(t);
      // The anchor t-peer left; re-resolve (a promotion keeps the pid, so
      // registry_owner finds the heir).
      interest_snetwork_.erase(cached);
    }
    const std::uint64_t anchor = mix64(interest) & (kRingSize - 1);
    const PeerIndex t = registry_owner(anchor);
    interest_snetwork_[interest] = t;
    return record(t);
  }
  if (params_.topology_aware) {
    // Section 5.2: peers of one latency cluster share s-networks.  The
    // whole point is that the *t-peer too* sits inside the cluster --
    // otherwise every hop entering or leaving the tree still crosses the
    // network -- so prefer t-peers whose host bins to the same landmark,
    // round-robin among them for balance.
    const std::uint64_t cluster = coordinate_of(peer(joiner).host);
    std::vector<PeerIndex> same_cluster;
    for (const auto& [pid, t] : registry_) {
      if (coordinate_of(peer(t).host) == cluster) same_cluster.push_back(t);
    }
    std::size_t& cursor = assignment_cursor_[cluster];
    if (!same_cluster.empty()) {
      return record(same_cluster[cursor++ % same_cluster.size()]);
    }
    // No t-peer in this cluster: fall back to a stride-spaced round-robin
    // so the cluster at least stays together on a few s-networks.
    const std::size_t t_count = registry_.size();
    const std::size_t stride = std::max<std::size_t>(1, landmarks_.size());
    const std::size_t slot = (mix64(cluster) + cursor * stride) % t_count;
    ++cursor;
    auto it = registry_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(slot));
    return record(it->second);
  }
  // Default (Section 3.2.2): the s-network with the smallest size.  The
  // (size, pid) index makes this O(log N_t); its begin() is exactly what
  // the old pid-order scan chose (minimal size, lowest-pid tie-break).
  assert(!snetwork_by_size_.empty());
  const auto owner = registry_.find(snetwork_by_size_.begin()->second);
  assert(owner != registry_.end());
  return record(owner->second);
}

// --- Peer admission -----------------------------------------------------------

PeerIndex HybridSystem::add_peer(HostIndex host, JoinCallback done) {
  // Role decided at the server; we pre-register the endpoint, then the
  // request message travels to the server.
  const PeerIndex i = net_.add_peer(host);
  Peer p;
  p.self = i;
  p.host = host;
  p.interest = static_cast<std::uint32_t>(rng_.index(params_.num_interests));
  peers_.push_back(std::move(p));

  const sim::SimTime started = sim_.now();
  net_.send(i, server_, TrafficClass::kControl, proto::kControlBytes,
            [this, i, host, started, done = std::move(done)]() mutable {
              const Role role = server_pick_role(host);
              peer(i).role = role;
              if (role == Role::kTPeer) {
                start_tpeer_join(i, started, std::move(done));
              } else {
                start_speer_join(i, server_pick_snetwork(i), started,
                                 std::move(done));
              }
            });
  return i;
}

PeerIndex HybridSystem::add_peer_with_role(HostIndex host, Role role,
                                           JoinCallback done) {
  return add_peer_with_interest(
      host, role,
      static_cast<std::uint32_t>(rng_.index(params_.num_interests)),
      std::move(done));
}

PeerIndex HybridSystem::add_peer_with_interest(HostIndex host, Role role,
                                               std::uint32_t interest,
                                               JoinCallback done) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  const PeerIndex i = net_.add_peer(host);
  Peer p;
  p.self = i;
  p.host = host;
  p.role = role;
  p.interest = interest;
  peers_.push_back(std::move(p));

  const sim::SimTime started = sim_.now();
  net_.send(i, server_, TrafficClass::kControl, proto::kControlBytes,
            [this, i, role, started, done = std::move(done)]() mutable {
              if (role == Role::kTPeer || registry_.empty()) {
                peer(i).role = Role::kTPeer;
                start_tpeer_join(i, started, std::move(done));
              } else {
                start_speer_join(i, server_pick_snetwork(i), started,
                                 std::move(done));
              }
            });
  return i;
}

// --- T-peer join (Sections 3.2.1 and 3.3) ---------------------------------------

void HybridSystem::start_tpeer_join(PeerIndex joiner, sim::SimTime started,
                                    JoinCallback done) {
  Peer& n = peer(joiner);
  n.pid = server_generate_pid();
  n.fingers.init(n.pid);
  n.tpeer = joiner;

  if (registry_.empty()) {
    // First node: a one-peer ring.
    n.successor = joiner;
    n.successor_id = n.pid;
    n.predecessor = joiner;
    n.predecessor_id = n.pid;
    registry_insert(n.pid, joiner);
    set_snetwork_size(joiner, 0);
    // Server informs the peer it is the seed (one reply message).
    net_.send(server_, joiner, TrafficClass::kControl, proto::kControlBytes,
              [this, joiner, started, done = std::move(done)] {
                peer(joiner).joined = true;
                membership_changed();
                if (failure_detection_) heartbeat_tick(joiner);
                if (done) done(proto::JoinResult{sim_.now() - started, 1});
              });
    return;
  }

  const PeerIndex bootstrap = server_random_tpeer();
  // Server replies with the bootstrap address; joiner sends the join
  // request to it; the request walks the ring.
  net_.send(server_, joiner, TrafficClass::kControl, proto::kControlBytes,
            [this, joiner, bootstrap, started, done = std::move(done)]() mutable {
              net_.send(joiner, bootstrap, TrafficClass::kControl,
                        proto::kControlBytes,
                        [this, bootstrap, joiner, started,
                         done = std::move(done)]() mutable {
                          route_tjoin(bootstrap, joiner, 1, started,
                                      std::move(done));
                        });
            });
}

void HybridSystem::route_tjoin(PeerIndex at, PeerIndex joiner,
                               std::uint32_t hops, sim::SimTime started,
                               JoinCallback done) {
  Peer& here = peer(at);
  if (!here.joined || here.role != Role::kTPeer) {
    // The walk hit a peer that just left; restart from the server's view.
    const PeerIndex retry = server_random_tpeer();
    if (retry == kNoPeer) return;
    net_.send(at, retry, TrafficClass::kControl, proto::kControlBytes,
              [this, retry, joiner, hops, started, done = std::move(done)]() mutable {
                route_tjoin(retry, joiner, hops + 1, started, std::move(done));
              });
    return;
  }
  const std::uint64_t target = peer(joiner).pid.value();
  // `at` is the insertion predecessor when the target lies in
  // (at, at.successor]; equality with the successor id is the conflict case
  // resolved inside the triangle.
  if (here.successor == at ||
      ring::in_arc_open_closed(target, here.pid.value(),
                               here.successor_id.value())) {
    tjoin_at_pre(at, PendingJoin{joiner, hops, started, std::move(done)});
    return;
  }
  PeerIndex next = here.successor;
  if (params_.t_routing == TRouting::kFinger) {
    const chord::Finger f = here.fingers.closest_preceding(target);
    if (f.node != kNoPeer && f.node != at) next = f.node;
  }
  net_.send(at, next, TrafficClass::kControl, proto::kControlBytes,
            [this, next, joiner, hops, started, done = std::move(done)]() mutable {
              route_tjoin(next, joiner, hops + 1, started, std::move(done));
            });
}

void HybridSystem::tjoin_at_pre(PeerIndex pre, PendingJoin req) {
  Peer& p = peer(pre);
  if (p.joining_mutex || p.leaving_mutex) {
    // Section 3.3: serialize -- queue behind the in-flight operation.
    p.pending_joins.push_back(std::move(req));
    return;
  }
  run_join_triangle(pre, std::move(req));
}

void HybridSystem::run_join_triangle(PeerIndex pre, PendingJoin req) {
  Peer& p = peer(pre);
  p.joining_mutex = true;
  Peer& n = peer(req.joiner);

  // Id-conflict resolution (pre.check of Table 1): midpoint of the arc.
  if (n.pid == p.pid || n.pid == p.successor_id) {
    n.pid = PeerId{ring::midpoint_cw(p.pid.value(), p.successor_id.value())};
    n.fingers.init(n.pid);
    if (n.pid == p.pid) {
      // Arc of size < 2: nowhere to insert; retry with a fresh random id.
      p.joining_mutex = false;
      n.pid = server_generate_pid();
      n.fingers.init(n.pid);
      route_tjoin(pre, req.joiner, req.hops, req.started, std::move(req.done));
      return;
    }
  }

  const PeerIndex suc = p.successor;
  const PeerId suc_id = p.successor_id;
  const PeerIndex joiner = req.joiner;

  // Join triangle (Fig. 2): pre -> new (successor address), new -> suc
  // (adopt me as predecessor), suc -> pre (ack; pre flips its successor).
  net_.send(pre, joiner, TrafficClass::kControl, proto::kControlBytes,
            [this, pre, joiner, suc, suc_id,
             req = std::make_shared<PendingJoin>(std::move(req))]() mutable {
    Peer& nn = peer(joiner);
    nn.successor = suc;
    nn.successor_id = suc_id;
    nn.predecessor = pre;
    nn.predecessor_id = peer(pre).pid;
    net_.send(joiner, suc, TrafficClass::kControl, proto::kControlBytes,
              [this, pre, joiner, suc, req] {
      Peer& s = peer(suc);
      const PeerId old_pred_id = s.predecessor_id;
      s.predecessor = joiner;
      s.predecessor_id = peer(joiner).pid;
      // Load transfer (suc.loadtransfer of Table 1): every member of suc's
      // s-network hands over items now owned by the joiner,
      // i.e. d_id in (old predecessor, joiner].
      const PeerId lo = old_pred_id;
      const PeerId hi = peer(joiner).pid;
      for (PeerIndex member : snetwork_members(suc)) {
        auto items = peer(member).store.extract_arc(lo, hi);
        if (items.empty()) continue;
        net_.send(member, joiner, TrafficClass::kData,
                  proto::kDataBytes * static_cast<std::uint32_t>(items.size()),
                  [this, joiner, items = std::move(items)]() mutable {
                    for (auto& item : items) {
                      insert_or_rehome(joiner, std::move(item));
                    }
                  });
      }
      net_.send(suc, pre, TrafficClass::kControl, proto::kControlBytes,
                [this, pre, joiner, req] {
        Peer& pp = peer(pre);
        Peer& nn2 = peer(joiner);
        pp.successor = joiner;
        pp.successor_id = nn2.pid;
        nn2.joined = true;
        membership_changed();
        registry_insert(nn2.pid, joiner);
        set_snetwork_size(joiner, 0);
        if (failure_detection_) heartbeat_tick(joiner);
        // The joiner carved a segment out of its successor's: rebuild the
        // replica sets on both sides of the new boundary.
        trigger_re_replication(joiner);
        if (req->done) {
          req->done(proto::JoinResult{sim_.now() - req->started, req->hops});
        }
        pp.joining_mutex = false;
        process_pending_joins(pre);
      });
    });
  });
}

void HybridSystem::process_pending_joins(PeerIndex pre) {
  Peer& p = peer(pre);
  if (p.joining_mutex || p.leaving_mutex || p.pending_joins.empty()) return;
  // Drain the whole queue, re-routing each request: a queued joiner may now
  // belong to a different arc (another peer was inserted meanwhile), and a
  // request that re-routes away must not strand the ones behind it.  A
  // request that still belongs here starts a triangle and the rest re-queue.
  std::deque<PendingJoin> drained = std::move(p.pending_joins);
  p.pending_joins.clear();
  for (auto& next : drained) {
    route_tjoin(pre, next.joiner, next.hops, next.started,
                std::move(next.done));
  }
}

// --- S-peer join (Section 3.2.2) -------------------------------------------------

void HybridSystem::start_speer_join(PeerIndex joiner, PeerIndex target_tpeer,
                                    sim::SimTime started, JoinCallback done) {
  if (target_tpeer == kNoPeer) return;  // no s-network exists (ps misuse)
  // Server reply (t-peer address), then the join request enters the tree.
  net_.send(server_, joiner, TrafficClass::kControl, proto::kControlBytes,
            [this, joiner, target_tpeer, started, done = std::move(done)]() mutable {
              net_.send(joiner, target_tpeer, TrafficClass::kControl,
                        proto::kControlBytes,
                        [this, target_tpeer, joiner, started,
                         done = std::move(done)]() mutable {
                          descend_sjoin(target_tpeer, joiner, 1, started,
                                        std::move(done));
                        });
            });
}

unsigned HybridSystem::tree_degree(const Peer& p) const {
  // Tree links only: bypass links are soft state with their own budget
  // (see maybe_add_bypass) and must not starve child admission.
  unsigned deg = static_cast<unsigned>(p.children.size());
  if (p.cp != kNoPeer) ++deg;
  return deg;
}

bool HybridSystem::accepts_child(const Peer& p) const {
  if (params_.style == SNetworkStyle::kStar ||
      params_.style == SNetworkStyle::kBitTorrent) {
    // Star/tracker topologies: the t-peer takes everyone.
    return p.role == Role::kTPeer;
  }
  unsigned limit = params_.delta;
  if (params_.link_usage_connect) {
    // Section 5.1: accept while link usage (degree / capacity) stays low --
    // equivalently scale the degree cap with the capacity class.
    switch (net_.underlay().capacity(p.host)) {
      case net::CapacityClass::kLow:
        break;
      case net::CapacityClass::kMedium:
        limit *= 2;
        break;
      case net::CapacityClass::kHigh:
        limit *= 3;
        break;
    }
  }
  return tree_degree(p) < limit;
}

void HybridSystem::descend_sjoin(PeerIndex at, PeerIndex joiner,
                                 std::uint32_t hops, sim::SimTime started,
                                 JoinCallback done) {
  Peer& here = peer(at);
  if (!here.joined && here.role != Role::kTPeer) {
    // Connect point vanished mid-join; restart from the server.
    start_speer_join(joiner, server_pick_snetwork(joiner), started,
                     std::move(done));
    return;
  }
  const bool mesh = params_.style == SNetworkStyle::kMesh;
  if (!mesh && !accepts_child(here) && !here.children.empty()) {
    // Degree cap reached: pass the request down a random branch (FCFS per
    // Section 3.3 -- each message is processed atomically in the DES).
    const PeerIndex next = here.children[rng_.index(here.children.size())];
    net_.send(at, next, TrafficClass::kControl, proto::kControlBytes,
              [this, next, joiner, hops, started, done = std::move(done)]() mutable {
                descend_sjoin(next, joiner, hops + 1, started,
                              std::move(done));
              });
    return;
  }

  // Accepting below a node whose own upward chain passes through the
  // joiner would close a cp cycle: stale child links can route a rejoining
  // subtree head back into its own subtree mid-churn, and a cycle never
  // self-heals (every member keeps a live parent, so no orphan retry
  // fires).  Restart from the server instead.
  {
    PeerIndex cur = at;
    std::size_t steps = 0;
    while (cur != kNoPeer && steps++ <= peers_.size()) {
      if (cur == joiner) {
        start_speer_join(joiner, server_pick_snetwork(joiner), started,
                         std::move(done));
        return;
      }
      const Peer& q = peer(cur);
      if (q.role == Role::kTPeer) break;
      cur = q.cp;
    }
  }

  // Accept here: `at` becomes the joiner's connect point.  A rejoin retry
  // can race an earlier acceptance that is still in flight; never record
  // the same child twice.
  if (std::find(here.children.begin(), here.children.end(), joiner) ==
      here.children.end()) {
    here.children.push_back(joiner);
  }
  const PeerIndex root = here.tpeer;
  net_.send(at, joiner, TrafficClass::kControl, proto::kControlBytes,
            [this, at, joiner, root, hops, started, done = std::move(done)] {
              Peer& n = peer(joiner);
              if (n.cp != kNoPeer && n.cp != at) {
                // A raced earlier acceptance registered us under another
                // parent; unhook that entry or the tree keeps two records
                // of one child.
                auto& sibs = peer(n.cp).children;
                sibs.erase(std::remove(sibs.begin(), sibs.end(), joiner),
                           sibs.end());
              }
              n.cp = at;
              n.tpeer = root;
              n.pid = peer(root).pid;  // s-peers share the t-peer's p_id
              n.joined = true;
              membership_changed();
              // A rejoining orphan may have been assigned a different
              // s-network than the one whose segment its items belong to;
              // send those back to their responsible t-peer.
              rehome_foreign_items(joiner);
              // Tracker mode: the (possibly new) root must learn what this
              // member holds -- after a tracker crash the heir starts with
              // an empty index and these announces rebuild it.
              tracker_reannounce_store(joiner);
              // A rejoining orphan brings its subtree along; everyone below
              // must learn the (possibly new) root.  Revisit-guarded:
              // child lists can hold transient cycles mid-churn.
              std::vector<char> seen(peers_.size(), 0);
              seen[joiner.value()] = 1;
              std::vector<PeerIndex> frontier = n.children;
              while (!frontier.empty()) {
                std::vector<PeerIndex> next_level;
                for (PeerIndex m : frontier) {
                  if (seen[m.value()] != 0) continue;
                  seen[m.value()] = 1;
                  net_.send(joiner, m, TrafficClass::kControl,
                            proto::kControlBytes, [this, m, root] {
                              Peer& mm = peer(m);
                              mm.tpeer = root;
                              mm.pid = peer(root).pid;
                              rehome_foreign_items(m);
                              tracker_reannounce_store(m);
                            });
                  for (PeerIndex c : peer(m).children) next_level.push_back(c);
                }
                frontier = std::move(next_level);
              }
              note_heard(joiner, at);
              note_heard(at, joiner);
              if (failure_detection_) heartbeat_tick(joiner);
              if (params_.style == SNetworkStyle::kMesh) {
                // Wire extra random in-network links.
                auto members = snetwork_members(root);
                rng_.shuffle(members);
                unsigned added = 0;
                for (PeerIndex m : members) {
                  if (added >= params_.mesh_links) break;
                  if (m == joiner || m == at) continue;
                  peer(joiner).mesh_links.push_back(m);
                  peer(m).mesh_links.push_back(joiner);
                  ++added;
                }
              }
              if (done) done(proto::JoinResult{sim_.now() - started, hops});
            });
}

// --- Leave / crash ---------------------------------------------------------------

void HybridSystem::leave(PeerIndex leaving) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  Peer& p = peer(leaving);
  if (!p.joined || p.is_server) return;
  if (p.role == Role::kTPeer) {
    tpeer_leave(leaving);
  } else {
    speer_leave(leaving);
  }
}

void HybridSystem::speer_leave(PeerIndex leaving) {
  Peer& p = peer(leaving);
  p.joined = false;
  membership_changed();
  // The leaver stays alive (but marked) until an heir acks the handoff;
  // the mark keeps the heartbeat orphan-retry from resurrecting it and
  // tells other leavers not to pick it as their heir.
  p.leaving_mutex = true;
  const PeerIndex root = p.tpeer;
  if (const std::size_t sz = snetwork_size_of(root); sz > 0) {
    set_snetwork_size(root, sz - 1);
  }

  // Transfer load to a neighbour (Section 3.2.2): prefer the connect point,
  // then children, then the root.  The candidate list is fixed before the
  // tree links are torn down; the handoff walks it until a live heir acks.
  auto candidates = std::make_shared<std::vector<PeerIndex>>();
  if (p.cp != kNoPeer) candidates->push_back(p.cp);
  candidates->insert(candidates->end(), p.children.begin(), p.children.end());
  if (root != kNoPeer) candidates->push_back(root);

  auto items =
      std::make_shared<std::vector<proto::DataItem>>(p.store.extract_all());
  detach_from_tree(leaving, /*notify_children=*/true);
  if (items->empty()) {
    net_.set_alive(leaving, false);
    return;
  }
  speer_leave_handoff(leaving, std::move(candidates), 0, std::move(items));
}

void HybridSystem::speer_leave_handoff(
    PeerIndex leaving, std::shared_ptr<std::vector<PeerIndex>> candidates,
    std::size_t next, std::shared_ptr<std::vector<proto::DataItem>> items) {
  // Skip candidates that are already gone (or themselves mid-leave: a heir
  // that is draining its own store would just re-hand our items again, and
  // one that dies before our transfer lands would lose them silently).
  while (next < candidates->size()) {
    const PeerIndex c = (*candidates)[next];
    if (c != kNoPeer && c != leaving && net_.alive(c) && peer(c).joined &&
        !peer(c).leaving_mutex) {
      break;
    }
    ++next;
  }
  if (next >= candidates->size()) {
    // Every neighbour is gone; nobody can take the load (same outcome as
    // crashing with it).
    net_.set_alive(leaving, false);
    return;
  }
  const PeerIndex heir = (*candidates)[next];
  const auto bytes =
      proto::kDataBytes * static_cast<std::uint32_t>(items->size());
  auto acked = std::make_shared<bool>(false);
  net_.send(leaving, heir, TrafficClass::kData, bytes,
            [this, heir, leaving, items, acked] {
              // Delivered, but the heir may have started leaving while the
              // transfer was in flight; refuse so the watchdog re-hands.
              if (!peer(heir).joined || peer(heir).leaving_mutex) return;
              for (const auto& item : *items) {
                insert_or_rehome(heir, item);
              }
              trigger_re_replication(heir);
              net_.send(heir, leaving, TrafficClass::kControl,
                        proto::kControlBytes, [this, leaving, acked] {
                          *acked = true;
                          net_.set_alive(leaving, false);
                        });
            });
  // Watchdog: delivery closures of dead receivers never run, so an unacked
  // transfer after a full round trip (plus slack) means the heir crashed
  // with the items in flight -- re-hand them to the next candidate.
  const sim::Duration wait = net_.hop_latency(leaving, heir, bytes) +
                             net_.hop_latency(heir, leaving,
                                              proto::kControlBytes) +
                             params_.ring_retry_base;
  sim_.schedule_after(wait, [this, leaving, candidates, next, items, acked] {
    if (*acked) return;
    speer_leave_handoff(leaving, candidates, next + 1, items);
  });
}

void HybridSystem::detach_from_tree(PeerIndex p_idx, bool notify_children) {
  Peer& p = peer(p_idx);
  if (p.cp != kNoPeer) {
    const PeerIndex parent = p.cp;
    net_.send(p_idx, parent, TrafficClass::kControl, proto::kControlBytes,
              [this, parent, p_idx] {
                auto& kids = peer(parent).children;
                kids.erase(std::remove(kids.begin(), kids.end(), p_idx),
                           kids.end());
              });
  }
  if (notify_children) {
    for (PeerIndex child : p.children) {
      net_.send(p_idx, child, TrafficClass::kControl, proto::kControlBytes,
                [this, child] { rejoin_subtree(child); });
    }
  }
  for (PeerIndex m : p.mesh_links) {
    net_.send(p_idx, m, TrafficClass::kControl, proto::kControlBytes,
              [this, m, p_idx] {
                auto& links = peer(m).mesh_links;
                links.erase(std::remove(links.begin(), links.end(), p_idx),
                            links.end());
              });
  }
  p.children.clear();
  p.mesh_links.clear();
  p.cp = kNoPeer;
  p.bypass.clear();
}

void HybridSystem::rejoin_subtree(PeerIndex child) {
  Peer& c = peer(child);
  if (!c.joined || !net_.alive(child)) return;
  c.cp = kNoPeer;
  const PeerIndex root = c.tpeer;
  if (root == kNoPeer || !peer(root).joined || !net_.alive(root)) {
    // The whole s-network lost its root; fall back to the server.
    net_.send(child, server_, TrafficClass::kControl, proto::kControlBytes,
              [this, child, root] { server_handle_compete(child, root); });
    return;
  }
  // The subtree stays attached below `child`; only `child` finds a new
  // connect point, rejoining via the t-peer (Section 3.2.2).  The server's
  // assignment count is unchanged: the peer stays in the same s-network.
  net_.send(child, root, TrafficClass::kControl, proto::kControlBytes,
            [this, root, child] {
              peer(child).joined = false;  // re-enters via descend
              membership_changed();
              descend_sjoin(root, child, 1, sim_.now(), {});
            });
}

void HybridSystem::tpeer_leave(PeerIndex leaving) {
  Peer& p = peer(leaving);
  if (p.joining_mutex || !p.pending_joins.empty()) {
    // Section 3.3: a leaving peer must first drain its join queue.
    p.leaving_mutex = true;  // refuse *new* joins while draining
    sim_.schedule_after(sim::SimTime::millis(10),
                        [this, leaving] {
                          peer(leaving).leaving_mutex = false;
                          process_pending_joins(leaving);
                          sim_.schedule_after(sim::SimTime::millis(50),
                                              [this, leaving] {
                                                tpeer_leave(leaving);
                                              });
                        });
    return;
  }
  p.leaving_mutex = true;

  // Pick uniformly at random among the live members (Table 1: "pick a
  // s-peer randomly").
  std::vector<PeerIndex> live;
  for (PeerIndex m : snetwork_members(leaving)) {
    if (m != leaving && peer(m).joined && net_.alive(m)) live.push_back(m);
  }
  const PeerIndex heir =
      live.empty() ? kNoPeer : live[rng_.index(live.size())];

  if (heir == kNoPeer) {
    ring_leave(leaving);
    return;
  }
  promote_speer(heir, leaving, /*with_data=*/true);
}

void HybridSystem::promote_speer(PeerIndex heir, PeerIndex old_t,
                                 bool with_data) {
  Peer& h = peer(heir);
  Peer& o = peer(old_t);

  // Heir steps out of its tree slot, keeping its own subtree.
  if (h.cp != kNoPeer && h.cp != old_t) {
    const PeerIndex parent = h.cp;
    auto& kids = peer(parent).children;
    kids.erase(std::remove(kids.begin(), kids.end(), heir), kids.end());
  }
  if (h.cp == old_t) {
    auto& kids = o.children;
    kids.erase(std::remove(kids.begin(), kids.end(), heir), kids.end());
  }
  h.cp = kNoPeer;

  // Role transfer: pid, ring pointers, finger table (Section 3.2.1).
  // The heir changes role without a joined flip, so the role census must
  // be invalidated here explicitly.
  h.role = Role::kTPeer;
  membership_changed();
  h.pid = o.pid;
  h.tpeer = heir;
  if (with_data || o.joined) {
    h.successor = (o.successor == old_t) ? heir : o.successor;
    h.successor_id = o.successor_id;
    h.predecessor = (o.predecessor == old_t) ? heir : o.predecessor;
    h.predecessor_id = o.predecessor_id;
    h.fingers = o.fingers;
  } else {
    // Crash replacement: ring neighbors come from the server registry.
    h.fingers.init(h.pid);
    auto it = registry_.find(h.pid.value());
    if (it != registry_.end()) {
      auto next = std::next(it) == registry_.end() ? registry_.begin()
                                                   : std::next(it);
      auto prev = it == registry_.begin() ? std::prev(registry_.end())
                                          : std::prev(it);
      h.successor = next->second == old_t ? heir : next->second;
      h.successor_id = peer(h.successor).pid;
      h.predecessor = prev->second == old_t ? heir : prev->second;
      h.predecessor_id = peer(h.predecessor).pid;
    } else {
      h.successor = heir;
      h.successor_id = h.pid;
      h.predecessor = heir;
      h.predecessor_id = h.pid;
    }
  }

  // On a graceful handover the old root's remaining children re-parent onto
  // the heir.  After a crash the heir cannot read the dead peer's neighbor
  // list: the orphans discover the crash themselves and rejoin via the
  // server competition.
  if (with_data) {
    for (PeerIndex child : o.children) {
      if (child == heir) continue;
      h.children.push_back(child);
      net_.send(old_t, child, TrafficClass::kControl, proto::kControlBytes,
                [this, child, heir] { peer(child).cp = heir; });
    }
  }
  o.children.clear();

  // Ring neighbors adopt the heir.
  if (h.successor != heir) {
    const PeerIndex suc = h.successor;
    net_.send(heir, suc, TrafficClass::kControl, proto::kControlBytes,
              [this, suc, heir] {
                Peer& s = peer(suc);
                s.predecessor = heir;
                s.predecessor_id = peer(heir).pid;
              });
  }
  if (h.predecessor != heir) {
    const PeerIndex pre = h.predecessor;
    net_.send(heir, pre, TrafficClass::kControl, proto::kControlBytes,
              [this, pre, heir] {
                Peer& pp = peer(pre);
                pp.successor = heir;
                pp.successor_id = peer(heir).pid;
              });
  }

  // Data load moves with the role on a graceful handover.
  if (with_data) {
    auto items = o.store.extract_all();
    if (!items.empty()) {
      net_.send(old_t, heir, TrafficClass::kData,
                proto::kDataBytes * static_cast<std::uint32_t>(items.size()),
                [this, heir, items = std::move(items)]() mutable {
                  for (auto& item : items) insert_or_rehome(heir, std::move(item));
                });
    }
    // Pending join requests and the tracker index (BitTorrent-style
    // s-networks) transfer with the ring position.
    h.pending_joins = std::move(o.pending_joins);
    o.pending_joins.clear();
    h.tracker_index = std::move(o.tracker_index);
    o.tracker_index.clear();
    // Entries naming the leaver are stale the moment it goes dark; its
    // items travel to the heir in the transfer above, so rewrite them.
    for (auto& [id, holders] : h.tracker_index) {
      bool has_heir = std::find(holders.begin(), holders.end(), heir) !=
                      holders.end();
      for (PeerIndex& holder : holders) {
        if (holder != old_t) continue;
        holder = heir;
        if (has_heir) holder = kNoPeer;  // already listed: mark for removal
        has_heir = true;
      }
      holders.erase(std::remove(holders.begin(), holders.end(), kNoPeer),
                    holders.end());
    }
  } else if (params_.style == SNetworkStyle::kBitTorrent) {
    // Crash replacement: the index died with the old tracker.  Seed the
    // rebuild with the heir's own holdings; the orphans contribute theirs
    // as they rejoin (tracker_reannounce_store on acceptance).
    tracker_reannounce_store(heir);
  }

  registry_insert(h.pid, heir);
  const std::size_t old_size = snetwork_size_of(old_t);
  set_snetwork_size(heir, old_size > 0 ? old_size - 1 : 0);
  erase_snetwork_size(old_t);
  broadcast_substitution(old_t, heir);

  // Everyone below the heir learns the new root (tpeer pointer refresh).
  // Guarded against revisits: mid-storm races (a rejoin crossing a
  // note_heard child re-add) can leave transient cycles in child lists.
  std::vector<char> seen(peers_.size(), 0);
  seen[heir.value()] = 1;
  std::vector<PeerIndex> frontier = h.children;
  while (!frontier.empty()) {
    std::vector<PeerIndex> next;
    for (PeerIndex m : frontier) {
      if (seen[m.value()] != 0) continue;
      seen[m.value()] = 1;
      net_.send(heir, m, TrafficClass::kControl, proto::kControlBytes,
                [this, m, heir] {
                  peer(m).tpeer = heir;
                  tracker_reannounce_store(m);
                });
      for (PeerIndex c : peer(m).children) next.push_back(c);
    }
    frontier = std::move(next);
  }

  if (with_data) {
    Peer& old_ref = peer(old_t);
    old_ref.joined = false;
    membership_changed();
    old_ref.leaving_mutex = false;
    net_.set_alive(old_t, false);
  }
  if (failure_detection_) heartbeat_tick(heir);
  // The segment changed hands: re-establish its replica sets (the crash
  // path in particular promotes WITHOUT data, so the survivors' copies are
  // what restores the heir's store).
  trigger_re_replication(heir);
  process_pending_joins(heir);
}

void HybridSystem::ring_leave(PeerIndex leaving) {
  Peer& p = peer(leaving);
  const PeerIndex pre = p.predecessor;
  const PeerIndex suc = p.successor;
  registry_erase(p.pid);
  erase_snetwork_size(leaving);

  if (suc == leaving || registry_.empty()) {
    // Last t-peer: the system empties.
    p.joined = false;
    membership_changed();
    net_.set_alive(leaving, false);
    return;
  }

  // Leave triangle (Fig. 2): leaving -> pre (successor address),
  // pre -> suc (identity check), suc -> leaving (completion).
  net_.send(leaving, pre, TrafficClass::kControl, proto::kControlBytes,
            [this, leaving] { ring_leave_wait_pre(leaving); });
  broadcast_substitution(leaving, kNoPeer);
}

void HybridSystem::ring_leave_wait_pre(PeerIndex leaving) {
  // Section 3.3: a peer that is itself mid-join or mid-leave does not
  // accept leave requests, so the triangle defers.  Neighbours are resolved
  // afresh on every attempt: a concurrent leave may have rewired
  // `leaving`'s predecessor/successor while we waited.
  Peer& me = peer(leaving);
  if (me.successor == leaving || registry_.empty()) {
    // Everyone else left while we waited: the ring collapses to us alone.
    me.joined = false;
    membership_changed();
    me.leaving_mutex = false;
    net_.set_alive(leaving, false);
    return;
  }
  const PeerIndex pre = me.predecessor;
  const Peer& pp = peer(pre);
  const bool mutual_leave_tiebreak =
      pp.leaving_mutex && pp.predecessor == leaving &&
      pre.value() > leaving.value();
  if ((pp.joining_mutex || pp.leaving_mutex || !pp.joined) &&
      !mutual_leave_tiebreak) {
    sim_.schedule_after(sim::SimTime::millis(20),
                        [this, leaving] { ring_leave_wait_pre(leaving); });
    return;
  }
  ring_leave_step2(pre, me.successor, me.successor_id, leaving,
                   me.predecessor_id);
}

void HybridSystem::ring_leave_step2(PeerIndex pre, PeerIndex suc,
                                    PeerId suc_id, PeerIndex leaving,
                                    PeerId pre_id) {
  {
    Peer& pp = peer(pre);
    pp.successor = suc;
    pp.successor_id = suc_id;
    net_.send(pre, suc, TrafficClass::kControl, proto::kControlBytes,
              [this, suc, leaving, pre, pre_id] {
      Peer& s = peer(suc);
      // Only flip when the leaving peer really is our predecessor.
      if (s.predecessor == leaving) {
        s.predecessor = pre;
        s.predecessor_id = pre_id;
      }
      net_.send(suc, leaving, TrafficClass::kControl, proto::kControlBytes,
                [this, leaving, suc] {
                  // loaddump(): everything to the successor, then go dark.
                  Peer& lp = peer(leaving);
                  auto items = lp.store.extract_all();
                  if (!items.empty()) {
                    net_.send(leaving, suc, TrafficClass::kData,
                              proto::kDataBytes *
                                  static_cast<std::uint32_t>(items.size()),
                              [this, suc, items = std::move(items)]() mutable {
                                for (auto& item : items) {
                                  insert_or_rehome(suc, std::move(item));
                                }
                              });
                  }
                  lp.joined = false;
                  membership_changed();
                  lp.leaving_mutex = false;
                  net_.set_alive(leaving, false);
                });
    });
  }
}

void HybridSystem::broadcast_substitution(PeerIndex old_t, PeerIndex new_t) {
  // The server pushes the substitution to every t-peer: with an s-peer
  // promoted in place, "other t-peers only need to substitute the leaving
  // t-peer with the new t-peer in the finger table" (Section 3.2.1).
  for (const auto& [pid, t] : registry_) {
    if (t == old_t || t == new_t) continue;
    net_.send(server_, t, TrafficClass::kControl, proto::kControlBytes,
              [this, t, old_t, new_t] {
                Peer& tp = peer(t);
                if (new_t != kNoPeer) {
                  tp.fingers.substitute(old_t, new_t, peer(new_t).pid);
                  if (tp.successor == old_t) {
                    tp.successor = new_t;
                    tp.successor_id = peer(new_t).pid;
                  }
                  if (tp.predecessor == old_t) {
                    tp.predecessor = new_t;
                    tp.predecessor_id = peer(new_t).pid;
                  }
                } else {
                  tp.fingers.evict(old_t);
                }
              });
  }
}

void HybridSystem::crash(PeerIndex crashing) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  Peer& p = peer(crashing);
  if (p.is_server) return;
  p.joined = false;
  membership_changed();
  net_.set_alive(crashing, false);
  // Nothing else happens here: the data is gone, neighbors find out via
  // HELLO timeouts (when failure detection runs), and the server replaces
  // crashed t-peers when orphans compete.
}

void HybridSystem::server_handle_compete(PeerIndex orphan,
                                         PeerIndex dead_tpeer) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  if (dead_tpeer == kNoPeer) return;
  if (!net_.alive(orphan) || !peer(orphan).joined) return;
  if (net_.alive(dead_tpeer) && peer(dead_tpeer).joined) {
    // False alarm (the server can reach the t-peer): the orphan simply
    // rejoins its own s-network.
    net_.send(server_, orphan, TrafficClass::kControl, proto::kControlBytes,
              [this, orphan] { rejoin_subtree(orphan); });
    return;
  }
  if (replaced_tpeers_.insert(dead_tpeer.value()).second) {
    // First competitor wins (the paper: random pick or smallest address --
    // message arrival order is our arrival-time tiebreak).
    registry_erase(peer(dead_tpeer).pid);
    registry_insert(peer(dead_tpeer).pid, orphan);  // heir takes the slot
    net_.send(server_, orphan, TrafficClass::kControl, proto::kControlBytes,
              [this, orphan, dead_tpeer] {
                detach_from_tree(orphan, /*notify_children=*/false);
                promote_speer(orphan, dead_tpeer, /*with_data=*/false);
              });
  } else {
    // Someone already replaced it; this orphan rejoins under the heir.
    const PeerIndex heir = registry_owner(peer(dead_tpeer).pid.value());
    if (heir == kNoPeer || heir == orphan) return;
    if (!net_.alive(heir) || !peer(heir).joined) {
      // Re-promotion race: the competition winner crashed before (or right
      // after) its promotion landed, so the registry points at a corpse.
      // Treat this orphan as a fresh competitor for the heir's slot; the
      // recursion terminates because replaced_tpeers_ only grows.
      server_handle_compete(orphan, heir);
      return;
    }
    net_.send(server_, orphan, TrafficClass::kControl, proto::kControlBytes,
              [this, orphan, heir] {
                Peer& o = peer(orphan);
                o.cp = kNoPeer;
                o.tpeer = heir;
                o.joined = false;
                membership_changed();
                descend_sjoin(heir, orphan, 1, sim_.now(), {});
              });
  }
}

void HybridSystem::server_handle_ring_repair(PeerIndex reporter,
                                             PeerIndex dead) {
  if (net_.alive(dead) && peer(dead).joined) return;  // false alarm
  if (!replaced_tpeers_.insert(dead.value()).second) return;
  const PeerId dead_pid = peer(dead).pid;
  registry_erase(dead_pid);
  if (registry_.empty()) return;
  // Reconnect the dead peer's ring neighbors directly.
  const PeerIndex suc = registry_owner(dead_pid.value());
  auto it = registry_.lower_bound(dead_pid.value());
  auto prev = it == registry_.begin() ? std::prev(registry_.end())
                                      : std::prev(it);
  const PeerIndex pre = prev->second;
  if (pre == kNoPeer || suc == kNoPeer) return;
  net_.send(server_, pre, TrafficClass::kControl, proto::kControlBytes,
            [this, pre, suc] {
              Peer& pp = peer(pre);
              pp.successor = suc;
              pp.successor_id = peer(suc).pid;
            });
  net_.send(server_, suc, TrafficClass::kControl, proto::kControlBytes,
            [this, suc, pre] {
              Peer& s = peer(suc);
              s.predecessor = pre;
              s.predecessor_id = peer(pre).pid;
            });
  broadcast_substitution(dead, kNoPeer);
  (void)reporter;
}

void HybridSystem::server_refresh_ring_pointers(PeerIndex reporter,
                                                PeerIndex dead) {
  if (!net_.alive(reporter) || !peer(reporter).joined) return;
  const PeerId dead_pid = peer(dead).pid;
  if (registry_.empty()) return;
  // Who serves the dead peer's old position now?  If the slot was
  // re-registered (crash competition) both pointers go to the heir; if it
  // was erased (loner repair) the registry neighbors around the gap take
  // over.
  PeerIndex suc_fix = kNoPeer;
  PeerIndex pre_fix = kNoPeer;
  const auto exact = registry_.find(dead_pid.value());
  if (exact != registry_.end()) {
    suc_fix = exact->second;
    pre_fix = exact->second;
  } else {
    suc_fix = registry_owner(dead_pid.value());
    auto it = registry_.lower_bound(dead_pid.value());
    auto prev = it == registry_.begin() ? std::prev(registry_.end())
                                        : std::prev(it);
    pre_fix = prev->second;
  }
  if (suc_fix == kNoPeer || pre_fix == kNoPeer) return;
  if (!net_.alive(suc_fix) || !net_.alive(pre_fix)) return;
  net_.send(server_, reporter, TrafficClass::kControl, proto::kControlBytes,
            [this, reporter, dead, suc_fix, pre_fix] {
              Peer& r = peer(reporter);
              if (r.successor == dead) {
                r.successor = suc_fix;
                r.successor_id = peer(suc_fix).pid;
              }
              if (r.predecessor == dead) {
                r.predecessor = pre_fix;
                r.predecessor_id = peer(pre_fix).pid;
              }
            });
}

// --- Failure detection (Section 3.2.2) --------------------------------------------

std::vector<PeerIndex> HybridSystem::link_neighbors(const Peer& p) const {
  std::vector<PeerIndex> out;
  if (p.cp != kNoPeer) out.push_back(p.cp);
  out.insert(out.end(), p.children.begin(), p.children.end());
  out.insert(out.end(), p.mesh_links.begin(), p.mesh_links.end());
  if (p.role == Role::kTPeer && p.joined) {
    if (p.successor != kNoPeer && p.successor != p.self) {
      out.push_back(p.successor);
    }
    if (p.predecessor != kNoPeer && p.predecessor != p.self &&
        p.predecessor != p.successor) {
      out.push_back(p.predecessor);
    }
  }
  return out;
}

void HybridSystem::start_failure_detection() {
  failure_detection_ = true;
  for (Peer& p : peers_) {
    if (p.is_server || !p.joined) continue;
    // Liveness stamps recorded during the build (join-time handshakes) are
    // stale by now; reset so the first detection epoch starts clean instead
    // of firing false timeouts.
    p.last_heard.clear();
    p.last_sent.clear();
    heartbeat_tick(p.self);
  }
}

void HybridSystem::heartbeat_tick(PeerIndex p_idx) {
  Peer& entry = peer(p_idx);
  if (entry.heartbeat_running) return;  // one loop per peer
  entry.heartbeat_running = true;
  heartbeat_step(p_idx);
}

void HybridSystem::heartbeat_step(PeerIndex p_idx) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  Peer& p = peer(p_idx);
  if (!net_.alive(p_idx)) {
    p.heartbeat_running = false;
    return;
  }
  const sim::SimTime now = sim_.now();
  for (PeerIndex n : link_neighbors(p)) {
    // Timeout check first.
    auto heard = p.last_heard.find(n.value());
    if (heard == p.last_heard.end()) {
      p.last_heard[n.value()] = now;
    } else if (sim::expired(heard->second + params_.hello_timeout, now)) {
      on_neighbor_dead(p_idx, n);
      continue;
    }
    // HELLO suppression: recent acknowledgment traffic substitutes for the
    // scheduled HELLO (the ack/suppress timers of Section 3.2.2).
    auto sent = p.last_sent.find(n.value());
    if (sent != p.last_sent.end() &&
        now - sent->second < params_.hello_interval) {
      continue;
    }
    p.last_sent[n.value()] = now;
    net_.send(p_idx, n, TrafficClass::kHeartbeat, proto::kHeartbeatBytes,
              [this, n, p_idx] { note_heard(n, p_idx); });
  }
  // Orphaned s-peer: a crashed parent (or a rejoin whose acceptance never
  // arrived) leaves cp == kNoPeer and nothing else will ever re-attach it.
  // Retry once per hello_timeout.
  if (p.role == Role::kSPeer && p.cp == kNoPeer && !p.leaving_mutex &&
      sim::expired(p.last_rejoin_attempt + params_.hello_timeout, now)) {
    p.last_rejoin_attempt = now;
    p.joined = true;  // a wedged half-rejoin left it unjoined; it is a member
    membership_changed();
    if (p.tpeer != kNoPeer) {
      rejoin_subtree(p_idx);
    } else {
      const PeerIndex target = server_pick_snetwork(p_idx);
      if (target != kNoPeer) start_speer_join(p_idx, target, now, {});
    }
  }
  // Churn can strand items outside their segment (route_and_place falls
  // back to a local insert when the upward path is dead); push them home
  // once per beat.  No-op while everything is placed correctly.
  rehome_foreign_items(p_idx);
  // Anti-entropy: each t-peer root periodically exchanges its in-segment
  // digest with the s-network so lost replicas are re-pushed.  Strictly
  // gated: at r = 1 this neither reads nor writes any state.
  if (replication_active() && p.role == Role::kTPeer &&
      params_.anti_entropy_period > sim::Duration{} &&
      sim::expired(p.last_sweep + params_.anti_entropy_period, now)) {
    p.last_sweep = now;
    replication_sweep(p_idx);
  }
  // Footprint for the verify/ explorer: a heartbeat scan reads and writes
  // only this peer's own records (last_heard/last_sent, child/mesh lists,
  // ring pointers), so scans of distinct peers commute.  Messages it sends
  // are stamped by the transport with their own endpoint footprints.
  const sim::FootprintScope fps{sim_,
                                sim::Footprint::on({p_idx.value()})};
  sim_.schedule_after(params_.hello_interval,
                      [this, p_idx] { heartbeat_step(p_idx); });
}

void HybridSystem::note_heard(PeerIndex at, PeerIndex from) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  Peer& p = peer(at);
  p.last_heard[from.value()] = sim_.now();
  if (!failure_detection_ || at == from) return;
  Peer& f = peer(from);
  if (!p.joined || !f.joined || f.is_server || p.is_server) return;
  // State-only reconciliation against what the live sender claims.  Crash
  // storms can leave pointers dangling when an adoption message races the
  // heir's own crash; every HELLO is a chance to repair.  Both rules are
  // monotone -- an adoption either replaces a dead/self pointer or strictly
  // narrows the arc to the claimed neighbor -- so they converge and cannot
  // oscillate.
  if (p.role == Role::kTPeer && f.role == Role::kTPeer && f.pid != p.pid) {
    if (f.successor == at) {
      const bool pred_gone = p.predecessor == kNoPeer ||
                             p.predecessor == at ||
                             !net_.alive(p.predecessor) ||
                             !peer(p.predecessor).joined;
      if (pred_gone || ring::in_arc_open_open(f.pid.value(),
                                              p.predecessor_id.value(),
                                              p.pid.value())) {
        p.predecessor = from;
        p.predecessor_id = f.pid;
      }
    }
    if (f.predecessor == at) {
      const bool suc_gone = p.successor == kNoPeer || p.successor == at ||
                            !net_.alive(p.successor) ||
                            !peer(p.successor).joined;
      if (suc_gone || ring::in_arc_open_open(f.pid.value(), p.pid.value(),
                                             p.successor_id.value())) {
        p.successor = from;
        p.successor_id = f.pid;
      }
    }
  }
  if (f.role == Role::kSPeer && f.cp == at) {
    // Root identity flows down the tree.  A branch detached while a
    // promotion's relabel walk ran (and later re-attached through this
    // reconciliation) keeps a stale tpeer/pid for a dead former root, so
    // every HELLO re-derives the child's root from its parent -- one
    // level per beat, healing top-down from the live root.
    const PeerIndex root = p.role == Role::kTPeer ? at : p.tpeer;
    if (root != kNoPeer && root != f.tpeer && net_.alive(root) &&
        peer(root).joined && peer(root).role == Role::kTPeer) {
      f.tpeer = root;
      f.pid = peer(root).pid;
      rehome_foreign_items(from);
      tracker_reannounce_store(from);
    }
  }
  if (params_.child_readopt && f.role == Role::kSPeer && f.cp == at &&
      std::find(p.children.begin(), p.children.end(), from) ==
          p.children.end()) {
    // The sender believes we are its parent but our child record is gone
    // (a false-positive timeout erased it).  Take it back if the degree
    // budget still allows; otherwise cut it loose so the orphan-retry in
    // heartbeat_step finds it a proper slot.  Never take back our own
    // parent: crossed rejoins can make both sides claim the other as cp,
    // and re-adding would close a two-node cycle in the child lists.
    if (p.cp == from) {
      f.cp = kNoPeer;
    } else if (accepts_child(p)) {
      p.children.push_back(from);
    } else {
      f.cp = kNoPeer;
    }
  }
}

void HybridSystem::maybe_ack(PeerIndex at, PeerIndex to) {
  if (!failure_detection_) return;
  Peer& p = peer(at);
  const sim::SimTime now = sim_.now();
  auto sent = p.last_sent.find(to.value());
  if (sent != p.last_sent.end() && now - sent->second < params_.ack_suppress) {
    return;  // suppress timer still running
  }
  p.last_sent[to.value()] = now;
  net_.send(at, to, TrafficClass::kHeartbeat, proto::kHeartbeatBytes,
            [this, to, at] { note_heard(to, at); });
}

void HybridSystem::on_neighbor_dead(PeerIndex at, PeerIndex dead) {
  sim::ComponentScope prof{sim_, sim::Component::kMembership};
  Peer& p = peer(at);
  p.last_heard.erase(dead.value());
  p.last_sent.erase(dead.value());

  // Whatever repair the branches below perform, the dead neighbor may have
  // held replicas for this segment; schedule a sweep once the membership
  // settles.
  trigger_re_replication(at);

  // Child died: forget it; its own children will rejoin by themselves.
  auto& kids = p.children;
  if (std::find(kids.begin(), kids.end(), dead) != kids.end()) {
    kids.erase(std::remove(kids.begin(), kids.end(), dead), kids.end());
    // A tracker also forgets what the dead member held: its data is gone,
    // and a stale index entry would only delay lookups into the timeout.
    if (p.role == Role::kTPeer &&
        params_.style == SNetworkStyle::kBitTorrent &&
        params_.tracker_reannounce) {
      tracker_index_prune(p, dead);
    }
    return;
  }
  auto& mesh = p.mesh_links;
  if (std::find(mesh.begin(), mesh.end(), dead) != mesh.end()) {
    mesh.erase(std::remove(mesh.begin(), mesh.end(), dead), mesh.end());
    return;
  }
  if (p.cp == dead) {
    p.cp = kNoPeer;
    if (dead == p.tpeer) {
      // Root crashed: compete at the server for the replacement.
      net_.send(at, server_, TrafficClass::kControl, proto::kControlBytes,
                [this, at, dead] { server_handle_compete(at, dead); });
    } else {
      rejoin_subtree(at);
    }
    return;
  }
  if (p.role == Role::kTPeer && (p.successor == dead || p.predecessor == dead)) {
    // Ring neighbor crashed.  If it had an s-network, its orphans will
    // replace it; a loner t-peer needs server-side ring repair.
    net_.send(at, server_, TrafficClass::kControl, proto::kControlBytes,
              [this, at, dead] {
                if (replaced_tpeers_.count(dead.value()) != 0) {
                  // Slot already handled; the reporter's pointer may still
                  // dangle if the heir's adoption message raced its crash
                  // detection, so re-point it from the registry.
                  server_refresh_ring_pointers(at, dead);
                  return;
                }
                bool has_orphans = false;
                for (const Peer& q : peers_) {
                  if (!q.is_server && q.joined && net_.alive(q.self) &&
                      q.tpeer == dead) {
                    has_orphans = true;
                    break;
                  }
                }
                if (!has_orphans) server_handle_ring_repair(at, dead);
              });
  }
}

// --- Introspection ------------------------------------------------------------------

void HybridSystem::refresh_role_counts() const {
  if (!role_counts_dirty_) return;
  std::size_t t = 0;
  std::size_t s = 0;
  for (const Peer& p : peers_) {
    if (p.is_server || !p.joined) continue;
    t += (p.role == Role::kTPeer);
    s += (p.role == Role::kSPeer);
  }
  tpeer_count_ = t;
  speer_count_ = s;
  role_counts_dirty_ = false;
}

std::size_t HybridSystem::num_tpeers() const {
  refresh_role_counts();
  return tpeer_count_;
}

std::size_t HybridSystem::num_speers() const {
  refresh_role_counts();
  return speer_count_;
}

std::pair<PeerId, PeerId> HybridSystem::segment_of(PeerIndex t) const {
  const Peer& p = peer(t);
  return {p.predecessor_id, p.pid};
}

std::vector<PeerIndex> HybridSystem::snetwork_members(PeerIndex t) const {
  std::vector<PeerIndex> out;
  std::vector<char> seen(peers_.size(), 0);
  seen[t.value()] = 1;
  std::vector<PeerIndex> frontier{t};
  while (!frontier.empty()) {
    const PeerIndex m = frontier.back();
    frontier.pop_back();
    out.push_back(m);
    for (PeerIndex c : peer(m).children) {
      if (net_.alive(c) && seen[c.value()] == 0) {
        seen[c.value()] = 1;
        frontier.push_back(c);
      }
    }
  }
  return out;
}

bool HybridSystem::verify_ring() const {
  std::vector<PeerIndex> tpeers;
  for (const Peer& p : peers_) {
    if (!p.is_server && p.joined && p.role == Role::kTPeer &&
        net_.alive(p.self)) {
      tpeers.push_back(p.self);
    }
  }
  if (tpeers.empty()) return true;
  // Walk successors from any t-peer; must cycle through all of them.
  const PeerIndex start = tpeers.front();
  PeerIndex at = start;
  std::size_t seen = 0;
  do {
    const Peer& p = peer(at);
    if (!p.joined) return false;
    const Peer& s = peer(p.successor);
    if (s.predecessor != at) return false;
    at = p.successor;
    if (++seen > tpeers.size()) return false;
  } while (at != start);
  return seen == tpeers.size();
}

bool HybridSystem::verify_trees() const {
  for (const Peer& p : peers_) {
    if (p.is_server || !p.joined || !net_.alive(p.self)) continue;
    // Parent/child pointer agreement.
    for (PeerIndex c : p.children) {
      if (peer(c).joined && net_.alive(c) && peer(c).cp != p.self) {
        return false;
      }
    }
    if (p.role == Role::kSPeer) {
      if (p.cp == kNoPeer) return false;
      const auto& kids = peer(p.cp).children;
      if (std::find(kids.begin(), kids.end(), p.self) == kids.end()) {
        return false;
      }
      // cp chain must reach the t-peer.
      PeerIndex walk = p.self;
      std::size_t steps = 0;
      while (peer(walk).role == Role::kSPeer) {
        walk = peer(walk).cp;
        if (walk == kNoPeer || ++steps > peers_.size()) return false;
      }
      if (walk != p.tpeer) return false;
    }
  }
  return true;
}

std::size_t HybridSystem::total_items() const {
  std::size_t n = 0;
  for (const Peer& p : peers_) {
    if (!p.is_server && p.joined && net_.alive(p.self)) n += p.store.size();
  }
  return n;
}

std::vector<std::size_t> HybridSystem::items_per_peer() const {
  std::vector<std::size_t> out;
  for (const Peer& p : peers_) {
    if (!p.is_server && p.joined && net_.alive(p.self)) {
      out.push_back(p.store.size());
    }
  }
  return out;
}

const std::vector<PeerIndex>& HybridSystem::live_peers() const {
  // The workload generators call this once per operation; rebuilding the
  // O(N) snapshot each time dominated whole runs past ~20k peers (80% of
  // CPU at 100k).  `joined` flips mark the cache dirty at each mutation
  // site; crash/leave liveness flips are caught via the transport epoch.
  if (live_peers_dirty_ || live_peers_net_epoch_ != net_.liveness_epoch()) {
    live_peers_cache_.clear();
    for (const Peer& p : peers_) {
      if (!p.is_server && p.joined && net_.alive(p.self)) {
        live_peers_cache_.push_back(p.self);
      }
    }
    live_peers_dirty_ = false;
    live_peers_net_epoch_ = net_.liveness_epoch();
  }
  return live_peers_cache_;
}

std::size_t HybridSystem::num_bypass_links() const {
  std::size_t n = 0;
  for (const Peer& p : peers_) n += p.bypass.size();
  return n;
}

void HybridSystem::refresh_all_fingers() {
  sim::ComponentScope prof{sim_, sim::Component::kRing};
  for (const auto& [pid, t] : registry_) {
    Peer& p = peer(t);
    if (!p.joined) continue;
    for (unsigned k = 0; k < chord::FingerTable::size(); ++k) {
      const std::uint64_t start = ring::finger_start(p.pid.value(), k);
      const PeerIndex owner = registry_owner(start);
      if (owner != kNoPeer) p.fingers.set(k, owner, peer(owner).pid);
    }
  }
}

}  // namespace hp2p::hybrid
