// HybridSystem: data insertion and lookup (Section 3.4), both placement
// schemes, TTL flooding, bypass links (Section 5.4) and the BitTorrent-style
// tracker mode (Section 5.5).
#include <algorithm>
#include <cassert>
#include <memory>

#include "hybrid/hybrid_system.hpp"

namespace hp2p::hybrid {

using proto::TrafficClass;

bool HybridSystem::in_local_segment(const Peer& p, DataId id) const {
  const PeerIndex root = p.tpeer;
  if (root == kNoPeer) return false;
  const Peer& t = peer(root);
  if (!t.joined) return false;
  return ring::in_arc_open_closed(id.value(), t.predecessor_id.value(),
                                  t.pid.value());
}

// --- Store (Section 3.4) --------------------------------------------------------

void HybridSystem::store(PeerIndex from, const std::string& key,
                         std::uint64_t value, StoreCallback done) {
  store_id(from, hash_key(key), key, value, std::move(done));
}

void HybridSystem::store_id(PeerIndex from, DataId id, const std::string& key,
                            std::uint64_t value, StoreCallback done) {
  sim::ComponentScope prof{sim_, sim::Component::kData};
  Peer& p = peer(from);
  proto::DataItem item{id, key, value, from};

  // When traced, the whole store becomes one span tree: the root closes
  // when the placement completes (done fires) or the upward path dies.
  stats::TraceContext st;
  if (tracer_ != nullptr) {
    st = tracer_->start_trace("store", "store", from.value(), sim_.now());
    tracer_->add_arg(st, "target", static_cast<std::int64_t>(id.value()));
    done = [this, st, done = std::move(done)] {
      if (tracer_ != nullptr) tracer_->end_span(st, sim_.now());
      if (done) done();
    };
  }

  if (in_local_segment(p, id)) {
    // "If the d_id lies in the range of the current s-network, the data item
    // is inserted to its database" -- the generating peer keeps it.
    replicate_item(from, item);
    store_or_merge(p, std::move(item));
    if (params_.style == SNetworkStyle::kBitTorrent &&
        p.role == Role::kSPeer) {
      // Report to the tracker (the t-peer).
      const PeerIndex tracker = p.tpeer;
      net_.send(from, tracker, TrafficClass::kControl, proto::kControlBytes,
                [this, tracker, id, from] {
                  tracker_index_add(peer(tracker), id, from);
                });
    }
    if (done) done();
    return;
  }

  // Bypass shortcut (Section 5.4): a live link into the right s-network
  // skips the whole t-network trip.
  if (params_.bypass_links) {
    if (const BypassLink* bp = find_bypass(p, id); bp != nullptr) {
      const PeerIndex to = bp->to;
      net_.send(from, to, TrafficClass::kData, proto::kDataBytes, st,
                [this, to, id, item = std::move(item),
                 done = std::move(done)]() mutable {
                  // A stale link (segment moved since install) forwards on
                  // to the current owner instead of stranding the item.
                  insert_or_rehome(to, std::move(item));
                  if (params_.style == SNetworkStyle::kBitTorrent) {
                    const PeerIndex tracker = peer(to).tpeer;
                    tracker_index_add(peer(tracker), id, to);
                  }
                  if (done) done();
                });
      return;
    }
  }

  // Up the tree to the local t-peer, around the ring to the responsible
  // t-peer, then place.
  const PeerIndex origin = from;
  forward_up_to_tpeer(
      from, proto::kDataBytes, TrafficClass::kData,
      [this, item = std::move(item), origin, st, done = std::move(done)](
          PeerIndex root, std::uint32_t hops) mutable {
        route_ring(root, item.id.value(), hops, 0, TrafficClass::kData,
                   proto::kDataBytes,
                   [this, item = std::move(item), origin,
                    done = std::move(done)](PeerIndex owner, std::uint32_t,
                                            std::uint32_t) mutable {
                     place_item(owner, std::move(item), std::move(done));
                     (void)origin;
                   },
                   {}, st);
      },
      0,
      [this, st] {
        // Upward path gone: the store can never be placed.  Close the root
        // so the trace doesn't dangle open.
        if (tracer_ != nullptr && st.valid()) {
          tracer_->add_arg(st, "no_route", 1);
          tracer_->end_span(st, sim_.now());
        }
      },
      st);
}

void HybridSystem::forward_up_to_tpeer(
    PeerIndex at, std::uint32_t bytes, proto::TrafficClass cls,
    std::function<void(PeerIndex, std::uint32_t)> at_root,
    std::uint32_t hops, std::function<void()> on_dead,
    stats::TraceContext ctx) {
  Peer& p = peer(at);
  if (p.role == Role::kTPeer) {
    at_root(at, hops);
    return;
  }
  const PeerIndex next = p.cp != kNoPeer ? p.cp : p.tpeer;
  if (next == kNoPeer) {
    // Detached orphan: there is no upward path, so the request can never
    // reach the t-network.  Tell the caller now instead of going silent.
    net_.note_drop(at, proto::DropReason::kNoRoute, cls, ctx);
    if (on_dead) on_dead();
    return;
  }
  net_.send(at, next, cls, bytes, ctx,
            [this, next, bytes, cls, at_root = std::move(at_root), hops, ctx,
             on_dead = std::move(on_dead)] {
              if (tracer_ != nullptr && ctx.valid()) {
                tracer_->instant(ctx, "climb_hop", next.value(), sim_.now(),
                                 "hop", hops + 1);
              }
              forward_up_to_tpeer(next, bytes, cls, at_root, hops + 1,
                                  on_dead, ctx);
            });
}

void HybridSystem::route_ring(
    PeerIndex at, std::uint64_t target, std::uint32_t hops,
    std::uint32_t contacted, proto::TrafficClass cls, std::uint32_t bytes,
    std::function<void(PeerIndex, std::uint32_t, std::uint32_t)> at_owner,
    std::function<bool(PeerIndex, std::uint32_t)> intercept,
    stats::TraceContext ctx) {
  sim::ComponentScope prof{sim_, sim::Component::kRing};
  Peer& here = peer(at);
  if (!here.joined || here.role != Role::kTPeer) {
    // Mid-churn loss: the request reached a peer that left the ring.
    net_.note_drop(at, proto::DropReason::kNoRoute, cls, ctx);
    return;
  }
  if (ring::in_arc_open_closed(target, here.predecessor_id.value(),
                               here.pid.value()) ||
      here.successor == at) {
    at_owner(at, hops, contacted);
    return;
  }
  if (intercept && intercept(at, hops)) return;  // surrogate answered
  ring_forward(at, target, hops, contacted, cls, bytes,
               std::make_shared<std::function<void(PeerIndex, std::uint32_t,
                                                   std::uint32_t)>>(
                   std::move(at_owner)),
               std::make_shared<std::function<bool(PeerIndex, std::uint32_t)>>(
                   std::move(intercept)),
               ctx, 0);
}

void HybridSystem::ring_forward(
    PeerIndex at, std::uint64_t target, std::uint32_t hops,
    std::uint32_t contacted, proto::TrafficClass cls, std::uint32_t bytes,
    std::shared_ptr<std::function<void(PeerIndex, std::uint32_t,
                                       std::uint32_t)>> at_owner,
    std::shared_ptr<std::function<bool(PeerIndex, std::uint32_t)>> intercept,
    stats::TraceContext ctx, unsigned attempt) {
  sim::ComponentScope prof{sim_, sim::Component::kRing};
  Peer& here = peer(at);
  PeerIndex next = here.successor;
  if (params_.t_routing == TRouting::kFinger) {
    const chord::Finger f = here.fingers.closest_preceding(target);
    if (f.node != kNoPeer && f.node != at) next = f.node;
  }
  if (next == kNoPeer) {
    net_.note_drop(at, proto::DropReason::kNoRoute, cls, ctx);
    return;
  }
  auto delivered = std::make_shared<bool>(false);
  net_.send(at, next, cls, bytes, ctx,
            [this, next, target, hops, contacted, cls, bytes, ctx, at_owner,
             intercept, delivered] {
              *delivered = true;
              if (tracer_ != nullptr && ctx.valid()) {
                tracer_->instant(ctx, "ring_hop", next.value(), sim_.now(),
                                 "hop", hops + 1);
              }
              route_ring(
                  next, target, hops + 1, contacted + 1, cls, bytes,
                  [at_owner](PeerIndex o, std::uint32_t h, std::uint32_t c) {
                    if (*at_owner) (*at_owner)(o, h, c);
                  },
                  *intercept ? [intercept](PeerIndex p, std::uint32_t h) {
                    return (*intercept)(p, h);
                  } : std::function<bool(PeerIndex, std::uint32_t)>{},
                  ctx);
            });
  if (params_.ring_retry_limit == 0 || attempt >= params_.ring_retry_limit) {
    return;
  }
  // Retry watchdog: the hop is lost iff the receiver dies while the message
  // is in flight (delivery closures of dead receivers never run).  After a
  // conservative 2x hop RTT plus backoff, re-resolve the next hop -- our
  // successor pointer may have been repaired to the crash heir meanwhile --
  // and forward again.  On healthy hops the watchdog fires as a no-op.
  sim::Duration backoff = params_.ring_retry_base;
  for (unsigned i = 0; i < attempt && backoff < params_.ring_retry_cap; ++i) {
    backoff += backoff;
  }
  if (params_.ring_retry_cap < backoff) backoff = params_.ring_retry_cap;
  const sim::Duration wait =
      net_.hop_latency(at, next, bytes) + net_.hop_latency(at, next, bytes) +
      backoff;
  sim_.schedule_after(wait, [this, at, target, hops, contacted, cls, bytes,
                             ctx, at_owner, intercept, delivered, attempt] {
    if (*delivered) return;
    if (!net_.alive(at)) return;
    const Peer& h = peer(at);
    if (!h.joined || h.role != Role::kTPeer) return;
    ring_forward(at, target, hops, contacted, cls, bytes, at_owner, intercept,
                 ctx, attempt + 1);
  });
}

void HybridSystem::place_item(PeerIndex at, proto::DataItem item,
                              StoreCallback done) {
  Peer& t = peer(at);
  if (params_.style == SNetworkStyle::kBitTorrent) {
    // Tracker mode: spread to a random member, index at the tracker.
    const auto members = snetwork_members(at);
    const PeerIndex holder = members[rng_.index(members.size())];
    const DataId id = item.id;
    if (holder == at) {
      t.store.insert(std::move(item));
      tracker_index_add(t, id, at);
      if (done) done();
      return;
    }
    net_.send(at, holder, TrafficClass::kData, proto::kDataBytes,
              [this, holder, at, id, item = std::move(item),
               done = std::move(done)]() mutable {
                peer(holder).store.insert(std::move(item));
                net_.send(holder, at, TrafficClass::kControl,
                          proto::kControlBytes, [this, at, id, holder] {
                            tracker_index_add(peer(at), id, holder);
                          });
                if (done) done();
              });
    return;
  }
  if (params_.placement == PlacementScheme::kTPeerStores) {
    const PeerIndex origin = item.origin;
    // The responsible t-peer's copy is primary by definition; a stale
    // replica routed home regains primary status and re-fans out.
    if (replication_active()) item.replica = false;
    replicate_item(at, item);
    store_or_merge(t, std::move(item));
    if (params_.bypass_links) maybe_add_bypass(origin, at);
    if (done) done();
    return;
  }
  spread_item(at, std::move(item), std::move(done));
}

void HybridSystem::spread_item(PeerIndex at, proto::DataItem item,
                               StoreCallback done) {
  // Scheme 2 (Section 3.4): pick uniformly among self and the directly
  // connected downstream neighbours; repeat at the chosen peer.  Restricting
  // the walk to children guarantees termination at the leaves.
  Peer& p = peer(at);
  const std::size_t options = p.children.size() + 1;
  const std::size_t pick = rng_.index(options);
  if (pick == 0 || p.children.empty()) {
    const PeerIndex origin = item.origin;
    // Normally a local insert; if the segment split while the spread was in
    // flight, the item is forwarded on to the new owner instead.
    insert_or_rehome(at, std::move(item));
    if (params_.bypass_links && peer(origin).tpeer != p.tpeer) {
      maybe_add_bypass(origin, at);
    }
    if (done) done();
    return;
  }
  const PeerIndex next = p.children[pick - 1];
  net_.send(at, next, TrafficClass::kData, proto::kDataBytes,
            [this, next, item = std::move(item), done = std::move(done)]() mutable {
              spread_item(next, std::move(item), std::move(done));
            });
}

void HybridSystem::route_and_place(PeerIndex from, proto::DataItem item) {
  // The item travels by value through the closures below; if the upward
  // path is dead we fall back to keeping it at `from` -- a misplaced copy
  // beats a lost one, and the next churn transfer gets another chance.
  auto boxed = std::make_shared<proto::DataItem>(std::move(item));
  forward_up_to_tpeer(
      from, proto::kDataBytes, TrafficClass::kData,
      [this, boxed](PeerIndex root, std::uint32_t hops) {
        route_ring(root, boxed->id.value(), hops, 0, TrafficClass::kData,
                   proto::kDataBytes,
                   [this, boxed](PeerIndex owner, std::uint32_t,
                                 std::uint32_t) {
                     place_item(owner, std::move(*boxed), {});
                   });
      },
      0,
      [this, from, boxed] {
        store_or_merge(peer(from), std::move(*boxed));
      });
}

void HybridSystem::insert_or_rehome(PeerIndex at, proto::DataItem item) {
  Peer& p = peer(at);
  // Tracker mode keeps items wherever the tracker indexed them; re-homing
  // would silently invalidate the index.  The receiver announces what it
  // now holds (leave handovers and segment transfers move items without
  // touching the index otherwise).
  if (params_.style == SNetworkStyle::kBitTorrent) {
    const DataId id = item.id;
    p.store.insert(std::move(item));
    if (params_.tracker_reannounce) {
      if (p.role == Role::kTPeer) {
        tracker_index_add(p, id, at);
      } else {
        tracker_announce(at, id);
      }
    }
    return;
  }
  // Segment unknown (root unresolved / mid-join): keep the item here rather
  // than bouncing it through a half-built topology.
  const PeerIndex root = p.tpeer;
  if (root == kNoPeer || !peer(root).joined) {
    store_or_merge(p, std::move(item));
    return;
  }
  if (in_local_segment(p, item.id)) {
    // A primary item arriving in its home segment (leave handover, segment
    // transfer on join, re-homing) re-establishes its replica set.
    replicate_item(at, item);
    store_or_merge(p, std::move(item));
    return;
  }
  route_and_place(at, std::move(item));
}

void HybridSystem::rehome_foreign_items(PeerIndex at) {
  Peer& p = peer(at);
  const PeerIndex root = p.tpeer;
  if (p.store.empty() || root == kNoPeer) return;
  const Peer& t = peer(root);
  if (!t.joined) return;
  // The local segment is (pred, pid]; its ring complement is (pid, pred].
  // extract_arc(a == a) would take everything, so a full-circle segment
  // (single t-peer ring) has no foreign items by definition.
  if (t.predecessor_id == t.pid) return;
  auto foreign = p.store.extract_arc(t.pid, t.predecessor_id);
  for (auto& item : foreign) {
    if (replication_active() && item.replica &&
        is_fallback_holder(at, item.id)) {
      // Designated successor fallback for a too-small neighbor segment: the
      // replica lives here on purpose; re-routing it home would ping-pong
      // against the sweep that pushes it right back.
      p.store.insert(std::move(item));
      continue;
    }
    // Primary items and stale replicas (their segment moved away) both
    // travel to the current owner -- a replica may be the last surviving
    // copy after a crash, so it is preserved, not dropped.
    route_and_place(at, std::move(item));
  }
}

// --- Bypass links (Section 5.4) ----------------------------------------------------

void HybridSystem::maybe_add_bypass(PeerIndex a, PeerIndex b) {
  sim::ComponentScope prof{sim_, sim::Component::kBypass};
  if (a == kNoPeer || b == kNoPeer || a == b) return;
  Peer& pa = peer(a);
  Peer& pb = peer(b);
  if (!pa.joined || !pb.joined) return;
  if (pa.tpeer == pb.tpeer) return;  // same s-network: pointless
  // Rule 1 (Section 5.4): the degree must stay bounded by delta.  We apply
  // the bound to the bypass budget itself -- counting bypass links against
  // the tree cap would leave interior peers permanently ineligible and
  // make the mechanism vacuous.  Expired links free their budget slot.
  prune_bypass(pa);
  prune_bypass(pb);
  if (pa.bypass.size() >= params_.delta || pb.bypass.size() >= params_.delta) {
    return;
  }
  const sim::SimTime expiry = sim_.now() + params_.bypass_lifetime;
  ++bypass_installs_;
  auto install = [this, expiry](Peer& from, const Peer& to) {
    const Peer& remote_root = peer(to.tpeer);
    for (BypassLink& l : from.bypass) {
      if (l.to == to.self) {
        l.expires = expiry;  // refresh
        return;
      }
    }
    from.bypass.push_back(BypassLink{to.self, remote_root.predecessor_id,
                                     remote_root.pid, expiry});
  };
  install(pa, pb);
  install(pb, pa);
}

void HybridSystem::prune_bypass(Peer& p) {
  std::erase_if(p.bypass, [this](const BypassLink& l) {
    return sim::expired(l.expires, sim_.now()) || !net_.alive(l.to) ||
           !peer(l.to).joined;
  });
}

HybridSystem::BypassLink* HybridSystem::find_bypass(Peer& p, DataId id) {
  for (BypassLink& l : p.bypass) {
    if (sim::expired(l.expires, sim_.now())) continue;
    if (!net_.alive(l.to) || !peer(l.to).joined) continue;
    if (ring::in_arc_open_closed(id.value(), l.segment_lo.value(),
                                 l.segment_hi.value())) {
      l.expires = sim_.now() + params_.bypass_lifetime;  // use refreshes
      ++bypass_uses_;
      return &l;
    }
  }
  return nullptr;
}

// --- Lookup (Section 3.4) ------------------------------------------------------------

void HybridSystem::lookup(PeerIndex from, const std::string& key,
                          LookupCallback done) {
  lookup_id(from, hash_key(key), std::move(done));
}

void HybridSystem::lookup_id(PeerIndex from, DataId id, LookupCallback done) {
  sim::ComponentScope prof{sim_, sim::Component::kData};
  const std::uint64_t qid = next_query_id_++;
  Query q;
  q.origin = from;
  q.target = id;
  q.started = sim_.now();
  q.done = std::move(done);
  q.timer = sim_.schedule_after(params_.lookup_timeout, [this, qid] {
    finish_query(qid, proto::LookupResult{});
  });
  queries_.emplace(qid, std::move(q));
  Query& query = queries_[qid];
  query.visited.insert(from.value());
  if (tracer_ != nullptr) {
    query.trace = tracer_->start_trace("lookup", "lookup", from.value(),
                                       sim_.now());
    tracer_->add_arg(query.trace, "qid",
                     static_cast<std::int64_t>(qid));
    tracer_->add_arg(query.trace, "target",
                     static_cast<std::int64_t>(id.value()));
  }

  Peer& p = peer(from);
  // The requester's own database (and cache, when the Section 7 scheme is
  // on) is free to check.
  bool from_cache = false;
  if (const proto::DataItem* own = answer_source(p, id, from_cache);
      own != nullptr) {
    if (from_cache) ++cache_hits_;
    proto::LookupResult r;
    r.success = true;
    r.latency = sim::SimTime{};
    r.found_at = from;
    r.value = own->value;
    finish_query(qid, r);
    return;
  }

  if (in_local_segment(p, id)) {
    if (params_.style == SNetworkStyle::kBitTorrent) {
      // Ask the tracker directly.
      trace_stage(qid, "climb", "climb", from);
      forward_up_to_tpeer(
          from, proto::kQueryBytes, TrafficClass::kQuery,
          [this, qid, from](PeerIndex root, std::uint32_t hops) {
            bt_lookup(from, qid, root, hops);
          },
          0, [this, qid] { fail_query_fast(qid); }, query_trace(qid));
      return;
    }
    // Local search with the configured TTL.
    trace_stage(qid, "flood", "flood", from);
    search_snetwork(from, kNoPeer, qid, params_.ttl, 0);
    arm_reflood(qid, from);
    return;
  }

  // Cross-segment: bypass first, then the t-network.
  if (params_.bypass_links) {
    if (const BypassLink* bp = find_bypass(p, id); bp != nullptr) {
      const PeerIndex to = bp->to;
      trace_stage(qid, "bypass", "ring", from);
      net_.send(from, to, TrafficClass::kQuery, proto::kQueryBytes,
                query_trace(qid), [this, to, qid] {
                  auto it = queries_.find(qid);
                  if (it == queries_.end() || it->second.finished) return;
                  if (it->second.visited.insert(to.value()).second) {
                    ++it->second.contacted;
                  }
                  if (try_answer(to, qid, 1)) return;
                  // Not at the bypass peer itself: search its s-network.
                  trace_stage(qid, "flood", "flood", to);
                  search_snetwork(to, kNoPeer, qid, params_.ttl, 1);
                });
      return;
    }
  }
  start_remote_lookup(from, qid, id);
}

void HybridSystem::start_remote_lookup(PeerIndex origin, std::uint64_t qid,
                                       DataId id) {
  arm_reroute(qid, origin, id);
  trace_stage(qid, "climb", "climb", origin);
  forward_up_to_tpeer(
      origin, proto::kQueryBytes, TrafficClass::kQuery,
      [this, qid, id](PeerIndex root, std::uint32_t hops) {
        auto it = queries_.find(qid);
        if (it == queries_.end() || it->second.finished) return;
        it->second.contacted += hops;  // cp-chain forwarders
        std::function<bool(PeerIndex, std::uint32_t)> intercept;
        if (params_.enable_caching) {
          intercept = [this, qid](PeerIndex at, std::uint32_t at_hops) {
            auto qit = queries_.find(qid);
            if (qit == queries_.end() || qit->second.finished) return true;
            if (qit->second.visited.insert(at.value()).second) {
              ++qit->second.contacted;
            }
            return try_answer(at, qid, at_hops);
          };
        }
        trace_stage(qid, "ring", "ring", root);
        route_ring(root, id.value(), hops, 0, TrafficClass::kQuery,
                   proto::kQueryBytes,
                   [this, qid](PeerIndex owner, std::uint32_t owner_hops,
                               std::uint32_t ring_contacted) {
                     auto qit = queries_.find(qid);
                     if (qit == queries_.end() || qit->second.finished) return;
                     qit->second.contacted += ring_contacted;
                     if (qit->second.visited.insert(owner.value()).second) {
                       ++qit->second.contacted;
                     }
                     if (params_.style == SNetworkStyle::kBitTorrent) {
                       bt_lookup(qit->second.origin, qid, owner, owner_hops);
                       return;
                     }
                     if (try_answer(owner, qid, owner_hops)) return;
                     trace_stage(qid, "flood", "flood", owner);
                     search_snetwork(owner, kNoPeer, qid, params_.ttl,
                                     owner_hops);
                     // The remote flood can miss transiently (a holder mid
                     // re-attach after churn); arm the same re-flood the
                     // local path gets.
                     arm_reflood(qid, owner);
                   },
                   std::move(intercept), query_trace(qid));
      },
      0, [this, qid] { fail_query_fast(qid); }, query_trace(qid));
}

void HybridSystem::bt_lookup(PeerIndex /*origin*/, std::uint64_t qid,
                             PeerIndex tracker, std::uint32_t hops) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second.finished) return;
  Peer& t = peer(tracker);
  if (it->second.visited.insert(tracker.value()).second) {
    ++it->second.contacted;
  }
  if (try_answer(tracker, qid, hops)) return;
  const auto holder_it = t.tracker_index.find(it->second.target);
  if (holder_it == t.tracker_index.end()) return;  // miss: timeout fires
  // The tracker hands the query to every announced holder it still
  // believes alive (its own heartbeats prune dead members; the liveness
  // check here mirrors prune_bypass).  The first holder with the item
  // answers; the rest find the query finished and drop it.  A single
  // stale entry therefore cannot fail a lookup while a live announced
  // copy exists -- the multi-peer download path of the swarm workload.
  std::vector<PeerIndex>& holders = holder_it->second;
  std::erase_if(holders, [this](PeerIndex h) {
    return !net_.alive(h) || !peer(h).joined;
  });
  if (holders.empty()) {
    t.tracker_index.erase(holder_it);
    return;  // every announced holder is gone: timeout fires
  }
  for (const PeerIndex holder : holders) {
    net_.send(tracker, holder, TrafficClass::kQuery, proto::kQueryBytes,
              [this, holder, qid, hops] {
                auto qit = queries_.find(qid);
                if (qit == queries_.end() || qit->second.finished) return;
                if (qit->second.visited.insert(holder.value()).second) {
                  ++qit->second.contacted;
                }
                try_answer(holder, qid, hops + 1);
              });
  }
}

// --- Tracker index maintenance (BitTorrent style) ----------------------------------

void HybridSystem::tracker_index_add(Peer& t, DataId id, PeerIndex holder) {
  auto& holders = t.tracker_index[id];
  if (std::find(holders.begin(), holders.end(), holder) == holders.end()) {
    holders.push_back(holder);
  }
}

void HybridSystem::tracker_index_prune(Peer& t, PeerIndex dead) {
  for (auto it = t.tracker_index.begin(); it != t.tracker_index.end();) {
    auto& holders = it->second;
    holders.erase(std::remove(holders.begin(), holders.end(), dead),
                  holders.end());
    it = holders.empty() ? t.tracker_index.erase(it) : std::next(it);
  }
}

void HybridSystem::tracker_announce(PeerIndex member, DataId id) {
  if (params_.style != SNetworkStyle::kBitTorrent ||
      !params_.tracker_reannounce) {
    return;
  }
  const Peer& m = peer(member);
  const PeerIndex root = m.tpeer;
  if (root == kNoPeer || root == member) return;
  net_.send(member, root, TrafficClass::kControl, proto::kControlBytes,
            [this, root, id, member] {
              Peer& t = peer(root);
              if (t.role != Role::kTPeer || !t.joined) return;
              tracker_index_add(t, id, member);
            });
}

void HybridSystem::tracker_reannounce_store(PeerIndex member) {
  if (params_.style != SNetworkStyle::kBitTorrent ||
      !params_.tracker_reannounce) {
    return;
  }
  Peer& m = peer(member);
  const PeerIndex root = m.tpeer;
  if (root == kNoPeer || m.store.empty()) return;
  if (root == member) {
    // A freshly promoted tracker indexes its own holdings locally.
    m.store.for_each([&](const proto::DataItem& item) {
      tracker_index_add(m, item.id, member);
    });
    return;
  }
  // One batched announce message carrying every stored id.
  std::vector<DataId> ids;
  m.store.for_each([&](const proto::DataItem& item) { ids.push_back(item.id); });
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  net_.send(member, root, TrafficClass::kControl, proto::kControlBytes,
            [this, root, member, ids = std::move(ids)] {
              Peer& t = peer(root);
              if (t.role != Role::kTPeer || !t.joined) return;
              for (const DataId id : ids) tracker_index_add(t, id, member);
            });
}

std::vector<PeerIndex> HybridSystem::tracker_holders(PeerIndex t,
                                                     DataId id) const {
  const auto it = peer(t).tracker_index.find(id);
  if (it == peer(t).tracker_index.end()) return {};
  return it->second;
}

std::vector<PeerIndex> HybridSystem::snetwork_neighbors(const Peer& p) const {
  // Tree neighbours (cp + children) plus mesh links; bypass links are
  // shortcuts between s-networks and are not part of the local search.
  std::vector<PeerIndex> targets;
  if (p.cp != kNoPeer) targets.push_back(p.cp);
  targets.insert(targets.end(), p.children.begin(), p.children.end());
  targets.insert(targets.end(), p.mesh_links.begin(), p.mesh_links.end());
  return targets;
}

void HybridSystem::search_snetwork(PeerIndex at, PeerIndex from,
                                   std::uint64_t qid, unsigned ttl,
                                   std::uint32_t hops) {
  if (params_.s_search == SSearch::kFlood) {
    flood(at, from, qid, ttl, hops);
    return;
  }
  for (unsigned w = 0; w < params_.walkers; ++w) walk(at, qid, ttl, hops);
}

void HybridSystem::walk(PeerIndex at, std::uint64_t qid, unsigned ttl,
                        std::uint32_t hops) {
  sim::ComponentScope prof{sim_, sim::Component::kFlood};
  if (flood_observer_) flood_observer_(at, ttl);
  if (ttl == 0) {
    net_.note_drop(at, proto::DropReason::kTtlExhausted, TrafficClass::kQuery,
                   query_trace(qid));
    return;
  }
  const auto targets = snetwork_neighbors(peer(at));
  if (targets.empty()) return;
  const PeerIndex next = targets[rng_.index(targets.size())];
  net_.send(at, next, TrafficClass::kQuery, proto::kQueryBytes,
            query_trace(qid), [this, next, qid, ttl, hops] {
              auto it = queries_.find(qid);
              if (it == queries_.end() || it->second.finished) return;
              // Walkers revisit peers; only first visits count as contacts.
              if (it->second.visited.insert(next.value()).second) {
                ++it->second.contacted;
              }
              if (tracer_ != nullptr) {
                tracer_->instant(query_trace(qid), "walk_hop", next.value(),
                                 sim_.now(), "depth", hops + 1);
              }
              if (try_answer(next, qid, hops + 1)) return;
              walk(next, qid, ttl - 1, hops + 1);
            });
}

void HybridSystem::flood(PeerIndex at, PeerIndex from, std::uint64_t qid,
                         unsigned ttl, std::uint32_t hops) {
  sim::ComponentScope prof{sim_, sim::Component::kFlood};
  if (flood_observer_) flood_observer_(at, ttl);
  if (ttl == 0) {
    net_.note_drop(at, proto::DropReason::kTtlExhausted, TrafficClass::kQuery,
                   query_trace(qid));
    return;
  }
  Peer& p = peer(at);
  const stats::TraceContext ctx = query_trace(qid);
  for (PeerIndex n : snetwork_neighbors(p)) {
    if (n == from) continue;
    net_.send(at, n, TrafficClass::kQuery, proto::kQueryBytes, ctx,
              [this, n, at, qid, ttl, hops] {
                auto it = queries_.find(qid);
                if (it == queries_.end() || it->second.finished) return;
                // Mesh topologies can deliver duplicates; a tree cannot.
                if (!it->second.visited.insert(n.value()).second) return;
                ++it->second.contacted;
                maybe_ack(n, at);
                if (tracer_ != nullptr) {
                  tracer_->instant(query_trace(qid), "flood_hop", n.value(),
                                   sim_.now(), "depth", hops + 1);
                }
                if (try_answer(n, qid, hops + 1)) return;
                flood(n, at, qid, ttl - 1, hops + 1);
              });
  }
}

const proto::DataItem* HybridSystem::answer_source(Peer& p, DataId id,
                                                   bool& from_cache) {
  from_cache = false;
  if (const proto::DataItem* item = p.store.find(id); item != nullptr) {
    return item;
  }
  if (!params_.enable_caching) return nullptr;
  const auto it = p.cache.find(id);
  if (it != p.cache.end() && !sim::expired(it->second.expires, sim_.now())) {
    from_cache = true;
    return &it->second.item;
  }
  return nullptr;
}

void HybridSystem::cache_put(PeerIndex at, const proto::DataItem& item) {
  if (!params_.enable_caching || params_.cache_capacity == 0) return;
  Peer& p = peer(at);
  if (p.store.find(item.id) != nullptr) return;  // authoritative copy held
  if (const auto it = p.cache.find(item.id); it != p.cache.end()) {
    it->second.expires = sim_.now() + params_.cache_ttl;  // refresh
    return;
  }
  if (p.cache_fifo.size() >= params_.cache_capacity) {
    p.cache.erase(p.cache_fifo.front());
    p.cache_fifo.pop_front();
  }
  p.cache_fifo.push_back(item.id);
  p.cache.emplace(item.id,
                  Peer::CacheEntry{item, sim_.now() + params_.cache_ttl});
}

std::uint64_t HybridSystem::max_answers_served() const {
  std::uint64_t best = 0;
  for (const Peer& p : peers_) best = std::max(best, p.answers_served);
  return best;
}

bool HybridSystem::try_answer(PeerIndex at, std::uint64_t qid,
                              std::uint32_t hops) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second.finished) return false;
  Query& q = it->second;
  bool from_cache = false;
  const proto::DataItem* item = answer_source(peer(at), q.target, from_cache);
  if (item == nullptr) return false;
  ++peer(at).answers_served;
  if (from_cache) ++cache_hits_;
  // Read-repair: a hit on a non-primary replica means the owner lost (or
  // never received) its copy; restore it while the item is in hand.
  if (!from_cache) maybe_read_repair(at, *item);
  const PeerIndex origin = q.origin;
  if (tracer_ != nullptr && q.trace.valid()) {
    // The answer travelling home is its own stage: whatever stage found the
    // item (flood/ring) closes and "reply" runs until delivery.
    if (q.stage.valid()) tracer_->end_span(q.stage, sim_.now());
    q.stage = tracer_->begin_span(q.trace, "reply", "reply", at.value(),
                                  sim_.now());
  }
  net_.send(at, origin, TrafficClass::kData, proto::kDataBytes,
            query_trace(qid), [this, qid, at, hops, found = *item] {
              auto qit = queries_.find(qid);
              if (qit == queries_.end() || qit->second.finished) return;
              proto::LookupResult r;
              r.success = true;
              r.latency = sim_.now() - qit->second.started;
              r.request_hops = hops;
              r.peers_contacted = qit->second.contacted;
              r.found_at = at;
              r.value = found.value;
              // The requester now holds a copy of the popular item and can
              // serve future queries for it (Section 7 caching scheme).
              cache_put(qit->second.origin, found);
              if (params_.bypass_links &&
                  peer(qit->second.origin).tpeer != peer(at).tpeer) {
                maybe_add_bypass(qit->second.origin, at);
              }
              finish_query(qid, r);
            });
  return true;
}

std::uint64_t HybridSystem::start_keyword_query(PeerIndex from,
                                                const std::string& substring,
                                                sim::Duration collect_window,
                                                KeywordCallback done) {
  const std::uint64_t qid = next_query_id_++;
  KeywordQuery q;
  q.origin = from;
  q.substring = substring;
  q.done = std::move(done);
  q.visited.insert(from.value());
  q.timer = sim_.schedule_after(collect_window, [this, qid] {
    auto it = keyword_queries_.find(qid);
    if (it == keyword_queries_.end()) return;
    auto finished = std::move(it->second);
    keyword_queries_.erase(it);
    if (finished.done) finished.done(std::move(finished.result));
  });
  keyword_queries_.emplace(qid, std::move(q));

  // The requester's own matches are free.
  peer(from).store.for_each([&](const proto::DataItem& item) {
    if (item.key.find(substring) != std::string::npos) {
      keyword_queries_[qid].result.keys.push_back(item.key);
    }
  });
  return qid;
}

void HybridSystem::lookup_keyword(PeerIndex from,
                                  const std::string& substring,
                                  sim::Duration collect_window,
                                  KeywordCallback done) {
  sim::ComponentScope prof{sim_, sim::Component::kData};
  const std::uint64_t qid =
      start_keyword_query(from, substring, collect_window, std::move(done));
  keyword_flood(from, kNoPeer, qid, params_.ttl);
}

void HybridSystem::lookup_keyword_global(PeerIndex from,
                                         const std::string& substring,
                                         sim::Duration collect_window,
                                         KeywordCallback done) {
  sim::ComponentScope prof{sim_, sim::Component::kData};
  const std::uint64_t qid =
      start_keyword_query(from, substring, collect_window, std::move(done));
  // Local flood and ring circulation proceed concurrently (Section 3.1).
  keyword_flood(from, kNoPeer, qid, params_.ttl);
  const PeerIndex root = peer(from).tpeer;
  if (root == kNoPeer || !peer(root).joined) return;
  forward_up_to_tpeer(
      from, proto::kQueryBytes, TrafficClass::kQuery,
      [this, qid](PeerIndex entry, std::uint32_t) {
        const PeerIndex next = peer(entry).successor;
        if (next == kNoPeer || next == entry) return;
        net_.send(entry, next, TrafficClass::kQuery, proto::kQueryBytes,
                  [this, next, entry, qid] {
                    keyword_ring_walk(next, entry, qid);
                  });
      },
      0);
}

void HybridSystem::keyword_ring_walk(PeerIndex at, PeerIndex stop_at,
                                     std::uint64_t qid) {
  sim::ComponentScope prof{sim_, sim::Component::kRing};
  auto it = keyword_queries_.find(qid);
  if (it == keyword_queries_.end()) return;
  KeywordQuery& q = it->second;
  const Peer& here = peer(at);
  if (!here.joined || here.role != Role::kTPeer) return;
  if (at == stop_at) return;  // full circle
  if (q.visited.insert(at.value()).second) {
    ++q.result.peers_contacted;
    // The t-peer contributes its own matches and floods its s-network.
    std::vector<std::string> matches;
    here.store.for_each([&](const proto::DataItem& item) {
      if (item.key.find(q.substring) != std::string::npos) {
        matches.push_back(item.key);
      }
    });
    if (!matches.empty()) {
      net_.send(at, q.origin, TrafficClass::kData, proto::kDataBytes,
                [this, qid, matches = std::move(matches)] {
                  auto qit = keyword_queries_.find(qid);
                  if (qit == keyword_queries_.end()) return;
                  auto& keys = qit->second.result.keys;
                  keys.insert(keys.end(), matches.begin(), matches.end());
                });
    }
    keyword_flood(at, kNoPeer, qid, params_.ttl);
  }
  const PeerIndex next = here.successor;
  if (next == kNoPeer || next == at) return;
  net_.send(at, next, TrafficClass::kQuery, proto::kQueryBytes,
            [this, next, stop_at, qid] {
              keyword_ring_walk(next, stop_at, qid);
            });
}

void HybridSystem::keyword_flood(PeerIndex at, PeerIndex from,
                                 std::uint64_t qid, unsigned ttl) {
  sim::ComponentScope prof{sim_, sim::Component::kFlood};
  if (flood_observer_) flood_observer_(at, ttl);
  if (ttl == 0) return;
  for (PeerIndex n : snetwork_neighbors(peer(at))) {
    if (n == from) continue;
    net_.send(at, n, TrafficClass::kQuery, proto::kQueryBytes,
              [this, n, at, qid, ttl] {
      auto it = keyword_queries_.find(qid);
      if (it == keyword_queries_.end()) return;
      KeywordQuery& q = it->second;
      if (!q.visited.insert(n.value()).second) return;
      ++q.result.peers_contacted;
      // Collect local matches and ship them straight to the origin.
      std::vector<std::string> matches;
      peer(n).store.for_each([&](const proto::DataItem& item) {
        if (item.key.find(q.substring) != std::string::npos) {
          matches.push_back(item.key);
        }
      });
      if (!matches.empty()) {
        net_.send(n, q.origin, TrafficClass::kData, proto::kDataBytes,
                  [this, qid, matches = std::move(matches)] {
                    auto qit = keyword_queries_.find(qid);
                    if (qit == keyword_queries_.end()) return;
                    auto& keys = qit->second.result.keys;
                    keys.insert(keys.end(), matches.begin(), matches.end());
                  });
      }
      keyword_flood(n, at, qid, ttl - 1);
    });
  }
}

void HybridSystem::fail_query_fast(std::uint64_t qid) {
  proto::LookupResult r;
  r.fast_fail = true;
  finish_query(qid, r);
}

void HybridSystem::arm_reflood(std::uint64_t qid, PeerIndex at) {
  if (!params_.reflood_on_timeout) return;
  sim_.schedule_after(
      sim::SimTime::micros(params_.lookup_timeout.as_micros() / 2),
      [this, qid, at] {
        auto it = queries_.find(qid);
        if (it == queries_.end() || it->second.finished ||
            it->second.reflooded) {
          return;
        }
        if (!net_.alive(at) || !peer(at).joined) return;
        it->second.reflooded = true;
        // Forget the first wave's footprint: the miss may be a peer that
        // (re-)attached behind an already-visited parent, and the dedup in
        // flood() would stop the new wave right there.  Re-contacted peers
        // count towards peers_contacted again, which is what re-contacting
        // them costs.
        it->second.visited.clear();
        it->second.visited.insert(at.value());
        search_snetwork(at, kNoPeer, qid, params_.ttl * 2, 0);
      });
}

void HybridSystem::arm_reroute(std::uint64_t qid, PeerIndex origin,
                               DataId id) {
  // End-to-end leg of the ring-retry hardening: the per-hop watchdog in
  // ring_forward only sees a receiver that dies with the message in
  // flight.  A carrier that crashes AFTER delivery takes the query with it
  // and no hop notices, so re-issue the whole climb + ring trip from the
  // origin once, at half the lookup timeout.
  if (params_.ring_retry_limit == 0) return;
  sim_.schedule_after(
      sim::SimTime::micros(params_.lookup_timeout.as_micros() / 2),
      [this, qid, origin, id] {
        auto it = queries_.find(qid);
        if (it == queries_.end() || it->second.finished ||
            it->second.rerouted) {
          return;
        }
        if (!net_.alive(origin) || !peer(origin).joined) return;
        it->second.rerouted = true;
        start_remote_lookup(origin, qid, id);
      });
}

void HybridSystem::trace_stage(std::uint64_t qid, const char* name,
                               const char* category, PeerIndex at) {
  if (tracer_ == nullptr) return;
  auto it = queries_.find(qid);
  if (it == queries_.end() || !it->second.trace.valid()) return;
  Query& q = it->second;
  if (q.stage.valid()) tracer_->end_span(q.stage, sim_.now());
  q.stage = tracer_->begin_span(q.trace, name, category, at.value(),
                                sim_.now());
}

stats::TraceContext HybridSystem::query_trace(std::uint64_t qid) const {
  if (tracer_ == nullptr) return {};
  const auto it = queries_.find(qid);
  if (it == queries_.end()) return {};
  return it->second.stage.valid() ? it->second.stage : it->second.trace;
}

void HybridSystem::finish_query(std::uint64_t qid,
                                proto::LookupResult result) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second.finished) return;
  Query& q = it->second;
  q.finished = true;
  sim_.cancel(q.timer);
  if (!result.success) result.peers_contacted = q.contacted;
  if (tracer_ != nullptr && q.trace.valid()) {
    if (q.stage.valid()) tracer_->end_span(q.stage, sim_.now());
    tracer_->add_arg(q.trace, "success", result.success ? 1 : 0);
    if (result.fast_fail) tracer_->add_arg(q.trace, "fast_fail", 1);
    tracer_->add_arg(q.trace, "contacted", result.peers_contacted);
    tracer_->end_span(q.trace, sim_.now());
  }
  auto done = std::move(q.done);
  queries_.erase(it);
  if (done) done(result);
}

}  // namespace hp2p::hybrid
