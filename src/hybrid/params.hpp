// Tunable parameters of the hybrid peer-to-peer system (Section 3.1).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hp2p::hybrid {

/// Role of a peer (Section 3.1): t-peers form the structured ring; s-peers
/// hang off a t-peer in an unstructured s-network.
enum class Role : std::uint8_t { kTPeer, kSPeer };

/// Data-placement scheme at the responsible t-peer (Section 3.4).
enum class PlacementScheme : std::uint8_t {
  /// Scheme 1: the responsible t-peer stores every item routed to it.
  kTPeerStores,
  /// Scheme 2: the t-peer repeatedly hands the item to a uniformly random
  /// directly-connected neighbour (or keeps it), spreading load down the
  /// s-network.
  kRandomSpread,
};

/// Topology of each s-network.
enum class SNetworkStyle : std::uint8_t {
  /// Paper default: tree rooted at the t-peer, per-peer degree cap delta.
  kTree,
  /// All s-peers link directly to the t-peer (the "diameter two" variant of
  /// Section 3.2.2, kept for the load-imbalance ablation).
  kStar,
  /// Gnutella-ish random mesh inside the s-network (ablation: duplicate
  /// query copies vs. the tree).
  kMesh,
  /// Section 5.5: the t-peer acts as a BitTorrent tracker; no flooding.
  kBitTorrent,
};

/// How requests travel around the t-network ring (Section 4.1 analyses
/// both).
enum class TRouting : std::uint8_t {
  kRing,    // successor pointers only: ~N_t/2 hops (matches Table 2)
  kFinger,  // finger tables: ~log N_t hops
};

/// Search strategy inside an s-network ("flooding or random walks",
/// Section 1/3.1).
enum class SSearch : std::uint8_t { kFlood, kRandomWalk };

/// All knobs in one aggregate; default values follow Section 6.
struct HybridParams {
  /// p_s: fraction of peers that are s-peers (0 = pure structured ring,
  /// 1 = pure unstructured).
  double ps = 0.5;
  /// Degree constraint delta on s-network tree links.
  unsigned delta = 3;
  /// Flood radius (TTL) inside an s-network.
  unsigned ttl = 4;
  PlacementScheme placement = PlacementScheme::kRandomSpread;
  SNetworkStyle style = SNetworkStyle::kTree;
  TRouting t_routing = TRouting::kRing;

  /// Section 5.3: assign s-peers to s-networks by interest instead of by
  /// smallest size.
  bool interest_based = false;
  unsigned num_interests = 16;

  /// Section 5.2: landmark binning; s-peers in the same latency cluster go
  /// to the same s-network.
  bool topology_aware = false;
  unsigned num_landmarks = 8;

  /// Section 5.4: shortcut links between s-networks, created by cross-
  /// network stores/lookups and expiring when idle.
  bool bypass_links = false;
  sim::Duration bypass_lifetime = sim::SimTime::seconds(120);

  /// Section 5.1: prefer high-capacity hosts as t-peers.
  bool capacity_aware_roles = false;
  /// Section 5.1: accept an s-peer at a connect point whose link usage
  /// (degree / capacity class) is still low, instead of strictly degree<delta.
  bool link_usage_connect = false;

  /// Mesh style only: random neighbours per joining s-peer.
  unsigned mesh_links = 2;

  /// Heartbeat machinery (Section 3.2.2).
  sim::Duration hello_interval = sim::SimTime::millis(2000);
  sim::Duration hello_timeout = sim::SimTime::millis(5000);
  /// Suppress timer: minimum gap between acknowledgment messages.
  sim::Duration ack_suppress = sim::SimTime::millis(500);
  /// note_heard repair rule: a parent that false-positive-timed-out a child
  /// takes it back when the child's next HELLO arrives.  Disabling it makes
  /// the HELLO-timeout vs. late-HELLO race a real (persistent) bug -- the
  /// interleaving explorer's order-dependence canary relies on exactly
  /// that (tests only; keep true in production configs).
  bool child_readopt = true;

  /// Requester-side deadline before a lookup counts as failed.
  sim::Duration lookup_timeout = sim::SimTime::seconds(15);
  /// Optional Section 3.4 retry: one re-flood with doubled TTL after a
  /// local-segment miss.
  bool reflood_on_timeout = false;

  /// Ring-forwarding retry: when a hop has not been delivered after
  /// 2x the hop latency plus backoff, the forwarding t-peer re-resolves the
  /// next hop (against its possibly repaired pointers) and resends.  Covers
  /// hops addressed at t-peers that crash while the message is in flight.
  /// 0 disables the retry entirely (the chaos regression tests rely on
  /// this to prove the directed crash-storm schedule catches its absence).
  unsigned ring_retry_limit = 2;
  /// First retry backoff; doubles per attempt up to ring_retry_cap.
  sim::Duration ring_retry_base = sim::SimTime::millis(500);
  sim::Duration ring_retry_cap = sim::SimTime::seconds(4);

  /// Data durability: every stored item is kept on up to `replication_factor`
  /// holders inside its owning segment -- the responsible t-peer plus replica
  /// holders chosen deterministically from its s-network, falling back to the
  /// successor t-peer when the s-network is too small.  r = 1 preserves the
  /// unreplicated behavior bit-for-bit: no replica copies, no sweeps, no
  /// read-repair, and no extra messages or rng draws anywhere.
  unsigned replication_factor = 1;
  /// Anti-entropy period: each t-peer root exchanges per-segment store
  /// digests with its s-network members (piggybacked on the heartbeat loop)
  /// and missing items are re-pushed.  0 disables the sweep -- the chaos
  /// canary uses this to prove the verification stack catches a broken
  /// repair path.  Only active when replication_factor > 1.
  sim::Duration anti_entropy_period = sim::SimTime::seconds(5);
  /// Trigger an immediate repair sweep from the churn paths (crash
  /// detection, s-peer promotion, leave handover, join segment transfer)
  /// instead of waiting for the next periodic sweep.  Only active when
  /// replication_factor > 1.
  bool re_replicate_on_churn = true;

  /// In-s-network search strategy; random walks trade latency/recall for
  /// bandwidth.
  SSearch s_search = SSearch::kFlood;
  /// Parallel walkers when s_search == kRandomWalk.
  unsigned walkers = 4;

  /// Tracker-index healing for BitTorrent-style s-networks.  The tracker's
  /// holder index dies with it on a crash (only a graceful handover moves
  /// it), so by default members re-announce their stored ids whenever they
  /// learn a new root (crash promotion, orphan rejoin, subtree re-attach)
  /// and trackers prune entries for members they detect as dead.  Off, a
  /// tracker crash permanently orphans every indexed item in its segment --
  /// the swarm failover canary relies on exactly that.  No effect outside
  /// SNetworkStyle::kBitTorrent.
  bool tracker_reannounce = true;

  /// The caching scheme sketched as future work in Section 7: requesters
  /// cache items they fetched; any peer a query visits may answer from its
  /// cache, spreading the load of popular data across many peers.
  bool enable_caching = false;
  /// Cached items per peer (oldest evicted first).
  std::size_t cache_capacity = 8;
  /// Cache entry lifetime.
  sim::Duration cache_ttl = sim::SimTime::seconds(120);
};

}  // namespace hp2p::hybrid
