// Overlay invariant auditor.
//
// The paper argues correctness from structural invariants it never checks
// mechanically: the t-network is a consistent Chord ring whose positions
// never change under graceful churn, every s-network is a tree rooted at its
// t-peer with bounded degree, floods are TTL-bounded, and each stored item
// lives in the s-network responsible for its segment.  OverlayAuditor turns
// those prose invariants into executable checks: it walks the full system
// state and produces structured violation reports (peer, invariant name,
// expected/actual).
//
// Two modes:
//   * lenient (default) -- safe to run *during* churn: invariant families
//     that protocol transitions legitimately perturb (ring pointers while a
//     join/leave triangle is in flight, data placement while transfers are
//     on the wire) are skipped while such a transition is observable, and
//     the skip is recorded in the report.  A lenient audit that reports a
//     violation has found real corruption.
//   * strict -- the quiescent contract: every family checked exactly.  Used
//     by tests after the event queue drains.
//
// Deterministic by construction: all walks iterate ordered containers
// (the server registry, sorted children copies), draw no randomness, and
// schedule at fixed periods -- an audited run is byte-identical to an
// unaudited one apart from the audit events themselves.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "hybrid/hybrid_system.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/json.hpp"

namespace hp2p::audit {

/// One invariant violation: which invariant, where, and the disagreement.
struct Violation {
  const char* invariant = "";  // stable snake_case name (string literal)
  PeerIndex peer = kNoPeer;    // peer the violation anchors to
  std::string expected;
  std::string actual;
  std::string detail;  // free-form context (segment bounds, item id, ...)

  [[nodiscard]] stats::JsonValue to_json() const;
};

/// Result of one full audit pass.
struct AuditReport {
  sim::SimTime at{};
  std::uint64_t checks_run = 0;
  std::vector<Violation> violations;
  /// Invariant families skipped this pass (lenient mode, churn in flight).
  std::vector<std::string> skipped;
  bool truncated = false;  // hit AuditOptions::max_violations

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] bool has(std::string_view invariant) const;
  [[nodiscard]] std::size_t count(std::string_view invariant) const;
  /// Distinct invariant names present, sorted.
  [[nodiscard]] std::vector<std::string> invariants() const;
  [[nodiscard]] stats::JsonValue to_json() const;
};

struct AuditOptions {
  /// Strict = quiescent contract (see file comment).
  bool strict = false;
  /// Stop collecting after this many violations (the report notes
  /// truncation); keeps a badly corrupted state from flooding memory.
  std::size_t max_violations = 256;
};

/// Walks a HybridSystem + its transport and verifies the named invariants.
///
/// Can run on demand (run()), or as a periodic sim event (set_period +
/// ensure_running; the event re-arms itself only while other work remains,
/// so it never keeps Simulator::run from draining).  Installs itself as the
/// system's flood observer to bound in-flight flood TTLs.
class OverlayAuditor {
 public:
  OverlayAuditor(hybrid::HybridSystem& system, proto::OverlayNetwork& network,
                 sim::Simulator& sim, AuditOptions options = {});
  ~OverlayAuditor();

  OverlayAuditor(const OverlayAuditor&) = delete;
  OverlayAuditor& operator=(const OverlayAuditor&) = delete;

  /// Runs one full audit pass now.
  AuditReport run();

  /// Periodic mode: audit every `period` of sim time while the event queue
  /// has other work.  Call ensure_running() (again) after scheduling new
  /// work, before Simulator::run -- same contract as TimeSeriesSampler.
  void set_period(sim::Duration period) { period_ = period; }
  void ensure_running();

  /// Violations (and a summary per pass) also land in `recorder`, so a
  /// post-mortem flight dump shows them in causal order.  Not owned.
  void set_flight_recorder(stats::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  [[nodiscard]] std::uint64_t runs() const { return runs_; }
  [[nodiscard]] std::uint64_t total_violations() const {
    return total_violations_;
  }
  [[nodiscard]] const AuditReport& last_report() const { return last_; }
  /// Most recent report that contained violations (empty when none ever
  /// did) -- the one worth printing when total_violations() is nonzero but
  /// the final pass came back clean.
  [[nodiscard]] const AuditReport& last_failing_report() const {
    return last_failing_;
  }

 private:
  void tick();
  void observe_flood(PeerIndex at, unsigned ttl);

  // One check family each; all append to `report`.
  void check_ring(AuditReport& report);
  void check_fingers(AuditReport& report);
  void check_trees(AuditReport& report);
  void check_placement(AuditReport& report);
  void check_replication(AuditReport& report);
  void check_network(AuditReport& report);

  /// True while some registered t-peer is visibly mid-transition (mutex
  /// held, dead, or not joined) -- lenient mode skips ring-structure
  /// families then.
  [[nodiscard]] bool ring_unsettled() const;
  /// Degree limit accepts_child enforces for this peer (capacity-scaled).
  [[nodiscard]] unsigned degree_limit(PeerIndex p) const;

  void add(AuditReport& report, const char* invariant, PeerIndex peer,
           std::string expected, std::string actual, std::string detail = {});

  hybrid::HybridSystem& sys_;
  proto::OverlayNetwork& net_;
  sim::Simulator& sim_;
  AuditOptions options_;
  stats::FlightRecorder* flight_ = nullptr;

  sim::Duration period_{};
  bool armed_ = false;
  sim::TimerId tick_id_;

  /// TTL-bound violations observed between passes (flood observer fires on
  /// protocol events, not audit passes); drained into the next report.
  std::vector<Violation> pending_flood_;
  std::uint64_t flood_waves_seen_ = 0;

  std::uint64_t runs_ = 0;
  std::uint64_t total_violations_ = 0;
  AuditReport last_;
  AuditReport last_failing_;
};

}  // namespace hp2p::audit
