// White-box fault injection for OverlayAuditor tests.
//
// Each injector corrupts exactly one structural invariant, bypassing the
// protocol (it pokes HybridSystem internals directly via friendship), so
// tests can assert that the auditor catches the corruption and names it
// correctly -- and names *only* it.  Test-only: never linked into benches.
#pragma once

#include <algorithm>

#include "hybrid/hybrid_system.hpp"

namespace hp2p::hybrid {

struct FaultInjector {
  /// Points t-peer `t`'s successor at `wrong` with a *consistent* id cache,
  /// so only ring_successor_symmetry trips (not ring_id_cache).
  static void corrupt_successor(HybridSystem& sys, PeerIndex t,
                                PeerIndex wrong) {
    auto& p = sys.peer(t);
    p.successor = wrong;
    p.successor_id = sys.peer(wrong).pid;
  }

  /// Flips the low bit of the cached successor id; the pointer itself stays
  /// correct, so only ring_id_cache trips.
  static void corrupt_successor_id(HybridSystem& sys, PeerIndex t) {
    auto& p = sys.peer(t);
    p.successor_id = PeerId{p.successor_id.value() ^ 1};
  }

  /// Re-parents leaf s-peers of `parent`'s own s-network under `parent`
  /// until its tree degree exceeds `target_degree`.  Same-network moves
  /// keep pid inheritance and parent/child symmetry intact, so only
  /// tree_degree_cap trips.  Returns false when the network has too few
  /// movable leaves.
  static bool overcap_degree(HybridSystem& sys, PeerIndex parent,
                             unsigned target_degree) {
    auto& pp = sys.peer(parent);
    const PeerIndex root = pp.role == Role::kTPeer ? parent : pp.tpeer;
    for (PeerIndex m : sys.snetwork_members(root)) {
      if (sys.tree_degree(pp) > target_degree) break;
      auto& mm = sys.peer(m);
      if (m == parent || m == root || mm.cp == parent) continue;
      if (!mm.children.empty() || mm.cp == kNoPeer) continue;
      auto& old_parent = sys.peer(mm.cp);
      std::erase(old_parent.children, m);
      mm.cp = parent;
      pp.children.push_back(m);
    }
    return sys.tree_degree(pp) > target_degree;
  }

  /// Moves one stored item from `holder` into `recipient`'s store (intended
  /// to be in a different s-network), tripping only data_misplaced.
  /// Returns false when `holder` has nothing to move.
  static bool misplace_item(HybridSystem& sys, PeerIndex holder,
                            PeerIndex recipient) {
    auto items = sys.peer(holder).store.extract_all();
    if (items.empty()) return false;
    sys.peer(recipient).store.insert(std::move(items.front()));
    for (std::size_t i = 1; i < items.size(); ++i) {
      sys.peer(holder).store.insert(std::move(items[i]));
    }
    return true;
  }

  /// Fully detaches an item-holding s-peer: removed from its parent's child
  /// list *and* cp cleared, so both symmetry directions stay consistent and
  /// only data_orphaned (strict) trips.  Returns false when `speer` has no
  /// parent or no items.
  static bool orphan_stored_item(HybridSystem& sys, PeerIndex speer) {
    auto& p = sys.peer(speer);
    if (p.cp == kNoPeer || p.store.empty()) return false;
    std::erase(sys.peer(p.cp).children, speer);
    p.cp = kNoPeer;
    return true;
  }

  /// Removes `child` from its parent's child list while the child keeps its
  /// cp pointer -- the one-sided edge loss that trips only
  /// tree_parent_child_symmetry.  Returns false when `child` has no parent.
  static bool drop_tree_edge(HybridSystem& sys, PeerIndex child) {
    auto& c = sys.peer(child);
    if (c.cp == kNoPeer) return false;
    std::erase(sys.peer(c.cp).children, child);
    return true;
  }

  /// Reports a flood wave with an out-of-bound TTL straight to the
  /// installed flood observer (as a rogue peer would), tripping only
  /// flood_ttl_bound.
  static void flood_with_ttl(HybridSystem& sys, PeerIndex at, unsigned ttl) {
    if (sys.flood_observer_) sys.flood_observer_(at, ttl);
  }
};

}  // namespace hp2p::hybrid
