#include "audit/overlay_auditor.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/ring_math.hpp"
#include "net/underlay.hpp"

namespace hp2p::audit {

using hybrid::Role;
using hybrid::SNetworkStyle;

namespace {

std::string peer_str(PeerIndex p) {
  return p == kNoPeer ? "none" : std::to_string(p.value());
}

}  // namespace

stats::JsonValue Violation::to_json() const {
  stats::JsonValue v = stats::JsonValue::object();
  v.set("invariant", stats::JsonValue{std::string{invariant}});
  v.set("peer", stats::JsonValue{static_cast<std::uint64_t>(peer.value())});
  v.set("expected", stats::JsonValue{expected});
  v.set("actual", stats::JsonValue{actual});
  if (!detail.empty()) v.set("detail", stats::JsonValue{detail});
  return v;
}

bool AuditReport::has(std::string_view invariant) const {
  return count(invariant) > 0;
}

std::size_t AuditReport::count(std::string_view invariant) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (invariant == v.invariant) ++n;
  }
  return n;
}

std::vector<std::string> AuditReport::invariants() const {
  std::set<std::string> names;
  for (const Violation& v : violations) names.emplace(v.invariant);
  return {names.begin(), names.end()};
}

stats::JsonValue AuditReport::to_json() const {
  stats::JsonValue out = stats::JsonValue::object();
  out.set("t_ms", stats::JsonValue{at.as_millis()});
  out.set("checks_run", stats::JsonValue{checks_run});
  out.set("truncated", stats::JsonValue{truncated ? 1 : 0});
  stats::JsonValue skips = stats::JsonValue::array();
  for (const std::string& s : skipped) skips.push_back(stats::JsonValue{s});
  out.set("skipped", std::move(skips));
  stats::JsonValue viols = stats::JsonValue::array();
  for (const Violation& v : violations) viols.push_back(v.to_json());
  out.set("violations", std::move(viols));
  return out;
}

OverlayAuditor::OverlayAuditor(hybrid::HybridSystem& system,
                               proto::OverlayNetwork& network,
                               sim::Simulator& sim, AuditOptions options)
    : sys_(system), net_(network), sim_(sim), options_(options) {
  sys_.set_flood_observer(
      [this](PeerIndex at, unsigned ttl) { observe_flood(at, ttl); });
}

OverlayAuditor::~OverlayAuditor() {
  // The observer and the tick lambda capture `this`; leave neither behind.
  sys_.set_flood_observer({});
  if (armed_) {
    sim_.cancel(tick_id_);
    sim_.note_daemon_disarmed();
  }
}

void OverlayAuditor::ensure_running() {
  if (armed_ || period_ == sim::Duration{}) return;
  armed_ = true;
  sim_.note_daemon_armed();
  tick_id_ = sim_.schedule_after(period_, [this] { tick(); });
}

void OverlayAuditor::tick() {
  sim::ComponentScope prof{sim_, sim::Component::kAudit};
  armed_ = false;
  sim_.note_daemon_disarmed();
  run();
  // Re-arm only while non-daemon work remains, otherwise the audit event
  // would keep Simulator::run from draining (same daemon contract as
  // TimeSeriesSampler -- pending_work() excludes other periodic ticks, so
  // an armed sampler does not count as work and vice versa).
  if (sim_.pending_work() > 0) ensure_running();
}

void OverlayAuditor::observe_flood(PeerIndex at, unsigned ttl) {
  ++flood_waves_seen_;
  // Every flood wave starts from params.ttl (doubled for the one optional
  // re-flood) and only counts down; a larger in-flight TTL means unbounded
  // propagation.
  const auto& params = sys_.params();
  const unsigned bound = params.ttl * (params.reflood_on_timeout ? 2U : 1U);
  if (ttl <= bound) return;
  if (pending_flood_.size() >= options_.max_violations) return;
  Violation v;
  v.invariant = "flood_ttl_bound";
  v.peer = at;
  v.expected = "ttl <= " + std::to_string(bound);
  v.actual = "ttl = " + std::to_string(ttl);
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "flood_ttl_bound", at.value(), ttl, bound);
  }
  pending_flood_.push_back(std::move(v));
}

void OverlayAuditor::add(AuditReport& report, const char* invariant,
                         PeerIndex peer, std::string expected,
                         std::string actual, std::string detail) {
  if (report.violations.size() >= options_.max_violations) {
    report.truncated = true;
    return;
  }
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), invariant, peer.value(), 0, runs_);
  }
  report.violations.push_back(Violation{invariant, peer, std::move(expected),
                                        std::move(actual), std::move(detail)});
}

bool OverlayAuditor::ring_unsettled() const {
  for (const auto& [pid, t] : sys_.registry()) {
    if (!sys_.is_alive(t) || !sys_.is_joined(t) || sys_.is_joining(t) ||
        sys_.is_leaving(t)) {
      return true;
    }
  }
  return false;
}

unsigned OverlayAuditor::degree_limit(PeerIndex p) const {
  unsigned limit = sys_.params().delta;
  if (sys_.params().link_usage_connect) {
    // Mirror of accepts_child(): capacity class scales the cap.
    switch (net_.underlay().capacity(net_.host_of(p))) {
      case net::CapacityClass::kLow: break;
      case net::CapacityClass::kMedium: limit *= 2; break;
      case net::CapacityClass::kHigh: limit *= 3; break;
    }
  }
  return limit;
}

AuditReport OverlayAuditor::run() {
  AuditReport report;
  report.at = sim_.now();
  // Flood-TTL findings accumulated since the last pass.
  report.checks_run += flood_waves_seen_;
  flood_waves_seen_ = 0;
  report.violations = std::move(pending_flood_);
  pending_flood_.clear();

  check_network(report);
  if (!options_.strict && ring_unsettled()) {
    // A join/leave triangle (or unrepaired crash) is visibly in flight; the
    // ring-structure families are legitimately inconsistent right now.
    report.skipped.emplace_back("ring");
    report.skipped.emplace_back("fingers");
  } else {
    check_ring(report);
    check_fingers(report);
  }
  check_trees(report);
  check_placement(report);
  check_replication(report);

  ++runs_;
  total_violations_ += report.violations.size();
  if (flight_ != nullptr && !report.clean()) {
    flight_->record(sim_.now(), "audit_fail", report.violations.size(),
                    report.checks_run, runs_);
  }
  last_ = std::move(report);
  if (!last_.clean()) last_failing_ = last_;
  return last_;
}

void OverlayAuditor::check_ring(AuditReport& report) {
  const auto& reg = sys_.registry();
  if (reg.empty()) return;
  for (auto it = reg.begin(); it != reg.end(); ++it) {
    const auto [pid, t] = *it;
    auto next_it = std::next(it);
    if (next_it == reg.end()) next_it = reg.begin();
    const PeerIndex expected_next = next_it->second;

    // The registry key is the server's view of the peer's ring position;
    // the peer's own p_id must agree, and it must actually be a t-peer.
    ++report.checks_run;
    if (sys_.pid_of(t).value() != pid || sys_.role_of(t) != Role::kTPeer) {
      add(report, "registry_consistency", t, "pid " + std::to_string(pid),
          "pid " + std::to_string(sys_.pid_of(t).value()),
          sys_.role_of(t) == Role::kTPeer ? "" : "registered peer is not a t-peer");
      continue;
    }

    // Successor family, one verdict per peer: dangling beats asymmetric
    // beats out-of-order, so a single corruption is reported under a single
    // name instead of cascading through all three.
    const PeerIndex suc = sys_.successor_of(t);
    const bool suc_live =
        suc != kNoPeer && sys_.is_alive(suc) && sys_.is_joined(suc);
    if (!options_.strict && suc != kNoPeer && !suc_live) {
      // The neighbour crashed and was already deregistered, but this peer's
      // pointer repair is still pending (a timer, not necessarily a message
      // in flight) -- ring_unsettled() cannot see it.  Strict mode flags it.
      continue;
    }
    ++report.checks_run;
    if (!suc_live) {
      add(report, "ring_dangling_successor", t, "live joined successor",
          suc == kNoPeer ? "no successor" : "dead or unjoined peer " + peer_str(suc));
    } else if (sys_.predecessor_of(suc) != t) {
      add(report, "ring_successor_symmetry", t,
          "predecessor(" + peer_str(suc) + ") == " + peer_str(t),
          "predecessor(" + peer_str(suc) + ") == " +
              peer_str(sys_.predecessor_of(suc)));
    } else if (suc != expected_next) {
      add(report, "ring_cycle_order", t,
          "successor == " + peer_str(expected_next) + " (registry order)",
          "successor == " + peer_str(suc));
    }

    // Cached neighbour ids must match the neighbours' actual p_ids: routing
    // decisions (in_arc tests) are made against the caches.
    ++report.checks_run;
    if (suc != kNoPeer && sys_.successor_id_of(t) != sys_.pid_of(suc)) {
      add(report, "ring_id_cache", t,
          "successor_id " + std::to_string(sys_.pid_of(suc).value()),
          "successor_id " + std::to_string(sys_.successor_id_of(t).value()));
    }
    const PeerIndex pre = sys_.predecessor_of(t);
    ++report.checks_run;
    if (pre != kNoPeer && sys_.predecessor_id_of(t) != sys_.pid_of(pre)) {
      add(report, "ring_id_cache", t,
          "predecessor_id " + std::to_string(sys_.pid_of(pre).value()),
          "predecessor_id " + std::to_string(sys_.predecessor_id_of(t).value()));
    }
  }
}

void OverlayAuditor::check_fingers(AuditReport& report) {
  // Finger tables are only populated in kFinger routing mode (or after an
  // explicit refresh); unset entries are skipped, stale-but-cached entries
  // are the strict-mode findings.
  for (const auto& [pid, t] : sys_.registry()) {
    const chord::FingerTable& fingers = sys_.fingers_of(t);
    for (unsigned k = 0; k < chord::FingerTable::size(); ++k) {
      const chord::Finger& f = fingers.entry(k);
      if (f.node == kNoPeer) continue;
      ++report.checks_run;
      if (f.node_id != sys_.pid_of(f.node)) {
        add(report, "finger_id_cache", t,
            "finger[" + std::to_string(k) + "].node_id " +
                std::to_string(sys_.pid_of(f.node).value()),
            std::to_string(f.node_id.value()));
      }
      if (!options_.strict) continue;
      ++report.checks_run;
      if (!sys_.is_alive(f.node) || !sys_.is_joined(f.node)) {
        add(report, "finger_liveness", t, "live joined finger target",
            "dead or unjoined peer " + peer_str(f.node),
            "finger[" + std::to_string(k) + "]");
      }
      ++report.checks_run;
      const PeerIndex owner = sys_.owner_tpeer(DataId{f.start});
      if (owner != kNoPeer && owner != f.node) {
        add(report, "finger_targets", t,
            "finger[" + std::to_string(k) + "] == successor(" +
                std::to_string(f.start) + ") == " + peer_str(owner),
            peer_str(f.node));
      }
    }
  }
}

void OverlayAuditor::check_trees(AuditReport& report) {
  const bool lenient = !options_.strict;
  const bool capped = sys_.params().style == SNetworkStyle::kTree ||
                      sys_.params().style == SNetworkStyle::kMesh;

  // Downward walk from every registered root: child lists must form a tree
  // whose members agree about parent, root, and inherited p_id.
  for (const auto& [pid, root] : sys_.registry()) {
    if (lenient && (!sys_.is_alive(root) || !sys_.is_joined(root) ||
                    sys_.is_joining(root) || sys_.is_leaving(root))) {
      continue;  // mid-transition; the next quiescent pass covers it
    }
    std::set<std::uint32_t> visited{root.value()};
    std::vector<PeerIndex> frontier{root};
    while (!frontier.empty()) {
      std::vector<PeerIndex> next_level;
      for (PeerIndex p : frontier) {
        for (PeerIndex c : sys_.children_of(p)) {
          if (lenient && (!sys_.is_alive(c) || !sys_.is_joined(c))) {
            continue;  // crashed or mid-rejoin child, repair pending
          }
          ++report.checks_run;
          if (sys_.parent_of(c) != p) {
            // A false-positive suspicion makes the child re-home while the
            // old parent, alive all along, keeps its stale entry until its
            // own hello timeout erases it.  Lenient passes excuse exactly
            // that window -- the child must be consistently attached under
            // its claimed new parent (or mid-rejoin with no parent yet);
            // a child attached nowhere coherent is corruption even
            // mid-churn, and strict passes flag any stale entry.
            const PeerIndex q = sys_.parent_of(c);
            bool reattached = q == kNoPeer;
            if (!reattached && sys_.is_alive(q) && sys_.is_joined(q)) {
              const auto& qkids = sys_.children_of(q);
              reattached =
                  std::find(qkids.begin(), qkids.end(), c) != qkids.end();
            }
            if (!(lenient && reattached)) {
              add(report, "tree_parent_child_symmetry", c,
                  "cp == " + peer_str(p),
                  "cp == " + peer_str(sys_.parent_of(c)),
                  "listed as child of " + peer_str(p));
            }
            continue;
          }
          ++report.checks_run;
          if (!visited.insert(c.value()).second) {
            add(report, "tree_acyclic_rooted", c, "each s-peer visited once",
                "revisited via " + peer_str(p),
                "s-network of t-peer " + peer_str(root));
            continue;
          }
          ++report.checks_run;
          if (sys_.tpeer_of(c) != root || sys_.pid_of(c) != sys_.pid_of(root)) {
            add(report, "snet_pid_inheritance", c,
                "tpeer " + peer_str(root) + ", pid " +
                    std::to_string(sys_.pid_of(root).value()),
                "tpeer " + peer_str(sys_.tpeer_of(c)) + ", pid " +
                    std::to_string(sys_.pid_of(c).value()));
          }
          next_level.push_back(c);
        }
        if (capped) {
          ++report.checks_run;
          const unsigned degree =
              static_cast<unsigned>(sys_.children_of(p).size()) +
              (sys_.parent_of(p) != kNoPeer ? 1U : 0U);
          // A promotion legitimately leaves the heir with the absorbed
          // children of the old root (up to twice the cap), so the lenient
          // bound is 2x.
          const unsigned limit = degree_limit(p) * (lenient ? 2U : 1U);
          if (degree > limit) {
            add(report, "tree_degree_cap", p,
                "degree <= " + std::to_string(limit),
                "degree == " + std::to_string(degree));
          }
        }
      }
      frontier = std::move(next_level);
    }
  }

  // Upward scan over every live joined s-peer: its parent must know it, and
  // (strict) its cp chain must reach its own t-peer.
  const std::size_t n = sys_.num_peers();
  for (std::uint32_t i = 0; i < n; ++i) {
    const PeerIndex p{i};
    if (sys_.is_server_peer(p) || sys_.role_of(p) != Role::kSPeer) continue;
    if (!sys_.is_alive(p) || !sys_.is_joined(p)) continue;
    const PeerIndex cp = sys_.parent_of(p);
    if (cp != kNoPeer &&
        (!lenient || (sys_.is_alive(cp) && sys_.is_joined(cp)))) {
      ++report.checks_run;
      const auto& kids = sys_.children_of(cp);
      if (std::find(kids.begin(), kids.end(), p) == kids.end()) {
        add(report, "tree_parent_child_symmetry", p,
            "listed in children(" + peer_str(cp) + ")", "absent",
            "cp == " + peer_str(cp));
      }
    }
    if (!options_.strict) continue;
    // Quiescent contract: an upward path must exist, or stored items are
    // unreachable by in-segment queries.
    ++report.checks_run;
    PeerIndex cur = p;
    std::size_t steps = 0;
    while (cur != kNoPeer && sys_.role_of(cur) == Role::kSPeer &&
           steps++ <= n) {
      cur = sys_.parent_of(cur);
    }
    const bool rooted = cur != kNoPeer && sys_.role_of(cur) == Role::kTPeer &&
                        sys_.is_alive(cur) && sys_.is_joined(cur) &&
                        cur == sys_.tpeer_of(p);
    if (!rooted) {
      if (!sys_.store_of(p).empty()) {
        add(report, "data_orphaned", p,
            "cp chain reaching live t-peer " + peer_str(sys_.tpeer_of(p)),
            "chain ends at " + peer_str(cur),
            std::to_string(sys_.store_of(p).size()) + " items unreachable");
      } else {
        add(report, "tree_unrooted", p,
            "cp chain reaching live t-peer " + peer_str(sys_.tpeer_of(p)),
            "chain ends at " + peer_str(cur));
      }
    }
  }
}

void OverlayAuditor::check_placement(AuditReport& report) {
  if (sys_.params().style == SNetworkStyle::kBitTorrent) {
    // Tracker mode: the tracker index, not the segment, is the authority
    // for where an item lives.
    report.skipped.emplace_back("placement:bittorrent");
    return;
  }
  if (sys_.registry().empty()) return;
  if (!options_.strict &&
      (ring_unsettled() || net_.stats().messages_in_flight > 0)) {
    // Items travel by message; while any are on the wire (or segments are
    // being renegotiated) placement is legitimately in flux.
    report.skipped.emplace_back("placement");
    return;
  }
  const std::size_t n = sys_.num_peers();
  for (std::uint32_t i = 0; i < n; ++i) {
    const PeerIndex p{i};
    if (sys_.is_server_peer(p)) continue;
    if (!sys_.is_alive(p) || !sys_.is_joined(p)) continue;
    const PeerIndex root =
        sys_.role_of(p) == Role::kTPeer ? p : sys_.tpeer_of(p);
    if (!options_.strict &&
        (root == kNoPeer || !sys_.is_alive(root) || !sys_.is_joined(root))) {
      continue;  // orphan fallback storage; rehomed on rejoin
    }
    const bool replication = sys_.params().replication_factor > 1;
    sys_.store_of(p).for_each([&](const proto::DataItem& item) {
      ++report.checks_run;
      // Replica copies are exempt: the successor-fallback holder of a small
      // segment legitimately lives outside the owning s-network, and
      // check_replication owns the durability contract for them.
      if (replication && item.replica) return;
      const PeerIndex owner = sys_.owner_tpeer(item.id);
      if (owner != kNoPeer && owner != root) {
        add(report, "data_misplaced", p,
            "d_id " + std::to_string(item.id.value()) +
                " in s-network of t-peer " + peer_str(owner),
            "held in s-network of t-peer " + peer_str(root),
            "key '" + item.key + "'");
      }
    });
  }
}

void OverlayAuditor::check_replication(AuditReport& report) {
  const auto& params = sys_.params();
  if (params.replication_factor <= 1 ||
      params.style == SNetworkStyle::kBitTorrent) {
    return;
  }
  if (!options_.strict) {
    // Replica counts are legitimately short while repair traffic is on the
    // wire; only the quiescent contract pins them down.
    report.skipped.emplace_back("replication");
    return;
  }
  if (sys_.registry().empty()) return;
  // Distinct live joined holders per id.  Peers are scanned in index order
  // and a store chains same-id items contiguously, so each holder list stays
  // sorted and dedup needs only a back() check.
  std::map<std::uint64_t, std::vector<PeerIndex>> holders;
  const std::size_t n = sys_.num_peers();
  for (std::uint32_t i = 0; i < n; ++i) {
    const PeerIndex p{i};
    if (sys_.is_server_peer(p)) continue;
    if (!sys_.is_alive(p) || !sys_.is_joined(p)) continue;
    sys_.store_of(p).for_each([&](const proto::DataItem& item) {
      auto& hs = holders[item.id.value()];
      if (hs.empty() || hs.back() != p) hs.push_back(p);
    });
  }
  // Durability contract: every surviving item reaches as many live holders
  // as its replica set can currently seat (min(r, segment size), plus the
  // successor fallback when the segment is short).  Ids with zero live
  // holders are total loss -- the oracle's business, not a structural
  // violation.
  for (const auto& [id_value, hs] : holders) {
    ++report.checks_run;
    const auto rs = sys_.replica_set(DataId{id_value});
    if (hs.size() < rs.size()) {
      add(report, "replica_count", rs.empty() ? kNoPeer : rs.front(),
          "d_id " + std::to_string(id_value) + " on >= " +
              std::to_string(rs.size()) + " live holders",
          std::to_string(hs.size()) + " live holders",
          "replication_factor " + std::to_string(params.replication_factor));
    }
  }
}

void OverlayAuditor::check_network(AuditReport& report) {
  const proto::NetworkStats& s = net_.stats();
  // Conservation: every sent message is eventually delivered or dropped at
  // a dead receiver; until then it is in flight.  All counters are bumped
  // synchronously by the transport, so this holds at *every* instant.
  ++report.checks_run;
  const std::uint64_t accounted =
      s.messages_delivered + s.reason_drops(proto::DropReason::kDeadReceiver) +
      s.messages_in_flight;
  if (s.messages_sent != accounted) {
    add(report, "net_conservation", kNoPeer,
        "sent " + std::to_string(s.messages_sent),
        "delivered + dead_receiver + in_flight = " + std::to_string(accounted));
  }
  // Per-reason drop counters must tie out with the aggregates they feed.
  ++report.checks_run;
  const std::uint64_t dropped =
      s.reason_drops(proto::DropReason::kDeadSender) +
      s.reason_drops(proto::DropReason::kDeadReceiver);
  if (s.messages_dropped != dropped) {
    add(report, "net_drop_accounting", kNoPeer,
        "messages_dropped " + std::to_string(dropped),
        std::to_string(s.messages_dropped));
  }
  ++report.checks_run;
  if (s.messages_lost != s.reason_drops(proto::DropReason::kLoss)) {
    add(report, "net_drop_accounting", kNoPeer,
        "messages_lost " +
            std::to_string(s.reason_drops(proto::DropReason::kLoss)),
        std::to_string(s.messages_lost));
  }
}

}  // namespace hp2p::audit
