// Closed-form performance models from Section 4 of the paper.
//
// All quantities are expressed in overlay hops, exactly as the paper's
// analysis does; the benches print these next to the simulated series so
// EXPERIMENTS.md can compare theory and simulation directly (Fig. 3).
#pragma once

namespace hp2p::analysis {

/// Model inputs; defaults match the paper's simulation setup (N = 1000).
struct ModelParams {
  double n = 1000;    // total peers
  double ps = 0.5;    // fraction of s-peers
  double delta = 3;   // tree degree constraint
  double ttl = 4;     // flood radius
};

/// Average number of s-peers per s-network, p_s/(1-p_s) (Section 4.1).
[[nodiscard]] double snetwork_size(const ModelParams& p);

/// Probability that a requested item lives in the requester's own
/// s-network, p = p_s / (N (1-p_s)) (Section 4.2).
[[nodiscard]] double local_hit_probability(const ModelParams& p);

/// Average join latency in hops for a t-peer: log((1-p_s) N / 2) with
/// finger acceleration (Section 4.1).
[[nodiscard]] double tpeer_join_hops(const ModelParams& p);

/// Average join latency in hops for an s-peer under the degree constraint:
/// log_delta(p_s/(1-p_s)) (Section 4.1).
[[nodiscard]] double speer_join_hops(const ModelParams& p);

/// Eq. (1): the p_s-weighted average join latency.
[[nodiscard]] double average_join_hops(const ModelParams& p);

/// Eq. (2): expected number of peers outside the flood radius of a lookup
/// in a degree-constrained s-network (midpoint of the t-peer-initiated and
/// leaf-initiated cases).
[[nodiscard]] double peers_out_of_flood_range(const ModelParams& p);

/// Lookup failure ratio estimate implied by Eq. (2): out-of-range peers
/// over s-network size, clamped to [0, 1].
[[nodiscard]] double lookup_failure_ratio(const ModelParams& p);

/// Average lookup latency (hops) when s-networks are built without the
/// degree constraint (star topologies, diameter 2).
[[nodiscard]] double lookup_hops_unconstrained(const ModelParams& p);

/// Average lookup latency (hops) with the degree constraint delta
/// (Section 4.2's second expression).
[[nodiscard]] double lookup_hops_constrained(const ModelParams& p);

/// argmin over p_s of average_join_hops on a grid; the paper reports the
/// optimum around 0.7-0.8.
[[nodiscard]] double optimal_ps_for_join(double n, double delta);

}  // namespace hp2p::analysis
