#include "analysis/model.hpp"

#include <algorithm>
#include <cmath>

namespace hp2p::analysis {
namespace {

/// log2 clamped at zero: hop counts cannot be negative; the paper's curves
/// implicitly clamp the same way (latency 0 at the degenerate ends).
double log2_pos(double x) { return x > 1.0 ? std::log2(x) : 0.0; }

double log_delta_pos(double x, double delta) {
  if (x <= 1.0 || delta <= 1.0) return 0.0;
  return std::log2(x) / std::log2(delta);
}

}  // namespace

double snetwork_size(const ModelParams& p) {
  if (p.ps >= 1.0) return p.n;  // one big unstructured network
  return p.ps / (1.0 - p.ps);
}

double local_hit_probability(const ModelParams& p) {
  if (p.ps >= 1.0) return 1.0;
  return std::min(1.0, p.ps / (p.n * (1.0 - p.ps)));
}

double tpeer_join_hops(const ModelParams& p) {
  return log2_pos((1.0 - p.ps) * p.n / 2.0);
}

double speer_join_hops(const ModelParams& p) {
  return log_delta_pos(snetwork_size(p), p.delta);
}

double average_join_hops(const ModelParams& p) {
  // Eq. (1).
  return (1.0 - p.ps) * tpeer_join_hops(p) + p.ps * speer_join_hops(p);
}

double peers_out_of_flood_range(const ModelParams& p) {
  // Eq. (2): s/(1-s) minus the approximated covered count.
  const double size = snetwork_size(p);
  const double d = p.delta;
  if (d <= 1.0) return std::max(0.0, size - (p.ttl + 1.0));
  const double covered =
      (std::pow(d, p.ttl + 1.0) * (d - 1.0) + std::pow(d, 2.0 + p.ttl / 2.0) -
       (d - 1.0) * p.ttl / 2.0) /
      (2.0 * (d - 1.0) * (d - 1.0));
  return std::max(0.0, size - covered);
}

double lookup_failure_ratio(const ModelParams& p) {
  const double size = snetwork_size(p);
  if (size <= 0.0) return 0.0;
  return std::clamp(peers_out_of_flood_range(p) / size, 0.0, 1.0);
}

double lookup_hops_unconstrained(const ModelParams& p) {
  const double local = local_hit_probability(p);
  const double ring = log2_pos((1.0 - p.ps) * p.n / 2.0);
  return local * 2.0 + (1.0 - local) * (2.0 + ring);
}

double lookup_hops_constrained(const ModelParams& p) {
  const double local = local_hit_probability(p);
  const double ring = log2_pos((1.0 - p.ps) * p.n / 2.0);
  const double climb =
      std::max(0.0, 0.5 * log_delta_pos(snetwork_size(p), p.delta));
  return local * p.ttl + (1.0 - local) * (climb + p.ttl + ring);
}

double optimal_ps_for_join(double n, double delta) {
  double best_ps = 0.0;
  double best = 1e300;
  for (double ps = 0.0; ps <= 1.0001; ps += 0.01) {
    ModelParams p;
    p.n = n;
    p.ps = std::min(ps, 0.999);  // avoid the ps=1 singularity of Eq. (1)
    p.delta = delta;
    const double hops = average_join_hops(p);
    if (hops < best) {
      best = hops;
      best_ps = p.ps;
    }
  }
  return best_ps;
}

}  // namespace hp2p::analysis
