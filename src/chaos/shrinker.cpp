#include "chaos/shrinker.hpp"

#include <cstddef>
#include <vector>

namespace hp2p::chaos {

namespace {

FaultSchedule with_phases(const FaultSchedule& base,
                          std::vector<FaultPhase> phases) {
  FaultSchedule s;
  s.seed = base.seed;
  s.phases = std::move(phases);
  return s;
}

}  // namespace

FaultSchedule shrink_schedule(
    FaultSchedule failing,
    const std::function<bool(const FaultSchedule&)>& still_fails) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Phase-list reduction via the shared ddmin core (chaos/shrinker.hpp).
    changed |= ddmin_list(failing.phases, 1,
                          [&](const std::vector<FaultPhase>& reduced) {
                            return still_fails(with_phases(failing, reduced));
                          });
    // Intensity / count halving: keep a weaker phase only if it still
    // reproduces, so the reproducer documents the minimal stress needed.
    for (std::size_t i = 0; i < failing.phases.size(); ++i) {
      while (failing.phases[i].intensity > 0.02) {
        FaultSchedule candidate = failing;
        candidate.phases[i].intensity /= 2.0;
        if (!still_fails(candidate)) break;
        failing = std::move(candidate);
        changed = true;
      }
      while (failing.phases[i].count > 1) {
        FaultSchedule candidate = failing;
        candidate.phases[i].count /= 2;
        if (!still_fails(candidate)) break;
        failing = std::move(candidate);
        changed = true;
      }
    }
  }
  return failing;
}

}  // namespace hp2p::chaos
