#include "chaos/shrinker.hpp"

#include <cstddef>
#include <vector>

namespace hp2p::chaos {

namespace {

FaultSchedule with_phases(const FaultSchedule& base,
                          std::vector<FaultPhase> phases) {
  FaultSchedule s;
  s.seed = base.seed;
  s.phases = std::move(phases);
  return s;
}

}  // namespace

FaultSchedule shrink_schedule(
    FaultSchedule failing,
    const std::function<bool(const FaultSchedule&)>& still_fails) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Phase-list reduction, ddmin-style: try dropping contiguous chunks,
    // halving the chunk size down to single phases.
    for (std::size_t chunk = failing.phases.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t at = 0;
           at + chunk <= failing.phases.size() && failing.phases.size() > 1;) {
        std::vector<FaultPhase> reduced;
        reduced.reserve(failing.phases.size() - chunk);
        for (std::size_t i = 0; i < failing.phases.size(); ++i) {
          if (i < at || i >= at + chunk) reduced.push_back(failing.phases[i]);
        }
        if (!reduced.empty() &&
            still_fails(with_phases(failing, reduced))) {
          failing.phases = std::move(reduced);
          changed = true;
          // Re-test the same position against the shorter list.
        } else {
          at += 1;
        }
      }
      if (chunk == 1) break;
    }
    // Intensity / count halving: keep a weaker phase only if it still
    // reproduces, so the reproducer documents the minimal stress needed.
    for (std::size_t i = 0; i < failing.phases.size(); ++i) {
      while (failing.phases[i].intensity > 0.02) {
        FaultSchedule candidate = failing;
        candidate.phases[i].intensity /= 2.0;
        if (!still_fails(candidate)) break;
        failing = std::move(candidate);
        changed = true;
      }
      while (failing.phases[i].count > 1) {
        FaultSchedule candidate = failing;
        candidate.phases[i].count /= 2;
        if (!still_fails(candidate)) break;
        failing = std::move(candidate);
        changed = true;
      }
    }
  }
  return failing;
}

}  // namespace hp2p::chaos
