// End-to-end chaos run: build a hybrid system, store a corpus, apply a
// FaultSchedule through the FaultScheduleEngine, then check the outcome
// against the model-based oracle (chaos::ReferenceModel) and a strict
// OverlayAuditor pass.  Everything is a pure function of the config, so a
// failing (config, schedule) pair replays byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_schedule.hpp"
#include "hybrid/params.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/json.hpp"

namespace hp2p::chaos {

/// Hybrid parameters tuned for chaos runs: tree s-networks, ring routing,
/// fast failure detection, generous flood reach, and both hardening knobs
/// (re-flood + ring retry) on.  Caching/bypass stay off so the oracle's
/// reachability model matches the protocol exactly.
[[nodiscard]] hybrid::HybridParams chaos_default_params();

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_peers = 60;
  std::uint32_t hosts = 200;
  /// Fraction of s-peers among the initial population (roles are forced, so
  /// this is exact up to rounding; at least one t-peer always joins).
  double ps = 0.5;
  std::uint32_t num_items = 100;
  /// Quiescent oracle wave size; must be >= num_items (each stored item is
  /// looked up once from its storing peer, the remainder from random
  /// origins).
  std::uint32_t num_lookups = 150;
  /// Lookups issued while the schedule is running (0 = none); failures are
  /// judged post-hoc and only count as violations when the oracle says MUST
  /// both at issue time and after recovery.
  std::uint32_t storm_lookups = 0;
  hybrid::HybridParams params = chaos_default_params();
  /// Kernel tie-break policy, `""` (kernel FIFO default) or
  /// `shuffle:<seed>` (seeded random pick among equal-timestamp events).
  /// Defaults to the HP2P_TIEBREAK environment variable so ordinary soaks
  /// can be re-run shuffled without recompiling; every outcome must still
  /// pass the oracle -- a tie-order-dependent protocol bug fails the soak.
  std::string tie_break;
  FaultSchedule schedule;
  /// Recovery time simulated after the last phase before the oracle runs.
  sim::Duration settle = sim::SimTime::seconds(60);
  bool strict_audit = true;
  /// Optional (not owned): receives phase/crash/join/violation events.
  stats::FlightRecorder* flight = nullptr;
};

struct ChaosViolation {
  const char* kind = "";  // stable name (string literal)
  std::string detail;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  [[nodiscard]] stats::JsonValue to_json() const;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::uint32_t crashes = 0;
  std::uint32_t joins = 0;
  std::uint32_t items_stored = 0;
  std::uint32_t items_live = 0;
  std::uint32_t must_issued = 0;
  std::uint32_t may_issued = 0;
  std::uint32_t must_failed = 0;
  std::uint32_t may_failed = 0;
  std::uint32_t storm_issued = 0;
  std::uint32_t storm_failed = 0;
  std::uint32_t audit_violations = 0;
  bool ring_ok = false;
  bool trees_ok = false;
  std::vector<ChaosViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] stats::JsonValue to_json() const;
};

/// Runs one full chaos scenario and returns the oracle's verdict.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& cfg);

}  // namespace hp2p::chaos
