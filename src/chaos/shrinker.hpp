// Schedule shrinker: given a failing FaultSchedule and a predicate that
// re-runs it, bisects the phase list (ddmin-style) and then halves phase
// intensities/counts, returning a minimal schedule that still fails.  The
// result prints as a one-line seed + JSON reproducer via
// FaultSchedule::one_line().
#pragma once

#include <functional>

#include "chaos/fault_schedule.hpp"

namespace hp2p::chaos {

/// Shrinks `failing` while `still_fails` keeps returning true on the
/// candidate.  Deterministic; the predicate is typically a full run_chaos
/// replay, so expect O(phases * log) re-runs.
[[nodiscard]] FaultSchedule shrink_schedule(
    FaultSchedule failing,
    const std::function<bool(const FaultSchedule&)>& still_fails);

}  // namespace hp2p::chaos
