// Schedule shrinker: given a failing FaultSchedule and a predicate that
// re-runs it, bisects the phase list (ddmin-style) and then halves phase
// intensities/counts, returning a minimal schedule that still fails.  The
// result prints as a one-line seed + JSON reproducer via
// FaultSchedule::one_line().
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "chaos/fault_schedule.hpp"

namespace hp2p::chaos {

/// ddmin-style list reduction, the shared core of shrink_schedule and the
/// verify/ explorer's trace minimizer: repeatedly tries dropping contiguous
/// chunks (halving the chunk size down to single elements) and keeps any
/// reduction for which `still_fails(candidate)` holds.  Never shrinks below
/// `min_keep` elements.  Returns true when anything was removed.
template <typename T, typename Pred>
bool ddmin_list(std::vector<T>& items, std::size_t min_keep,
                const Pred& still_fails) {
  bool changed = false;
  for (std::size_t chunk = items.size(); chunk >= 1; chunk /= 2) {
    for (std::size_t at = 0;
         at + chunk <= items.size() && items.size() > min_keep;) {
      std::vector<T> reduced;
      reduced.reserve(items.size() - chunk);
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < at || i >= at + chunk) reduced.push_back(items[i]);
      }
      if (reduced.size() >= min_keep && still_fails(reduced)) {
        items = std::move(reduced);
        changed = true;
        // Re-test the same position against the shorter list.
      } else {
        at += 1;
      }
    }
    if (chunk == 1) break;
  }
  return changed;
}

/// Shrinks `failing` while `still_fails` keeps returning true on the
/// candidate.  Deterministic; the predicate is typically a full run_chaos
/// replay, so expect O(phases * log) re-runs.
[[nodiscard]] FaultSchedule shrink_schedule(
    FaultSchedule failing,
    const std::function<bool(const FaultSchedule&)>& still_fails);

}  // namespace hp2p::chaos
