#include "chaos/fault_engine.hpp"

#include <algorithm>
#include <utility>

namespace hp2p::chaos {

using proto::TrafficClass;

FaultScheduleEngine::FaultScheduleEngine(sim::Simulator& sim,
                                         proto::OverlayNetwork& net,
                                         hybrid::HybridSystem& system,
                                         FaultSchedule schedule,
                                         stats::FlightRecorder* flight)
    : sim_(sim), net_(net), system_(system), schedule_(std::move(schedule)),
      flight_(flight), rng_(schedule_.seed) {}

std::uint32_t FaultScheduleEngine::domain_of(PeerIndex peer) const {
  const auto& topo = net_.underlay().topology();
  return topo.domain[net_.host_of(peer).value()];
}

void FaultScheduleEngine::arm(std::function<HostIndex()> host_source) {
  host_source_ = std::move(host_source);
  net_.set_fault([this](PeerIndex from, PeerIndex to, TrafficClass cls,
                        std::uint32_t bytes) {
    return on_message(from, to, cls, bytes);
  });
  for (std::size_t i = 0; i < schedule_.phases.size(); ++i) {
    const FaultPhase& phase = schedule_.phases[i];
    if (flight_ != nullptr) {
      flight_->record(phase.start, "chaos_phase", i,
                      static_cast<std::uint64_t>(phase.kind), phase.count);
    }
    const bool crash = phase.kind == FaultKind::kTPeerCrashStorm ||
                       phase.kind == FaultKind::kSPeerCrashStorm;
    const bool join = phase.kind == FaultKind::kJoinFlashCrowd;
    if (!crash && !join) continue;
    // Spread the `count` membership events evenly across the phase.
    const std::uint32_t n = std::max<std::uint32_t>(phase.count, 1);
    for (std::uint32_t k = 0; k < n; ++k) {
      const auto offset = sim::SimTime::micros(
          phase.duration.as_micros() * k / n);
      sim_.schedule_at(phase.start + offset, [this, i, crash] {
        sim::ComponentScope prof{sim_, sim::Component::kChaos};
        const FaultPhase& p = schedule_.phases[i];
        if (crash) {
          apply_crash(p, i);
        } else {
          apply_join(p, i);
        }
      });
    }
  }
}

void FaultScheduleEngine::disarm() { net_.set_fault({}); }

proto::FaultAction FaultScheduleEngine::on_message(PeerIndex from,
                                                   PeerIndex to,
                                                   TrafficClass cls,
                                                   std::uint32_t bytes) {
  proto::FaultAction action;
  const sim::SimTime now = sim_.now();
  for (const FaultPhase& p : schedule_.phases) {
    if (now < p.start || p.end() <= now) continue;
    switch (p.kind) {
      case FaultKind::kLossBurst:
        if ((cls != TrafficClass::kControl || p.affect_control) &&
            rng_.chance(p.intensity)) {
          action.drop = true;
        }
        break;
      case FaultKind::kLatencyStorm: {
        const auto base = net_.hop_latency(from, to, bytes);
        action.extra_delay += sim::SimTime::micros(static_cast<std::int64_t>(
            static_cast<double>(base.as_micros()) * p.intensity));
        break;
      }
      case FaultKind::kPartition: {
        const bool from_low = domain_of(from) < p.param;
        const bool to_low = domain_of(to) < p.param;
        const bool crosses =
            (from_low && !to_low) || (p.symmetric && !from_low && to_low);
        if (!crosses) break;
        if (cls == TrafficClass::kControl) {
          // Control transfer is modeled reliable (retransmitted until the
          // partition heals): park the message until just past phase end.
          action.extra_delay += p.end() - now + sim::SimTime::millis(1);
        } else {
          action.drop = true;
        }
        break;
      }
      case FaultKind::kStaleHello:
        if (cls == TrafficClass::kHeartbeat) {
          action.extra_delay +=
              sim::SimTime::millis(static_cast<std::int64_t>(p.param));
        }
        break;
      case FaultKind::kTPeerCrashStorm:
      case FaultKind::kSPeerCrashStorm:
      case FaultKind::kJoinFlashCrowd:
      case FaultKind::kCount_:
        break;
    }
    if (action.drop) break;
  }
  dropped_ += action.drop ? 1u : 0u;
  delayed_ += (!action.drop && action.extra_delay > sim::SimTime{}) ? 1u : 0u;
  return action;
}

void FaultScheduleEngine::apply_crash(const FaultPhase& phase,
                                      std::size_t phase_idx) {
  const bool want_tpeer = phase.kind == FaultKind::kTPeerCrashStorm;
  std::vector<PeerIndex> candidates;
  std::size_t live_tpeers = 0;
  for (std::uint32_t i = 0; i < system_.num_peers(); ++i) {
    const PeerIndex p{i};
    if (system_.is_server_peer(p) || !system_.is_alive(p) ||
        !system_.is_joined(p)) {
      continue;
    }
    const bool is_t = system_.role_of(p) == hybrid::Role::kTPeer;
    live_tpeers += is_t ? 1 : 0;
    if (is_t == want_tpeer) candidates.push_back(p);
  }
  if (candidates.empty()) return;
  const PeerIndex victim = candidates[rng_.index(candidates.size())];
  if (want_tpeer) {
    // Keep the system recoverable: a t-peer may only crash while another
    // t-peer survives or its own s-network has members to compete for the
    // slot.
    const bool has_orphans = system_.snetwork_members(victim).size() > 1;
    if (live_tpeers <= 1 && !has_orphans) return;
  }
  ++crashes_applied_;
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "chaos_crash", victim.value(),
                    want_tpeer ? 1 : 0, phase_idx);
  }
  system_.crash(victim);
}

void FaultScheduleEngine::apply_join(const FaultPhase& phase,
                                     std::size_t phase_idx) {
  if (!host_source_) return;
  ++joins_applied_;
  const PeerIndex joiner =
      system_.add_peer_with_role(host_source_(), hybrid::Role::kSPeer);
  if (flight_ != nullptr) {
    flight_->record(sim_.now(), "chaos_join", joiner.value(), 0, phase_idx);
  }
  (void)phase;
}

}  // namespace hp2p::chaos
