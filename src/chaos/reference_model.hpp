// Model-based availability oracle for the chaos engine.
//
// The model remembers every store issued by the workload and, at a quiescent
// point, classifies each (origin, id) lookup as MUST succeed or MAY fail by
// walking the live overlay (ground truth, not protocol messages).  The MUST
// rules are deliberately conservative: any structural doubt (broken ring,
// severed cp-chain, every holder crashed, holder beyond flood reach)
// downgrades to MAY so the oracle never blames the protocol for a loss the
// fault schedule made legitimate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "hybrid/hybrid_system.hpp"

namespace hp2p::chaos {

/// Verdict for one prospective lookup.
struct Expectation {
  bool must = false;
  /// Stable reason literal (e.g. "own_store", "no_live_holder").
  const char* reason = "";
};

class ReferenceModel {
 public:
  explicit ReferenceModel(const hybrid::HybridSystem& system)
      : system_(system) {}

  /// Records that `origin` issued store_id(id, key).  Ground truth for
  /// holders is read from the live stores, so re-recording is harmless.
  void record_store(DataId id, PeerIndex origin);

  /// All recorded (id, origin) pairs in id order.
  [[nodiscard]] const std::map<std::uint64_t, PeerIndex>& stores() const {
    return stores_;
  }

  /// Live joined peers currently holding `id`.
  [[nodiscard]] std::vector<PeerIndex> live_holders(DataId id) const;

  /// Classifies a lookup for `id` issued by `origin` at a quiescent point.
  [[nodiscard]] Expectation classify(PeerIndex origin, DataId id) const;

 private:
  /// True iff a live joined holder of `id` is within `ttl` tree hops of
  /// `start` (flood reachability over cp/children edges).
  [[nodiscard]] bool holder_within(PeerIndex start, DataId id,
                                   std::uint32_t ttl) const;
  /// True iff the system's repair machinery is obliged to restore primaries
  /// by quiescence: r >= 2 and the anti-entropy sweep is running.
  [[nodiscard]] bool repair_active() const;
  /// True iff a live holder of `id` sits where `owner`'s anti-entropy sweep
  /// reaches it: inside owner's s-network (chain root == owner) or at the
  /// successor fallback holder.  Such a copy MUST be back at the owner by
  /// quiescence.
  [[nodiscard]] bool replica_restorable(DataId id, PeerIndex owner) const;
  /// Tracker mode: true iff the tracker at `owner` can serve `id` -- it
  /// holds the item itself, or its index names a live joined holder that
  /// still has it.  Mirrors bt_lookup exactly (tracker first, then the
  /// announced holder fan-out).
  [[nodiscard]] bool tracker_serves(PeerIndex owner, DataId id) const;
  /// Hops along the cp chain from `origin` up to its root t-peer
  /// (0 for a t-peer); num_peers()+1 when the chain is severed.
  [[nodiscard]] std::uint32_t chain_depth(PeerIndex origin) const;
  /// Root t-peer of origin's s-network via the cp chain; kNoPeer when the
  /// chain is severed, leaves the live set, or cycles.
  [[nodiscard]] PeerIndex chain_root(PeerIndex origin) const;

  const hybrid::HybridSystem& system_;
  std::map<std::uint64_t, PeerIndex> stores_;
};

}  // namespace hp2p::chaos
