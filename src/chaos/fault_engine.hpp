// FaultScheduleEngine: applies a FaultSchedule to a running hybrid system.
//
// Transport faults (loss, latency, partitions, stale HELLOs) run through the
// OverlayNetwork fault hook; membership faults (crash storms, join flash
// crowds) are scheduled as simulator events that act on the system directly.
// Everything is driven by the schedule's seed, so one (config, schedule)
// pair replays byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/fault_schedule.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "stats/flight_recorder.hpp"

namespace hp2p::chaos {

class FaultScheduleEngine {
 public:
  /// `flight` (optional, not owned) receives one record per phase at arm
  /// time and one per applied crash/join.
  FaultScheduleEngine(sim::Simulator& sim, proto::OverlayNetwork& net,
                      hybrid::HybridSystem& system, FaultSchedule schedule,
                      stats::FlightRecorder* flight = nullptr);

  /// Installs the transport fault hook and schedules the membership events.
  /// `host_source` supplies hosts for flash-crowd joiners.
  void arm(std::function<HostIndex()> host_source);
  /// Removes the transport hook (call after the schedule has ended).
  void disarm();

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  [[nodiscard]] std::uint32_t crashes_applied() const {
    return crashes_applied_;
  }
  [[nodiscard]] std::uint32_t joins_applied() const { return joins_applied_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_delayed() const { return delayed_; }

 private:
  [[nodiscard]] proto::FaultAction on_message(PeerIndex from, PeerIndex to,
                                              proto::TrafficClass cls,
                                              std::uint32_t bytes);
  void apply_crash(const FaultPhase& phase, std::size_t phase_idx);
  void apply_join(const FaultPhase& phase, std::size_t phase_idx);
  [[nodiscard]] std::uint32_t domain_of(PeerIndex peer) const;

  sim::Simulator& sim_;
  proto::OverlayNetwork& net_;
  hybrid::HybridSystem& system_;
  FaultSchedule schedule_;
  stats::FlightRecorder* flight_;
  Rng rng_;
  std::function<HostIndex()> host_source_;
  std::uint32_t crashes_applied_ = 0;
  std::uint32_t joins_applied_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace hp2p::chaos
