// Declarative fault schedules for the chaos-test engine.
//
// A schedule is a seed plus a list of timed fault phases (loss bursts,
// latency storms, underlay-domain partitions, crash storms, join flash
// crowds, stale HELLO delivery).  Schedules serialize to/from JSON, so a
// failing run is reproducible from a one-line seed + blob, and the shrinker
// can bisect phases down to a minimal reproducer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/json.hpp"

namespace hp2p::chaos {

/// Fault families the engine knows how to apply.
enum class FaultKind : std::uint8_t {
  kLossBurst,        // drop messages with probability `intensity`
  kLatencyStorm,     // stretch hop latency by `intensity` x base
  kPartition,        // cut traffic between underlay domains < / >= `param`
  kTPeerCrashStorm,  // crash `count` live t-peers across the phase
  kSPeerCrashStorm,  // crash `count` live s-peers across the phase
  kJoinFlashCrowd,   // `count` s-peers join in a burst
  kStaleHello,       // delay heartbeat traffic by `param` milliseconds
  kCount_,           // sentinel
};

/// Stable snake_case name (JSON `kind` field).
[[nodiscard]] const char* fault_kind_name(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> fault_kind_from_name(
    const std::string& name);

/// One timed fault phase.  Field meaning depends on `kind` (see FaultKind);
/// unused fields stay at their defaults so schedules compare and round-trip
/// exactly.
struct FaultPhase {
  FaultKind kind = FaultKind::kLossBurst;
  sim::SimTime start{};
  sim::Duration duration{};
  double intensity = 0.0;
  std::uint32_t count = 0;
  std::uint64_t param = 0;
  /// Partitions: cut both directions (true) or only low->high domain.
  bool symmetric = true;
  /// Loss bursts: whether kControl messages are also dropped.  Off by
  /// default: the protocols treat control transfer as reliable (a lost
  /// join-triangle or competition message wedges membership forever), so
  /// the randomized generator models control as delayed, never lost.
  bool affect_control = false;

  friend bool operator==(const FaultPhase&, const FaultPhase&) = default;

  [[nodiscard]] sim::SimTime end() const { return start + duration; }
  [[nodiscard]] stats::JsonValue to_json() const;
  [[nodiscard]] static std::optional<FaultPhase> from_json(
      const stats::JsonValue& v);
};

/// A full schedule: the run seed plus its phases.
struct FaultSchedule {
  std::uint64_t seed = 1;
  std::vector<FaultPhase> phases;

  friend bool operator==(const FaultSchedule&, const FaultSchedule&) = default;

  /// Latest phase end (time zero when empty).
  [[nodiscard]] sim::SimTime end() const;
  [[nodiscard]] stats::JsonValue to_json() const;
  [[nodiscard]] static std::optional<FaultSchedule> from_json(
      const stats::JsonValue& v);
  /// One-line reproducer: `seed=<N> schedule=<compact json>`.
  [[nodiscard]] std::string one_line() const;
};

/// Seeded random schedule for the chaos soak: 2-4 phases drawn from all
/// families, placed after `start`, sized for a small/medium system.
/// `num_domains` bounds partition pivots.  Constraints that keep the oracle
/// sound are built in: control traffic is never lost (only delayed), crash
/// storms are modest, and flash crowds do not overlap partitions.
[[nodiscard]] FaultSchedule random_schedule(std::uint64_t seed,
                                            sim::SimTime start,
                                            std::uint32_t num_domains);

}  // namespace hp2p::chaos
