#include "chaos/reference_model.hpp"

#include <deque>
#include <set>

#include "common/ring_math.hpp"

namespace hp2p::chaos {

namespace {

bool live_member(const hybrid::HybridSystem& sys, PeerIndex p) {
  return p != kNoPeer && sys.is_alive(p) && sys.is_joined(p);
}

}  // namespace

void ReferenceModel::record_store(DataId id, PeerIndex origin) {
  stores_.emplace(id.value(), origin);
}

std::vector<PeerIndex> ReferenceModel::live_holders(DataId id) const {
  std::vector<PeerIndex> holders;
  for (std::size_t i = 0; i < system_.num_peers(); ++i) {
    const PeerIndex p{static_cast<std::uint32_t>(i)};
    if (system_.is_server_peer(p) || !live_member(system_, p)) continue;
    if (system_.store_of(p).find(id) != nullptr) holders.push_back(p);
  }
  return holders;
}

bool ReferenceModel::holder_within(PeerIndex start, DataId id,
                                   std::uint32_t ttl) const {
  if (!live_member(system_, start)) return false;
  std::set<std::uint32_t> visited{start.value()};
  std::deque<std::pair<PeerIndex, std::uint32_t>> frontier{{start, 0}};
  while (!frontier.empty()) {
    const auto [at, depth] = frontier.front();
    frontier.pop_front();
    if (system_.store_of(at).find(id) != nullptr) return true;
    if (depth == ttl) continue;
    std::vector<PeerIndex> next = system_.children_of(at);
    next.push_back(system_.parent_of(at));
    for (const PeerIndex n : next) {
      if (!live_member(system_, n)) continue;
      if (!visited.insert(n.value()).second) continue;
      frontier.emplace_back(n, depth + 1);
    }
  }
  return false;
}

bool ReferenceModel::repair_active() const {
  const auto& params = system_.params();
  return params.replication_factor >= 2 &&
         params.anti_entropy_period > sim::Duration{} &&
         params.style != hybrid::SNetworkStyle::kBitTorrent;
}

bool ReferenceModel::replica_restorable(DataId id, PeerIndex owner) const {
  for (const PeerIndex h : live_holders(id)) {
    if (chain_root(h) == owner) return true;
    if (system_.role_of(h) == hybrid::Role::kTPeer &&
        system_.successor_of(owner) == h) {
      return true;
    }
  }
  return false;
}

bool ReferenceModel::tracker_serves(PeerIndex owner, DataId id) const {
  if (system_.store_of(owner).find(id) != nullptr) return true;
  for (const PeerIndex h : system_.tracker_holders(owner, id)) {
    if (live_member(system_, h) && system_.store_of(h).find(id) != nullptr) {
      return true;
    }
  }
  return false;
}

std::uint32_t ReferenceModel::chain_depth(PeerIndex origin) const {
  PeerIndex at = origin;
  for (std::size_t hops = 0; hops <= system_.num_peers(); ++hops) {
    if (!live_member(system_, at)) break;
    if (system_.role_of(at) == hybrid::Role::kTPeer) {
      return static_cast<std::uint32_t>(hops);
    }
    at = system_.parent_of(at);
    if (at == kNoPeer) break;
  }
  return static_cast<std::uint32_t>(system_.num_peers() + 1);
}

PeerIndex ReferenceModel::chain_root(PeerIndex origin) const {
  PeerIndex at = origin;
  for (std::size_t hops = 0; hops <= system_.num_peers(); ++hops) {
    if (!live_member(system_, at)) return kNoPeer;
    if (system_.role_of(at) == hybrid::Role::kTPeer) return at;
    at = system_.parent_of(at);
    if (at == kNoPeer) return kNoPeer;
  }
  return kNoPeer;  // cp cycle: treat as severed
}

Expectation ReferenceModel::classify(PeerIndex origin, DataId id) const {
  if (!live_member(system_, origin)) return {false, "origin_down"};
  if (system_.store_of(origin).find(id) != nullptr) {
    return {true, "own_store"};
  }
  if (live_holders(id).empty()) return {false, "no_live_holder"};

  const auto& params = system_.params();
  const std::uint32_t ttl =
      params.reflood_on_timeout ? params.ttl * 2 : params.ttl;

  const PeerIndex root = chain_root(origin);
  if (root == kNoPeer) return {false, "cp_chain_severed"};

  const PeerIndex owner = system_.owner_tpeer(id);
  if (owner == kNoPeer) return {false, "no_owner"};

  // Tracker mode (kBitTorrent): no flooding at all -- the lookup climbs to
  // its root, rides the ring to the owner tracker, and succeeds iff the
  // tracker can name a live announced holder (or holds the item itself).
  // An unindexed live copy downgrades to MAY: the protocol has no way to
  // find it, so the oracle must not demand it.
  if (params.style == hybrid::SNetworkStyle::kBitTorrent) {
    if (owner != root && !system_.verify_ring()) {
      return {false, "ring_inconsistent"};
    }
    if (!live_member(system_, owner)) return {false, "owner_down"};
    if (tracker_serves(owner, id)) {
      return {true, owner == root ? "tracker_local" : "tracker_remote"};
    }
    return {false, "tracker_unindexed"};
  }

  if (owner == root) {
    // Local-segment lookup: a flood from the origin must find a holder
    // within reach.  The flood starts at the origin, not the root.
    if (holder_within(origin, id, ttl)) return {true, "local_flood"};
    // With repair running, a restorable replica MUST be back at the owner
    // (= this origin's root) by quiescence, so the flood finds it as long
    // as the root itself is within reach.
    if (repair_active() && replica_restorable(id, owner) &&
        chain_depth(origin) <= ttl) {
      return {true, "replica_local"};
    }
    return {false, "holder_beyond_ttl"};
  }

  // Remote-segment lookup: climb to the root, route the ring to the owner,
  // flood there.  MUST only when every leg is structurally sound.
  if (!system_.verify_ring()) return {false, "ring_inconsistent"};
  if (!live_member(system_, owner)) return {false, "owner_down"};
  if (holder_within(owner, id, ttl)) return {true, "remote_flood"};
  // Structurally sound route to a live owner whose sweep reaches a replica:
  // the primary MUST be restored by quiescence (flood depth 0 at the owner).
  if (repair_active() && replica_restorable(id, owner)) {
    return {true, "replica_remote"};
  }
  return {false, "holder_beyond_ttl"};
}

}  // namespace hp2p::chaos
