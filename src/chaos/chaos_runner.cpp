#include "chaos/chaos_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "audit/overlay_auditor.hpp"
#include "chaos/fault_engine.hpp"
#include "chaos/reference_model.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "sim/tie_break.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace hp2p::chaos {

hybrid::HybridParams chaos_default_params() {
  hybrid::HybridParams p;
  p.style = hybrid::SNetworkStyle::kTree;
  p.t_routing = hybrid::TRouting::kRing;
  p.placement = hybrid::PlacementScheme::kRandomSpread;
  p.ttl = 10;
  p.delta = 3;
  p.hello_interval = sim::SimTime::millis(500);
  p.hello_timeout = sim::SimTime::millis(1500);
  p.lookup_timeout = sim::SimTime::seconds(10);
  p.reflood_on_timeout = true;
  // A crashed hop needs detection (~hello_timeout) plus the server
  // round-trip before pointers repair, so give retries room to straddle it.
  p.ring_retry_limit = 3;
  p.ring_retry_base = sim::SimTime::seconds(1);
  p.enable_caching = false;
  p.bypass_links = false;
  return p;
}

stats::JsonValue ChaosViolation::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("kind", kind);
  v.set("detail", detail);
  v.set("a", static_cast<std::int64_t>(a));
  v.set("b", static_cast<std::int64_t>(b));
  return v;
}

stats::JsonValue ChaosReport::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("seed", static_cast<std::int64_t>(seed));
  v.set("crashes", static_cast<std::int64_t>(crashes));
  v.set("joins", static_cast<std::int64_t>(joins));
  v.set("items_stored", static_cast<std::int64_t>(items_stored));
  v.set("items_live", static_cast<std::int64_t>(items_live));
  v.set("must_issued", static_cast<std::int64_t>(must_issued));
  v.set("may_issued", static_cast<std::int64_t>(may_issued));
  v.set("must_failed", static_cast<std::int64_t>(must_failed));
  v.set("may_failed", static_cast<std::int64_t>(may_failed));
  v.set("storm_issued", static_cast<std::int64_t>(storm_issued));
  v.set("storm_failed", static_cast<std::int64_t>(storm_failed));
  v.set("audit_violations", static_cast<std::int64_t>(audit_violations));
  v.set("ring_ok", ring_ok);
  v.set("trees_ok", trees_ok);
  auto arr = stats::JsonValue::array();
  for (const ChaosViolation& viol : violations) arr.push_back(viol.to_json());
  v.set("violations", std::move(arr));
  return v;
}

namespace {

struct StormLookup {
  DataId id{};
  PeerIndex origin = kNoPeer;
  bool must_at_issue = false;
  bool done = false;
  bool success = false;
};

void add_violation(ChaosReport& report, const ChaosConfig& cfg,
                   sim::SimTime at, const char* kind, std::string detail,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
  if (cfg.flight != nullptr) {
    cfg.flight->record(at, "chaos_violation", a, b,
                       report.violations.size());
  }
  report.violations.push_back(ChaosViolation{kind, std::move(detail), a, b});
}

std::vector<PeerIndex> live_nonserver_peers(
    const hybrid::HybridSystem& system) {
  std::vector<PeerIndex> out;
  for (std::size_t i = 0; i < system.num_peers(); ++i) {
    const PeerIndex p{static_cast<std::uint32_t>(i)};
    if (system.is_server_peer(p) || !system.is_alive(p) ||
        !system.is_joined(p)) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace

ChaosReport run_chaos(const ChaosConfig& cfg) {
  ChaosReport report;
  report.seed = cfg.seed;

  Rng rng(cfg.seed);
  sim::Simulator sim;

  // Optional randomized tie-break (`shuffle:<seed>`, from the config or the
  // HP2P_TIEBREAK environment variable): equal-timestamp events fire in a
  // seeded random order instead of schedule order, so a soak exercises tie
  // interleavings the FIFO kernel never shows.  The oracle's verdicts are
  // order-independent, so any new failure is a real protocol bug.
  std::unique_ptr<sim::ShuffleTieBreak> shuffler;
  {
    const std::string spec = cfg.tie_break.empty()
                                 ? env_or("HP2P_TIEBREAK", "")
                                 : cfg.tie_break;
    constexpr const char* kPrefix = "shuffle:";
    if (spec.rfind(kPrefix, 0) == 0) {
      const std::uint64_t tb_seed =
          std::strtoull(spec.c_str() + std::string(kPrefix).size(), nullptr,
                        10);
      shuffler = std::make_unique<sim::ShuffleTieBreak>(tb_seed);
      sim.set_tie_break_policy(shuffler.get());
    }
  }

  net::Underlay underlay(
      net::generate_transit_stub(
          net::TransitStubParams::for_total_nodes(cfg.hosts), rng),
      rng);
  proto::OverlayNetwork network(sim, underlay, {});
  hybrid::HybridSystem system(network, cfg.params, HostIndex{0}, rng);

  // --- Population: forced roles, staged joins so triangles settle. --------
  std::uint32_t host_cursor = 0;
  const auto next_host = [&] {
    const HostIndex h{1 + host_cursor % (underlay.num_hosts() - 1)};
    ++host_cursor;
    return h;
  };
  const auto num_t = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround((1.0 - cfg.ps) * cfg.num_peers)));
  for (std::uint32_t i = 0; i < cfg.num_peers; ++i) {
    const auto role =
        i < num_t ? hybrid::Role::kTPeer : hybrid::Role::kSPeer;
    const HostIndex host = next_host();
    sim.schedule_at(sim::SimTime::millis(40 * (i + 1)),
                    [&system, host, role] {
                      system.add_peer_with_role(host, role);
                    });
  }
  sim.run();

  // --- Corpus: stores from random live peers, mirrored into the model. ----
  ReferenceModel model(system);
  const auto corpus = workload::uniform_corpus(cfg.num_items, cfg.seed);
  {
    const auto origins = live_nonserver_peers(system);
    for (const auto& item : corpus) {
      const PeerIndex origin = origins[rng.index(origins.size())];
      system.store_id(origin, item.id, item.key, item.value);
      model.record_store(item.id, origin);
    }
  }
  sim.run();

  // The auditor's ctor takes the system's single flood-observer slot.
  audit::AuditOptions audit_opts;
  audit_opts.strict = cfg.strict_audit;
  audit::OverlayAuditor auditor(system, network, sim, audit_opts);
  {
    const auto pre = auditor.run();
    for (const auto& v : pre.violations) {
      add_violation(report, cfg, sim.now(), "audit_pre",
                    std::string(v.invariant) + ": " + v.detail,
                    v.peer.value());
    }
  }

  // --- Chaos window. ------------------------------------------------------
  system.start_failure_detection();
  FaultScheduleEngine engine(sim, network, system, cfg.schedule, cfg.flight);
  engine.arm(next_host);

  std::vector<StormLookup> storms(cfg.storm_lookups);
  if (cfg.storm_lookups > 0 && !cfg.schedule.phases.empty()) {
    const sim::SimTime window_start = sim.now() + sim::SimTime::seconds(1);
    const auto span = cfg.schedule.end().as_micros() >
                              window_start.as_micros()
                          ? cfg.schedule.end().as_micros() -
                                window_start.as_micros()
                          : std::int64_t{1};
    Rng storm_rng = rng.fork(0x570);
    for (std::uint32_t k = 0; k < cfg.storm_lookups; ++k) {
      const auto at = window_start + sim::SimTime::micros(
                                         span * k / cfg.storm_lookups);
      const DataId id = corpus[k % corpus.size()].id;
      StormLookup* slot = &storms[k];
      sim.schedule_at(at, [&system, &model, &storm_rng, slot, id] {
        std::vector<PeerIndex> tpeers;
        for (const PeerIndex p : live_nonserver_peers(system)) {
          if (system.role_of(p) == hybrid::Role::kTPeer) tpeers.push_back(p);
        }
        if (tpeers.empty()) return;
        slot->origin = tpeers[storm_rng.index(tpeers.size())];
        slot->id = id;
        // At issue time only require the data to be live: a transiently
        // broken ring or severed chain is exactly what the hardening
        // (ring retry, re-flood) must ride out within lookup_timeout.
        // Legitimate permanent losses are filtered by the post-hoc
        // classify() below.
        slot->must_at_issue = !model.live_holders(id).empty();
        system.lookup_id(slot->origin, id, [slot](proto::LookupResult r) {
          slot->done = true;
          slot->success = r.success;
        });
      });
    }
  }

  sim.run_until(cfg.schedule.end() + cfg.settle);
  engine.disarm();
  report.crashes = engine.crashes_applied();
  report.joins = engine.joins_applied();

  // --- Quiescent verdicts. ------------------------------------------------
  report.ring_ok = system.verify_ring();
  report.trees_ok = system.verify_trees();
  if (!report.ring_ok) {
    add_violation(report, cfg, sim.now(), "ring_broken",
                  "verify_ring() failed after settle");
  }
  if (!report.trees_ok) {
    add_violation(report, cfg, sim.now(), "trees_broken",
                  "verify_trees() failed after settle");
  }
  {
    const auto post = auditor.run();
    report.audit_violations =
        static_cast<std::uint32_t>(post.violations.size());
    for (const auto& v : post.violations) {
      add_violation(report, cfg, sim.now(), "audit",
                    std::string(v.invariant) + ": " + v.detail,
                    v.peer.value());
    }
  }

  for (const StormLookup& s : storms) {
    if (s.origin == kNoPeer) continue;  // skipped: no live t-peer at issue
    ++report.storm_issued;
    if (!s.done) {
      add_violation(report, cfg, sim.now(), "lookup_wedged",
                    "storm lookup never completed", s.id.value(),
                    s.origin.value());
      continue;
    }
    if (s.success) continue;
    ++report.storm_failed;
    if (s.must_at_issue && model.classify(s.origin, s.id).must) {
      add_violation(report, cfg, sim.now(), "storm_must_failed",
                    "mid-storm lookup failed; oracle says MUST at issue "
                    "and after recovery",
                    s.id.value(), s.origin.value());
    }
  }

  report.items_stored = static_cast<std::uint32_t>(model.stores().size());
  for (const auto& [id, origin] : model.stores()) {
    if (!model.live_holders(DataId{id}).empty()) ++report.items_live;
  }

  // MUST/MAY wave: classify before issuing (lookups do not mutate
  // membership with caching off, so verdicts stay valid through the wave).
  struct WaveLookup {
    Expectation exp;
    DataId id{};
    PeerIndex origin = kNoPeer;
    bool done = false;
    bool success = false;
  };
  auto wave = std::make_shared<std::vector<WaveLookup>>();
  wave->reserve(cfg.num_lookups);
  const auto issue = [&](PeerIndex origin, DataId id) {
    const std::size_t slot = wave->size();
    wave->push_back(WaveLookup{model.classify(origin, id), id, origin});
    system.lookup_id(origin, id, [wave, slot](proto::LookupResult r) {
      (*wave)[slot].done = true;
      (*wave)[slot].success = r.success;
    });
  };
  for (const auto& [id, origin] : model.stores()) {
    issue(origin, DataId{id});
  }
  {
    const auto origins = live_nonserver_peers(system);
    for (std::uint32_t k = static_cast<std::uint32_t>(wave->size());
         k < cfg.num_lookups && !origins.empty(); ++k) {
      issue(origins[rng.index(origins.size())], corpus[k % corpus.size()].id);
    }
  }
  sim.run_until(sim.now() + cfg.params.lookup_timeout +
                sim::SimTime::seconds(5));

  for (const WaveLookup& w : *wave) {
    if (w.exp.must) {
      ++report.must_issued;
    } else {
      ++report.may_issued;
    }
    if (!w.done) {
      add_violation(report, cfg, sim.now(), "lookup_wedged",
                    "oracle-wave lookup never completed", w.id.value(),
                    w.origin.value());
      continue;
    }
    if (w.success) continue;
    if (w.exp.must) {
      ++report.must_failed;
      add_violation(report, cfg, sim.now(), "must_lookup_failed",
                    std::string("MUST lookup failed (") + w.exp.reason + ")",
                    w.id.value(), w.origin.value());
    } else {
      ++report.may_failed;
    }
  }
  if (system.pending_lookups() != 0) {
    add_violation(report, cfg, sim.now(), "lookup_wedged",
                  "pending_lookups() != 0 after the wave deadline",
                  system.pending_lookups());
  }

  return report;
}

}  // namespace hp2p::chaos
