#include "chaos/fault_schedule.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace hp2p::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLatencyStorm: return "latency_storm";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kTPeerCrashStorm: return "tpeer_crash_storm";
    case FaultKind::kSPeerCrashStorm: return "speer_crash_storm";
    case FaultKind::kJoinFlashCrowd: return "join_flash_crowd";
    case FaultKind::kStaleHello: return "stale_hello";
    case FaultKind::kCount_: break;
  }
  return "unknown";
}

std::optional<FaultKind> fault_kind_from_name(const std::string& name) {
  for (std::uint8_t k = 0; k < static_cast<std::uint8_t>(FaultKind::kCount_);
       ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

stats::JsonValue FaultPhase::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("kind", fault_kind_name(kind));
  v.set("start_us", static_cast<std::int64_t>(start.as_micros()));
  v.set("duration_us", static_cast<std::int64_t>(duration.as_micros()));
  v.set("intensity", intensity);
  v.set("count", static_cast<std::int64_t>(count));
  v.set("param", static_cast<std::int64_t>(param));
  v.set("symmetric", symmetric);
  v.set("affect_control", affect_control);
  return v;
}

std::optional<FaultPhase> FaultPhase::from_json(const stats::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  const auto* kind = v.find("kind");
  if (kind == nullptr || !kind->is_string()) return std::nullopt;
  const auto parsed = fault_kind_from_name(kind->as_string());
  if (!parsed) return std::nullopt;
  FaultPhase p;
  p.kind = *parsed;
  const auto get_int = [&](const char* key, std::int64_t fallback) {
    const auto* f = v.find(key);
    return f != nullptr && f->is_number() ? f->as_int() : fallback;
  };
  p.start = sim::SimTime::micros(get_int("start_us", 0));
  p.duration = sim::SimTime::micros(get_int("duration_us", 0));
  if (const auto* f = v.find("intensity"); f != nullptr && f->is_number()) {
    p.intensity = f->as_double();
  }
  p.count = static_cast<std::uint32_t>(get_int("count", 0));
  p.param = static_cast<std::uint64_t>(get_int("param", 0));
  if (const auto* f = v.find("symmetric"); f != nullptr && f->is_bool()) {
    p.symmetric = f->as_bool();
  }
  if (const auto* f = v.find("affect_control"); f != nullptr && f->is_bool()) {
    p.affect_control = f->as_bool();
  }
  return p;
}

sim::SimTime FaultSchedule::end() const {
  sim::SimTime latest{};
  for (const FaultPhase& p : phases) latest = std::max(latest, p.end());
  return latest;
}

stats::JsonValue FaultSchedule::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("seed", static_cast<std::int64_t>(seed));
  auto arr = stats::JsonValue::array();
  for (const FaultPhase& p : phases) arr.push_back(p.to_json());
  v.set("phases", std::move(arr));
  return v;
}

std::optional<FaultSchedule> FaultSchedule::from_json(
    const stats::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  FaultSchedule s;
  if (const auto* f = v.find("seed"); f != nullptr && f->is_number()) {
    s.seed = static_cast<std::uint64_t>(f->as_int());
  }
  const auto* phases = v.find("phases");
  if (phases == nullptr || !phases->is_array()) return std::nullopt;
  for (const auto& pv : phases->items()) {
    auto p = FaultPhase::from_json(pv);
    if (!p) return std::nullopt;
    s.phases.push_back(*p);
  }
  return s;
}

std::string FaultSchedule::one_line() const {
  return "seed=" + std::to_string(seed) + " schedule=" + to_json().dump(0);
}

FaultSchedule random_schedule(std::uint64_t seed, sim::SimTime start,
                              std::uint32_t num_domains) {
  Rng rng(seed);
  Rng gen = rng.fork(0xc4a05);
  FaultSchedule s;
  s.seed = seed;
  const std::size_t num_phases = 2 + gen.index(3);  // 2..4
  sim::SimTime cursor = start;
  bool partition_used = false;
  for (std::size_t i = 0; i < num_phases; ++i) {
    FaultPhase p;
    // Phases are staggered with gaps so distinct fault families interact
    // through protocol state rather than trivially stacking.
    cursor += sim::SimTime::seconds(1 + 2 * gen.uniform01());
    p.start = cursor;
    p.duration = sim::SimTime::seconds(3 + 5 * gen.uniform01());
    cursor += p.duration;
    switch (gen.index(7)) {
      case 0:
        p.kind = FaultKind::kLossBurst;
        p.intensity = 0.1 + 0.4 * gen.uniform01();
        break;
      case 1:
        p.kind = FaultKind::kLatencyStorm;
        p.intensity = 1.0 + 4.0 * gen.uniform01();
        break;
      case 2:
        if (partition_used || num_domains < 2) {
          p.kind = FaultKind::kLossBurst;
          p.intensity = 0.1 + 0.4 * gen.uniform01();
          break;
        }
        partition_used = true;
        p.kind = FaultKind::kPartition;
        p.param = 1 + gen.index(num_domains - 1);  // pivot in [1, domains)
        p.symmetric = gen.chance(0.5);
        break;
      case 3:
        p.kind = FaultKind::kTPeerCrashStorm;
        p.count = 1 + static_cast<std::uint32_t>(gen.index(3));
        break;
      case 4:
        p.kind = FaultKind::kSPeerCrashStorm;
        p.count = 2 + static_cast<std::uint32_t>(gen.index(4));
        break;
      case 5:
        p.kind = FaultKind::kJoinFlashCrowd;
        p.count = 3 + static_cast<std::uint32_t>(gen.index(6));
        break;
      default:
        p.kind = FaultKind::kStaleHello;
        p.param = 1000 + gen.uniform(0, 2000);  // extra heartbeat delay, ms
        break;
    }
    s.phases.push_back(p);
  }
  return s;
}

}  // namespace hp2p::chaos
