// Fixed-width-bin histogram and empirical pdf, used to regenerate Fig. 4
// (probability density of data items per peer).
#pragma once

#include <cstdint>
#include <vector>

namespace hp2p::stats {

/// One bin of an empirical pdf: [lo, hi) with its probability mass.
struct PdfBin {
  double lo = 0;
  double hi = 0;
  double mass = 0;  // fraction of samples in the bin
  std::uint64_t count = 0;
};

/// Histogram over [min, max) with `bins` equal-width bins.  Out-of-range
/// samples clamp into the edge bins so no mass is silently lost.
class Histogram {
 public:
  Histogram(double min, double max, std::size_t bins);

  void add(double sample);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }

  /// Empirical pdf: per-bin probability mass.  Empty when no samples.
  [[nodiscard]] std::vector<PdfBin> pdf() const;

  /// Fraction of samples with value <= x (empirical CDF at a point).
  [[nodiscard]] double cdf_at(double x) const;

  /// Interpolated percentile (p in [0, 100], clamped).  Empty bins carry no
  /// mass: the rank p/100 * total() is located among the occupied bins and
  /// interpolated linearly within its bin, so p0 is the lower edge of the
  /// first occupied bin and p100 the upper edge of the last.  0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

 private:
  [[nodiscard]] std::size_t bin_for(double sample) const;

  double min_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact integer-valued distribution (value -> count); Fig. 4 is naturally
/// integer "data items per peer", so the benches use this and only bin for
/// display.
class CountDistribution {
 public:
  void add(std::uint64_t value);

  [[nodiscard]] std::uint64_t total_samples() const { return total_; }
  /// Fraction of samples equal to zero ("peers without any data item").
  [[nodiscard]] double fraction_zero() const;
  /// Fraction of samples strictly below `x`.
  [[nodiscard]] double fraction_below(std::uint64_t x) const;
  /// Largest observed value.
  [[nodiscard]] std::uint64_t max_value() const;
  /// Collapses to an equal-width-bin pdf with `bins` bins over [0, max].
  [[nodiscard]] std::vector<PdfBin> to_pdf(std::size_t bins) const;

 private:
  std::vector<std::uint64_t> counts_;  // counts_[v] = #samples with value v
  std::uint64_t total_ = 0;
};

}  // namespace hp2p::stats
