#include "stats/timeseries.hpp"

#include <utility>

// gcc 12 (-O2) misfires -Wmaybe-uninitialized inside std::variant's move
// visitor when JsonValue vectors reallocate (GCC bug 101831 family); the
// values are always constructed before the flagged reads.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hp2p::stats {

JsonValue TimeSeries::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("name", JsonValue{name});
  out.set("period_ms", JsonValue{period_ms});
  JsonValue times = JsonValue::array();
  for (double t : t_ms) times.push_back(JsonValue{t});
  out.set("t_ms", std::move(times));
  JsonValue series = JsonValue::object();
  for (const TimeSeriesColumn& col : columns) {
    JsonValue values = JsonValue::array();
    for (double v : col.values) values.push_back(JsonValue{v});
    series.set(col.name, std::move(values));
  }
  out.set("series", std::move(series));
  return out;
}

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator& sim, sim::Duration period,
                                     std::string name)
    : sim_(sim), period_(period) {
  series_.name = std::move(name);
  series_.period_ms = period.as_millis();
}

void TimeSeriesSampler::add_gauge(std::string name,
                                  std::function<double()> fn) {
  series_.columns.push_back(TimeSeriesColumn{std::move(name), {}});
  gauges_.push_back(std::move(fn));
}

void TimeSeriesSampler::sample_now() {
  series_.t_ms.push_back(sim_.now().as_millis());
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    series_.columns[i].values.push_back(gauges_[i]());
  }
}

TimeSeriesSampler::~TimeSeriesSampler() {
  if (!armed_) return;
  sim_.cancel(tick_id_);
  sim_.note_daemon_disarmed();
}

void TimeSeriesSampler::ensure_running() {
  if (armed_) return;
  armed_ = true;
  sim_.note_daemon_armed();
  // The tick carries its own component tag: gauge sampling (RSS reads in
  // particular) has real cost, and the profiler should show it by name
  // instead of folding it into the kernel bucket.
  sim::ComponentScope scope{sim_, sim::Component::kSampler};
  tick_id_ = sim_.schedule_after(period_, [this] { tick(); });
}

void TimeSeriesSampler::tick() {
  armed_ = false;
  sim_.note_daemon_disarmed();
  sample_now();
  // Re-arm only while real (non-daemon) work remains: self-rescheduling
  // ticks would otherwise keep sim.run() from ever draining -- including by
  // keeping *each other* alive when several periodic devices are installed.
  if (sim_.pending_work() > 0) ensure_running();
}

TimeSeries TimeSeriesSampler::take() {
  TimeSeries out = std::move(series_);
  series_ = TimeSeries{};
  series_.name = out.name;
  series_.period_ms = out.period_ms;
  for (const TimeSeriesColumn& col : out.columns) {
    series_.columns.push_back(TimeSeriesColumn{col.name, {}});
  }
  return out;
}

}  // namespace hp2p::stats
