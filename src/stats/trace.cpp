#include "stats/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "stats/histogram.hpp"
#include "stats/metrics.hpp"

namespace hp2p::stats {

SpanRecorder::SpanRecorder(std::size_t max_spans) : max_spans_(max_spans) {}

bool SpanRecorder::full() {
  if (spans_.size() < max_spans_) return false;
  ++dropped_;
  return true;
}

TraceContext SpanRecorder::start_trace(const char* name, const char* category,
                                       std::uint32_t peer, sim::SimTime now) {
  if (full()) return {};
  const std::uint64_t trace_id = next_trace_id_++;
  const std::uint64_t id = next_span_id_++;
  ++num_traces_;
  index_[id] = spans_.size();
  spans_.push_back(Span{trace_id, id, 0, name, category, peer, now, now,
                        /*open=*/true, /*instant=*/false, {}});
  return TraceContext{trace_id, id};
}

TraceContext SpanRecorder::begin_span(TraceContext parent, const char* name,
                                      const char* category, std::uint32_t peer,
                                      sim::SimTime now) {
  if (!parent.valid() || full()) return {};
  const std::uint64_t id = next_span_id_++;
  index_[id] = spans_.size();
  spans_.push_back(Span{parent.trace_id, id, parent.span_id, name, category,
                        peer, now, now, /*open=*/true, /*instant=*/false, {}});
  return TraceContext{parent.trace_id, id};
}

Span* SpanRecorder::slot(TraceContext ctx) {
  if (ctx.span_id == 0) return nullptr;
  const auto it = index_.find(ctx.span_id);
  if (it == index_.end()) return nullptr;
  return &spans_[it->second];
}

void SpanRecorder::end_span(TraceContext span, sim::SimTime now) {
  Span* s = slot(span);
  if (s == nullptr || !s->open) return;
  s->open = false;
  s->end = std::max(s->start, now);
}

void SpanRecorder::instant(TraceContext parent, const char* name,
                           std::uint32_t peer, sim::SimTime now) {
  if (!parent.valid() || full()) return;
  const std::uint64_t id = next_span_id_++;
  index_[id] = spans_.size();
  spans_.push_back(Span{parent.trace_id, id, parent.span_id, name, "", peer,
                        now, now, /*open=*/false, /*instant=*/true, {}});
}

void SpanRecorder::instant(TraceContext parent, const char* name,
                           std::uint32_t peer, sim::SimTime now,
                           const char* key, std::int64_t value) {
  if (!parent.valid() || full()) return;
  instant(parent, name, peer, now);
  spans_.back().args.emplace_back(key, value);
}

void SpanRecorder::add_arg(TraceContext span, const char* key,
                           std::int64_t value) {
  Span* s = slot(span);
  if (s == nullptr) return;
  s->args.emplace_back(key, value);
}

const Span* SpanRecorder::find(std::uint64_t span_id) const {
  const auto it = index_.find(span_id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<const Span*> SpanRecorder::trace(std::uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.trace_id == trace_id) out.push_back(&s);
  }
  return out;
}

std::vector<LookupBreakdown> SpanRecorder::lookup_breakdowns() const {
  // One pass: breakdowns keyed by trace id, created at the lookup root.
  // Ordered map: iteration below feeds the exported vector directly.
  std::map<std::uint64_t, LookupBreakdown> by_trace;
  for (const Span& s : spans_) {
    if (s.parent == 0 && std::string_view{s.category} == "lookup") {
      LookupBreakdown b;
      b.trace_id = s.trace_id;
      b.total_ms = s.duration_ms();
      for (const auto& [key, value] : s.args) {
        if (std::string_view{key} == "success") b.success = value != 0;
      }
      by_trace.emplace(s.trace_id, b);
    }
  }
  for (const Span& s : spans_) {
    const auto it = by_trace.find(s.trace_id);
    if (it == by_trace.end()) continue;
    LookupBreakdown& b = it->second;
    const std::string_view cat{s.category};
    if (s.instant) {
      const std::string_view name{s.name};
      if (name == "ring_hop") ++b.ring_hops;
      if (name == "flood_hop" || name == "walk_hop") {
        for (const auto& [key, value] : s.args) {
          if (std::string_view{key} == "depth") {
            b.flood_depth = std::max(b.flood_depth,
                                     static_cast<std::uint32_t>(value));
          }
        }
      }
      continue;
    }
    if (cat == "climb") b.climb_ms += s.duration_ms();
    else if (cat == "ring") b.ring_ms += s.duration_ms();
    else if (cat == "flood") b.flood_ms += s.duration_ms();
    else if (cat == "reply") b.reply_ms += s.duration_ms();
  }
  std::vector<LookupBreakdown> out;
  out.reserve(by_trace.size());
  for (auto& [id, b] : by_trace) out.push_back(b);
  std::sort(out.begin(), out.end(),
            [](const LookupBreakdown& a, const LookupBreakdown& b) {
              return a.trace_id < b.trace_id;
            });
  return out;
}

namespace {

/// Exports mean + interpolated percentiles of `values` under <base>.
void export_quantiles(MetricsRegistry& reg, const std::string& base,
                      const std::vector<double>& values) {
  if (values.empty()) return;
  const double max = *std::max_element(values.begin(), values.end());
  // A degenerate all-zero distribution still needs a nonzero bin width.
  Histogram hist{0.0, max > 0 ? max * (1.0 + 1e-9) : 1.0, 128};
  double total = 0;
  for (double v : values) {
    hist.add(v);
    total += v;
  }
  reg.set(base + ".mean", total / static_cast<double>(values.size()));
  reg.set(base + ".p50", hist.p50());
  reg.set(base + ".p95", hist.p95());
  reg.set(base + ".p99", hist.p99());
}

}  // namespace

void SpanRecorder::collect_critical_path(MetricsRegistry& reg,
                                         const std::string& prefix) const {
  const auto breakdowns = lookup_breakdowns();
  reg.set(prefix + ".lookups",
          static_cast<std::uint64_t>(breakdowns.size()));
  reg.set(prefix + ".traces", static_cast<std::uint64_t>(num_traces_));
  reg.set(prefix + ".spans", static_cast<std::uint64_t>(spans_.size()));
  reg.set(prefix + ".dropped_spans", static_cast<std::uint64_t>(dropped_));
  if (breakdowns.empty()) return;
  std::vector<double> total, climb, ring, flood, reply, hops, depth;
  std::uint64_t succeeded = 0;
  for (const LookupBreakdown& b : breakdowns) {
    total.push_back(b.total_ms);
    climb.push_back(b.climb_ms);
    ring.push_back(b.ring_ms);
    flood.push_back(b.flood_ms);
    reply.push_back(b.reply_ms);
    hops.push_back(static_cast<double>(b.ring_hops));
    depth.push_back(static_cast<double>(b.flood_depth));
    if (b.success) ++succeeded;
  }
  reg.set(prefix + ".succeeded", succeeded);
  export_quantiles(reg, prefix + ".total_ms", total);
  export_quantiles(reg, prefix + ".climb_ms", climb);
  export_quantiles(reg, prefix + ".ring_ms", ring);
  export_quantiles(reg, prefix + ".flood_ms", flood);
  export_quantiles(reg, prefix + ".reply_ms", reply);
  export_quantiles(reg, prefix + ".ring_hops", hops);
  export_quantiles(reg, prefix + ".flood_depth", depth);
}

JsonValue SpanRecorder::to_catapult() const {
  JsonValue events = JsonValue::array();
  {
    // Process metadata so Perfetto labels the single pid lane.
    JsonValue meta = JsonValue::object();
    meta.set("name", JsonValue{"process_name"});
    meta.set("ph", JsonValue{"M"});
    meta.set("pid", JsonValue{std::int64_t{1}});
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue{"hp2p-sim"});
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  const auto common = [](const Span& s, const char* ph) {
    JsonValue ev = JsonValue::object();
    ev.set("name", JsonValue{s.name});
    ev.set("cat", JsonValue{*s.category == '\0' ? "event" : s.category});
    ev.set("ph", JsonValue{ph});
    // Async events grouped by (cat, id): keying on the trace id gives every
    // traced operation its own track.
    ev.set("id", JsonValue{static_cast<std::int64_t>(s.trace_id)});
    ev.set("pid", JsonValue{std::int64_t{1}});
    ev.set("tid", JsonValue{static_cast<std::int64_t>(s.peer)});
    return ev;
  };
  const auto args_of = [](const Span& s) {
    JsonValue args = JsonValue::object();
    args.set("trace", JsonValue{static_cast<std::int64_t>(s.trace_id)});
    args.set("peer", JsonValue{static_cast<std::int64_t>(s.peer)});
    for (const auto& [key, value] : s.args) {
      args.set(key, JsonValue{value});
    }
    return args;
  };
  for (const Span& s : spans_) {
    if (s.instant) {
      JsonValue ev = common(s, "n");
      ev.set("ts", JsonValue{s.start.as_micros()});
      ev.set("args", args_of(s));
      events.push_back(std::move(ev));
      continue;
    }
    JsonValue begin = common(s, "b");
    begin.set("ts", JsonValue{s.start.as_micros()});
    begin.set("args", args_of(s));
    events.push_back(std::move(begin));
    JsonValue end = common(s, "e");
    end.set("ts", JsonValue{(s.open ? s.start : s.end).as_micros()});
    if (s.open) {
      JsonValue args = JsonValue::object();
      args.set("open", JsonValue{true});
      end.set("args", std::move(args));
    }
    events.push_back(std::move(end));
  }
  JsonValue root = JsonValue::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", JsonValue{"ms"});
  return root;
}

bool SpanRecorder::write_catapult(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp};
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", tmp.c_str());
      return false;
    }
    out << to_catapult().dump(1) << '\n';
    out.close();
    if (!out) {
      std::fprintf(stderr, "warning: short write to %s\n", tmp.c_str());
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "warning: cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hp2p::stats
