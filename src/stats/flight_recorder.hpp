// Bounded flight recorder: a fixed-capacity ring buffer over the cheap
// sim/net trace hooks.  Always-on recording is O(1) per event and holds the
// last N events only; on a lookup failure, audit violation, or assertion
// the harness dumps the tail so the run's final moments are inspectable
// without full tracing.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/time.hpp"
#include "stats/json.hpp"

namespace hp2p::stats {

/// One recorded event.  `kind` must be a string literal (stored unowned);
/// a/b/c are kind-specific payloads (peer ids, seq numbers, byte counts).
struct FlightEvent {
  sim::SimTime at{};
  const char* kind = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Fixed-capacity ring of FlightEvents; overwrites the oldest when full.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(sim::SimTime at, const char* kind, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Number of events currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;
  /// {"capacity":N, "total_recorded":M, "events":[{t_ms,kind,a,b,c}...]}
  [[nodiscard]] JsonValue to_json() const;
  /// Human-readable tail dump with a reason banner, for stderr on failure.
  void dump(std::ostream& out, const char* why) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::uint64_t total_ = 0;
};

}  // namespace hp2p::stats
