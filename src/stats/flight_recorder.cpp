#include "stats/flight_recorder.hpp"

#include <algorithm>

namespace hp2p::stats {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(sim::SimTime at, const char* kind, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(FlightEvent{at, kind, a, b, c});
    return;
  }
  ring_[head_] = FlightEvent{at, kind, a, b, c};
  head_ = (head_ + 1) % capacity_;
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

JsonValue FlightRecorder::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("capacity", JsonValue{static_cast<std::uint64_t>(capacity_)});
  out.set("total_recorded", JsonValue{total_});
  JsonValue events = JsonValue::array();
  for (const FlightEvent& ev : snapshot()) {
    JsonValue e = JsonValue::object();
    e.set("t_ms", JsonValue{ev.at.as_millis()});
    e.set("kind", JsonValue{ev.kind});
    e.set("a", JsonValue{ev.a});
    e.set("b", JsonValue{ev.b});
    e.set("c", JsonValue{ev.c});
    events.push_back(std::move(e));
  }
  out.set("events", std::move(events));
  return out;
}

void FlightRecorder::dump(std::ostream& out, const char* why) const {
  const auto events = snapshot();
  out << "--- flight recorder: " << why << " (last " << events.size() << " of "
      << total_ << " events) ---\n";
  for (const FlightEvent& ev : events) {
    out << "  " << ev.at << ' ' << ev.kind << ' ' << ev.a << ' ' << ev.b << ' '
        << ev.c << '\n';
  }
  out << "--- end flight recorder ---\n";
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace hp2p::stats
