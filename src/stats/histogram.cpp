#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>

namespace hp2p::stats {

Histogram::Histogram(double min, double max, std::size_t bins)
    : min_(min), width_((max - min) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(max > min && bins > 0);
}

std::size_t Histogram::bin_for(double sample) const {
  if (sample < min_) return 0;
  const auto raw = static_cast<std::size_t>((sample - min_) / width_);
  return std::min(raw, counts_.size() - 1);
}

void Histogram::add(double sample) {
  ++counts_[bin_for(sample)];
  ++total_;
}

std::vector<PdfBin> Histogram::pdf() const {
  std::vector<PdfBin> out;
  if (total_ == 0) return out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    PdfBin bin;
    bin.lo = min_ + static_cast<double>(i) * width_;
    bin.hi = bin.lo + width_;
    bin.count = counts_[i];
    bin.mass = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    out.push_back(bin);
  }
  return out;
}

double Histogram::cdf_at(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double hi = min_ + static_cast<double>(i + 1) * width_;
    if (hi <= x) {
      below += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  std::size_t last_occupied = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    last_occupied = i;
    const auto next = cum + counts_[i];
    if (rank <= static_cast<double>(next)) {
      const double lo = min_ + static_cast<double>(i) * width_;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts_[i]);
      return lo + width_ * std::max(frac, 0.0);
    }
    cum = next;
  }
  // Floating-point slack can push rank past total(): upper edge of the last
  // occupied bin.
  return min_ + static_cast<double>(last_occupied + 1) * width_;
}

void CountDistribution::add(std::uint64_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++total_;
}

double CountDistribution::fraction_zero() const {
  if (total_ == 0) return 0.0;
  const std::uint64_t zeros = counts_.empty() ? 0 : counts_[0];
  return static_cast<double>(zeros) / static_cast<double>(total_);
}

double CountDistribution::fraction_below(std::uint64_t x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::uint64_t v = 0; v < x && v < counts_.size(); ++v) {
    below += counts_[v];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::uint64_t CountDistribution::max_value() const {
  for (std::size_t v = counts_.size(); v > 0; --v) {
    if (counts_[v - 1] != 0) return v - 1;
  }
  return 0;
}

std::vector<PdfBin> CountDistribution::to_pdf(std::size_t bins) const {
  std::vector<PdfBin> out;
  if (total_ == 0 || bins == 0) return out;
  const double max = static_cast<double>(max_value()) + 1.0;
  const double width = max / static_cast<double>(bins);
  out.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i].lo = static_cast<double>(i) * width;
    out[i].hi = out[i].lo + width;
  }
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    if (counts_[v] == 0) continue;
    auto bin = static_cast<std::size_t>(static_cast<double>(v) / width);
    bin = std::min(bin, bins - 1);
    out[bin].count += counts_[v];
  }
  for (auto& bin : out) {
    bin.mass = static_cast<double>(bin.count) / static_cast<double>(total_);
  }
  return out;
}

}  // namespace hp2p::stats
