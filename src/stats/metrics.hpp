// MetricsRegistry: a single named-metric tree for everything a run
// measures.  Producers register values under dotted paths
// ("net.query.messages", "phase.lookup.wall_ms"); consumers serialize the
// whole registry as one nested JSON object or read individual entries back.
//
// The registry is the glue between the counter structs scattered through
// the codebase (SimulatorStats, NetworkStats, LookupStats, RunResult) and
// the machine-readable BENCH_*.json reports -- see exp/metrics_collect.hpp
// for the collectors that flatten those structs into a registry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "stats/json.hpp"

namespace hp2p::stats {

class Summary;

/// Flat (sorted) name -> value map with dotted-path nesting on export.
class MetricsRegistry {
 public:
  /// Sets (or overwrites) one metric.  Accepts anything JsonValue does:
  /// numbers, bools, strings, even arrays for per-bucket data.
  void set(std::string name, JsonValue value) {
    entries_[std::move(name)] = std::move(value);
  }

  /// Accumulates into a numeric metric (creates it at 0).
  void add(const std::string& name, double delta);
  void add(const std::string& name, std::uint64_t delta);

  /// Ingests a Summary as <prefix>.count/mean/stddev/min/max.
  void collect_summary(const std::string& prefix, const Summary& s);

  [[nodiscard]] const JsonValue* find(std::string_view name) const;
  /// Numeric metric or `fallback` when absent / non-numeric.
  [[nodiscard]] double number_or(std::string_view name, double fallback) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::map<std::string, JsonValue, std::less<>>& entries()
      const {
    return entries_;
  }

  friend bool operator==(const MetricsRegistry&, const MetricsRegistry&) =
      default;

  /// Nested-object export: "a.b.c" -> {"a": {"b": {"c": ...}}}.  When a name
  /// is both a leaf and a prefix ("a" and "a.b"), the leaf value appears
  /// under the empty key inside the object, which from_json() maps back.
  [[nodiscard]] JsonValue to_json() const;

  /// Inverse of to_json(): flattens a nested object back into dotted names.
  [[nodiscard]] static MetricsRegistry from_json(const JsonValue& tree);

 private:
  std::map<std::string, JsonValue, std::less<>> entries_;
};

}  // namespace hp2p::stats
