// Continuous dispatch profiler.
//
// Implements sim::DispatchProbe: the kernel reports "a frame tagged with
// component C began / the innermost frame ended" around every event dispatch
// and every nested ComponentScope, and the profiler turns those transitions
// into a call-stack-shaped attribution of real CPU time, event counts, heap
// allocations, and allocated bytes per component path -- plus per-message-
// class time and bytes when the transport reports deliveries.
//
// Cost model: event counts, allocation counts, and message bytes are EXACT
// (allocation-counter snapshots are inline relaxed loads, taken at every
// nested transition and every frame close).  CPU time is measured exactly
// for the first kExactTransitions probe transitions -- which covers unit
// tests and warm-up outright -- and stride-sampled after that: a cheap
// deterministic LCG picks every ~12th charge point to read the cycle
// counter (rdtsc / cntvct_el0), and the whole span since the previous read
// is charged to the frame on top at the sample.  Spans therefore smear
// across a few frames, but every sampled nanosecond lands on some frame,
// so dispatch_ns_total stays complete and the attributed fraction stays
// unbiased, while the per-event steady-state cost drops to a handful of
// loads and stores -- that is what keeps the enabled path within the <= 5%
// events/sec budget the scale-labeled test asserts.  The pseudo-random
// stride breaks phase-locking with regular event patterns; being seeded
// with a constant, the sample points are identical across runs.  The
// depth-1 enter() fast path (every event dispatch) does no reads at all:
// it resolves the accum from a precomputed per-component table and pushes.
// Ticks convert to nanoseconds only at export, against a steady_clock
// anchor pair.  The resync() hook re-marks the baselines when the kernel
// re-enters a dispatch run, so host work between runs is never charged.  All wall-clock reads live in this file pair;
// the determinism lint allowlist is audited to exactly these files, and
// nothing the profiler measures ever feeds back into simulation behavior.
//
// Steady state is allocation-free: the frame stack and the open-addressed
// accumulator table are preallocated at construction (asserted by
// micro_kernel's BM_EventQueueProfiledSteadyStateZeroAlloc).  Not
// thread-safe: one Profiler per Simulator, like the kernel itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "stats/json.hpp"

namespace hp2p::stats {

class Profiler final : public sim::DispatchProbe {
 public:
  /// Frames deeper than this fold into their ancestor (counted in
  /// truncated_frames()).  4 bits of path per level -> 16 levels in the
  /// 64-bit packed path.
  static constexpr std::size_t kMaxDepth = 16;
  /// Distinct component paths tracked before folding into the overflow
  /// bucket.  Real runs produce a few dozen paths.
  static constexpr std::size_t kMaxPaths = 1024;
  /// Message classes tracked (proto has 4; leave headroom).
  static constexpr std::size_t kMaxMessageClasses = 8;
  /// Probe transitions timed exactly before stride sampling kicks in.
  static constexpr std::uint64_t kExactTransitions = 4096;

  Profiler();

  // -- DispatchProbe ---------------------------------------------------------
  void enter(sim::Component c) override;
  void leave() override;
  void resync() override;

  /// Transport callback: one message of class `cls` (stable `name`) with
  /// `bytes` on the wire is being delivered inside the current frame.
  /// Counts and bytes are exact; the class's cpu_ns is the sampled self
  /// time observed while a frame that delivered it is on top.
  void message_delivered(std::size_t cls, const char* name,
                         std::uint64_t bytes);

  // -- Aggregated results ----------------------------------------------------
  /// Per-component rollup (summed over every path whose innermost frame is
  /// that component).
  struct ComponentTotal {
    std::uint64_t enters = 0;      // frame activations (events + scopes)
    std::uint64_t cpu_ns = 0;      // self time
    std::uint64_t allocs = 0;      // operator-new calls in self scope
    std::uint64_t alloc_bytes = 0; // requested bytes in self scope
  };

  /// Total inclusive time of top-level frames (event dispatches and
  /// top-level scopes): the denominator of the attribution ratio.
  [[nodiscard]] std::uint64_t dispatch_ns_total() const;
  /// Self time attributed to real components (everything except kKernel and
  /// kOther): the numerator of the attribution ratio.
  [[nodiscard]] std::uint64_t attributed_ns() const;
  [[nodiscard]] ComponentTotal component_total(sim::Component c) const;
  /// Frame enters dropped past kMaxDepth plus accumulator-table overflows.
  [[nodiscard]] std::uint64_t truncated_frames() const {
    return truncated_frames_;
  }

  /// The BENCH JSON schema-v4 "profile" section.
  [[nodiscard]] JsonValue to_json() const;

  /// Writes the collapsed-stack file flamegraph.pl / speedscope consume:
  /// one "comp;comp;comp <self_ns>" line per component path.  Returns false
  /// on I/O failure.
  [[nodiscard]] bool write_collapsed(const std::string& path) const;

 private:
  struct Frame {
    std::uint64_t path;   // packed component nibbles, root-first
    std::uint32_t accum;  // index into accums_
    sim::Component comp;
  };
  struct Accum {
    std::uint64_t path = 0;
    std::uint64_t self_ticks = 0;
    std::uint64_t enters = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
    sim::Component comp = sim::Component::kKernel;
    std::uint8_t depth = 0;
  };
  struct ClassStat {
    const char* name = nullptr;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t cpu_ticks = 0;
  };

  [[nodiscard]] static std::uint64_t now_ticks();
  [[nodiscard]] static std::uint64_t steady_ns();
  /// Tick -> nanosecond scale from the (anchor, now) steady_clock pair.
  [[nodiscard]] double ns_per_tick() const;
  [[nodiscard]] std::uint64_t ticks_to_ns(std::uint64_t ticks) const;

  /// Charges allocation deltas since the last mark to the current top
  /// frame, then re-marks.  Top-of-stack == root charges nothing: host
  /// allocations between dispatch runs belong to the host program.
  void charge_allocs();
  /// Charges the tick span since the last read to the current top frame
  /// (and to dispatch_ns_total / the pending message class), then re-marks.
  void charge_ticks(std::uint64_t now);
  /// Reads the clock and calls charge_ticks -- at every charge point while
  /// in the exact phase, at LCG-strided points afterwards.
  void maybe_charge_ticks();
  [[nodiscard]] std::uint32_t find_or_insert(std::uint64_t path,
                                             sim::Component comp,
                                             std::uint8_t depth);

  std::vector<Frame> stack_;          // [0] is the permanent root
  std::vector<Accum> accums_;
  std::vector<std::uint32_t> index_;  // open addressing: accum index + 1
  /// Depth-1 accum per component, prefilled at construction: the enter()
  /// fast path for top-level frames skips the hash lookup entirely.
  std::uint32_t depth1_accum_[sim::kNumComponents] = {};
  ClassStat classes_[kMaxMessageClasses];
  std::uint64_t dispatch_ticks_total_ = 0;
  std::uint64_t truncated_frames_ = 0;
  std::uint64_t depth_overflow_ = 0;  // enters past kMaxDepth awaiting leave
  std::uint64_t last_ticks_ = 0;      // last clock-read timestamp
  std::uint64_t last_allocs_ = 0;
  std::uint64_t last_alloc_bytes_ = 0;
  std::uint64_t exact_left_ = kExactTransitions;  // exact-phase countdown
  std::uint32_t sample_countdown_ = 1;  // charge points until next read
  std::uint64_t sample_rng_ = 0x9e3779b97f4a7c15ULL;  // stride LCG state
  int pending_class_ = -1;            // message class noted in current frame
  std::size_t pending_depth_ = 0;
  std::uint64_t anchor_ticks_ = 0;    // calibration pair at construction
  std::uint64_t anchor_ns_ = 0;
  /// Tick scale, frozen by ns_per_tick() at the first export so every
  /// exported value shares one calibration.
  mutable double calibrated_ns_per_tick_ = 0.0;
};

}  // namespace hp2p::stats
