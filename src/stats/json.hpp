// Minimal JSON document model: enough to emit and re-read the repo's
// machine-readable artifacts (BENCH_*.json, metric trees) without an
// external dependency.  Integers and doubles are kept distinct so counters
// round-trip exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace hp2p::stats {

/// One JSON value (null, bool, integer, double, string, array, or object).
/// Objects preserve insertion order; key lookup is linear, which is fine at
/// report sizes.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t i) : v_(i) {}        // NOLINT(google-explicit-constructor)
  JsonValue(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(unsigned i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  JsonValue(std::uint64_t u);                 // NOLINT(google-explicit-constructor)
  JsonValue(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  JsonValue(const char* s) : v_(std::string{s}) {}  // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}    // NOLINT
  JsonValue(Array a) : v_(std::move(a)) {}          // NOLINT
  JsonValue(Object o) : v_(std::move(o)) {}         // NOLINT

  [[nodiscard]] static JsonValue array() { return JsonValue{Array{}}; }
  [[nodiscard]] static JsonValue object() { return JsonValue{Object{}}; }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
    return std::get<std::int64_t>(v_);
  }
  /// Numeric value as double (works for both integer and double nodes).
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& items() const { return std::get<Array>(v_); }
  [[nodiscard]] Array& items() { return std::get<Array>(v_); }
  [[nodiscard]] const Object& members() const { return std::get<Object>(v_); }
  [[nodiscard]] Object& members() { return std::get<Object>(v_); }

  /// Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Sets (replacing any existing) an object member.  The value must be an
  /// object already.
  JsonValue& set(std::string_view key, JsonValue value);
  /// Appends to an array value.
  void push_back(JsonValue value) { items().push_back(std::move(value)); }

  /// Walks a dotted path ("config.peers"); nullptr when any hop is missing.
  [[nodiscard]] const JsonValue* find_path(std::string_view dotted) const;

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

  /// Serializes.  indent == 0 -> compact single line; indent > 0 -> pretty,
  /// `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict-enough parser for everything dump() produces (and ordinary JSON
  /// besides).  std::nullopt on malformed input.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace hp2p::stats
