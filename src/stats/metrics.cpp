#include "stats/metrics.hpp"

#include <utility>
#include <vector>

#include "stats/summary.hpp"

namespace hp2p::stats {

void MetricsRegistry::add(const std::string& name, double delta) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(name, JsonValue{delta});
    return;
  }
  it->second = JsonValue{it->second.as_double() + delta};
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    entries_.emplace(name, JsonValue{delta});
    return;
  }
  if (it->second.is_int()) {
    it->second = JsonValue{it->second.as_int() +
                           static_cast<std::int64_t>(delta)};
  } else {
    it->second = JsonValue{it->second.as_double() +
                           static_cast<double>(delta)};
  }
}

void MetricsRegistry::collect_summary(const std::string& prefix,
                                      const Summary& s) {
  set(prefix + ".count", JsonValue{static_cast<std::uint64_t>(s.count())});
  set(prefix + ".mean", JsonValue{s.mean()});
  set(prefix + ".stddev", JsonValue{s.stddev()});
  set(prefix + ".min", JsonValue{s.min()});
  set(prefix + ".max", JsonValue{s.max()});
}

const JsonValue* MetricsRegistry::find(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

double MetricsRegistry::number_or(std::string_view name,
                                  double fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue root = JsonValue::object();
  for (const auto& [name, value] : entries_) {
    JsonValue* at = &root;
    std::string_view rest = name;
    for (std::size_t dot = rest.find('.'); dot != std::string_view::npos;
         dot = rest.find('.')) {
      const std::string_view head = rest.substr(0, dot);
      rest.remove_prefix(dot + 1);
      JsonValue* child = nullptr;
      for (auto& [k, v] : at->members()) {
        if (k == head) {
          child = &v;
          break;
        }
      }
      if (child == nullptr) {
        at->members().emplace_back(std::string{head}, JsonValue::object());
        child = &at->members().back().second;
      } else if (!child->is_object()) {
        // Name is both a leaf ("a") and a prefix ("a.b"): demote the leaf
        // value to the empty key so both survive the round trip.
        JsonValue leaf = std::move(*child);
        *child = JsonValue::object();
        child->members().emplace_back(std::string{}, std::move(leaf));
      }
      at = child;
    }
    at->set(rest, value);
  }
  return root;
}

MetricsRegistry MetricsRegistry::from_json(const JsonValue& tree) {
  MetricsRegistry out;
  if (!tree.is_object()) return out;
  // Iterative DFS; paths are rebuilt by joining keys with '.'.
  std::vector<std::pair<std::string, const JsonValue*>> stack;
  for (auto it = tree.members().rbegin(); it != tree.members().rend(); ++it) {
    stack.emplace_back(it->first, &it->second);
  }
  while (!stack.empty()) {
    auto [path, node] = std::move(stack.back());
    stack.pop_back();
    if (node->is_object() && !node->members().empty()) {
      for (auto it = node->members().rbegin(); it != node->members().rend();
           ++it) {
        std::string child = it->first.empty()
                                ? path
                                : (path.empty() ? it->first
                                                : path + "." + it->first);
        stack.emplace_back(std::move(child), &it->second);
      }
    } else {
      out.set(std::move(path), *node);
    }
  }
  return out;
}

}  // namespace hp2p::stats
