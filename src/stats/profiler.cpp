#include "stats/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_stats.hpp"

namespace hp2p::stats {

namespace {

/// splitmix64: cheap, well-mixed hash for the packed component paths.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Packs component `c` into the path nibble for `depth` (4 bits per level,
/// +1 so an empty nibble never aliases component 0).
std::uint64_t path_nibble(sim::Component c, std::size_t depth) {
  return (static_cast<std::uint64_t>(c) + 1) << (4 * depth);
}

const char* clock_name() {
#if defined(__x86_64__) || defined(_M_X64)
  return "tsc";
#elif defined(__aarch64__)
  return "cntvct";
#else
  return "steady";
#endif
}

}  // namespace

std::uint64_t Profiler::now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return steady_ns();
#endif
}

std::uint64_t Profiler::steady_ns() {
  // Observation-only wall-clock read: converted to durations at export time
  // and never fed back into simulation behavior.  The determinism lint's
  // audited allowlist pins this escape to the profiler sources.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // lint:allow(wallclock)
              .time_since_epoch())
          .count());
}

Profiler::Profiler() {
  stack_.reserve(kMaxDepth + 2);
  accums_.reserve(kMaxPaths + 2);
  index_.assign(kMaxPaths * 2, 0);  // power of two, load factor <= 0.5
  // Accum 0: the permanent root (host program time; never accrued).
  // Accum 1: the overflow bucket for paths past kMaxPaths -- created via
  // find_or_insert so it is indexed like any other accum (it doubles as the
  // legitimate depth-1 kOther path).
  const std::uint64_t root_path = path_nibble(sim::Component::kKernel, 0);
  accums_.push_back(Accum{root_path, 0, 0, 0, 0, sim::Component::kKernel, 0});
  (void)find_or_insert(root_path | path_nibble(sim::Component::kOther, 1),
                       sim::Component::kOther, 1);
  // Prefill every depth-1 path so the top-level enter() fast path is a
  // table load instead of a hash probe.  Prefilled accums start at zero
  // enters/ticks, so unused ones never appear in exports.
  for (std::size_t c = 0; c < sim::kNumComponents; ++c) {
    const auto comp = static_cast<sim::Component>(c);
    depth1_accum_[c] =
        find_or_insert(root_path | path_nibble(comp, 1), comp, 1);
  }
  anchor_ticks_ = now_ticks();
  anchor_ns_ = steady_ns();
  last_ticks_ = anchor_ticks_;
  last_allocs_ = alloc_stats::allocation_count();
  last_alloc_bytes_ = alloc_stats::allocated_bytes();
  stack_.push_back(Frame{root_path, 0, sim::Component::kKernel});
}

double Profiler::ns_per_tick() const {
  // Calibrate once, at first export, against the anchor pair taken at
  // construction (the longest available baseline).  Caching keeps every
  // exported value -- dispatch_ns_total(), attributed_ns(), to_json(),
  // write_collapsed() -- on the same scale; per-call recalibration would
  // let attributed_ns() drift past dispatch_ns_total() by a few ns.
  if (calibrated_ns_per_tick_ == 0.0) {
    const std::uint64_t t = now_ticks();
    const std::uint64_t n = steady_ns();
    calibrated_ns_per_tick_ =
        (t <= anchor_ticks_ || n <= anchor_ns_)
            ? 1.0
            : static_cast<double>(n - anchor_ns_) /
                  static_cast<double>(t - anchor_ticks_);
  }
  return calibrated_ns_per_tick_;
}

std::uint64_t Profiler::ticks_to_ns(std::uint64_t ticks) const {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    ns_per_tick());
}

void Profiler::charge_allocs() {
  const std::uint64_t allocs = alloc_stats::allocation_count();
  const std::uint64_t bytes = alloc_stats::allocated_bytes();
  if (stack_.size() > 1) {  // root deltas belong to the host program
    Accum& a = accums_[stack_.back().accum];
    a.allocs += allocs - last_allocs_;
    a.alloc_bytes += bytes - last_alloc_bytes_;
  }
  last_allocs_ = allocs;
  last_alloc_bytes_ = bytes;
}

void Profiler::charge_ticks(std::uint64_t now) {
  if (stack_.size() > 1) {  // root self time belongs to the host program
    const std::uint64_t span = now - last_ticks_;
    accums_[stack_.back().accum].self_ticks += span;
    dispatch_ticks_total_ += span;
    if (pending_class_ >= 0 && stack_.size() == pending_depth_) {
      classes_[pending_class_].cpu_ticks += span;
    }
  }
  last_ticks_ = now;
}

void Profiler::maybe_charge_ticks() {
  if (exact_left_ > 0) {
    --exact_left_;
    charge_ticks(now_ticks());
    return;
  }
  if (--sample_countdown_ == 0) {
    // Deterministic LCG stride in [4, 19] (mean ~11.5): pseudo-random so
    // samples cannot phase-lock with a regular enter/leave pattern, seeded
    // with a constant so sample points repeat exactly across runs.
    sample_rng_ =
        sample_rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    sample_countdown_ = 4 + static_cast<std::uint32_t>(sample_rng_ >> 60);
    charge_ticks(now_ticks());
  }
}

std::uint32_t Profiler::find_or_insert(std::uint64_t path, sim::Component comp,
                                       std::uint8_t depth) {
  const std::uint64_t mask = index_.size() - 1;
  std::uint64_t i = mix(path) & mask;
  while (true) {
    const std::uint32_t entry = index_[i];
    if (entry == 0) break;
    if (accums_[entry - 1].path == path) return entry - 1;
    i = (i + 1) & mask;
  }
  if (accums_.size() >= kMaxPaths) {
    ++truncated_frames_;
    return 1;  // overflow bucket
  }
  const auto accum = static_cast<std::uint32_t>(accums_.size());
  accums_.push_back(Accum{path, 0, 0, 0, 0, comp, depth});
  index_[i] = accum + 1;
  return accum;
}

void Profiler::enter(sim::Component c) {
  // Fast path for top-level frames (every event dispatch): no clock or
  // counter reads at all -- the kernel's pop/dispatch gap stays in the
  // open span and lands on whichever frame the next sample charges -- and
  // the accum comes from the prefilled depth-1 table.  One predicted
  // branch, one table load, one push.
  if (stack_.size() == 1) {
    const std::uint32_t accum = depth1_accum_[static_cast<std::size_t>(c)];
    ++accums_[accum].enters;
    stack_.push_back(Frame{accums_[accum].path, accum, c});
    return;
  }
  charge_allocs();      // the delta so far belongs to the enclosing frame
  maybe_charge_ticks();
  const std::size_t depth = stack_.size();  // the new frame's depth
  if (depth >= kMaxDepth) {
    ++depth_overflow_;  // fold into the ancestor; leave() pairs with this
    ++truncated_frames_;
    return;
  }
  const std::uint64_t path = stack_.back().path | path_nibble(c, depth);
  const std::uint32_t accum =
      find_or_insert(path, c, static_cast<std::uint8_t>(depth));
  ++accums_[accum].enters;
  stack_.push_back(Frame{path, accum, c});
}

void Profiler::leave() {
  if (depth_overflow_ > 0) {
    --depth_overflow_;  // folded frame: its time stays with the ancestor
    return;
  }
  if (stack_.size() <= 1) return;  // unbalanced leave; ignore
  charge_allocs();
  maybe_charge_ticks();
  if (pending_class_ >= 0 && stack_.size() == pending_depth_) {
    pending_class_ = -1;  // the delivering frame is closing
  }
  stack_.pop_back();
}

void Profiler::resync() {
  // The kernel is (re)entering a dispatch run after host work (underlay
  // construction, phase bookkeeping between run_until calls).  Re-mark the
  // tick and allocation baselines so that host work is never charged to the
  // next sampled frame; with only the root on the stack the charges are
  // mark-only.
  charge_allocs();
  charge_ticks(now_ticks());
}

void Profiler::message_delivered(std::size_t cls, const char* name,
                                 std::uint64_t bytes) {
  if (cls >= kMaxMessageClasses) return;
  ClassStat& stat = classes_[cls];
  stat.name = name;
  ++stat.messages;
  stat.bytes += bytes;
  if (stack_.size() > 1) {  // charge the enclosing frame's time at its close
    pending_class_ = static_cast<int>(cls);
    pending_depth_ = stack_.size();
  }
}

std::uint64_t Profiler::dispatch_ns_total() const {
  return ticks_to_ns(dispatch_ticks_total_);
}

std::uint64_t Profiler::attributed_ns() const {
  std::uint64_t ticks = 0;
  for (const Accum& a : accums_) {
    if (a.depth == 0) continue;  // root: host program time
    if (a.comp == sim::Component::kKernel || a.comp == sim::Component::kOther)
      continue;
    ticks += a.self_ticks;
  }
  return ticks_to_ns(ticks);
}

Profiler::ComponentTotal Profiler::component_total(sim::Component c) const {
  ComponentTotal total;
  const double scale = ns_per_tick();
  for (const Accum& a : accums_) {
    if (a.depth == 0 || a.comp != c) continue;
    total.enters += a.enters;
    total.cpu_ns += static_cast<std::uint64_t>(
        static_cast<double>(a.self_ticks) * scale);
    total.allocs += a.allocs;
    total.alloc_bytes += a.alloc_bytes;
  }
  return total;
}

JsonValue Profiler::to_json() const {
  const double scale = ns_per_tick();
  const std::uint64_t dispatch_ns = static_cast<std::uint64_t>(
      static_cast<double>(dispatch_ticks_total_) * scale);
  JsonValue components = JsonValue::object();
  std::uint64_t attributed_ticks = 0;
  for (std::size_t c = 0; c < sim::kNumComponents; ++c) {
    const auto comp = static_cast<sim::Component>(c);
    ComponentTotal total;
    std::uint64_t self_ticks = 0;
    for (const Accum& a : accums_) {
      if (a.depth == 0 || a.comp != comp) continue;
      total.enters += a.enters;
      total.allocs += a.allocs;
      total.alloc_bytes += a.alloc_bytes;
      self_ticks += a.self_ticks;
    }
    if (total.enters == 0 && self_ticks == 0) continue;
    if (comp != sim::Component::kKernel && comp != sim::Component::kOther) {
      attributed_ticks += self_ticks;
    }
    JsonValue entry = JsonValue::object();
    entry.set("events", total.enters);
    entry.set("cpu_ns", static_cast<std::uint64_t>(
                            static_cast<double>(self_ticks) * scale));
    entry.set("allocs", total.allocs);
    entry.set("alloc_bytes", total.alloc_bytes);
    components.set(sim::component_name(comp), std::move(entry));
  }
  const std::uint64_t attributed_ns_v = static_cast<std::uint64_t>(
      static_cast<double>(attributed_ticks) * scale);

  JsonValue message_types = JsonValue::object();
  for (const ClassStat& stat : classes_) {
    if (stat.name == nullptr) continue;
    JsonValue entry = JsonValue::object();
    entry.set("messages", stat.messages);
    entry.set("bytes", stat.bytes);
    entry.set("cpu_ns", static_cast<std::uint64_t>(
                            static_cast<double>(stat.cpu_ticks) * scale));
    message_types.set(stat.name, std::move(entry));
  }

  JsonValue profile = JsonValue::object();
  profile.set("enabled", true);
  profile.set("clock", clock_name());
  profile.set("ns_per_tick", scale);
  profile.set("dispatch_ns_total", dispatch_ns);
  profile.set("attributed_ns", attributed_ns_v);
  profile.set("attributed_fraction",
              dispatch_ns > 0 ? static_cast<double>(attributed_ns_v) /
                                    static_cast<double>(dispatch_ns)
                              : 0.0);
  profile.set("truncated_frames", truncated_frames_);
  profile.set("components", std::move(components));
  profile.set("message_types", std::move(message_types));
  return profile;
}

bool Profiler::write_collapsed(const std::string& path) const {
  const double scale = ns_per_tick();
  std::vector<std::string> lines;
  lines.reserve(accums_.size());
  for (const Accum& a : accums_) {
    if (a.depth == 0) continue;  // root frame: host program, not dispatch
    const auto self_ns = static_cast<std::uint64_t>(
        static_cast<double>(a.self_ticks) * scale);
    if (self_ns == 0) continue;
    std::string line;
    for (std::size_t d = 0; d <= a.depth; ++d) {
      const std::uint64_t nibble = (a.path >> (4 * d)) & 0xF;
      if (nibble == 0) break;
      if (!line.empty()) line += ';';
      line += sim::component_name(static_cast<sim::Component>(nibble - 1));
    }
    line += ' ';
    line += std::to_string(self_ns);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const std::string& line : lines) out << line << '\n';
  return static_cast<bool>(out.flush());
}

}  // namespace hp2p::stats
