#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace hp2p::stats {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-variance combination.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return values_[std::min(idx, values_.size() - 1)];
}

}  // namespace hp2p::stats
