#include "stats/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace hp2p::stats {

JsonValue::JsonValue(std::uint64_t u) {
  if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    v_ = static_cast<std::int64_t>(u);
  } else {
    v_ = static_cast<double>(u);  // beyond int64: precision over overflow
  }
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value) {
  for (auto& [k, v] : members()) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members().emplace_back(std::string{key}, std::move(value));
  return *this;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  const JsonValue* at = this;
  while (!dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    at = at->find(head);
    if (at == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return at;
}

// --- Serialization ------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no Inf/NaN; null is the conventional stand-in
    return;
  }
  char buf[40];
  // %.17g round-trips every double; trim to the shortest that re-parses.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  out += buf;
  // Keep a numeric marker so integers-valued doubles stay doubles on re-read.
  if (out.find_first_of(".eE", out.size() - std::string_view{buf}.size()) ==
      std::string::npos) {
    out += ".0";
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(v_));
  } else if (is_double()) {
    append_double(out, std::get<double>(v_));
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const Array& a = items();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i != 0) out += ',';
      if (indent > 0) append_newline_indent(out, indent, depth + 1);
      a[i].dump_to(out, indent, depth + 1);
    }
    if (indent > 0) append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const Object& o = members();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i != 0) out += ',';
      if (indent > 0) append_newline_indent(out, indent, depth + 1);
      append_escaped(out, o[i].first);
      out += indent > 0 ? ": " : ":";
      o[i].second.dump_to(out, indent, depth + 1);
    }
    if (indent > 0) append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- Parsing ------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (eof()) return std::nullopt;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return JsonValue{std::move(*s)};
      }
      case 't':
        return consume_word("true") ? std::optional<JsonValue>{JsonValue{true}}
                                    : std::nullopt;
      case 'f':
        return consume_word("false")
                   ? std::optional<JsonValue>{JsonValue{false}}
                   : std::nullopt;
      case 'n':
        return consume_word("null")
                   ? std::optional<JsonValue>{JsonValue{nullptr}}
                   : std::nullopt;
      default: return number();
    }
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0)) ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return std::nullopt;
    if (!is_double) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc{} && p == tok.data() + tok.size()) return JsonValue{i};
      // Overflowed int64: fall through to double.
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
    return JsonValue{d};
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // BMP code point -> UTF-8 (surrogate pairs are not emitted by our
          // writer; lone surrogates pass through as-is).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      out.members().emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return std::nullopt;
    }
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser{text}.run();
}

}  // namespace hp2p::stats
