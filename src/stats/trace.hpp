// Causal tracing: per-operation span trees over the simulated protocols.
//
// A TraceContext (trace id + span id) is the "message header" the overlays
// thread through their closures: every store/lookup opens a root span, each
// protocol stage (cp-chain climb, ring routing, s-network flood, reply)
// opens a child span, and each message hop records an instant event.  The
// SpanRecorder collects the resulting trees and can
//   * export them as Chrome trace-event (catapult) JSON -- open the file in
//     chrome://tracing or https://ui.perfetto.dev,
//   * reduce every finished lookup to a critical-path breakdown (ring time
//     vs flood time vs reply time, ring hops, flood depth) and feed the
//     aggregate percentiles into a MetricsRegistry.
//
// Recording is off unless a recorder is installed (one pointer test per
// site); names/categories must be string literals (they are stored as
// `const char*` and never copied).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "stats/json.hpp"

namespace hp2p::stats {

class MetricsRegistry;

/// The propagated trace header: which operation (trace) a message belongs
/// to and which span it should parent new work under.  A default-constructed
/// context is "not traced" and makes every recording call a no-op.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] constexpr bool valid() const { return trace_id != 0; }
  friend constexpr bool operator==(TraceContext, TraceContext) = default;
};

/// One recorded span (or instant event, when `instant`).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root of its trace
  const char* name = "";
  const char* category = "";
  /// Peer the span executes at; renders as the catapult tid lane.
  std::uint32_t peer = 0;
  sim::SimTime start{};
  sim::SimTime end{};
  bool open = true;       // end_span not yet seen (instants are never open)
  bool instant = false;   // zero-duration marker event
  /// Small key->value annotations (TTL, hop count, drop reason index...).
  std::vector<std::pair<const char*, std::int64_t>> args;

  [[nodiscard]] double duration_ms() const { return (end - start).as_millis(); }
};

/// Aggregated critical-path breakdown of one finished lookup trace.
struct LookupBreakdown {
  std::uint64_t trace_id = 0;
  double total_ms = 0;  // root span extent
  double climb_ms = 0;  // cp-chain forwarding to the local t-peer
  double ring_ms = 0;   // t-network routing
  double flood_ms = 0;  // s-network flood / walk window
  double reply_ms = 0;  // answer travelling back to the requester
  std::uint32_t ring_hops = 0;
  std::uint32_t flood_depth = 0;  // deepest flood_hop TTL level reached
  bool success = false;
};

/// Collects span trees; one instance per traced replica (not thread-safe,
/// like everything else at simulator granularity).
class SpanRecorder {
 public:
  /// `max_spans` bounds memory on soak runs; once full, new spans are
  /// counted in dropped_spans() and silently skipped.
  explicit SpanRecorder(std::size_t max_spans = 1u << 20);

  /// Opens a root span and returns the context to propagate.
  TraceContext start_trace(const char* name, const char* category,
                           std::uint32_t peer, sim::SimTime now);
  /// Opens a child span of `parent` (no-op context when parent invalid).
  TraceContext begin_span(TraceContext parent, const char* name,
                          const char* category, std::uint32_t peer,
                          sim::SimTime now);
  /// Closes a span; no-op on invalid/unknown/already-closed contexts.
  void end_span(TraceContext span, sim::SimTime now);
  /// Records a zero-duration marker under `parent`.
  void instant(TraceContext parent, const char* name, std::uint32_t peer,
               sim::SimTime now);
  /// Same, with one annotation attached.
  void instant(TraceContext parent, const char* name, std::uint32_t peer,
               sim::SimTime now, const char* key, std::int64_t value);
  /// Annotates an open or closed span.
  void add_arg(TraceContext span, const char* key, std::int64_t value);

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const Span* find(std::uint64_t span_id) const;
  /// All spans of one trace, in recording order.
  [[nodiscard]] std::vector<const Span*> trace(std::uint64_t trace_id) const;
  [[nodiscard]] std::size_t dropped_spans() const { return dropped_; }
  [[nodiscard]] std::size_t num_traces() const { return num_traces_; }

  // --- Reduction -------------------------------------------------------------

  /// Per-trace breakdowns for every root span with category "lookup".
  [[nodiscard]] std::vector<LookupBreakdown> lookup_breakdowns() const;

  /// Aggregates lookup_breakdowns() into `reg` under `prefix`: per-component
  /// p50/p95/p99/mean milliseconds (stats::Histogram interpolation), mean/max
  /// ring hops and flood depth, and the trace/span bookkeeping counters.
  void collect_critical_path(MetricsRegistry& reg,
                             const std::string& prefix) const;

  // --- Export ----------------------------------------------------------------

  /// Chrome trace-event JSON: spans as async begin/end pairs keyed by trace
  /// id (each operation gets its own track in Perfetto), instants as async
  /// marker events.
  [[nodiscard]] JsonValue to_catapult() const;
  /// Writes to_catapult() to `path` atomically (temp file + rename).
  bool write_catapult(const std::string& path) const;

 private:
  Span* slot(TraceContext ctx);
  bool full();

  std::size_t max_spans_;
  std::size_t dropped_ = 0;
  std::size_t num_traces_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // span id -> slot
};

}  // namespace hp2p::stats
