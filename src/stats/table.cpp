#include "stats/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace hp2p::stats {

std::string format_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << text << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace hp2p::stats
