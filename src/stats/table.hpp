// Column-aligned console tables and CSV output.  Every bench binary prints
// its figure/table through this so the output format is uniform and easy to
// diff against EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hp2p::stats {

/// A simple row/column table.  Cells are preformatted strings; numeric
/// helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);

  /// Pretty console rendering with aligned columns.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row_cells(std::size_t i) const {
    return rows_[i];
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_fixed(double value, int precision);

}  // namespace hp2p::stats
