// Periodic gauge sampling over simulated time.
//
// A TimeSeriesSampler snapshots a set of registered gauges (live peers,
// pending lookups, message counters, event-queue depth...) every `period`
// of sim-time and accumulates the samples as parallel columns.  The result
// embeds into BENCH_*.json (schema v2) as a `timeseries` block.
//
// Scheduling: the tick self-reschedules only while the simulator has other
// pending events, so a phase's `sim.run()` still drains.  Call
// ensure_running() at the start of each phase to re-arm the tick.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/json.hpp"

namespace hp2p::stats {

/// One gauge's samples; values.size() always equals the owning series'
/// t_ms.size().
struct TimeSeriesColumn {
  std::string name;
  std::vector<double> values;
};

/// A finished sampling run: shared timestamps + one column per gauge.
struct TimeSeries {
  std::string name;
  double period_ms = 0;
  std::vector<double> t_ms;  // sim-time of each sample, milliseconds
  std::vector<TimeSeriesColumn> columns;

  [[nodiscard]] std::size_t num_samples() const { return t_ms.size(); }
  /// {"name":..., "period_ms":..., "t_ms":[...], "series":{gauge:[...]}}
  [[nodiscard]] JsonValue to_json() const;
};

/// Samples registered gauges at a fixed sim-time period.
class TimeSeriesSampler {
 public:
  TimeSeriesSampler(sim::Simulator& sim, sim::Duration period,
                    std::string name = "timeseries");
  /// Cancels a still-armed tick (the tick lambda captures `this`).
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Registers a gauge; must happen before the first sample.
  void add_gauge(std::string name, std::function<double()> fn);

  /// Takes one sample at sim.now() immediately.
  void sample_now();

  /// Arms the periodic tick unless one is already pending.  The tick keeps
  /// itself armed while other simulator events exist and lapses when the
  /// queue would otherwise drain -- so call this again per phase.
  void ensure_running();

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  /// Moves the accumulated series out (sampler keeps running on empty data).
  [[nodiscard]] TimeSeries take();

 private:
  void tick();

  sim::Simulator& sim_;
  sim::Duration period_;
  bool armed_ = false;
  sim::TimerId tick_id_;
  std::vector<std::function<double()>> gauges_;
  TimeSeries series_;
};

}  // namespace hp2p::stats
