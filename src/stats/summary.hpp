// Streaming summary statistics (Welford) and percentile extraction.
#pragma once

#include <cstdint>
#include <vector>

namespace hp2p::stats {

/// Streaming mean/variance/min/max without storing samples.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Pools another summary into this one (parallel replica merging).
  void merge(const Summary& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores samples for exact percentile queries; fine at simulation scale.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  /// Exact percentile via nearest-rank; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace hp2p::stats
