// Standalone Chord overlay (Stoica et al.), the structured baseline of the
// paper and the p_s = 0 degenerate case of the hybrid system.
//
// Implemented as an event-driven protocol over proto::OverlayNetwork: every
// routing step, handshake, heartbeat and data transfer is a simulated
// message with real underlay latency, so hop counts, latencies and connum
// come out of the same accounting the hybrid system uses.
//
// Two routing modes are provided:
//  * ring   -- forward along successor pointers (the paper's Table 2 numbers
//              match this mode: ~N/2 contacts per lookup),
//  * finger -- classic O(log N) greedy finger routing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chord/finger_table.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "proto/data_store.hpp"
#include "proto/metrics.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"

namespace hp2p::chord {

/// How lookup/store/join requests travel around the ring.
enum class RoutingMode : std::uint8_t { kRing, kFinger };

/// Protocol parameters.
struct ChordParams {
  RoutingMode routing = RoutingMode::kFinger;
  /// Successor-list length r; the ring survives up to r-1 consecutive
  /// crashes between stabilization rounds.
  unsigned successor_list_size = 8;
  /// Period of the stabilize() protocol (successor liveness + pointer
  /// repair).
  sim::Duration stabilize_interval = sim::SimTime::millis(500);
  /// Period of fix_fingers(); one finger is refreshed per round per node.
  sim::Duration fix_fingers_interval = sim::SimTime::millis(250);
  /// Reply deadline after which a lookup is declared failed.
  sim::Duration lookup_timeout = sim::SimTime::seconds(15);
  /// Deadline for a stabilize probe before the successor is presumed dead.
  sim::Duration probe_timeout = sim::SimTime::millis(1500);
};

/// The whole Chord ring inside one simulation replica.
class ChordNetwork {
 public:
  using JoinCallback = std::function<void(proto::JoinResult)>;
  using LookupCallback = std::function<void(proto::LookupResult)>;
  using StoreCallback = std::function<void()>;

  ChordNetwork(proto::OverlayNetwork& network, ChordParams params);

  /// Creates the first node, forming a one-node ring.
  PeerIndex create_ring(HostIndex host, PeerId id);

  /// Registers a node (not yet part of the ring).
  PeerIndex register_node(HostIndex host, PeerId id);

  /// Runs the join protocol from `bootstrap`; `done` fires when the node is
  /// fully inserted and load transfer finished.
  void join(PeerIndex node, PeerIndex bootstrap, JoinCallback done = {});

  /// Graceful departure: hands all data to the successor and repairs
  /// neighbor pointers.
  void leave(PeerIndex node);

  /// Abrupt departure: the node simply stops; its data is lost and the ring
  /// self-heals via successor lists + stabilization.
  void crash(PeerIndex node);

  /// Inserts (key, value); routed to the responsible node.
  void store(PeerIndex from, const std::string& key, std::uint64_t value,
             StoreCallback done = {});

  /// Looks up a key; `done` always fires (success, negative reply, or
  /// timeout).
  void lookup(PeerIndex from, const std::string& key, LookupCallback done);

  /// Starts periodic stabilization/fix-fingers on all currently joined
  /// nodes (and any that join later).
  void start_maintenance(Rng& rng);

  // --- Introspection for tests and experiments -----------------------------

  struct NodeView {
    PeerId id{};
    PeerIndex successor = kNoPeer;
    PeerIndex predecessor = kNoPeer;
    bool joined = false;
    bool alive = true;
    std::size_t store_size = 0;
  };
  [[nodiscard]] NodeView view(PeerIndex node) const;
  [[nodiscard]] const proto::DataStore& store_of(PeerIndex node) const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Walks successor pointers from `start`; true when the walk visits
  /// exactly `expected` live nodes, in strictly increasing ring order, and
  /// returns to the start (the ring invariant).
  [[nodiscard]] bool verify_ring(PeerIndex start, std::size_t expected) const;

  /// Total items stored across live nodes.
  [[nodiscard]] std::size_t total_items() const;

  /// True when every key in the given node's store is owned by that node.
  [[nodiscard]] bool placement_consistent() const;

  /// Installs (or, with nullptr, removes) the span recorder: lookups and
  /// stores then record root spans with per-hop ring_hop instants.  Not
  /// owned.
  void set_tracer(stats::SpanRecorder* tracer) { tracer_ = tracer; }
  [[nodiscard]] stats::SpanRecorder* tracer() const { return tracer_; }

 private:
  struct Node {
    PeerId id{};
    PeerIndex self = kNoPeer;
    PeerIndex successor = kNoPeer;
    PeerId successor_id{};
    PeerIndex predecessor = kNoPeer;
    PeerId predecessor_id{};
    std::vector<std::pair<PeerIndex, PeerId>> successor_list;
    FingerTable fingers;
    proto::DataStore store;
    bool joined = false;
    unsigned next_finger_to_fix = 0;
    bool probe_outstanding = false;
    sim::TimerId probe_timer{};
  };

  /// Routing context carried hop to hop inside message closures.
  struct Route {
    PeerIndex origin = kNoPeer;
    std::uint64_t target = 0;
    std::uint32_t hops = 0;
    std::uint32_t contacted = 0;
    stats::TraceContext trace;  // causal header (invalid when untraced)
  };
  using OwnerAction = std::function<void(PeerIndex owner, const Route&)>;

  Node& node(PeerIndex i) { return nodes_[i.value()]; }
  [[nodiscard]] const Node& node(PeerIndex i) const {
    return nodes_[i.value()];
  }
  [[nodiscard]] bool owns(const Node& n, std::uint64_t id) const;
  [[nodiscard]] PeerIndex next_hop(const Node& n, std::uint64_t target) const;

  /// Forwards the request until the owner of route.target is reached, then
  /// invokes `at_owner` there.
  void route_to_owner(PeerIndex at, Route route, proto::TrafficClass cls,
                      std::uint32_t bytes, const OwnerAction& at_owner);

  void finish_join(PeerIndex owner, PeerIndex joining, Route route,
                   sim::SimTime started, const JoinCallback& done);
  void stabilize(PeerIndex i);
  void handle_probe_timeout(PeerIndex i);
  void fix_next_finger(PeerIndex i);
  void schedule_maintenance(PeerIndex i, Rng& rng);
  void maintenance_tick(PeerIndex i);

  proto::OverlayNetwork& net_;
  sim::Simulator& sim_;
  ChordParams params_;
  std::vector<Node> nodes_;
  bool maintenance_started_ = false;
  Rng* maintenance_rng_ = nullptr;
  stats::SpanRecorder* tracer_ = nullptr;
};

}  // namespace hp2p::chord
