// Chord finger table.
//
// Entry k points at the first peer whose id is >= own_id + 2^k (mod ring).
// Shared by the Chord baseline and the hybrid t-network's accelerated
// routing mode.
#pragma once

#include <array>

#include "common/ids.hpp"
#include "common/ring_math.hpp"

namespace hp2p::chord {

/// One finger: the target start id and the peer currently believed to cover
/// it.
struct Finger {
  std::uint64_t start = 0;
  PeerIndex node = kNoPeer;
  PeerId node_id{};
};

/// Fixed-size finger table over the kRingBits-bit id space.
class FingerTable {
 public:
  FingerTable() = default;

  /// Initializes start ids for a node with ring id `own`.
  void init(PeerId own) {
    own_ = own;
    for (unsigned k = 0; k < kRingBits; ++k) {
      fingers_[k] = Finger{ring::finger_start(own.value(), k), kNoPeer, {}};
    }
  }

  [[nodiscard]] static constexpr unsigned size() { return kRingBits; }
  [[nodiscard]] const Finger& entry(unsigned k) const { return fingers_[k]; }

  void set(unsigned k, PeerIndex node, PeerId node_id) {
    fingers_[k].node = node;
    fingers_[k].node_id = node_id;
  }

  /// Clears every entry pointing at `node` (it left or crashed).
  void evict(PeerIndex node) {
    for (auto& f : fingers_) {
      if (f.node == node) f.node = kNoPeer;
    }
  }

  /// Replaces every entry pointing at `from` with `to` -- the hybrid
  /// system's cheap "substitute the leaving t-peer with the new t-peer in
  /// the finger table" update (Section 3.2.1).
  void substitute(PeerIndex from, PeerIndex to, PeerId to_id) {
    for (auto& f : fingers_) {
      if (f.node == from) {
        f.node = to;
        f.node_id = to_id;
      }
    }
  }

  /// The finger that most closely precedes `target` clockwise from the
  /// owner; kNoPeer when no finger qualifies (caller falls back to the
  /// successor).
  [[nodiscard]] Finger closest_preceding(std::uint64_t target) const {
    for (unsigned k = kRingBits; k-- > 0;) {
      const Finger& f = fingers_[k];
      if (f.node == kNoPeer) continue;
      if (ring::in_arc_open_open(f.node_id.value(), own_.value(), target)) {
        return f;
      }
    }
    return Finger{};
  }

 private:
  PeerId own_{};
  std::array<Finger, kRingBits> fingers_{};
};

}  // namespace hp2p::chord
