#include "chord/chord.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace hp2p::chord {

using proto::TrafficClass;

ChordNetwork::ChordNetwork(proto::OverlayNetwork& network, ChordParams params)
    : net_(network), sim_(network.simulator()), params_(params) {}

PeerIndex ChordNetwork::create_ring(HostIndex host, PeerId id) {
  const PeerIndex i = register_node(host, id);
  Node& n = node(i);
  n.successor = i;
  n.successor_id = id;
  n.predecessor = i;
  n.predecessor_id = id;
  n.joined = true;
  return i;
}

PeerIndex ChordNetwork::register_node(HostIndex host, PeerId id) {
  const PeerIndex i = net_.add_peer(host);
  assert(i.value() == nodes_.size());
  Node n;
  n.id = id;
  n.self = i;
  n.fingers.init(id);
  nodes_.push_back(std::move(n));
  return i;
}

bool ChordNetwork::owns(const Node& n, std::uint64_t id) const {
  if (!n.joined || n.predecessor == kNoPeer) return false;
  return ring::in_arc_open_closed(id, n.predecessor_id.value(),
                                  n.id.value());
}

PeerIndex ChordNetwork::next_hop(const Node& n, std::uint64_t target) const {
  if (params_.routing == RoutingMode::kFinger) {
    const Finger f = n.fingers.closest_preceding(target);
    if (f.node != kNoPeer && f.node != n.self) return f.node;
  }
  return n.successor;
}

void ChordNetwork::route_to_owner(PeerIndex at, Route route,
                                  TrafficClass cls, std::uint32_t bytes,
                                  const OwnerAction& at_owner) {
  Node& here = node(at);
  if (owns(here, route.target)) {
    at_owner(at, route);
    return;
  }
  const PeerIndex next = next_hop(here, route.target);
  if (next == kNoPeer || next == at) {
    // Routing dead end (e.g. ring fragment during churn); the request is
    // lost and the origin's timeout will fire.
    net_.note_drop(at, proto::DropReason::kNoRoute, cls, route.trace);
    return;
  }
  ++route.hops;
  ++route.contacted;
  net_.send(at, next, cls, bytes, route.trace,
            [this, next, route, cls, bytes, at_owner] {
              if (tracer_ != nullptr && route.trace.valid()) {
                tracer_->instant(route.trace, "ring_hop", next.value(),
                                 sim_.now(), "hop", route.hops);
              }
              route_to_owner(next, route, cls, bytes, at_owner);
            });
}

void ChordNetwork::join(PeerIndex joining, PeerIndex bootstrap,
                        JoinCallback done) {
  const sim::SimTime started = sim_.now();
  Node& n = node(joining);
  assert(!n.joined);
  Route route;
  route.origin = joining;
  route.target = n.id.value();
  // One hop to reach the bootstrap peer with the join request.
  route.hops = 1;
  route.contacted = 1;
  net_.send(joining, bootstrap, TrafficClass::kControl, proto::kControlBytes,
            [this, bootstrap, route, joining, started,
             done = std::move(done)] {
              route_to_owner(
                  bootstrap, route, TrafficClass::kControl,
                  proto::kControlBytes,
                  [this, joining, started, done](PeerIndex owner,
                                                 const Route& r) {
                    finish_join(owner, joining, r, started, done);
                  });
            });
}

void ChordNetwork::finish_join(PeerIndex owner, PeerIndex joining,
                               Route route, sim::SimTime started,
                               const JoinCallback& done) {
  // `owner` is the successor-to-be; the joining node slots in between the
  // owner's predecessor and the owner.
  Node& suc = node(owner);
  Node& n = node(joining);
  if (!suc.joined) return;  // owner left while the request was in flight

  // Id-conflict resolution (paper's pre.check): midpoint of the free arc.
  if (n.id == suc.id || n.id == suc.predecessor_id) {
    n.id = PeerId{ring::midpoint_cw(suc.predecessor_id.value(),
                                    suc.id.value())};
    if (n.id == suc.predecessor_id) {
      // Arc too small to split; give up (caller may retry with another id).
      if (done) done(proto::JoinResult{sim_.now() - started, route.hops});
      return;
    }
    n.fingers.init(n.id);
  }

  const PeerIndex pred = suc.predecessor;
  const PeerId pred_id = suc.predecessor_id;

  // Join triangle: owner -> joining (neighbor info), joining -> pred
  // (take me as successor), pred -> joining (ack).  Load transfer rides
  // along with the final pointer flip.
  net_.send(owner, joining, TrafficClass::kControl, proto::kControlBytes,
            [this, owner, joining, pred, pred_id, route, started, done] {
    Node& nn = node(joining);
    Node& suc2 = node(owner);
    nn.successor = owner;
    nn.successor_id = suc2.id;
    nn.predecessor = pred;
    nn.predecessor_id = pred_id;
    net_.send(joining, pred, TrafficClass::kControl, proto::kControlBytes,
              [this, owner, joining, pred, route, started, done] {
      Node& p = node(pred);
      Node& nn2 = node(joining);
      p.successor = joining;
      p.successor_id = nn2.id;
      net_.send(pred, joining, TrafficClass::kControl, proto::kControlBytes,
                [this, owner, joining, route, started, done] {
        Node& suc3 = node(owner);
        Node& nn3 = node(joining);
        suc3.predecessor = joining;
        suc3.predecessor_id = nn3.id;
        nn3.joined = true;
        // suc.loadtransfer(n.id): move every item in (old_pred, n.id] down.
        auto items = suc3.store.extract_arc(nn3.predecessor_id, nn3.id);
        if (!items.empty()) {
          net_.send(owner, joining, TrafficClass::kData,
                    proto::kDataBytes *
                        static_cast<std::uint32_t>(items.size()),
                    [this, joining, items = std::move(items)]() mutable {
                      Node& dst = node(joining);
                      for (auto& item : items) dst.store.insert(std::move(item));
                    });
        }
        if (maintenance_started_) {
          schedule_maintenance(joining, *maintenance_rng_);
        }
        if (done) {
          done(proto::JoinResult{sim_.now() - started, route.hops});
        }
      });
    });
  });
}

void ChordNetwork::leave(PeerIndex leaving) {
  Node& n = node(leaving);
  if (!n.joined) return;
  n.joined = false;
  const PeerIndex pred = n.predecessor;
  const PeerIndex suc = n.successor;
  if (suc == leaving) {  // last node of the ring
    net_.set_alive(leaving, false);
    return;
  }
  // loaddump(): everything moves to the successor.
  auto items = n.store.extract_all();
  net_.send(leaving, suc, TrafficClass::kData,
            proto::kDataBytes *
                static_cast<std::uint32_t>(std::max<std::size_t>(items.size(), 1)),
            [this, suc, items = std::move(items)]() mutable {
              Node& s = node(suc);
              for (auto& item : items) s.store.insert(std::move(item));
            });
  // Pointer repair messages.
  const PeerId pred_id = n.predecessor_id;
  const PeerId suc_id = n.successor_id;
  net_.send(leaving, pred, TrafficClass::kControl, proto::kControlBytes,
            [this, pred, suc, suc_id] {
              Node& p = node(pred);
              p.successor = suc;
              p.successor_id = suc_id;
            });
  net_.send(leaving, suc, TrafficClass::kControl, proto::kControlBytes,
            [this, suc, pred, pred_id] {
              Node& s = node(suc);
              s.predecessor = pred;
              s.predecessor_id = pred_id;
            });
  net_.set_alive(leaving, false);
}

void ChordNetwork::crash(PeerIndex i) {
  Node& n = node(i);
  n.joined = false;
  net_.set_alive(i, false);  // data is lost with the node
}

void ChordNetwork::store(PeerIndex from, const std::string& key,
                         std::uint64_t value, StoreCallback done) {
  const DataId id = hash_key(key);
  Route route;
  route.origin = from;
  route.target = id.value();
  if (tracer_ != nullptr) {
    route.trace = tracer_->start_trace("store", "store", from.value(),
                                       sim_.now());
    const stats::TraceContext st = route.trace;
    done = [this, st, done = std::move(done)] {
      if (tracer_ != nullptr) tracer_->end_span(st, sim_.now());
      if (done) done();
    };
  }
  proto::DataItem item{id, key, value, from};
  route_to_owner(from, route, TrafficClass::kData, proto::kDataBytes,
                 [this, item = std::move(item), done = std::move(done)](
                     PeerIndex owner, const Route&) {
                   node(owner).store.insert(item);
                   if (done) done();
                 });
}

void ChordNetwork::lookup(PeerIndex from, const std::string& key,
                          LookupCallback done) {
  const DataId id = hash_key(key);
  const sim::SimTime started = sim_.now();

  stats::TraceContext trace;
  if (tracer_ != nullptr) {
    trace = tracer_->start_trace("lookup", "lookup", from.value(), sim_.now());
    tracer_->add_arg(trace, "target", static_cast<std::int64_t>(id.value()));
  }

  // Shared completion state: first of {data reply, negative reply, timeout}
  // wins.
  struct Pending {
    bool finished = false;
    sim::TimerId timer{};
  };
  auto pending = std::make_shared<Pending>();
  auto finish = [this, pending, done, trace](proto::LookupResult r) {
    if (pending->finished) return;
    pending->finished = true;
    sim_.cancel(pending->timer);
    if (tracer_ != nullptr && trace.valid()) {
      tracer_->add_arg(trace, "success", r.success ? 1 : 0);
      tracer_->end_span(trace, sim_.now());
    }
    done(r);
  };

  pending->timer = sim_.schedule_after(
      params_.lookup_timeout, [finish] { finish(proto::LookupResult{}); });

  Route route;
  route.origin = from;
  route.target = id.value();
  route.trace = trace;
  route_to_owner(
      from, route, TrafficClass::kQuery, proto::kQueryBytes,
      [this, id, from, started, finish](PeerIndex owner, const Route& r) {
        const proto::DataItem* item = node(owner).store.find(id);
        const bool hit = item != nullptr;
        stats::TraceContext reply;
        if (tracer_ != nullptr && r.trace.valid()) {
          reply = tracer_->begin_span(r.trace, "reply", "reply",
                                      owner.value(), sim_.now());
        }
        // Reply travels directly back to the requester: data on hit,
        // a small negative ack on miss.
        net_.send(owner, from,
                  hit ? TrafficClass::kData : TrafficClass::kControl,
                  hit ? proto::kDataBytes : proto::kControlBytes,
                  reply.valid() ? reply : r.trace,
                  [this, owner, r, started, hit, reply, finish] {
                    if (tracer_ != nullptr && reply.valid()) {
                      tracer_->end_span(reply, sim_.now());
                    }
                    proto::LookupResult result;
                    result.success = hit;
                    result.latency = sim_.now() - started;
                    result.request_hops = r.hops;
                    result.peers_contacted = r.contacted + 1;  // + owner
                    result.found_at = hit ? owner : kNoPeer;
                    finish(result);
                  });
      });
}

void ChordNetwork::start_maintenance(Rng& rng) {
  maintenance_started_ = true;
  maintenance_rng_ = &rng;
  for (auto& n : nodes_) {
    if (n.joined) schedule_maintenance(n.self, rng);
  }
}

void ChordNetwork::schedule_maintenance(PeerIndex i, Rng& rng) {
  // Desynchronize nodes with a random phase so stabilization traffic does
  // not arrive in lockstep bursts.
  const auto phase = sim::SimTime::micros(static_cast<std::int64_t>(
      rng.uniform(0, static_cast<std::uint64_t>(
                         params_.stabilize_interval.as_micros()))));
  sim_.schedule_after(phase, [this, i] { maintenance_tick(i); });
}

void ChordNetwork::maintenance_tick(PeerIndex i) {
  // Periodic stabilize + fix-fingers; stops for good once the node dies.
  if (!net_.alive(i)) return;
  if (node(i).joined) {
    stabilize(i);
    fix_next_finger(i);
  }
  sim_.schedule_after(params_.stabilize_interval,
                      [this, i] { maintenance_tick(i); });
}

void ChordNetwork::stabilize(PeerIndex i) {
  Node& n = node(i);
  if (n.successor == kNoPeer || n.successor == i) return;
  if (n.probe_outstanding) return;
  n.probe_outstanding = true;
  const PeerIndex suc = n.successor;

  n.probe_timer = sim_.schedule_after(params_.probe_timeout,
                                      [this, i] { handle_probe_timeout(i); });

  // Ask the successor for its predecessor and successor list.
  net_.send(i, suc, TrafficClass::kControl, proto::kControlBytes,
            [this, i, suc] {
    Node& s = node(suc);
    if (!s.joined) return;  // timeout at i will repair
    const PeerIndex s_pred = s.predecessor;
    const PeerId s_pred_id = s.predecessor_id;
    // Snapshot of successor's own successor list for fault tolerance.
    auto s_list = s.successor_list;
    s_list.insert(s_list.begin(), {s.self, s.id});
    if (s_list.size() > params_.successor_list_size) {
      s_list.resize(params_.successor_list_size);
    }
    net_.send(suc, i, TrafficClass::kControl, proto::kControlBytes,
              [this, i, suc, s_pred, s_pred_id, s_list = std::move(s_list)] {
      Node& me = node(i);
      if (me.probe_timer.valid()) sim_.cancel(me.probe_timer);
      me.probe_outstanding = false;
      me.successor_list = s_list;
      // Adopt successor's predecessor when it sits between us.
      if (s_pred != kNoPeer && s_pred != i &&
          ring::in_arc_open_open(s_pred_id.value(), me.id.value(),
                                 me.successor_id.value()) &&
          node(s_pred).joined) {
        me.successor = s_pred;
        me.successor_id = s_pred_id;
      }
      // notify(successor): tell it we believe we are its predecessor.
      const PeerIndex cur_suc = me.successor;
      net_.send(i, cur_suc, TrafficClass::kControl, proto::kControlBytes,
                [this, i, cur_suc] {
                  Node& s2 = node(cur_suc);
                  const Node& me2 = node(i);
                  if (!s2.joined) return;
                  if (s2.predecessor == kNoPeer ||
                      s2.predecessor == cur_suc ||
                      !node(s2.predecessor).joined ||
                      ring::in_arc_open_open(me2.id.value(),
                                             s2.predecessor_id.value(),
                                             s2.id.value())) {
                    s2.predecessor = i;
                    s2.predecessor_id = me2.id;
                  }
                });
    });
    (void)suc;
  });
}

void ChordNetwork::handle_probe_timeout(PeerIndex i) {
  Node& n = node(i);
  n.probe_outstanding = false;
  // Successor presumed dead: fail over to the next live successor-list
  // entry.
  n.fingers.evict(n.successor);
  for (const auto& [cand, cand_id] : n.successor_list) {
    if (cand != n.successor && cand != i && node(cand).joined &&
        net_.alive(cand)) {
      n.successor = cand;
      n.successor_id = cand_id;
      return;
    }
  }
  // No candidate: collapse to a self-ring; future joins can rebuild.
  n.successor = i;
  n.successor_id = n.id;
}

void ChordNetwork::fix_next_finger(PeerIndex i) {
  Node& n = node(i);
  const unsigned k = n.next_finger_to_fix;
  n.next_finger_to_fix = (k + 1) % FingerTable::size();
  Route route;
  route.origin = i;
  route.target = n.fingers.entry(k).start;
  route_to_owner(i, route, TrafficClass::kControl, proto::kControlBytes,
                 [this, i, k](PeerIndex owner, const Route&) {
                   // Owner of the finger start is the finger target; report
                   // back (one control message) and install.
                   const PeerId owner_id = node(owner).id;
                   net_.send(owner, i, TrafficClass::kControl,
                             proto::kControlBytes, [this, i, k, owner, owner_id] {
                               node(i).fingers.set(k, owner, owner_id);
                             });
                 });
}

ChordNetwork::NodeView ChordNetwork::view(PeerIndex i) const {
  const Node& n = node(i);
  return NodeView{n.id,     n.successor,       n.predecessor,
                  n.joined, net_.alive(n.self), n.store.size()};
}

const proto::DataStore& ChordNetwork::store_of(PeerIndex i) const {
  return node(i).store;
}

bool ChordNetwork::verify_ring(PeerIndex start, std::size_t expected) const {
  if (expected == 0) return true;
  PeerIndex at = start;
  std::size_t seen = 0;
  do {
    const Node& n = node(at);
    if (!n.joined) return false;
    // Successor's predecessor must point back.
    const Node& s = node(n.successor);
    if (s.predecessor != at) return false;
    at = n.successor;
    if (++seen > expected) return false;
  } while (at != start);
  return seen == expected;
}

std::size_t ChordNetwork::total_items() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) {
    if (n.joined) total += n.store.size();
  }
  return total;
}

bool ChordNetwork::placement_consistent() const {
  for (const auto& n : nodes_) {
    if (!n.joined) continue;
    bool ok = true;
    n.store.for_each([&](const proto::DataItem& item) {
      if (!ring::in_arc_open_closed(item.id.value(),
                                    n.predecessor_id.value(),
                                    n.id.value())) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  return true;
}

}  // namespace hp2p::chord
