// Per-operation measurement records shared by all overlays; these map 1:1
// to the metrics of Section 4 and Section 6 of the paper.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace hp2p::proto {

/// Outcome of one lookup(key) call.
struct LookupResult {
  bool success = false;
  /// Requester-side wall time from issuing the lookup to receiving the data
  /// (Section 4.2 definition); meaningful only when success.
  sim::SimTime latency{};
  /// Overlay hops the request traversed before the data was found.
  std::uint32_t request_hops = 0;
  /// Number of peers this lookup contacted (the per-lookup contribution to
  /// the paper's `connum`, Table 2).
  std::uint32_t peers_contacted = 0;
  /// Peer where the item was found; kNoPeer on failure.
  PeerIndex found_at = kNoPeer;
  /// Content token of the item that answered (DataItem::value); meaningful
  /// only when success.  Swarm workloads compare it against the expected
  /// piece hash for end-to-end integrity.
  std::uint64_t value = 0;
  /// True when the failure was detected immediately (e.g. the requester has
  /// no upward path into the overlay) instead of waiting out the timeout.
  bool fast_fail = false;
};

/// Outcome of one join.
struct JoinResult {
  /// Time from sending the join request to being inserted (Section 4.1).
  sim::SimTime latency{};
  /// Overlay hops the join request passed.
  std::uint32_t request_hops = 0;
};

/// Running aggregation of lookup outcomes.
struct LookupStats {
  std::uint64_t issued = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t fast_failed = 0;  // subset of failed: no timeout was waited
  std::uint64_t total_peers_contacted = 0;  // the paper's connum
  double total_success_latency_ms = 0;
  std::uint64_t total_success_hops = 0;

  void record(const LookupResult& r) {
    ++issued;
    total_peers_contacted += r.peers_contacted;
    if (r.success) {
      ++succeeded;
      total_success_latency_ms += r.latency.as_millis();
      total_success_hops += r.request_hops;
    } else {
      ++failed;
      if (r.fast_fail) ++fast_failed;
    }
  }

  [[nodiscard]] double failure_ratio() const {
    return issued == 0 ? 0.0
                       : static_cast<double>(failed) /
                             static_cast<double>(issued);
  }
  [[nodiscard]] double mean_success_latency_ms() const {
    return succeeded == 0 ? 0.0
                          : total_success_latency_ms /
                                static_cast<double>(succeeded);
  }
  [[nodiscard]] double mean_success_hops() const {
    return succeeded == 0 ? 0.0
                          : static_cast<double>(total_success_hops) /
                                static_cast<double>(succeeded);
  }
};

}  // namespace hp2p::proto
