// Per-peer data store for (key, value) items.
//
// A data item is the paper's (key, value) pair: the key hashes to a d_id and
// the value is modeled as an opaque token (we account for its wire size, not
// its contents).  All three overlays use this store.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/hashing.hpp"
#include "common/ids.hpp"
#include "common/ring_math.hpp"

namespace hp2p::proto {

/// One stored data item.
struct DataItem {
  DataId id;                 // hash of key
  std::string key;           // label/name (e.g. file name)
  std::uint64_t value = 0;   // opaque content token
  PeerIndex origin = kNoPeer;  // peer that generated the item
  /// Replication tag: true for a non-primary copy held purely for
  /// durability.  Replica copies answer lookups like any other item but are
  /// exempt from re-homing (a replica legitimately lives away from the copy
  /// that owns its placement).
  bool replica = false;
};

/// Id-indexed store; lookup by d_id is O(log n).  Distinct keys colliding on
/// the same d_id are all kept (chained), matching hash-table semantics.
/// Ordered by d_id so for_each()/extract_*() enumerate deterministically --
/// their output feeds keyword results and load transfers on the sim path,
/// where unordered iteration would leak the allocator's layout into runs.
class DataStore {
 public:
  void insert(DataItem item) {
    items_[item.id].push_back(std::move(item));
    ++size_;
  }

  /// First item with this d_id, if any (exact-match lookup semantics).
  [[nodiscard]] const DataItem* find(DataId id) const {
    const auto it = items_.find(id);
    if (it == items_.end() || it->second.empty()) return nullptr;
    return &it->second.front();
  }

  /// Item with this exact key, if any.
  [[nodiscard]] const DataItem* find_key(DataId id,
                                         const std::string& key) const {
    const auto it = items_.find(id);
    if (it == items_.end()) return nullptr;
    for (const auto& item : it->second) {
      if (item.key == key) return &item;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(DataId id) const {
    return items_.find(id) != items_.end();
  }

  /// Idempotent insert used on the replication paths: a copy that matches an
  /// existing (id, key) pair upgrades the stored item's primary-ness instead
  /// of chaining a duplicate (primary wins over replica).  Returns true iff
  /// the item was actually added.
  bool merge(DataItem item) {
    auto it = items_.find(item.id);
    if (it != items_.end()) {
      for (auto& existing : it->second) {
        if (existing.key == item.key) {
          existing.replica = existing.replica && item.replica;
          return false;
        }
      }
    }
    insert(std::move(item));
    return true;
  }

  /// Sorted ids held in the ring arc (from, to]; the anti-entropy digest.
  [[nodiscard]] std::vector<DataId> ids_in_arc(PeerId from, PeerId to) const {
    std::vector<DataId> out;
    for (const auto& [id, chain] : items_) {
      if (chain.empty()) continue;
      if (ring::in_arc_open_closed(id.value(), from.value(), to.value())) {
        out.push_back(id);
      }
    }
    return out;
  }

  /// Removes and returns all items with d_id in the half-open ring arc
  /// (from, to]; the paper's load-transfer primitive.
  [[nodiscard]] std::vector<DataItem> extract_arc(PeerId from, PeerId to);

  /// Removes and returns everything (the paper's loaddump()).
  [[nodiscard]] std::vector<DataItem> extract_all();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Iterates items (read-only).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, chain] : items_) {
      for (const auto& item : chain) fn(item);
    }
  }

 private:
  std::map<DataId, std::vector<DataItem>> items_;
  std::size_t size_ = 0;
};

inline std::vector<DataItem> DataStore::extract_arc(PeerId from, PeerId to) {
  std::vector<DataItem> out;
  for (auto it = items_.begin(); it != items_.end();) {
    if (ring::in_arc_open_closed(it->first.value(), from.value(),
                                 to.value())) {
      for (auto& item : it->second) out.push_back(std::move(item));
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  size_ -= out.size();
  return out;
}

inline std::vector<DataItem> DataStore::extract_all() {
  std::vector<DataItem> out;
  out.reserve(size_);
  for (auto& [id, chain] : items_) {
    for (auto& item : chain) out.push_back(std::move(item));
  }
  items_.clear();
  size_ = 0;
  return out;
}

}  // namespace hp2p::proto
