// Overlay message transport.
//
// All three overlays (Chord baseline, Gnutella baseline, hybrid system) move
// messages through this class.  It is deliberately type-erased: a "message"
// is a closure that runs at the receiver when delivery completes, so each
// protocol keeps fully typed handlers while the transport provides the
// shared physics -- propagation delay from the underlay shortest path,
// optional access-link transmission delay (Section 5.1 heterogeneity),
// silent drops to crashed peers, and the accounting every experiment needs
// (message counts, bytes, link stress).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/inline_function.hpp"
#include "common/rng.hpp"
#include "net/underlay.hpp"
#include "sim/simulator.hpp"
#include "stats/trace.hpp"

namespace hp2p::stats {
class Profiler;
}  // namespace hp2p::stats

namespace hp2p::proto {

/// Traffic classes, for per-category accounting in the benches.
enum class TrafficClass : std::uint8_t {
  kControl,    // join/leave/stabilization handshakes
  kQuery,      // lookup requests (flooding / ring forwarding)
  kData,       // data-item transfers (stores, lookup replies)
  kHeartbeat,  // HELLO and acknowledgment messages
  kCount_,     // sentinel
};

inline constexpr std::size_t kNumTrafficClasses =
    static_cast<std::size_t>(TrafficClass::kCount_);

/// Stable snake_case name for metric keys and profile attribution.
[[nodiscard]] const char* traffic_class_name(TrafficClass cls);

/// Nominal wire sizes (bytes) per message family.  Only ratios matter: they
/// feed the transmission-delay term and the bandwidth accounting.
inline constexpr std::uint32_t kControlBytes = 64;
inline constexpr std::uint32_t kQueryBytes = 128;
inline constexpr std::uint32_t kDataBytes = 8192;
inline constexpr std::uint32_t kHeartbeatBytes = 32;

/// Why a message (or a whole routing attempt) was abandoned.  The first
/// three are observed by the transport itself; the last two are reported by
/// the protocols via note_drop() because only they know a TTL ran out or a
/// route dead-ended.
enum class DropReason : std::uint8_t {
  kDeadSender,    // sender crashed before send
  kDeadReceiver,  // receiver crashed before delivery
  kLoss,          // random in-transit loss
  kTtlExhausted,  // flood/walk TTL reached zero
  kNoRoute,       // routing dead end (no live successor / orphaned peer)
  kCount_,        // sentinel
};

inline constexpr std::size_t kNumDropReasons =
    static_cast<std::size_t>(DropReason::kCount_);

/// Stable snake_case name for metric keys and trace annotations.
[[nodiscard]] const char* drop_reason_name(DropReason reason);

/// Aggregate transport counters.
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // receiver dead at delivery time
  std::uint64_t messages_lost = 0;     // random in-transit loss
  /// Sent but fate undecided (still propagating).  At any instant
  /// sent == delivered + dead-receiver drops + in_flight -- the conservation
  /// law the OverlayAuditor asserts.
  std::uint64_t messages_in_flight = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t per_class_messages[kNumTrafficClasses] = {};
  std::uint64_t per_class_bytes[kNumTrafficClasses] = {};
  std::uint64_t drops_by_reason[kNumDropReasons] = {};

  [[nodiscard]] std::uint64_t class_messages(TrafficClass c) const {
    return per_class_messages[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t class_bytes(TrafficClass c) const {
    return per_class_bytes[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t reason_drops(DropReason r) const {
    return drops_by_reason[static_cast<std::size_t>(r)];
  }
};

/// One transport-level trace record, delivered to the optional trace
/// callback.  kSend fires at send time; the other kinds fire when the
/// message's fate is decided (delivery, receiver-dead drop, in-transit
/// loss, sender-dead drop at send time).
struct NetTraceEvent {
  /// kDropTtl / kDropNoRoute come from note_drop() (protocol-level); the
  /// rest from the transport itself.
  enum class Kind {
    kSend,
    kDeliver,
    kDropDeadSender,
    kDropDeadReceiver,
    kLoss,
    kDropTtl,
    kDropNoRoute,
  };
  Kind kind;
  PeerIndex from;
  PeerIndex to;
  TrafficClass cls;
  std::uint32_t bytes;
};

/// Verdict of the optional fault hook for one message: drop it outright
/// (accounted exactly like random in-transit loss) and/or stretch its
/// transit by `extra_delay`.  The chaos engine composes loss bursts,
/// latency storms and partitions out of these two primitives.
struct FaultAction {
  bool drop = false;
  sim::Duration extra_delay{};
};

/// Transport options.
struct OverlayNetworkOptions {
  /// Adds bytes/access-link-capacity to every hop (Section 5.1 model).
  bool model_transmission_delay = false;
  /// Tracks per-physical-edge message copies (link stress, costs one path
  /// walk per message).
  bool track_link_stress = false;
  /// Probability that any message is silently lost in transit
  /// (failure-injection knob; 0 = reliable, the paper's assumption).
  double loss_rate = 0.0;
  /// Seed of the loss process (independent of protocol randomness).
  std::uint64_t loss_seed = 0x10552eed;
  /// Link-stress counter storage: kAuto switches to a sparse hash map past
  /// LinkStress::kSparseThreshold edges (identical reported values).
  net::LinkStress::Mode link_stress_mode = net::LinkStress::Mode::kAuto;
};

/// The transport.  One instance per simulation replica.
class OverlayNetwork {
 public:
  /// Receiver-side continuation of one message.  Inline capacity covers
  /// every protocol handler closure on the hot path; oversized closures
  /// still work, they just heap-allocate (see InlineFunction).
  static constexpr std::size_t kDeliveryCapacity = 80;
  using Delivery = InlineFunction<void(), kDeliveryCapacity>;

  OverlayNetwork(sim::Simulator& simulator, const net::Underlay& underlay,
                 OverlayNetworkOptions options = {});

  /// Registers a peer living on `host`; returns its dense index.
  PeerIndex add_peer(HostIndex host);

  [[nodiscard]] std::uint32_t num_peers() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  [[nodiscard]] HostIndex host_of(PeerIndex peer) const {
    return hosts_[peer.value()];
  }
  [[nodiscard]] bool alive(PeerIndex peer) const {
    return alive_[peer.value()];
  }

  /// Marks a peer dead (crash) or resurrected.  In-flight messages to a dead
  /// peer are dropped at delivery time -- exactly the paper's crash model.
  void set_alive(PeerIndex peer, bool is_alive) {
    alive_[peer.value()] = is_alive;
    ++liveness_epoch_;
  }

  /// Bumped on every set_alive(); lets higher layers cache liveness-derived
  /// snapshots (e.g. HybridSystem::live_peers) without hooking every crash
  /// and leave path.
  [[nodiscard]] std::uint64_t liveness_epoch() const {
    return liveness_epoch_;
  }

  /// Sends one overlay message: schedules `deliver` at
  /// now + propagation(+transmission).  No-op (counted as dropped) when the
  /// sender is dead; delivery is suppressed when the receiver is dead then.
  void send(PeerIndex from, PeerIndex to, TrafficClass cls,
            std::uint32_t bytes, Delivery deliver) {
    send(from, to, cls, bytes, stats::TraceContext{}, std::move(deliver));
  }

  /// Traced send: `ctx` is the causal header the protocols propagate.  When
  /// a span recorder is installed and `ctx` is valid, the message's transit
  /// becomes a "net" child span (annotated with destination and bytes, and
  /// with its fate on drop/loss).
  void send(PeerIndex from, PeerIndex to, TrafficClass cls,
            std::uint32_t bytes, stats::TraceContext ctx, Delivery deliver);

  /// Protocol-level drop report (TTL exhausted, no route): bumps the
  /// per-reason counter, emits a NetTraceEvent, and -- when traced --
  /// records an instant under `ctx`.  Transport-level reasons are counted
  /// by send() itself.
  void note_drop(PeerIndex at, DropReason reason, TrafficClass cls,
                 stats::TraceContext ctx = {});

  /// Latency of a single overlay hop, as send() would charge it.
  [[nodiscard]] sim::SimTime hop_latency(PeerIndex from, PeerIndex to,
                                         std::uint32_t bytes) const;

  /// Messages this peer has sent / had delivered to it -- the raw material
  /// of the paper's t-peer vs s-peer load-imbalance argument (Section 5.1).
  [[nodiscard]] std::uint64_t messages_sent_by(PeerIndex peer) const {
    return sent_by_[peer.value()];
  }
  [[nodiscard]] std::uint64_t messages_received_by(PeerIndex peer) const {
    return received_by_[peer.value()];
  }

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const net::Underlay& underlay() const { return underlay_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] const net::LinkStress* link_stress() const {
    return link_stress_ ? &*link_stress_ : nullptr;
  }

  using TraceFn = std::function<void(const NetTraceEvent&)>;
  /// Installs (or, with an empty function, removes) a trace callback invoked
  /// on every send/deliver/drop/loss.  One predicted branch per message when
  /// unset.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Installs (or, with nullptr, removes) the span recorder that traced
  /// sends and note_drop() report into.  Not owned.
  void set_span_recorder(stats::SpanRecorder* recorder) { spans_ = recorder; }
  [[nodiscard]] stats::SpanRecorder* span_recorder() const { return spans_; }

  /// Installs (or, with nullptr, removes) the dispatch profiler that
  /// per-message-type delivery time and bytes are attributed to.  Not
  /// owned.  One predicted branch per delivery when unset.
  void set_profiler(stats::Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] stats::Profiler* profiler() const { return profiler_; }

  using FaultFn = std::function<FaultAction(PeerIndex from, PeerIndex to,
                                            TrafficClass cls,
                                            std::uint32_t bytes)>;
  /// Installs (or, with an empty function, removes) the fault hook consulted
  /// on every live-sender send, after the random-loss roll.  A `drop`
  /// verdict is indistinguishable from random loss in every counter and
  /// trace record, so the conservation law the auditor checks still holds;
  /// `extra_delay` is added to the hop latency of that one message.
  void set_fault(FaultFn fn) { fault_ = std::move(fn); }

 private:
  sim::Simulator& simulator_;
  const net::Underlay& underlay_;
  OverlayNetworkOptions options_;
  std::vector<HostIndex> hosts_;
  std::vector<bool> alive_;
  std::uint64_t liveness_epoch_ = 0;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
  NetworkStats stats_;
  std::optional<net::LinkStress> link_stress_;
  Rng loss_rng_;
  TraceFn trace_;
  FaultFn fault_;
  stats::SpanRecorder* spans_ = nullptr;
  stats::Profiler* profiler_ = nullptr;
};

}  // namespace hp2p::proto
