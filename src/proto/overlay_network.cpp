#include "proto/overlay_network.hpp"

#include <utility>

#include "stats/profiler.hpp"

namespace hp2p::proto {

const char* traffic_class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kQuery: return "query";
    case TrafficClass::kData: return "data";
    case TrafficClass::kHeartbeat: return "heartbeat";
    case TrafficClass::kCount_: break;
  }
  return "unknown";
}

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kDeadSender: return "dead_sender";
    case DropReason::kDeadReceiver: return "dead_receiver";
    case DropReason::kLoss: return "loss";
    case DropReason::kTtlExhausted: return "ttl_exhausted";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kCount_: break;
  }
  return "unknown";
}

OverlayNetwork::OverlayNetwork(sim::Simulator& simulator,
                               const net::Underlay& underlay,
                               OverlayNetworkOptions options)
    : simulator_(simulator), underlay_(underlay), options_(options),
      loss_rng_(options.loss_seed) {
  if (options_.track_link_stress) {
    link_stress_.emplace(underlay_.topology().graph.num_edges(),
                         options_.link_stress_mode);
  }
}

PeerIndex OverlayNetwork::add_peer(HostIndex host) {
  hosts_.push_back(host);
  alive_.push_back(true);
  sent_by_.push_back(0);
  received_by_.push_back(0);
  return PeerIndex{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

sim::SimTime OverlayNetwork::hop_latency(PeerIndex from, PeerIndex to,
                                         std::uint32_t bytes) const {
  const HostIndex src = host_of(from);
  const HostIndex dst = host_of(to);
  sim::SimTime delay = underlay_.latency(src, dst);
  if (options_.model_transmission_delay) {
    delay += underlay_.transmission_delay(src, dst, bytes);
  }
  return delay;
}

void OverlayNetwork::send(PeerIndex from, PeerIndex to, TrafficClass cls,
                          std::uint32_t bytes, stats::TraceContext ctx,
                          Delivery deliver) {
  using Kind = NetTraceEvent::Kind;
  if (!alive(from)) {
    ++stats_.messages_dropped;
    ++stats_.drops_by_reason[static_cast<std::size_t>(DropReason::kDeadSender)];
    if (trace_) trace_({Kind::kDropDeadSender, from, to, cls, bytes});
    if (spans_ != nullptr && ctx.valid()) {
      spans_->instant(ctx, "drop:dead_sender", from.value(), simulator_.now());
    }
    return;
  }
  sim::Duration fault_delay{};
  bool fault_drop = false;
  if (fault_) {
    const FaultAction action = fault_(from, to, cls, bytes);
    fault_drop = action.drop;
    fault_delay = action.extra_delay;
  }
  if (fault_drop ||
      (options_.loss_rate > 0.0 && loss_rng_.chance(options_.loss_rate))) {
    ++stats_.messages_lost;  // lost in transit; sender pays nothing extra
    ++stats_.drops_by_reason[static_cast<std::size_t>(DropReason::kLoss)];
    if (trace_) trace_({Kind::kLoss, from, to, cls, bytes});
    if (spans_ != nullptr && ctx.valid()) {
      spans_->instant(ctx, "drop:loss", from.value(), simulator_.now(), "to",
                      to.value());
    }
    return;
  }
  ++stats_.messages_sent;
  ++stats_.messages_in_flight;
  ++sent_by_[from.value()];
  stats_.bytes_sent += bytes;
  ++stats_.per_class_messages[static_cast<std::size_t>(cls)];
  stats_.per_class_bytes[static_cast<std::size_t>(cls)] += bytes;
  if (trace_) trace_({Kind::kSend, from, to, cls, bytes});

  if (link_stress_) {
    underlay_.for_each_path_edge(host_of(from), host_of(to),
                                 [&](net::EdgeIndex e) { link_stress_->bump(e); });
  }

  stats::TraceContext msg_span;
  if (spans_ != nullptr && ctx.valid()) {
    msg_span = spans_->begin_span(ctx, "msg", "net", from.value(),
                                  simulator_.now());
    spans_->add_arg(msg_span, "to", to.value());
    spans_->add_arg(msg_span, "bytes", bytes);
  }

  const sim::SimTime delay = hop_latency(from, to, bytes) + fault_delay;
  // Footprint for the verify/ explorer's independence relation: a heartbeat,
  // query or data delivery only touches the records of the two endpoints
  // (note_heard mutates *both* the receiver's last_heard and the sender's
  // tree pointers), so deliveries on disjoint peer pairs commute.  Control
  // messages restructure the overlay (joins, ring repair, server
  // competition) and stay wildcard-ordered against everything.
  const sim::FootprintScope fps{
      simulator_, cls == TrafficClass::kControl
                      ? sim::Footprint::wild()
                      : sim::Footprint::on({from.value(), to.value()})};
  simulator_.schedule_after(
      delay, [this, from, to, cls, bytes, msg_span,
              deliver = std::move(deliver)]() mutable {
        --stats_.messages_in_flight;
        if (!alive(to)) {
          ++stats_.messages_dropped;
          ++stats_.drops_by_reason[static_cast<std::size_t>(
              DropReason::kDeadReceiver)];
          if (trace_) trace_({Kind::kDropDeadReceiver, from, to, cls, bytes});
          if (spans_ != nullptr && msg_span.valid()) {
            spans_->add_arg(msg_span, "dropped_dead_receiver", 1);
            spans_->end_span(msg_span, simulator_.now());
          }
          return;
        }
        ++stats_.messages_delivered;
        ++received_by_[to.value()];
        if (profiler_ != nullptr) {
          profiler_->message_delivered(static_cast<std::size_t>(cls),
                                       traffic_class_name(cls), bytes);
        }
        if (trace_) trace_({Kind::kDeliver, from, to, cls, bytes});
        if (spans_ != nullptr && msg_span.valid()) {
          spans_->end_span(msg_span, simulator_.now());
        }
        deliver();
      });
}

void OverlayNetwork::note_drop(PeerIndex at, DropReason reason,
                               TrafficClass cls, stats::TraceContext ctx) {
  ++stats_.drops_by_reason[static_cast<std::size_t>(reason)];
  if (trace_) {
    const auto kind = reason == DropReason::kTtlExhausted
                          ? NetTraceEvent::Kind::kDropTtl
                          : NetTraceEvent::Kind::kDropNoRoute;
    trace_({kind, at, at, cls, 0});
  }
  if (spans_ != nullptr && ctx.valid()) {
    spans_->instant(ctx,
                    reason == DropReason::kTtlExhausted ? "drop:ttl_exhausted"
                                                        : "drop:no_route",
                    at.value(), simulator_.now());
  }
}

}  // namespace hp2p::proto
