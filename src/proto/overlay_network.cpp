#include "proto/overlay_network.hpp"

#include <utility>

namespace hp2p::proto {

OverlayNetwork::OverlayNetwork(sim::Simulator& simulator,
                               const net::Underlay& underlay,
                               OverlayNetworkOptions options)
    : simulator_(simulator), underlay_(underlay), options_(options),
      loss_rng_(options.loss_seed) {
  if (options_.track_link_stress) {
    link_stress_.emplace(underlay_.topology().graph.num_edges());
  }
}

PeerIndex OverlayNetwork::add_peer(HostIndex host) {
  hosts_.push_back(host);
  alive_.push_back(true);
  sent_by_.push_back(0);
  received_by_.push_back(0);
  return PeerIndex{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

sim::SimTime OverlayNetwork::hop_latency(PeerIndex from, PeerIndex to,
                                         std::uint32_t bytes) const {
  const HostIndex src = host_of(from);
  const HostIndex dst = host_of(to);
  sim::SimTime delay = underlay_.latency(src, dst);
  if (options_.model_transmission_delay) {
    delay += underlay_.transmission_delay(src, dst, bytes);
  }
  return delay;
}

void OverlayNetwork::send(PeerIndex from, PeerIndex to, TrafficClass cls,
                          std::uint32_t bytes, Delivery deliver) {
  using Kind = NetTraceEvent::Kind;
  if (!alive(from)) {
    ++stats_.messages_dropped;
    if (trace_) trace_({Kind::kDropDeadSender, from, to, cls, bytes});
    return;
  }
  if (options_.loss_rate > 0.0 && loss_rng_.chance(options_.loss_rate)) {
    ++stats_.messages_lost;  // lost in transit; sender pays nothing extra
    if (trace_) trace_({Kind::kLoss, from, to, cls, bytes});
    return;
  }
  ++stats_.messages_sent;
  ++sent_by_[from.value()];
  stats_.bytes_sent += bytes;
  ++stats_.per_class_messages[static_cast<std::size_t>(cls)];
  stats_.per_class_bytes[static_cast<std::size_t>(cls)] += bytes;
  if (trace_) trace_({Kind::kSend, from, to, cls, bytes});

  if (link_stress_) {
    underlay_.for_each_path_edge(host_of(from), host_of(to),
                                 [&](net::EdgeIndex e) { link_stress_->bump(e); });
  }

  const sim::SimTime delay = hop_latency(from, to, bytes);
  simulator_.schedule_after(
      delay, [this, from, to, cls, bytes, deliver = std::move(deliver)]() {
        if (!alive(to)) {
          ++stats_.messages_dropped;
          if (trace_) trace_({Kind::kDropDeadReceiver, from, to, cls, bytes});
          return;
        }
        ++stats_.messages_delivered;
        ++received_by_[to.value()];
        if (trace_) trace_({Kind::kDeliver, from, to, cls, bytes});
        deliver();
      });
}

}  // namespace hp2p::proto
