#include "exp/harness.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <set>

#include "audit/overlay_auditor.hpp"
#include "common/alloc_stats.hpp"
#include "common/env.hpp"
#include "common/proc_stats.hpp"
#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

namespace hp2p::exp {
namespace {

using hybrid::HybridSystem;
using hybrid::Role;

/// Role sequence with exactly round((1-ps) n) t-peers, first peer always a
/// t-peer.  With capacity sorting, t-roles are paired with the fastest
/// hosts by construction in the caller.
std::vector<Role> role_sequence(std::uint32_t n, double ps, bool tpeers_first,
                                Rng& rng) {
  auto n_t = static_cast<std::uint32_t>(
      std::max(1.0, (1.0 - ps) * static_cast<double>(n) + 0.5));
  n_t = std::min(n_t, n);
  std::vector<Role> roles(n, Role::kSPeer);
  for (std::uint32_t i = 0; i < n_t; ++i) roles[i] = Role::kTPeer;
  if (!tpeers_first) {
    std::vector<Role> tail(roles.begin() + 1, roles.end());
    rng.shuffle(tail);
    std::copy(tail.begin(), tail.end(), roles.begin() + 1);
  }
  return roles;
}

}  // namespace

RunResult run_hybrid_experiment(const RunConfig& raw_config) {
  RunConfig config = raw_config;
  // A ring-mode lookup can legitimately walk ~N_t hops at ~100 ms per hop
  // on a transit-stub underlay; a fixed timeout would misclassify long
  // walks as failures (the paper's Table 2 counts full walks).  Scale the
  // deadline with the worst-case walk, never below the configured value.
  const auto walk_bound = sim::SimTime::millis(
      static_cast<std::int64_t>(config.num_peers) * 250 + 15'000);
  if (config.hybrid.lookup_timeout < walk_bound) {
    config.hybrid.lookup_timeout = walk_bound;
  }

  Rng rng{config.seed};
  Rng topo_rng = rng.fork(1);
  Rng build_rng = rng.fork(2);
  Rng op_rng = rng.fork(3);

  // One underlay host per peer plus one for the server, as in the paper's
  // 1,000-node GT-ITM topologies.
  const auto ts_params =
      net::TransitStubParams::for_total_nodes(config.num_peers + 1);
  net::Underlay underlay{net::generate_transit_stub(ts_params, topo_rng),
                         topo_rng};

  sim::Simulator sim;
  proto::OverlayNetworkOptions net_opts;
  net_opts.model_transmission_delay = config.model_transmission_delay;
  net_opts.track_link_stress = config.track_link_stress;
  proto::OverlayNetwork network{sim, underlay, net_opts};

  HybridSystem system{network, config.hybrid, HostIndex{0}, build_rng};

  RunResult result;

  // ---- Observability wiring -------------------------------------------------
  if (config.tracer != nullptr) {
    network.set_span_recorder(config.tracer);
    system.set_tracer(config.tracer);
  }
  if (config.flight != nullptr) {
    attach_flight_recorder(*config.flight, sim, network);
  }
  if (config.profiler != nullptr) {
    sim.set_dispatch_probe(config.profiler);
    network.set_profiler(config.profiler);
  }
  std::optional<stats::TimeSeriesSampler> sampler;
  if (config.sample_period > sim::Duration{}) {
    sampler.emplace(sim, config.sample_period);
    sampler->add_gauge("live_peers", [&system] {
      return static_cast<double>(system.live_peers().size());
    });
    sampler->add_gauge("tpeers", [&system] {
      return static_cast<double>(system.num_tpeers());
    });
    sampler->add_gauge("speers", [&system] {
      return static_cast<double>(system.num_speers());
    });
    sampler->add_gauge("pending_lookups", [&system] {
      return static_cast<double>(system.pending_lookups());
    });
    sampler->add_gauge("messages_sent", [&network] {
      return static_cast<double>(network.stats().messages_sent);
    });
    sampler->add_gauge("messages_delivered", [&network] {
      return static_cast<double>(network.stats().messages_delivered);
    });
    sampler->add_gauge("events_pending", [&sim] {
      return static_cast<double>(sim.pending_events());
    });
    if (config.profiler != nullptr) {
      // Occupancy gauges for profiled runs only: heap and RSS values are
      // allocator/wall-clock dependent, and the repro tests compare
      // profiler-off timeseries byte-for-byte across same-seed runs.
      sampler->add_gauge("arena_slots", [&sim] {
        return static_cast<double>(sim.arena_slots());
      });
      sampler->add_gauge("arena_live_slots", [&sim] {
        return static_cast<double>(sim.arena_live_slots());
      });
      sampler->add_gauge("event_backlog", [&sim] {
        return static_cast<double>(sim.queue_depth());
      });
      sampler->add_gauge("heap_live_bytes", [] {
        return static_cast<double>(alloc_stats::live_bytes());
      });
      sampler->add_gauge("vm_rss_bytes", [] {
        return static_cast<double>(current_rss_bytes());
      });
    }
  }
  // Invariant auditing: explicit period from the config, or a 1 s default
  // behind HP2P_AUDIT=1.  Periodic passes run lenient checks mid-churn; a
  // final pass closes every phase at quiescence.  Debug builds always audit
  // phase boundaries, so churn bugs surface in tests without any opt-in.
  sim::Duration audit_period = config.audit_period;
  if (audit_period == sim::Duration{} && env_or("HP2P_AUDIT", std::int64_t{0}) != 0) {
    audit_period = sim::SimTime::seconds(1);
  }
#ifdef NDEBUG
  const bool audit_phases = audit_period > sim::Duration{};
#else
  const bool audit_phases = true;
#endif
  std::optional<audit::OverlayAuditor> auditor;
  if (audit_phases) {
    auditor.emplace(system, network, sim);
    if (config.flight != nullptr) auditor->set_flight_recorder(config.flight);
    if (audit_period > sim::Duration{}) auditor->set_period(audit_period);
  }

  const auto arm_sampler = [&sampler, &auditor] {
    if (sampler) sampler->ensure_running();
    if (auditor) auditor->ensure_running();
  };

  // Phase timing: host wall clock + simulated span since the last mark.
  // Wall time is measurement output only -- it never feeds back into the
  // simulation, so determinism is preserved.
  // lint:allow(wallclock)
  auto wall_mark = std::chrono::steady_clock::now();
  sim::SimTime sim_mark = sim.now();
  const auto end_phase = [&](const char* name) {
    if (auditor) auditor->run();  // quiescent(ish) audit at the boundary
    // lint:allow(wallclock)
    const auto wall_now = std::chrono::steady_clock::now();
    PhaseTiming timing;
    timing.name = name;
    timing.wall_ms =
        std::chrono::duration<double, std::milli>(wall_now - wall_mark)
            .count();
    timing.sim_ms = (sim.now() - sim_mark).as_millis();
    result.phases.push_back(std::move(timing));
    wall_mark = wall_now;
    sim_mark = sim.now();
  };

  // ---- Build phase ----------------------------------------------------------
  const auto roles = role_sequence(config.num_peers, config.hybrid.ps,
                                   config.tpeers_first, build_rng);
  // Host assignment: peer i -> host i+1 by default.  With capacity-sorted
  // roles, t-peers take the highest-capacity hosts (Section 5.1).
  std::vector<HostIndex> hosts;
  hosts.reserve(config.num_peers);
  for (std::uint32_t i = 0; i < config.num_peers; ++i) {
    hosts.push_back(HostIndex{1 + i % (underlay.num_hosts() - 1)});
  }
  if (config.capacity_sorted_roles) {
    std::vector<HostIndex> sorted = hosts;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](HostIndex a, HostIndex b) {
                       return static_cast<int>(underlay.capacity(a)) >
                              static_cast<int>(underlay.capacity(b));
                     });
    // Fast hosts go to the t-roles (in role order), the rest to s-roles.
    std::size_t fast = 0;
    std::size_t slow = sorted.size();
    for (std::uint32_t i = 0; i < config.num_peers; ++i) {
      hosts[i] = roles[i] == Role::kTPeer ? sorted[fast++] : sorted[--slow];
    }
  }

  std::vector<PeerIndex> peers;
  peers.reserve(config.num_peers);
  std::vector<std::uint32_t> interests(config.num_peers);
  for (auto& interest : interests) {
    interest = static_cast<std::uint32_t>(
        build_rng.index(config.hybrid.num_interests));
  }
  const auto schedule_join = [&](std::uint32_t i, std::int64_t slot) {
    // Tag the driver's events as workload: the join itself re-tags to
    // membership inside add_peer_with_interest, so only the experiment
    // bookkeeping stays attributed here.
    sim::ComponentScope prof{sim, sim::Component::kWorkload};
    sim.schedule_after(
        sim::SimTime::micros(slot * config.join_spacing.as_micros()),
        [&, i] {
          peers.push_back(system.add_peer_with_interest(
              hosts[i], roles[i], interests[i],
              [&result](proto::JoinResult r) {
                ++result.joins_completed;
                result.join_latency_ms.add(r.latency.as_millis());
                result.join_hops.add(static_cast<double>(r.request_hops));
              }));
        });
  };
  if (config.tpeers_first) {
    // Two-phase build: the whole t-network settles (ring walks included)
    // before the first s-peer consults the server, so segment boundaries
    // and interest anchors are final.
    std::int64_t slot = 0;
    for (std::uint32_t i = 0; i < config.num_peers; ++i) {
      if (roles[i] == Role::kTPeer) schedule_join(i, slot++);
    }
    arm_sampler();
    sim.run();
    slot = 0;
    for (std::uint32_t i = 0; i < config.num_peers; ++i) {
      if (roles[i] == Role::kSPeer) schedule_join(i, slot++);
    }
    arm_sampler();
    sim.run();
  } else {
    for (std::uint32_t i = 0; i < config.num_peers; ++i) {
      schedule_join(i, static_cast<std::int64_t>(i));
    }
    arm_sampler();
    sim.run();
  }

  // Finger-accelerated routing needs populated tables; the hybrid paper
  // leaves finger construction to Chord-style maintenance, which we fold
  // into one post-build refresh (see HybridSystem::refresh_all_fingers).
  if (config.hybrid.t_routing == hybrid::TRouting::kFinger) {
    system.refresh_all_fingers();
  }
  end_phase("build");

  // ---- Populate phase -------------------------------------------------------
  std::vector<DataId> stored_ids;
  stored_ids.reserve(config.num_items);
  // Interest-tagged content, bucketed by interest so interest-local
  // lookups can target own-interest items (Section 5.3 workload).
  std::vector<std::vector<DataId>> by_interest(config.hybrid.num_interests);
  const auto corpus = workload::uniform_corpus(config.num_items, config.seed);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    sim::ComponentScope prof{sim, sim::Component::kWorkload};
    sim.schedule_after(
        sim::SimTime::micros(static_cast<std::int64_t>(i) *
                             config.op_spacing.as_micros()),
        [&, i] {
          const auto& live = system.live_peers();
          if (live.empty()) return;
          const PeerIndex origin = live[op_rng.index(live.size())];
          DataId id = corpus[i].id;
          if (config.interest_locality > 0.0 &&
              op_rng.chance(config.interest_locality)) {
            // Publish content of the origin's interest: the id falls in the
            // interest's anchor band, regardless of assignment policy.
            const std::uint32_t interest = system.interest_of(origin);
            id = workload::interest_band_id(op_rng, interest,
                                            config.hybrid.num_interests);
            by_interest[interest].push_back(id);
          }
          stored_ids.push_back(id);
          system.store_id(origin, id, corpus[i].key, corpus[i].value);
        });
  }
  arm_sampler();
  sim.run();
  end_phase("populate");

  // ---- Optional crash / maintenance phase ---------------------------------------
  const bool heartbeats = config.crash_fraction > 0.0 ||
                          config.failure_detection;
  if (heartbeats) {
    system.start_failure_detection();
    if (config.crash_fraction > 0.0) {
      // Snapshot by value: crash() invalidates the live_peers() cache the
      // reference points into.
      auto victims = system.live_peers();
      op_rng.shuffle(victims);
      const auto n_crash = static_cast<std::size_t>(
          config.crash_fraction * static_cast<double>(victims.size()));
      for (std::size_t i = 0; i < n_crash && i < victims.size(); ++i) {
        system.crash(victims[i]);
      }
      // Audit straight after the crash batch: the lenient checks must hold
      // even in the most disturbed state of the run.
      if (auditor) auditor->run();
    }
    arm_sampler();
    sim.run_until(sim.now() + config.recovery_time);
    end_phase("maintenance");
  }

  // ---- Lookup phase -----------------------------------------------------------
  std::optional<workload::ZipfSampler> zipf;
  if (config.zipf_exponent > 0.0 && !stored_ids.empty()) {
    zipf.emplace(stored_ids.size(), config.zipf_exponent);
  }
  const sim::SimTime lookup_phase_start = sim.now();
  for (std::size_t i = 0; i < config.num_lookups; ++i) {
    sim::ComponentScope prof{sim, sim::Component::kWorkload};
    sim.schedule_after(
        sim::SimTime::micros(static_cast<std::int64_t>(i) *
                             config.op_spacing.as_micros()),
        [&] {
          const auto& live = system.live_peers();
          if (live.empty() || stored_ids.empty()) return;
          const std::size_t pool =
              config.lookup_origin_pool > 0
                  ? std::min(config.lookup_origin_pool, live.size())
                  : live.size();
          const PeerIndex origin = live[op_rng.index(pool)];
          DataId target =
              zipf ? stored_ids[zipf->sample(op_rng)]
                   : stored_ids[op_rng.index(stored_ids.size())];
          if (config.interest_locality > 0.0 &&
              op_rng.chance(config.interest_locality)) {
            const auto& mine = by_interest[system.interest_of(origin)];
            if (!mine.empty()) target = mine[op_rng.index(mine.size())];
          }
          system.lookup_id(origin, target,
                           [&result, &config](proto::LookupResult r) {
                             result.lookups.record(r);
                             if (r.success) {
                               result.lookup_latency_ms.add(
                                   r.latency.as_millis());
                               result.lookup_hops.add(
                                   static_cast<double>(r.request_hops));
                             } else if (config.flight != nullptr &&
                                        result.lookups.failed == 1) {
                               // First failure of the run: dump the tail so
                               // the final moments are inspectable.
                               config.flight->dump(std::cerr,
                                                   "first lookup failure");
                             }
                           });
        });
  }
  // Drain: with heartbeats running the queue never empties, so bound the
  // phase explicitly (ops + timeout + slack).
  const auto phase_span = sim::SimTime::micros(
      static_cast<std::int64_t>(config.num_lookups) *
      config.op_spacing.as_micros());
  arm_sampler();
  if (heartbeats) {
    sim.run_until(lookup_phase_start + phase_span +
                  config.hybrid.lookup_timeout + sim::SimTime::seconds(5));
  } else {
    sim.run();
  }
  end_phase("lookup");

  // ---- Collection ----------------------------------------------------------------
  result.items_per_peer = system.items_per_peer();
  result.network = network.stats();
  result.sim_stats = sim.stats();
  result.num_tpeers = system.num_tpeers();
  result.num_speers = system.num_speers();
  result.bypass_installs = system.bypass_installs();
  result.bypass_uses = system.bypass_uses();
  result.max_answers_served = system.max_answers_served();
  result.cache_hits = system.cache_hits();
  result.replica_pushes = system.replica_pushes();
  result.re_replication_pushes = system.re_replication_pushes();
  result.anti_entropy_repairs = system.anti_entropy_repairs();
  result.read_repairs = system.read_repairs();
  {
    // Durability census: which stored ids does some live joined peer still
    // hold?  Ordered set keeps the scan deterministic and dedups the corpus
    // (interest-band collisions can store one id twice).
    std::set<std::uint64_t> stored;
    for (const DataId id : stored_ids) stored.insert(id.value());
    std::set<std::uint64_t> recoverable;
    for (const PeerIndex p : system.live_peers()) {
      if (!system.is_joined(p)) continue;
      system.store_of(p).for_each([&](const proto::DataItem& item) {
        if (stored.count(item.id.value()) > 0) {
          recoverable.insert(item.id.value());
        }
      });
    }
    result.items_stored = stored.size();
    result.items_recoverable = recoverable.size();
  }
  if (network.link_stress() != nullptr) {
    result.mean_link_stress = network.link_stress()->mean_stress();
  }
  for (const PeerIndex p : system.live_peers()) {
    std::size_t degree = system.children_of(p).size();
    if (system.role_of(p) == hybrid::Role::kSPeer) ++degree;
    result.max_tree_degree = std::max(result.max_tree_degree, degree);
  }
  {
    double t_traffic = 0;
    double s_traffic = 0;
    std::size_t t_n = 0;
    std::size_t s_n = 0;
    for (const PeerIndex p : system.live_peers()) {
      const double traffic =
          static_cast<double>(network.messages_sent_by(p) +
                              network.messages_received_by(p));
      if (system.role_of(p) == hybrid::Role::kTPeer) {
        t_traffic += traffic;
        ++t_n;
      } else {
        s_traffic += traffic;
        ++s_n;
      }
    }
    result.mean_tpeer_traffic = t_n > 0 ? t_traffic / static_cast<double>(t_n) : 0;
    result.mean_speer_traffic = s_n > 0 ? s_traffic / static_cast<double>(s_n) : 0;
  }
  if (network.link_stress() != nullptr) {
    result.max_link_stress = network.link_stress()->max_stress();
  }
  if (sampler) {
    sampler->sample_now();  // closing sample at the final sim time
    result.timeseries = sampler->take();
  }
  if (auditor) {
    result.audit_runs = auditor->runs();
    result.audit_violations = auditor->total_violations();
    if (result.audit_violations > 0) {
      // Loud even when the caller never exports these counters (figure-curve
      // replicas aggregate only their plotted metrics).
      std::cerr << "warning: overlay audit found " << result.audit_violations
                << " violation(s): "
                << auditor->last_failing_report().to_json().dump() << "\n";
    }
  }
  return result;
}

void attach_flight_recorder(stats::FlightRecorder& flight, sim::Simulator& sim,
                            proto::OverlayNetwork& network) {
  sim.set_trace([&flight, &sim](const sim::TraceEvent& e) {
    const char* kind = "sim:schedule";
    switch (e.kind) {
      case sim::TraceEvent::Kind::kSchedule: kind = "sim:schedule"; break;
      case sim::TraceEvent::Kind::kFire: kind = "sim:fire"; break;
      case sim::TraceEvent::Kind::kCancel: kind = "sim:cancel"; break;
    }
    flight.record(sim.now(), kind, e.seq,
                  static_cast<std::uint64_t>(e.when.as_micros()));
  });
  network.set_trace([&flight, &sim](const proto::NetTraceEvent& e) {
    const char* kind = "net:send";
    switch (e.kind) {
      case proto::NetTraceEvent::Kind::kSend: kind = "net:send"; break;
      case proto::NetTraceEvent::Kind::kDeliver: kind = "net:deliver"; break;
      case proto::NetTraceEvent::Kind::kDropDeadSender:
        kind = "net:drop_dead_sender";
        break;
      case proto::NetTraceEvent::Kind::kDropDeadReceiver:
        kind = "net:drop_dead_receiver";
        break;
      case proto::NetTraceEvent::Kind::kLoss: kind = "net:loss"; break;
      case proto::NetTraceEvent::Kind::kDropTtl: kind = "net:drop_ttl"; break;
      case proto::NetTraceEvent::Kind::kDropNoRoute:
        kind = "net:drop_no_route";
        break;
    }
    flight.record(sim.now(), kind, e.from.value(), e.to.value(), e.bytes);
  });
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

}  // namespace exp
