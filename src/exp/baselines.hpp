// Experiment harnesses for the two pure baselines the paper positions the
// hybrid against: a Chord ring (structured) and a Gnutella mesh
// (unstructured).  Same three phases and the same metrics as
// run_hybrid_experiment, so the comparison bench prints all three systems
// on one table.
#pragma once

#include <cstdint>

#include "chord/chord.hpp"
#include "exp/harness.hpp"
#include "gnutella/gnutella.hpp"

namespace hp2p::exp {

/// Chord replica configuration.
struct ChordRunConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_peers = 1000;
  std::size_t num_items = 2000;
  std::size_t num_lookups = 2000;
  chord::ChordParams chord;
  /// Run stabilization + fix_fingers during the measurement phases.
  bool maintenance = false;
  sim::Duration join_spacing = sim::SimTime::millis(25);
  sim::Duration op_spacing = sim::SimTime::millis(5);
};

/// Gnutella replica configuration.
struct GnutellaRunConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_peers = 1000;
  std::size_t num_items = 2000;
  std::size_t num_lookups = 2000;
  gnutella::GnutellaParams gnutella;
  sim::Duration op_spacing = sim::SimTime::millis(5);
};

/// Runs a full Chord replica (build -> populate -> lookups).
[[nodiscard]] RunResult run_chord_experiment(const ChordRunConfig& config);

/// Runs a full Gnutella replica.  Unstructured stores are local, so the
/// populate phase costs nothing on the wire.
[[nodiscard]] RunResult run_gnutella_experiment(
    const GnutellaRunConfig& config);

}  // namespace hp2p::exp
