#include "exp/metrics_collect.hpp"

namespace hp2p::exp {
namespace {

std::string joined(const std::string& prefix, const char* leaf) {
  return prefix.empty() ? leaf : prefix + "." + leaf;
}

}  // namespace

void collect_sim_stats(stats::MetricsRegistry& reg, const std::string& prefix,
                       const sim::SimulatorStats& s) {
  reg.set(joined(prefix, "events_scheduled"), s.events_scheduled);
  reg.set(joined(prefix, "events_executed"), s.events_executed);
  reg.set(joined(prefix, "events_cancelled"), s.events_cancelled);
  reg.set(joined(prefix, "corpses_skipped"), s.corpses_skipped);
}

void collect_network_stats(stats::MetricsRegistry& reg,
                           const std::string& prefix,
                           const proto::NetworkStats& s) {
  reg.set(joined(prefix, "messages_sent"), s.messages_sent);
  reg.set(joined(prefix, "messages_delivered"), s.messages_delivered);
  reg.set(joined(prefix, "messages_dropped"), s.messages_dropped);
  reg.set(joined(prefix, "messages_lost"), s.messages_lost);
  reg.set(joined(prefix, "messages_in_flight"), s.messages_in_flight);
  reg.set(joined(prefix, "bytes_sent"), s.bytes_sent);
  for (std::size_t i = 0; i < proto::kNumTrafficClasses; ++i) {
    const auto cls = static_cast<proto::TrafficClass>(i);
    const std::string base = joined(prefix, "class") + "." +
                             proto::traffic_class_name(cls);
    reg.set(base + ".messages", s.per_class_messages[i]);
    reg.set(base + ".bytes", s.per_class_bytes[i]);
  }
  for (std::size_t i = 0; i < proto::kNumDropReasons; ++i) {
    const auto reason = static_cast<proto::DropReason>(i);
    reg.set(joined(prefix, "drop") + "." + proto::drop_reason_name(reason),
            s.drops_by_reason[i]);
  }
}

void collect_lookup_stats(stats::MetricsRegistry& reg,
                          const std::string& prefix,
                          const proto::LookupStats& s) {
  reg.set(joined(prefix, "issued"), s.issued);
  reg.set(joined(prefix, "succeeded"), s.succeeded);
  reg.set(joined(prefix, "failed"), s.failed);
  reg.set(joined(prefix, "fast_failed"), s.fast_failed);
  reg.set(joined(prefix, "connum"), s.total_peers_contacted);
  reg.set(joined(prefix, "failure_ratio"), s.failure_ratio());
  reg.set(joined(prefix, "mean_success_latency_ms"),
          s.mean_success_latency_ms());
  reg.set(joined(prefix, "mean_success_hops"), s.mean_success_hops());
}

void collect_run_config(stats::MetricsRegistry& reg, const std::string& prefix,
                        const RunConfig& c) {
  reg.set(joined(prefix, "seed"), c.seed);
  reg.set(joined(prefix, "num_peers"), c.num_peers);
  reg.set(joined(prefix, "num_items"),
          static_cast<std::uint64_t>(c.num_items));
  reg.set(joined(prefix, "num_lookups"),
          static_cast<std::uint64_t>(c.num_lookups));
  reg.set(joined(prefix, "crash_fraction"), c.crash_fraction);
  reg.set(joined(prefix, "interest_locality"), c.interest_locality);
  reg.set(joined(prefix, "zipf_exponent"), c.zipf_exponent);
  reg.set(joined(prefix, "ps"), c.hybrid.ps);
  reg.set(joined(prefix, "delta"), c.hybrid.delta);
  reg.set(joined(prefix, "replication_factor"), c.hybrid.replication_factor);
  reg.set(joined(prefix, "ttl"), c.hybrid.ttl);
  reg.set(joined(prefix, "bypass_links"), c.hybrid.bypass_links);
  reg.set(joined(prefix, "enable_caching"), c.hybrid.enable_caching);
  reg.set(joined(prefix, "cache_capacity"),
          static_cast<std::uint64_t>(c.hybrid.cache_capacity));
}

void collect_run_result(stats::MetricsRegistry& reg, const std::string& prefix,
                        const RunResult& r) {
  collect_lookup_stats(reg, joined(prefix, "lookup"), r.lookups);
  collect_network_stats(reg, joined(prefix, "net"), r.network);
  collect_sim_stats(reg, joined(prefix, "sim"), r.sim_stats);
  reg.collect_summary(joined(prefix, "join_latency_ms"), r.join_latency_ms);
  reg.collect_summary(joined(prefix, "join_hops"), r.join_hops);
  reg.collect_summary(joined(prefix, "lookup_latency_ms"),
                      r.lookup_latency_ms);
  reg.collect_summary(joined(prefix, "lookup_hops"), r.lookup_hops);
  for (const PhaseTiming& t : r.phases) {
    const std::string base = joined(prefix, "phase") + "." + t.name;
    reg.set(base + ".wall_ms", t.wall_ms);
    reg.set(base + ".sim_ms", t.sim_ms);
  }
  reg.set(joined(prefix, "num_tpeers"),
          static_cast<std::uint64_t>(r.num_tpeers));
  reg.set(joined(prefix, "num_speers"),
          static_cast<std::uint64_t>(r.num_speers));
  reg.set(joined(prefix, "joins_completed"),
          static_cast<std::uint64_t>(r.joins_completed));
  reg.set(joined(prefix, "max_tree_degree"),
          static_cast<std::uint64_t>(r.max_tree_degree));
  reg.set(joined(prefix, "bypass_installs"), r.bypass_installs);
  reg.set(joined(prefix, "bypass_uses"), r.bypass_uses);
  reg.set(joined(prefix, "max_answers_served"), r.max_answers_served);
  reg.set(joined(prefix, "cache_hits"), r.cache_hits);
  reg.set(joined(prefix, "max_link_stress"), r.max_link_stress);
  reg.set(joined(prefix, "mean_link_stress"), r.mean_link_stress);
  reg.set(joined(prefix, "mean_tpeer_traffic"), r.mean_tpeer_traffic);
  reg.set(joined(prefix, "mean_speer_traffic"), r.mean_speer_traffic);
  reg.set(joined(prefix, "audit.runs"), r.audit_runs);
  reg.set(joined(prefix, "audit.violations"), r.audit_violations);
  reg.set(joined(prefix, "replication.replica_pushes"), r.replica_pushes);
  reg.set(joined(prefix, "replication.re_replication_pushes"),
          r.re_replication_pushes);
  reg.set(joined(prefix, "replication.anti_entropy_repairs"),
          r.anti_entropy_repairs);
  reg.set(joined(prefix, "replication.read_repairs"), r.read_repairs);
  reg.set(joined(prefix, "replication.items_stored"),
          static_cast<std::uint64_t>(r.items_stored));
  reg.set(joined(prefix, "replication.items_recoverable"),
          static_cast<std::uint64_t>(r.items_recoverable));
  reg.set(joined(prefix, "replication.data_availability"),
          r.data_availability());
}

}  // namespace hp2p::exp
