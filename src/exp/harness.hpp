// Experiment harness: builds a complete simulated deployment of the hybrid
// system (underlay -> transport -> overlay), drives the paper's three
// workload phases (build, populate, lookup; optionally a crash phase in
// between) and returns every metric the evaluation section reports.
//
// Every bench binary is a thin loop over RunConfig values feeding
// run_hybrid_experiment(); multi-replica sweeps go through parallel_map().
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "hybrid/params.hpp"
#include "proto/metrics.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/profiler.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "stats/trace.hpp"

namespace hp2p::exp {

/// Everything one replica needs.  Defaults mirror Section 6: 1,000-node
/// GT-ITM-style underlay, one peer per node, delta = 3.
struct RunConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_peers = 1000;
  std::size_t num_items = 2000;
  std::size_t num_lookups = 2000;

  hybrid::HybridParams hybrid;

  /// Crash this fraction of peers (no load transfer) after the populate
  /// phase; failure detection runs and the system gets recovery_time before
  /// lookups start (Fig. 5b).
  double crash_fraction = 0.0;
  sim::Duration recovery_time = sim::SimTime::seconds(30);

  /// Run HELLO/ack failure detection for recovery_time before the lookup
  /// phase even without crashes -- exposes steady-state maintenance traffic
  /// (implied when crash_fraction > 0).
  bool failure_detection = false;

  /// Section 5.1 role assignment: t-peer roles go to the fastest hosts.
  bool capacity_sorted_roles = false;
  /// Model per-hop transmission delay from access-link capacities.
  bool model_transmission_delay = false;
  /// Track per-physical-link message copies.
  bool track_link_stress = false;

  /// Fraction of stores/lookups that follow the issuing peer's *interest*
  /// (Section 5.3 workload): an interest-local store publishes content
  /// whose id falls in the interest's anchor segment, and an interest-local
  /// lookup targets content of the issuer's interest.  Only with
  /// hybrid.interest_based assignment does this become segment-local
  /// traffic; under random assignment the same workload crosses the
  /// t-network.  0 = uniform workload.
  double interest_locality = 0.0;

  /// When > 0, lookups are issued from a fixed pool of this many peers
  /// instead of uniformly random origins -- repetitive traffic that lets
  /// per-peer caches (bypass links, Section 5.4) pay off.
  std::size_t lookup_origin_pool = 0;

  /// When > 0, lookup targets follow a Zipf(zipf_exponent) popularity
  /// distribution over the stored items instead of uniform choice.
  double zipf_exponent = 0.0;

  /// Admit the whole t-network before any s-peer joins.  Keeps segment
  /// boundaries (and interest anchors) stable during the build; the
  /// interleaved default stresses the concurrent-join machinery instead.
  bool tpeers_first = false;

  /// Build/operation pacing (simulated time).
  sim::Duration join_spacing = sim::SimTime::millis(25);
  sim::Duration op_spacing = sim::SimTime::millis(5);

  // --- Observability (all optional, none owned) -----------------------------

  /// Span recorder wired into the transport and the hybrid system; every
  /// store/lookup then records a causal span tree (export with
  /// write_catapult(), reduce with collect_critical_path()).
  stats::SpanRecorder* tracer = nullptr;

  /// When > 0, snapshot the harness gauges (live peers, t/s-network sizes,
  /// pending lookups, message counters, event-queue depth) every
  /// `sample_period` of simulated time into RunResult::timeseries.
  sim::Duration sample_period{};

  /// Flight recorder attached to the sim/net trace hooks (replacing any
  /// callbacks installed there); the harness dumps its tail to stderr on
  /// the first failed lookup of the run.
  stats::FlightRecorder* flight = nullptr;

  /// When > 0, run a lenient OverlayAuditor pass every `audit_period` of
  /// simulated time, plus once at the end of every phase.  Setting the
  /// HP2P_AUDIT=1 environment variable enables the same with a 1 s period.
  /// In debug builds (NDEBUG unset) phase-boundary audits always run.
  /// Violations land in RunResult::audit_violations and in `flight`.
  sim::Duration audit_period{};

  /// Dispatch profiler wired into the kernel (component CPU/alloc
  /// attribution), the transport (per-message-type time and bytes) and the
  /// workload phases.  With `sample_period` set it also adds process-level
  /// occupancy gauges (arena slots, event backlog, live heap bytes, VmRSS)
  /// to the sampler -- those gauges are wall-clock-dependent, so they are
  /// only present on profiled runs and never in the byte-identical repro
  /// timeseries.  Export via Profiler::to_json()/write_collapsed() after
  /// the run.  Not owned.
  stats::Profiler* profiler = nullptr;
};

/// How long one harness phase took, in both host and simulated time.
struct PhaseTiming {
  std::string name;    // "build", "populate", "maintenance", "lookup"
  double wall_ms = 0;  // host wall-clock spent executing the phase
  double sim_ms = 0;   // simulated time the phase covered
};

/// Everything one replica measures.
struct RunResult {
  proto::LookupStats lookups;
  stats::Summary join_latency_ms;
  stats::Summary join_hops;
  stats::Summary lookup_latency_ms;  // successful lookups only
  stats::Summary lookup_hops;
  std::vector<std::size_t> items_per_peer;
  proto::NetworkStats network;
  std::uint64_t max_link_stress = 0;
  /// Largest s-network link degree of any peer (star topologies blow this
  /// up at the roots; degree-capped trees keep it at delta).
  std::size_t max_tree_degree = 0;
  std::size_t num_tpeers = 0;
  std::size_t num_speers = 0;
  std::size_t joins_completed = 0;
  std::uint64_t bypass_installs = 0;
  std::uint64_t bypass_uses = 0;
  /// Largest number of lookups any single peer answered (hot-spot load).
  std::uint64_t max_answers_served = 0;
  /// Lookups answered from caches (Section 7 scheme).
  std::uint64_t cache_hits = 0;
  /// Mean per-physical-link message copies (needs track_link_stress).
  double mean_link_stress = 0;
  /// Mean overlay messages handled (sent + received) per t-peer / s-peer:
  /// the load-imbalance observation motivating Section 5.1.
  double mean_tpeer_traffic = 0;
  double mean_speer_traffic = 0;
  /// Per-phase wall/sim-time timings, in execution order.
  std::vector<PhaseTiming> phases;
  /// Event-kernel counters for the whole replica.
  sim::SimulatorStats sim_stats;
  /// Gauge samples, present when RunConfig::sample_period > 0.
  std::optional<stats::TimeSeries> timeseries;
  /// Invariant-audit passes executed and total violations found (0 runs
  /// when auditing was not enabled for this replica).
  std::uint64_t audit_runs = 0;
  std::uint64_t audit_violations = 0;
  /// Durability accounting: distinct ids the populate phase stored, and how
  /// many of them some live joined peer still holds at the end of the run.
  std::size_t items_stored = 0;
  std::size_t items_recoverable = 0;
  /// Replication machinery counters (all 0 with replication_factor = 1).
  std::uint64_t replica_pushes = 0;
  std::uint64_t re_replication_pushes = 0;
  std::uint64_t anti_entropy_repairs = 0;
  std::uint64_t read_repairs = 0;

  /// Fraction of stored ids still recoverable (1.0 for an empty corpus).
  [[nodiscard]] double data_availability() const {
    if (items_stored == 0) return 1.0;
    return static_cast<double>(items_recoverable) /
           static_cast<double>(items_stored);
  }

  /// Table 2's metric: total peers contacted across all lookups.
  [[nodiscard]] std::uint64_t connum() const {
    return lookups.total_peers_contacted;
  }
};

/// Runs one full replica; deterministic in `config` (including seed).
[[nodiscard]] RunResult run_hybrid_experiment(const RunConfig& config);

/// Hooks `flight` onto the kernel and transport trace callbacks: every
/// schedule/fire/cancel and every send/deliver/drop becomes one O(1) ring
/// write.  Replaces any trace callbacks already installed on `sim` or
/// `network`; both must outlive `flight`'s use.
void attach_flight_recorder(stats::FlightRecorder& flight, sim::Simulator& sim,
                            proto::OverlayNetwork& network);

/// Maps `fn` over `configs` on a thread pool (replicas are independent).
/// Results are constructed in place (no default-constructibility needed).
/// If a worker throws, remaining work is abandoned and the first exception
/// is rethrown here after all threads have joined.
template <typename Config, typename Fn>
auto parallel_map(const std::vector<Config>& configs, Fn fn,
                  unsigned max_threads = 0) {
  using Result = decltype(fn(configs.front()));
  std::vector<Result> results;
  if (configs.empty()) return results;
  std::vector<std::optional<Result>> slots(configs.size());
  unsigned workers = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  workers = std::max(1u, std::min<unsigned>(
                             workers, static_cast<unsigned>(configs.size())));
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= configs.size() || failed.load()) return;
        try {
          slots[i].emplace(fn(configs[i]));
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

/// Averages a per-replica metric.
[[nodiscard]] double mean_of(const std::vector<double>& xs);

}  // namespace hp2p::exp
