#include "exp/baselines.hpp"

#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "workload/workload.hpp"

namespace hp2p::exp {

RunResult run_chord_experiment(const ChordRunConfig& raw_config) {
  ChordRunConfig config = raw_config;
  // Same timeout scaling rationale as the hybrid harness: ring-mode walks
  // are long but legitimate.
  const auto walk_bound = sim::SimTime::millis(
      static_cast<std::int64_t>(config.num_peers) * 250 + 15'000);
  if (config.chord.lookup_timeout < walk_bound) {
    config.chord.lookup_timeout = walk_bound;
  }

  Rng rng{config.seed};
  Rng topo_rng = rng.fork(1);
  Rng build_rng = rng.fork(2);
  Rng op_rng = rng.fork(3);

  const auto ts_params =
      net::TransitStubParams::for_total_nodes(config.num_peers);
  net::Underlay underlay{net::generate_transit_stub(ts_params, topo_rng),
                         topo_rng};
  sim::Simulator sim;
  proto::OverlayNetwork network{sim, underlay};
  chord::ChordNetwork chord{network, config.chord};

  RunResult result;

  // ---- Build: sequential joins (Chord has no join queueing; the paper's
  // concurrency machinery is a hybrid-system contribution). --------------------
  std::vector<PeerIndex> nodes;
  nodes.push_back(chord.create_ring(
      HostIndex{0}, PeerId{build_rng.uniform(0, kRingSize - 1)}));
  ++result.joins_completed;
  for (std::uint32_t i = 1; i < config.num_peers; ++i) {
    const PeerIndex n = chord.register_node(
        HostIndex{i}, PeerId{build_rng.uniform(0, kRingSize - 1)});
    chord.join(n, nodes.front(), [&result](proto::JoinResult r) {
      ++result.joins_completed;
      result.join_latency_ms.add(r.latency.as_millis());
      result.join_hops.add(static_cast<double>(r.request_hops));
    });
    sim.run();
    nodes.push_back(n);
  }
  if (config.maintenance) {
    chord.start_maintenance(build_rng);
  }

  // ---- Populate ----------------------------------------------------------------
  const auto corpus = workload::uniform_corpus(config.num_items, config.seed);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    sim.schedule_after(
        sim::SimTime::micros(static_cast<std::int64_t>(i) *
                             config.op_spacing.as_micros()),
        [&, i] {
          chord.store(nodes[op_rng.index(nodes.size())], corpus[i].key,
                      corpus[i].value);
        });
  }
  const auto populate_deadline =
      sim.now() + sim::SimTime::micros(static_cast<std::int64_t>(
                      config.num_items) *
                  config.op_spacing.as_micros()) +
      sim::SimTime::seconds(120);
  if (config.maintenance) {
    sim.run_until(populate_deadline);
  } else {
    sim.run();
  }

  // ---- Lookups -------------------------------------------------------------------
  for (std::size_t i = 0; i < config.num_lookups; ++i) {
    sim.schedule_after(
        sim::SimTime::micros(static_cast<std::int64_t>(i) *
                             config.op_spacing.as_micros()),
        [&] {
          const auto& item = corpus[op_rng.index(corpus.size())];
          chord.lookup(nodes[op_rng.index(nodes.size())], item.key,
                       [&result](proto::LookupResult r) {
                         result.lookups.record(r);
                         if (r.success) {
                           result.lookup_latency_ms.add(r.latency.as_millis());
                           result.lookup_hops.add(
                               static_cast<double>(r.request_hops));
                         }
                       });
        });
  }
  if (config.maintenance) {
    sim.run_until(sim.now() +
                  sim::SimTime::micros(static_cast<std::int64_t>(
                      config.num_lookups) *
                  config.op_spacing.as_micros()) +
                  config.chord.lookup_timeout + sim::SimTime::seconds(5));
  } else {
    sim.run();
  }

  for (std::uint32_t i = 0; i < config.num_peers; ++i) {
    result.items_per_peer.push_back(chord.store_of(PeerIndex{i}).size());
  }
  result.network = network.stats();
  result.num_tpeers = config.num_peers;
  return result;
}

RunResult run_gnutella_experiment(const GnutellaRunConfig& raw_config) {
  GnutellaRunConfig config = raw_config;
  Rng rng{config.seed};
  Rng topo_rng = rng.fork(1);
  Rng build_rng = rng.fork(2);
  Rng op_rng = rng.fork(3);

  const auto ts_params =
      net::TransitStubParams::for_total_nodes(config.num_peers);
  net::Underlay underlay{net::generate_transit_stub(ts_params, topo_rng),
                         topo_rng};
  sim::Simulator sim;
  proto::OverlayNetwork network{sim, underlay};
  gnutella::GnutellaNetwork g{network, config.gnutella};

  RunResult result;

  // ---- Build: joins are O(1) link setups. -----------------------------------------
  std::vector<PeerIndex> peers;
  for (std::uint32_t i = 0; i < config.num_peers; ++i) {
    peers.push_back(g.join(HostIndex{i}, build_rng));
    ++result.joins_completed;
    result.join_hops.add(1.0);  // one bootstrap exchange
  }

  // ---- Populate: data stays with its publisher. ------------------------------------
  const auto corpus = workload::uniform_corpus(config.num_items, config.seed);
  for (const auto& item : corpus) {
    g.store(peers[op_rng.index(peers.size())], item.key, item.value);
  }

  // ---- Lookups --------------------------------------------------------------------
  for (std::size_t i = 0; i < config.num_lookups; ++i) {
    sim.schedule_after(
        sim::SimTime::micros(static_cast<std::int64_t>(i) *
                             config.op_spacing.as_micros()),
        [&] {
          const auto& item = corpus[op_rng.index(corpus.size())];
          g.lookup(peers[op_rng.index(peers.size())], item.key,
                   [&result](proto::LookupResult r) {
                     result.lookups.record(r);
                     if (r.success) {
                       result.lookup_latency_ms.add(r.latency.as_millis());
                       result.lookup_hops.add(
                           static_cast<double>(r.request_hops));
                     }
                   });
        });
  }
  sim.run();

  for (const auto p : peers) {
    result.items_per_peer.push_back(g.store_of(p).size());
  }
  result.network = network.stats();
  result.num_speers = config.num_peers;
  return result;
}

}  // namespace hp2p::exp
