// Collectors that flatten the harness's counter structs into a
// stats::MetricsRegistry under conventional dotted prefixes:
//
//   sim.*     SimulatorStats        (collect_sim_stats)
//   net.*     NetworkStats          (collect_network_stats, incl. per-class)
//   lookup.*  LookupStats           (collect_lookup_stats)
//   config.*  RunConfig             (collect_run_config)
//   <all>     RunResult             (collect_run_result: lookup/net/sim/
//                                    phase/summaries/counters in one call)
//
// Benches hand the resulting registry to bench::Reporter, which nests it
// into the "metrics" object of BENCH_<name>.json.
#pragma once

#include <string>

#include "exp/harness.hpp"
#include "stats/metrics.hpp"

namespace hp2p::exp {

void collect_sim_stats(stats::MetricsRegistry& reg, const std::string& prefix,
                       const sim::SimulatorStats& s);
void collect_network_stats(stats::MetricsRegistry& reg,
                           const std::string& prefix,
                           const proto::NetworkStats& s);
void collect_lookup_stats(stats::MetricsRegistry& reg,
                          const std::string& prefix,
                          const proto::LookupStats& s);
void collect_run_config(stats::MetricsRegistry& reg, const std::string& prefix,
                        const RunConfig& c);

/// Everything a replica measured, under `prefix` (empty = top level).
void collect_run_result(stats::MetricsRegistry& reg, const std::string& prefix,
                        const RunResult& r);

}  // namespace hp2p::exp
