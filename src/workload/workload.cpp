#include "workload/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hp2p::workload {

std::vector<WorkItem> uniform_corpus(std::size_t count,
                                     std::uint64_t value_seed) {
  std::vector<WorkItem> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WorkItem item;
    item.key = "item-" + std::to_string(i);
    item.id = hash_key(item.key);
    item.value = mix64(value_seed ^ i);
    items.push_back(std::move(item));
  }
  return items;
}

DataId interest_band_id(Rng& rng, std::uint32_t interest,
                        std::uint32_t num_interests) {
  const std::uint64_t anchor = mix64(interest) & (kRingSize - 1);
  const std::uint64_t band =
      kRingSize / (std::uint64_t{64} * std::max(1u, num_interests));
  return DataId{ring::reduce(anchor + rng.uniform(0, band))};
}

DataId random_id_in_arc(Rng& rng, PeerId lo, PeerId hi) {
  const std::uint64_t span = lo == hi
                                 ? kRingSize
                                 : ring::distance_cw(lo.value(), hi.value());
  const std::uint64_t offset = rng.uniform(1, span);
  return DataId{ring::reduce(lo.value() + offset)};
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

std::vector<ChurnEvent> churn_schedule(Rng& rng, sim::Duration horizon,
                                       double joins_per_second,
                                       double leaves_per_second,
                                       double crashes_per_second) {
  std::vector<ChurnEvent> events;
  const auto fill = [&](ChurnEvent::Kind kind, double rate) {
    if (rate <= 0.0) return;
    double t = 0.0;
    const double end = horizon.as_seconds();
    for (;;) {
      t += rng.exponential(1.0 / rate);
      if (t >= end) break;
      events.push_back(ChurnEvent{kind, sim::SimTime::seconds(t)});
    }
  };
  fill(ChurnEvent::Kind::kJoin, joins_per_second);
  fill(ChurnEvent::Kind::kLeave, leaves_per_second);
  fill(ChurnEvent::Kind::kCrash, crashes_per_second);
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) { return a.at < b.at; });
  return events;
}

}  // namespace hp2p::workload
