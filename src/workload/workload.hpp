// Workload generation: key corpora, popularity distributions, churn
// schedules, and interest-correlated keys for the Section 5.3 experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hashing.hpp"
#include "common/ids.hpp"
#include "common/ring_math.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"

namespace hp2p::workload {

/// A synthetic data item to be inserted and later looked up.
struct WorkItem {
  std::string key;
  DataId id{};
  std::uint64_t value = 0;
};

/// Generates `count` distinct keys ("item-0".."item-N"); ids are the usual
/// key hashes, uniform over the ring.
[[nodiscard]] std::vector<WorkItem> uniform_corpus(std::size_t count,
                                                   std::uint64_t value_seed);

/// Uniformly random ring id strictly inside the clockwise arc (lo, hi];
/// used to synthesize interest-local keys that belong to a known segment.
[[nodiscard]] DataId random_id_in_arc(Rng& rng, PeerId lo, PeerId hi);

/// Random id in the narrow band anchored at hash(interest) -- the naming
/// convention of interest-tagged content (e.g. keys prefixed with their
/// category).  All content of one interest hashes into one small arc, so an
/// interest-based system (Section 5.3) serves it from one s-network.  The
/// band width is the ring divided by 64*num_interests, comfortably inside a
/// typical segment.
[[nodiscard]] DataId interest_band_id(Rng& rng, std::uint32_t interest,
                                      std::uint32_t num_interests);

/// Zipf(s) sampler over ranks [0, n); rank 0 is the most popular.  Uses the
/// classical inverse-CDF over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// One membership-churn event.
struct ChurnEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kCrash };
  Kind kind = Kind::kJoin;
  sim::SimTime at{};
};

/// Poisson-ish churn schedule over a horizon: events are exponentially
/// spaced with the given mean inter-arrival times (0 rate = none).
[[nodiscard]] std::vector<ChurnEvent> churn_schedule(
    Rng& rng, sim::Duration horizon, double joins_per_second,
    double leaves_per_second, double crashes_per_second);

}  // namespace hp2p::workload
