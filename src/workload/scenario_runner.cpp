#include "workload/scenario_runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>

#include "audit/overlay_auditor.hpp"
#include "chaos/fault_engine.hpp"
#include "chaos/reference_model.hpp"
#include "common/env.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "sim/tie_break.hpp"

namespace hp2p::workload {

namespace {

/// Interest tag given to kRecentJoin joiners, so an interest-based server
/// anchors the whole crowd into one s-network.
constexpr std::uint32_t kCrowdInterest = 7;

struct ScenLookup {
  std::uint32_t item = 0;
  DataId id{};
  PeerIndex origin = kNoPeer;
  bool issued = false;
  bool must_at_issue = false;
  bool done = false;
  bool success = false;
  std::uint64_t value = 0;
  sim::SimTime latency{};
};

std::vector<PeerIndex> live_nonserver_peers(
    const hybrid::HybridSystem& system) {
  std::vector<PeerIndex> out;
  for (std::size_t i = 0; i < system.num_peers(); ++i) {
    const PeerIndex p{static_cast<std::uint32_t>(i)};
    if (system.is_server_peer(p) || !system.is_alive(p) ||
        !system.is_joined(p)) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

/// Deterministic actor resolution: start at pick % size and walk forward to
/// the first usable peer, so equal picks keep naming the same peer for as
/// long as it lives (the swarm relies on this for stable seeder/leecher
/// identities).
PeerIndex resolve_actor(const hybrid::HybridSystem& system,
                        const std::vector<PeerIndex>& pool,
                        std::uint32_t pick) {
  if (pool.empty()) return kNoPeer;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const PeerIndex p = pool[(pick + i) % pool.size()];
    if (system.is_alive(p) && system.is_joined(p) && !system.is_leaving(p)) {
      return p;
    }
  }
  return kNoPeer;
}

void add_violation(ScenarioReport& report, const ScenarioConfig& cfg,
                   sim::SimTime at, const char* kind, std::string detail,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
  if (cfg.flight != nullptr) {
    cfg.flight->record(at, "scenario_violation", a, b,
                       report.violations.size());
  }
  report.violations.push_back(
      chaos::ChaosViolation{kind, std::move(detail), a, b});
}

}  // namespace

stats::JsonValue ScenarioReport::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("scenario", scenario);
  v.set("seed", static_cast<std::int64_t>(seed));
  v.set("ops", static_cast<std::int64_t>(ops));
  v.set("stores", static_cast<std::int64_t>(stores));
  v.set("lookups_issued", static_cast<std::int64_t>(lookups_issued));
  v.set("lookups_succeeded", static_cast<std::int64_t>(lookups_succeeded));
  v.set("lookups_failed", static_cast<std::int64_t>(lookups_failed));
  v.set("retries", static_cast<std::int64_t>(retries));
  v.set("joins", static_cast<std::int64_t>(joins));
  v.set("leaves", static_cast<std::int64_t>(leaves));
  v.set("ops_skipped", static_cast<std::int64_t>(ops_skipped));
  v.set("crashes", static_cast<std::int64_t>(crashes));
  v.set("chaos_joins", static_cast<std::int64_t>(chaos_joins));
  v.set("must_failed", static_cast<std::int64_t>(must_failed));
  v.set("wave_must_issued", static_cast<std::int64_t>(wave_must_issued));
  v.set("wave_may_issued", static_cast<std::int64_t>(wave_may_issued));
  v.set("wave_must_failed", static_cast<std::int64_t>(wave_must_failed));
  v.set("value_mismatches", static_cast<std::int64_t>(value_mismatches));
  v.set("audit_violations", static_cast<std::int64_t>(audit_violations));
  v.set("ring_ok", ring_ok);
  v.set("trees_ok", trees_ok);
  v.set("availability", availability);
  v.set("mean_latency_ms", mean_latency_ms);
  v.set("max_peer_load", static_cast<std::int64_t>(max_peer_load));
  v.set("mean_peer_load", mean_peer_load);
  v.set("load_skew", load_skew);
  v.set("cache_hits", static_cast<std::int64_t>(cache_hits));
  auto arr = stats::JsonValue::array();
  for (const chaos::ChaosViolation& viol : violations) {
    arr.push_back(viol.to_json());
  }
  v.set("violations", std::move(arr));
  return v;
}

ScenarioReport run_scenario(const ScenarioConfig& cfg) {
  ScenarioReport report;
  report.seed = cfg.seed;
  report.scenario = cfg.workload != nullptr ? cfg.workload->name() : "?";
  if (cfg.workload == nullptr) {
    add_violation(report, cfg, {}, "config_error", "no workload set");
    return report;
  }

  Rng rng(cfg.seed);
  sim::Simulator sim;

  // Same optional shuffled tie-break as the chaos runner, so scenario runs
  // can be order-fuzzed from the environment without recompiling.
  std::unique_ptr<sim::ShuffleTieBreak> shuffler;
  {
    const std::string spec = cfg.tie_break.empty()
                                 ? env_or("HP2P_TIEBREAK", "")
                                 : cfg.tie_break;
    constexpr const char* kPrefix = "shuffle:";
    if (spec.rfind(kPrefix, 0) == 0) {
      const std::uint64_t tb_seed = std::strtoull(
          spec.c_str() + std::string(kPrefix).size(), nullptr, 10);
      shuffler = std::make_unique<sim::ShuffleTieBreak>(tb_seed);
      sim.set_tie_break_policy(shuffler.get());
    }
  }

  net::Underlay underlay(
      net::generate_transit_stub(
          net::TransitStubParams::for_total_nodes(cfg.hosts), rng),
      rng);
  proto::OverlayNetwork network(sim, underlay, {});
  hybrid::HybridSystem system(network, cfg.params, HostIndex{0}, rng);

  // --- Population (same staging as the chaos runner). ---------------------
  std::uint32_t host_cursor = 0;
  const auto next_host = [&] {
    const HostIndex h{1 + host_cursor % (underlay.num_hosts() - 1)};
    ++host_cursor;
    return h;
  };
  const auto num_t = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround((1.0 - cfg.ps) * cfg.num_peers)));
  for (std::uint32_t i = 0; i < cfg.num_peers; ++i) {
    const auto role = i < num_t ? hybrid::Role::kTPeer : hybrid::Role::kSPeer;
    const HostIndex host = next_host();
    sim.schedule_at(sim::SimTime::millis(40 * (i + 1)), [&system, host, role] {
      system.add_peer_with_role(host, role);
    });
  }
  sim.run();

  chaos::ReferenceModel model(system);
  const auto corpus = cfg.workload->corpus(cfg.seed);
  const auto ops = cfg.workload->generate(cfg.seed);
  report.ops = static_cast<std::uint32_t>(ops.size());

  // Strict pre-flight audit on the quiescent freshly built overlay.
  {
    audit::AuditOptions opts;
    opts.strict = true;
    audit::OverlayAuditor pre(system, network, sim, opts);
    for (const auto& v : pre.run().violations) {
      add_violation(report, cfg, sim.now(), "audit_pre",
                    std::string(v.invariant) + ": expected " + v.expected +
                        ", got " + v.actual + " (" + v.detail + ")",
                    v.peer.value());
    }
  }

  system.start_failure_detection();

  // --- Op window: workload stream + shifted chaos schedule. ---------------
  const sim::SimTime t0 = sim.now() + sim::SimTime::seconds(1);
  const sim::SimTime stream_end =
      t0 + (ops.empty() ? sim::SimTime{} : ops.back().at);

  chaos::FaultSchedule shifted = cfg.schedule;
  for (chaos::FaultPhase& phase : shifted.phases) phase.start += t0;
  chaos::FaultScheduleEngine engine(sim, network, system, shifted,
                                    cfg.flight);
  engine.arm(next_host);

  const std::vector<PeerIndex> base_actors = live_nonserver_peers(system);
  std::vector<PeerIndex> recent_joins;

  std::vector<ScenLookup> lookups;
  lookups.reserve(static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(), [](const Op& op) {
        return op.kind == Op::Kind::kLookup;
      })));

  const sim::SimTime window_end =
      std::max(stream_end, shifted.end()) + cfg.settle;

  // Issues one lookup attempt for `slot`; on failure, reissues up to
  // cfg.lookup_retries times after cfg.retry_backoff, from an origin shifted
  // by the attempt number (a client whose own attachment is severed must not
  // just retry through itself).  must_at_issue is pinned at the FIRST
  // attempt; success/latency reflect the final one.
  std::function<void(ScenLookup*, Op::Origin, std::uint32_t, std::uint32_t)>
      issue_lookup;
  issue_lookup = [&](ScenLookup* slot, Op::Origin origin_kind,
                     std::uint32_t pick, std::uint32_t attempt) {
    const std::vector<PeerIndex>& pool =
        origin_kind == Op::Origin::kRecentJoin && !recent_joins.empty()
            ? recent_joins
            : base_actors;
    const PeerIndex origin = resolve_actor(system, pool, pick + attempt);
    if (origin == kNoPeer) {
      if (!slot->issued) {
        ++report.ops_skipped;
      } else {
        slot->done = true;  // retried into a dead pool: final failure
      }
      return;
    }
    if (!slot->issued) {
      slot->issued = true;
      // MUST at issue only requires the data to be live; transient damage
      // the hardening must ride out is judged post-hoc.
      slot->must_at_issue = !model.live_holders(slot->id).empty();
    }
    slot->origin = origin;
    system.lookup_id(
        origin, slot->id,
        [&, slot, origin_kind, pick, attempt](proto::LookupResult r) {
          const bool can_retry =
              attempt < cfg.lookup_retries &&
              sim.now() + cfg.retry_backoff + cfg.params.lookup_timeout <
                  window_end;
          if (!r.success && can_retry) {
            ++report.retries;
            sim.schedule_at(sim.now() + cfg.retry_backoff,
                            [&, slot, origin_kind, pick, attempt] {
                              issue_lookup(slot, origin_kind, pick,
                                           attempt + 1);
                            });
            return;
          }
          slot->done = true;
          slot->success = r.success;
          slot->value = r.value;
          slot->latency = r.latency;
        });
  };

  for (const Op& op : ops) {
    const sim::SimTime at = t0 + op.at;
    switch (op.kind) {
      case Op::Kind::kStore: {
        const WorkItem* item = &corpus[op.item % corpus.size()];
        const std::uint32_t pick = op.pick;
        sim.schedule_at(at, [&, item, pick] {
          const PeerIndex origin = resolve_actor(system, base_actors, pick);
          if (origin == kNoPeer) {
            ++report.ops_skipped;
            return;
          }
          system.store_id(origin, item->id, item->key, item->value);
          model.record_store(item->id, origin);
          ++report.stores;
        });
        break;
      }
      case Op::Kind::kLookup: {
        lookups.push_back(ScenLookup{});
        ScenLookup* slot = &lookups.back();
        slot->item = op.item % static_cast<std::uint32_t>(corpus.size());
        slot->id = corpus[slot->item].id;
        const Op::Origin origin_kind = op.origin;
        const std::uint32_t pick = op.pick;
        sim.schedule_at(at, [&, slot, origin_kind, pick] {
          issue_lookup(slot, origin_kind, pick, 0);
        });
        break;
      }
      case Op::Kind::kJoin: {
        const bool targeted = op.origin == Op::Origin::kRecentJoin;
        sim.schedule_at(at, [&, targeted] {
          const HostIndex host = next_host();
          // Joiners enter the recent pool immediately; resolve_actor skips
          // them until the join protocol flips `joined`, so a pre-completion
          // lookup just falls forward to an older crowd member.
          const PeerIndex p =
              targeted ? system.add_peer_with_interest(
                             host, hybrid::Role::kSPeer, kCrowdInterest)
                       : system.add_peer_with_role(host, hybrid::Role::kSPeer);
          recent_joins.push_back(p);
          ++report.joins;
        });
        break;
      }
      case Op::Kind::kLeave: {
        const std::uint32_t pick = op.pick;
        sim.schedule_at(at, [&, pick] {
          std::vector<PeerIndex> victims;
          for (const PeerIndex p : system.live_peers()) {
            if (system.is_server_peer(p) || system.is_leaving(p) ||
                system.is_joining(p) ||
                system.role_of(p) != hybrid::Role::kSPeer) {
              continue;
            }
            victims.push_back(p);
          }
          const PeerIndex victim = resolve_actor(system, victims, pick);
          if (victim == kNoPeer) {
            ++report.ops_skipped;
            return;
          }
          system.leave(victim);
          ++report.leaves;
        });
        break;
      }
    }
  }

  // Lenient periodic audits while the scenario runs: any violation a
  // lenient pass reports is real corruption, not transient churn.
  {
    audit::OverlayAuditor mid(system, network, sim, audit::AuditOptions{});
    if (cfg.audit_period > sim::Duration{}) {
      mid.set_period(cfg.audit_period);
      mid.ensure_running();
    }

    sim.run_until(window_end);
    engine.disarm();

    if (mid.total_violations() > 0) {
      for (const auto& v : mid.last_failing_report().violations) {
        add_violation(report, cfg, sim.now(), "audit_mid",
                      std::string(v.invariant) + ": expected " + v.expected +
                        ", got " + v.actual + " (" + v.detail + ")",
                      v.peer.value());
      }
    }
  }
  report.crashes = engine.crashes_applied();
  report.chaos_joins = engine.joins_applied();

  // --- Quiescent verdicts. -------------------------------------------------
  report.ring_ok = system.verify_ring();
  report.trees_ok = system.verify_trees();
  if (!report.ring_ok) {
    add_violation(report, cfg, sim.now(), "ring_broken",
                  "verify_ring() failed after settle");
  }
  if (!report.trees_ok) {
    add_violation(report, cfg, sim.now(), "trees_broken",
                  "verify_trees() failed after settle");
  }
  {
    audit::AuditOptions opts;
    opts.strict = true;
    audit::OverlayAuditor post(system, network, sim, opts);
    const auto rep = post.run();
    report.audit_violations = static_cast<std::uint32_t>(
        rep.violations.size());
    for (const auto& v : rep.violations) {
      add_violation(report, cfg, sim.now(), "audit",
                    std::string(v.invariant) + ": expected " + v.expected +
                        ", got " + v.actual + " (" + v.detail + ")",
                    v.peer.value());
    }
  }

  double latency_sum_ms = 0;
  for (const ScenLookup& s : lookups) {
    if (!s.issued) continue;
    ++report.lookups_issued;
    if (!s.done) {
      add_violation(report, cfg, sim.now(), "lookup_wedged",
                    "scenario lookup never completed", s.id.value(),
                    s.origin.value());
      continue;
    }
    if (s.success) {
      ++report.lookups_succeeded;
      latency_sum_ms += s.latency.as_millis();
      if (cfg.verify_values && s.value != corpus[s.item].value) {
        ++report.value_mismatches;
        add_violation(report, cfg, sim.now(), "value_mismatch",
                      "lookup returned wrong content for " +
                          corpus[s.item].key,
                      s.id.value(), s.origin.value());
      }
      continue;
    }
    ++report.lookups_failed;
    if (s.must_at_issue && model.classify(s.origin, s.id).must) {
      ++report.must_failed;
      add_violation(report, cfg, sim.now(), "scenario_must_failed",
                    "scenario lookup failed; oracle says MUST at issue and "
                    "after recovery",
                    s.id.value(), s.origin.value());
    }
  }
  report.availability =
      report.lookups_issued == 0
          ? 1.0
          : static_cast<double>(report.lookups_succeeded) /
                static_cast<double>(report.lookups_issued);
  report.mean_latency_ms =
      report.lookups_succeeded == 0
          ? 0.0
          : latency_sum_ms / static_cast<double>(report.lookups_succeeded);

  // --- Quiescent MUST/MAY wave over every stored item. ---------------------
  if (cfg.final_wave) {
    struct WaveLookup {
      chaos::Expectation exp;
      DataId id{};
      PeerIndex origin = kNoPeer;
      bool done = false;
      bool success = false;
    };
    auto wave = std::make_shared<std::vector<WaveLookup>>();
    wave->reserve(model.stores().size());
    for (const auto& [id, origin] : model.stores()) {
      const std::size_t slot = wave->size();
      wave->push_back(
          WaveLookup{model.classify(origin, DataId{id}), DataId{id}, origin});
      system.lookup_id(origin, DataId{id},
                       [wave, slot](proto::LookupResult r) {
                         (*wave)[slot].done = true;
                         (*wave)[slot].success = r.success;
                       });
    }
    sim.run_until(sim.now() + cfg.params.lookup_timeout +
                  sim::SimTime::seconds(5));
    for (const WaveLookup& w : *wave) {
      if (w.exp.must) {
        ++report.wave_must_issued;
      } else {
        ++report.wave_may_issued;
      }
      if (!w.done) {
        add_violation(report, cfg, sim.now(), "lookup_wedged",
                      "oracle-wave lookup never completed", w.id.value(),
                      w.origin.value());
        continue;
      }
      if (w.success || !w.exp.must) continue;
      ++report.wave_must_failed;
      add_violation(report, cfg, sim.now(), "must_lookup_failed",
                    std::string("MUST lookup failed (") + w.exp.reason + ")",
                    w.id.value(), w.origin.value());
    }
    if (system.pending_lookups() != 0) {
      add_violation(report, cfg, sim.now(), "lookup_wedged",
                    "pending_lookups() != 0 after the wave deadline",
                    system.pending_lookups());
    }
  }

  // --- Load metrics. --------------------------------------------------------
  report.max_peer_load = system.max_answers_served();
  report.cache_hits = system.cache_hits();
  {
    std::uint64_t total = 0;
    std::uint64_t counted = 0;
    for (std::size_t i = 0; i < system.num_peers(); ++i) {
      const PeerIndex p{static_cast<std::uint32_t>(i)};
      if (system.is_server_peer(p)) continue;
      total += system.answers_served(p);
      ++counted;
    }
    report.mean_peer_load =
        counted == 0 ? 0.0
                     : static_cast<double>(total) /
                           static_cast<double>(counted);
    report.load_skew =
        report.mean_peer_load <= 0.0
            ? 0.0
            : static_cast<double>(report.max_peer_load) /
                  report.mean_peer_load;
  }

  return report;
}

// --- Named presets -----------------------------------------------------------

ScenarioConfig diurnal_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.workload = std::make_shared<DiurnalWorkload>();
  cfg.schedule.seed = seed;
  cfg.schedule.phases = {
      // A crash storm through the midday peak plus a short loss burst: the
      // availability claim has to hold when load and churn coincide.
      chaos::FaultPhase{.kind = chaos::FaultKind::kSPeerCrashStorm,
                        .start = sim::SimTime::seconds(45),
                        .duration = sim::SimTime::seconds(20),
                        .count = 4},
      chaos::FaultPhase{.kind = chaos::FaultKind::kLossBurst,
                        .start = sim::SimTime::seconds(50),
                        .duration = sim::SimTime::seconds(10),
                        .intensity = 0.05},
  };
  return cfg;
}

ScenarioConfig hot_key_storm_scenario(std::uint64_t seed, bool caching) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.workload = std::make_shared<HotKeyStormWorkload>();
  cfg.params.enable_caching = caching;
  cfg.schedule.seed = seed;
  cfg.schedule.phases = {
      chaos::FaultPhase{.kind = chaos::FaultKind::kLatencyStorm,
                        .start = sim::SimTime::seconds(20),
                        .duration = sim::SimTime::seconds(15),
                        .intensity = 2.0},
      chaos::FaultPhase{.kind = chaos::FaultKind::kSPeerCrashStorm,
                        .start = sim::SimTime::seconds(40),
                        .duration = sim::SimTime::seconds(10),
                        .count = 3},
  };
  return cfg;
}

ScenarioConfig flash_crowd_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.workload = std::make_shared<FlashCrowdWorkload>();
  // Interest-based assignment makes the tagged crowd pile into one
  // s-network -- the point of the scenario.
  cfg.params.interest_based = true;
  cfg.schedule.seed = seed;
  cfg.schedule.phases = {
      chaos::FaultPhase{.kind = chaos::FaultKind::kLossBurst,
                        .start = sim::SimTime::seconds(26),
                        .duration = sim::SimTime::seconds(8),
                        .intensity = 0.05},
      chaos::FaultPhase{.kind = chaos::FaultKind::kSPeerCrashStorm,
                        .start = sim::SimTime::seconds(40),
                        .duration = sim::SimTime::seconds(8),
                        .count = 2},
  };
  return cfg;
}

ScenarioConfig swarm_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.workload = std::make_shared<SwarmWorkload>();
  cfg.params.style = hybrid::SNetworkStyle::kBitTorrent;
  cfg.ps = 0.8;  // few trackers, many members
  cfg.verify_values = true;
  cfg.schedule.seed = seed;
  cfg.schedule.phases = {
      // Crash trackers mid-download: the re-announce failover must rebuild
      // the holder index before the swarm's lookups time out.
      chaos::FaultPhase{.kind = chaos::FaultKind::kTPeerCrashStorm,
                        .start = sim::SimTime::seconds(25),
                        .duration = sim::SimTime::seconds(10),
                        .count = 2},
  };
  return cfg;
}

}  // namespace hp2p::workload
