// Composable production-traffic scenarios (ROADMAP item 4).
//
// A Workload is a pure function seed -> op stream: timed store / lookup /
// join / leave events with per-phase rate curves.  Streams are plain data,
// so they compose by stable time-ordered merge and serialize to a canonical
// text form -- the property tests assert byte-identical same-seed streams
// and order-stable composition.  The scenario runner (scenario_runner.hpp)
// executes a stream against a live HybridSystem under an optional chaos
// schedule with the MUST/MAY oracle watching every lookup.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/time.hpp"
#include "workload/workload.hpp"

namespace hp2p::workload {

/// One timed operation of a scenario.
struct Op {
  enum class Kind : std::uint8_t { kStore, kLookup, kJoin, kLeave };
  /// How the runner picks the acting peer: any live peer, or one of the
  /// peers this workload itself joined (flash crowds look up content from
  /// the crowd, not from the settled population).
  enum class Origin : std::uint8_t { kAny, kRecentJoin };

  Kind kind = Kind::kLookup;
  Origin origin = Origin::kAny;
  sim::SimTime at{};        // relative to the scenario's op window start
  std::uint32_t item = 0;   // corpus index (store/lookup only)
  std::uint32_t pick = 0;   // deterministic actor/victim selector

  friend bool operator==(const Op&, const Op&) = default;
};

/// One segment of a piecewise-constant rate curve.
struct RatePhase {
  sim::Duration duration{};
  double per_second = 0.0;
};
using RateCurve = std::vector<RatePhase>;

/// Deterministic event times following `curve` from `start`: evenly spaced
/// within each phase with a small seeded jitter (so ops do not all collide
/// on phase boundaries), strictly sorted.
[[nodiscard]] std::vector<sim::SimTime> curve_times(const RateCurve& curve,
                                                    sim::SimTime start,
                                                    Rng& rng);

/// Canonical text form of a stream, one op per line; byte-identical iff the
/// streams are equal (the repro-test serialization).
[[nodiscard]] std::string dump_stream(const std::vector<Op>& ops);

/// Stable time-ordered merge: ops keep their relative order within each
/// input, and `a` wins ties -- composition is order-stable.
[[nodiscard]] std::vector<Op> merge_streams(std::vector<Op> a,
                                            std::vector<Op> b);

/// A deterministic op-stream generator.  Everything is a pure function of
/// the seed: generate(s) twice returns byte-identical streams.
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Number of distinct corpus items the stream's `item` indices address.
  [[nodiscard]] virtual std::uint32_t num_items() const = 0;
  /// The items themselves.  Default: the uniform corpus.  Scenarios with
  /// content-addressed payloads (the swarm's hash-verified pieces)
  /// override this.
  [[nodiscard]] virtual std::vector<WorkItem> corpus(
      std::uint64_t seed) const;
  /// The op stream, sorted by `at`.
  [[nodiscard]] virtual std::vector<Op> generate(std::uint64_t seed) const = 0;
};

/// Composition combinator: the merged stream of all children, each child
/// generating from its own forked seed.  Ties preserve child order, so
/// compose(a, b) is stable and deterministic.
class CompositeWorkload final : public Workload {
 public:
  explicit CompositeWorkload(
      std::vector<std::shared_ptr<const Workload>> children);

  [[nodiscard]] const char* name() const override { return name_.c_str(); }
  [[nodiscard]] std::uint32_t num_items() const override;
  [[nodiscard]] std::vector<WorkItem> corpus(std::uint64_t seed) const override;
  [[nodiscard]] std::vector<Op> generate(std::uint64_t seed) const override;

 private:
  std::vector<std::shared_ptr<const Workload>> children_;
  std::string name_;
};

[[nodiscard]] std::shared_ptr<const Workload> compose(
    std::shared_ptr<const Workload> a, std::shared_ptr<const Workload> b);

// --- Concrete scenarios ------------------------------------------------------------

/// Diurnal load: lookups follow a night/ramp/peak/decline rate curve over a
/// Zipf-popular corpus; peers join through the morning ramp and leave
/// through the evening decline.
class DiurnalWorkload final : public Workload {
 public:
  std::uint32_t items = 120;
  sim::Duration store_window = sim::SimTime::seconds(10);
  RateCurve curve{{sim::SimTime::seconds(20), 2.0},    // night
                  {sim::SimTime::seconds(20), 8.0},    // morning ramp
                  {sim::SimTime::seconds(30), 20.0},   // midday peak
                  {sim::SimTime::seconds(20), 6.0}};   // evening decline
  double zipf_exponent = 0.9;
  std::uint32_t morning_joins = 10;
  std::uint32_t evening_leaves = 8;

  [[nodiscard]] const char* name() const override { return "diurnal"; }
  [[nodiscard]] std::uint32_t num_items() const override { return items; }
  [[nodiscard]] std::vector<Op> generate(std::uint64_t seed) const override;
};

/// Hot-key storm with key churn: a high constant lookup rate concentrates
/// on one "hot" item that rotates every `rotation` (the adversarial sequel
/// to the Section 7 cache ablation -- without caching, each rotation's
/// holder melts in turn).
class HotKeyStormWorkload final : public Workload {
 public:
  std::uint32_t items = 64;
  sim::Duration store_window = sim::SimTime::seconds(5);
  sim::Duration storm_start = sim::SimTime::seconds(8);
  sim::Duration horizon = sim::SimTime::seconds(60);
  sim::Duration rotation = sim::SimTime::seconds(10);
  double per_second = 40.0;
  double hot_fraction = 0.9;

  [[nodiscard]] const char* name() const override { return "hot_key_storm"; }
  [[nodiscard]] std::uint32_t num_items() const override { return items; }
  [[nodiscard]] std::vector<Op> generate(std::uint64_t seed) const override;
};

/// Flash crowd: a quiet baseline, then a burst of joins aimed at a single
/// segment (the runner tags the joiners with one interest so they pile
/// into one s-network), followed by the crowd hammering a handful of items
/// from the newly joined peers.
class FlashCrowdWorkload final : public Workload {
 public:
  std::uint32_t items = 40;
  std::uint32_t crowd_items = 4;   // what the crowd is actually after
  sim::Duration store_window = sim::SimTime::seconds(5);
  RateCurve baseline{{sim::SimTime::seconds(20), 2.0}};
  std::uint32_t burst_joins = 25;
  sim::Duration burst_window = sim::SimTime::seconds(3);
  sim::Duration crowd_delay = sim::SimTime::seconds(3);
  RateCurve crowd{{sim::SimTime::seconds(25), 30.0}};

  [[nodiscard]] const char* name() const override { return "flash_crowd"; }
  [[nodiscard]] std::uint32_t num_items() const override { return items; }
  [[nodiscard]] std::vector<Op> generate(std::uint64_t seed) const override;
};

/// BitTorrent-style content swarm over tracker-mode s-networks: a content
/// of `pieces` hash-verified pieces is seeded by `seeders` peers (two
/// copies each, so the tracker can hand out alternates), then `leechers`
/// peers each download every piece in their own seeded order.  The runner
/// checks each returned LookupResult::value against the expected piece
/// hash (end-to-end integrity) and a chaos schedule typically crashes the
/// trackers mid-swarm to exercise index-rebuild failover.
class SwarmWorkload final : public Workload {
 public:
  std::uint32_t pieces = 48;
  std::uint32_t seeders = 4;
  std::uint32_t leechers = 12;
  sim::Duration seed_window = sim::SimTime::seconds(10);
  sim::Duration download_start = sim::SimTime::seconds(15);
  sim::Duration download_window = sim::SimTime::seconds(60);

  /// Deterministic pseudo-content of piece `index` (content-addressed by
  /// the corpus seed) and its FNV-1a integrity hash.
  [[nodiscard]] static std::string piece_payload(std::uint64_t seed,
                                                 std::uint32_t index);
  [[nodiscard]] static std::uint64_t piece_hash(std::uint64_t seed,
                                                std::uint32_t index);

  [[nodiscard]] const char* name() const override { return "content_swarm"; }
  [[nodiscard]] std::uint32_t num_items() const override { return pieces; }
  [[nodiscard]] std::vector<WorkItem> corpus(std::uint64_t seed) const override;
  [[nodiscard]] std::vector<Op> generate(std::uint64_t seed) const override;
};

}  // namespace hp2p::workload
