#include "workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>
#include <sstream>

namespace hp2p::workload {

namespace {

const char* kind_name(Op::Kind k) {
  switch (k) {
    case Op::Kind::kStore:
      return "store";
    case Op::Kind::kLookup:
      return "lookup";
    case Op::Kind::kJoin:
      return "join";
    case Op::Kind::kLeave:
      return "leave";
  }
  return "?";
}

const char* origin_name(Op::Origin o) {
  return o == Op::Origin::kRecentJoin ? "recent" : "any";
}

std::uint32_t pick32(Rng& rng) {
  return static_cast<std::uint32_t>(rng.uniform(0, 0x7fffffff));
}

bool time_order(const Op& a, const Op& b) { return a.at < b.at; }

/// Evenly spread `count` events over [start, start + window); index i lands
/// at the centre of its slot so streams with different counts interleave.
sim::SimTime slot_time(sim::SimTime start, sim::Duration window,
                       std::uint32_t i, std::uint32_t count) {
  assert(count > 0);
  const double frac = (static_cast<double>(i) + 0.5) / count;
  return start + sim::SimTime::micros(static_cast<std::int64_t>(
                     frac * static_cast<double>(window.as_micros())));
}

}  // namespace

std::vector<sim::SimTime> curve_times(const RateCurve& curve,
                                      sim::SimTime start, Rng& rng) {
  std::vector<sim::SimTime> times;
  sim::SimTime phase_start = start;
  for (const RatePhase& phase : curve) {
    const auto count = static_cast<std::uint64_t>(
        std::llround(phase.duration.as_seconds() * phase.per_second));
    if (count > 0) {
      const double spacing =
          static_cast<double>(phase.duration.as_micros()) /
          static_cast<double>(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        // Jitter keeps ops off exact grid points but never reorders them:
        // each op stays inside the first half of its own slot.
        const double offset =
            (static_cast<double>(i) + 0.5 * rng.uniform01()) * spacing;
        times.push_back(phase_start + sim::SimTime::micros(
                                          static_cast<std::int64_t>(offset)));
      }
    }
    phase_start += phase.duration;
  }
  return times;
}

std::string dump_stream(const std::vector<Op>& ops) {
  std::ostringstream out;
  for (const Op& op : ops) {
    out << op.at.as_micros() << "us " << kind_name(op.kind) << ' '
        << origin_name(op.origin) << " item=" << op.item
        << " pick=" << op.pick << '\n';
  }
  return out.str();
}

std::vector<Op> merge_streams(std::vector<Op> a, std::vector<Op> b) {
  std::vector<Op> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             time_order);
  return out;
}

std::vector<WorkItem> Workload::corpus(std::uint64_t seed) const {
  return uniform_corpus(num_items(), seed);
}

// --- Composition ------------------------------------------------------------

CompositeWorkload::CompositeWorkload(
    std::vector<std::shared_ptr<const Workload>> children)
    : children_(std::move(children)) {
  assert(!children_.empty());
  name_ = "composite(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) name_ += '+';
    name_ += children_[i]->name();
  }
  name_ += ')';
}

std::uint32_t CompositeWorkload::num_items() const {
  std::uint32_t n = 0;
  for (const auto& c : children_) n = std::max(n, c->num_items());
  return n;
}

std::vector<WorkItem> CompositeWorkload::corpus(std::uint64_t seed) const {
  // The widest child defines the item space; narrower children address a
  // prefix of it.  (Don't compose scenarios with conflicting custom corpora
  // -- the swarm keeps its own item space by being the widest child or by
  // running alone.)
  const Workload* widest = children_.front().get();
  for (const auto& c : children_) {
    if (c->num_items() > widest->num_items()) widest = c.get();
  }
  return widest->corpus(seed);
}

std::vector<Op> CompositeWorkload::generate(std::uint64_t seed) const {
  std::vector<Op> out;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    // Each child draws from its own forked seed, so adding a child never
    // perturbs its siblings' streams.
    const std::uint64_t child_seed = mix64(seed ^ (0xc0fefe + i));
    out = merge_streams(std::move(out), children_[i]->generate(child_seed));
  }
  return out;
}

std::shared_ptr<const Workload> compose(std::shared_ptr<const Workload> a,
                                        std::shared_ptr<const Workload> b) {
  return std::make_shared<CompositeWorkload>(
      std::vector<std::shared_ptr<const Workload>>{std::move(a),
                                                   std::move(b)});
}

// --- Diurnal ---------------------------------------------------------------

std::vector<Op> DiurnalWorkload::generate(std::uint64_t seed) const {
  const Rng base(seed);

  std::vector<Op> stores;
  Rng store_rng = base.fork(1);
  for (std::uint32_t i = 0; i < items; ++i) {
    stores.push_back(Op{Op::Kind::kStore, Op::Origin::kAny,
                        slot_time({}, store_window, i, items), i,
                        pick32(store_rng)});
  }

  std::vector<Op> lookups;
  Rng look_rng = base.fork(2);
  const ZipfSampler zipf(items, zipf_exponent);
  for (const sim::SimTime t : curve_times(curve, store_window, look_rng)) {
    lookups.push_back(Op{Op::Kind::kLookup, Op::Origin::kAny, t,
                         static_cast<std::uint32_t>(zipf.sample(look_rng)),
                         pick32(look_rng)});
  }

  // Joins ride the morning ramp (second phase), leaves the evening decline
  // (last phase).
  sim::SimTime ramp_start = store_window;
  sim::Duration ramp_len{};
  sim::SimTime decline_start = store_window;
  sim::Duration decline_len{};
  if (curve.size() >= 2) {
    ramp_start = store_window + curve[0].duration;
    ramp_len = curve[1].duration;
    decline_start = store_window;
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
      decline_start += curve[i].duration;
    }
    decline_len = curve.back().duration;
  }

  std::vector<Op> churn;
  Rng churn_rng = base.fork(3);
  for (std::uint32_t i = 0; i < morning_joins; ++i) {
    churn.push_back(Op{Op::Kind::kJoin, Op::Origin::kAny,
                       slot_time(ramp_start, ramp_len, i, morning_joins), 0,
                       pick32(churn_rng)});
  }
  for (std::uint32_t i = 0; i < evening_leaves; ++i) {
    churn.push_back(Op{Op::Kind::kLeave, Op::Origin::kAny,
                       slot_time(decline_start, decline_len, i, evening_leaves),
                       0, pick32(churn_rng)});
  }
  std::stable_sort(churn.begin(), churn.end(), time_order);

  return merge_streams(std::move(stores),
                       merge_streams(std::move(lookups), std::move(churn)));
}

// --- Hot-key storm ----------------------------------------------------------

std::vector<Op> HotKeyStormWorkload::generate(std::uint64_t seed) const {
  const Rng base(seed);

  std::vector<Op> stores;
  Rng store_rng = base.fork(1);
  for (std::uint32_t i = 0; i < items; ++i) {
    stores.push_back(Op{Op::Kind::kStore, Op::Origin::kAny,
                        slot_time({}, store_window, i, items), i,
                        pick32(store_rng)});
  }

  // The hot key rotates: storms pick a fresh victim every `rotation`, so a
  // cache warmed on the previous key is useless unless it re-warms fast.
  // Which item is hot in rotation r is itself seeded, not sequential --
  // adjacent corpus indices often share a segment.
  std::vector<Op> lookups;
  Rng look_rng = base.fork(2);
  Rng rota_rng = base.fork(3);
  const RateCurve storm{{horizon, per_second}};
  std::uint64_t rotations =
      static_cast<std::uint64_t>(horizon.as_micros()) /
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, rotation.as_micros()));
  rotations += 1;
  std::vector<std::uint32_t> hot_of_rotation;
  hot_of_rotation.reserve(rotations);
  for (std::uint64_t r = 0; r < rotations; ++r) {
    hot_of_rotation.push_back(
        static_cast<std::uint32_t>(rota_rng.index(items)));
  }
  for (const sim::SimTime t : curve_times(storm, storm_start, look_rng)) {
    const std::uint64_t r =
        static_cast<std::uint64_t>((t - storm_start).as_micros()) /
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, rotation.as_micros()));
    const std::uint32_t item =
        look_rng.chance(hot_fraction)
            ? hot_of_rotation[std::min<std::uint64_t>(r, rotations - 1)]
            : static_cast<std::uint32_t>(look_rng.index(items));
    lookups.push_back(
        Op{Op::Kind::kLookup, Op::Origin::kAny, t, item, pick32(look_rng)});
  }

  return merge_streams(std::move(stores), std::move(lookups));
}

// --- Flash crowd ------------------------------------------------------------

std::vector<Op> FlashCrowdWorkload::generate(std::uint64_t seed) const {
  const Rng base(seed);

  std::vector<Op> stores;
  Rng store_rng = base.fork(1);
  for (std::uint32_t i = 0; i < items; ++i) {
    stores.push_back(Op{Op::Kind::kStore, Op::Origin::kAny,
                        slot_time({}, store_window, i, items), i,
                        pick32(store_rng)});
  }

  std::vector<Op> quiet;
  Rng quiet_rng = base.fork(2);
  for (const sim::SimTime t :
       curve_times(baseline, store_window, quiet_rng)) {
    quiet.push_back(Op{Op::Kind::kLookup, Op::Origin::kAny, t,
                       static_cast<std::uint32_t>(quiet_rng.index(items)),
                       pick32(quiet_rng)});
  }

  sim::SimTime burst_start = store_window;
  for (const RatePhase& phase : baseline) burst_start += phase.duration;

  // The burst: joins tagged kRecentJoin so the runner aims them all at one
  // segment (single shared interest), then the crowd itself issues the
  // lookups -- fresh peers with cold caches hammering a handful of items.
  std::vector<Op> burst;
  Rng burst_rng = base.fork(3);
  for (std::uint32_t i = 0; i < burst_joins; ++i) {
    burst.push_back(Op{Op::Kind::kJoin, Op::Origin::kRecentJoin,
                       slot_time(burst_start, burst_window, i, burst_joins), 0,
                       pick32(burst_rng)});
  }
  const std::uint32_t wanted = std::max(1u, std::min(crowd_items, items));
  for (const sim::SimTime t :
       curve_times(crowd, burst_start + crowd_delay, burst_rng)) {
    burst.push_back(Op{Op::Kind::kLookup, Op::Origin::kRecentJoin, t,
                       static_cast<std::uint32_t>(burst_rng.index(wanted)),
                       pick32(burst_rng)});
  }
  std::stable_sort(burst.begin(), burst.end(), time_order);

  return merge_streams(std::move(stores),
                       merge_streams(std::move(quiet), std::move(burst)));
}

// --- Content swarm ----------------------------------------------------------

std::string SwarmWorkload::piece_payload(std::uint64_t seed,
                                         std::uint32_t index) {
  // 64 bytes of seeded pseudo-content rendered as hex, so corrupting any
  // byte changes the FNV-1a digest the leechers verify against.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string payload;
  payload.reserve(64);
  for (std::uint32_t word = 0; word < 4; ++word) {
    std::uint64_t v = mix64(seed ^ (std::uint64_t{index} << 8) ^ word);
    for (int nibble = 0; nibble < 16; ++nibble) {
      payload.push_back(kHex[v & 0xf]);
      v >>= 4;
    }
  }
  return payload;
}

std::uint64_t SwarmWorkload::piece_hash(std::uint64_t seed,
                                        std::uint32_t index) {
  return fnv1a64(piece_payload(seed, index));
}

std::vector<WorkItem> SwarmWorkload::corpus(std::uint64_t seed) const {
  // Content-addressed corpus: the stored value IS the integrity hash, so a
  // lookup's LookupResult::value can be checked against a recomputed
  // piece_hash without trusting anything the overlay returned.
  std::vector<WorkItem> out;
  out.reserve(pieces);
  for (std::uint32_t i = 0; i < pieces; ++i) {
    WorkItem item;
    item.key = "piece-" + std::to_string(i);
    item.id = hash_key(item.key);
    item.value = piece_hash(seed, i);
    out.push_back(std::move(item));
  }
  return out;
}

std::vector<Op> SwarmWorkload::generate(std::uint64_t seed) const {
  assert(seeders >= 2);
  const Rng base(seed);

  // Seeding: every piece announced by two distinct seeders, so the tracker
  // index has an alternate holder when one seeder (or the tracker itself)
  // dies mid-swarm.  pick identifies the seeder; the runner maps equal
  // picks to the same peer.
  std::vector<Op> stores;
  Rng seed_rng = base.fork(1);
  const std::uint32_t total_stores = pieces * 2;
  for (std::uint32_t i = 0; i < pieces; ++i) {
    const auto s1 = static_cast<std::uint32_t>(seed_rng.index(seeders));
    const auto s2 = static_cast<std::uint32_t>(
        (s1 + 1 + seed_rng.index(seeders - 1)) % seeders);
    stores.push_back(Op{Op::Kind::kStore, Op::Origin::kAny,
                        slot_time({}, seed_window, 2 * i, total_stores), i,
                        s1});
    stores.push_back(Op{Op::Kind::kStore, Op::Origin::kAny,
                        slot_time({}, seed_window, 2 * i + 1, total_stores), i,
                        s2});
  }

  // Download phase: each leecher fetches every piece in its own seeded
  // order (rarest-first stands in for "not sequential"), leechers
  // interleaved across the window.
  std::vector<Op> downloads;
  const std::uint32_t total_fetches = leechers * pieces;
  for (std::uint32_t l = 0; l < leechers; ++l) {
    Rng order_rng = base.fork(0x1000 + l);
    std::vector<std::uint32_t> order(pieces);
    for (std::uint32_t i = 0; i < pieces; ++i) order[i] = i;
    order_rng.shuffle(order);
    for (std::uint32_t k = 0; k < pieces; ++k) {
      downloads.push_back(Op{Op::Kind::kLookup, Op::Origin::kAny,
                             slot_time(download_start, download_window,
                                       k * leechers + l, total_fetches),
                             order[k], seeders + l});
    }
  }
  std::stable_sort(downloads.begin(), downloads.end(), time_order);

  return merge_streams(std::move(stores), std::move(downloads));
}

}  // namespace hp2p::workload
