// Executes a workload::Workload against a live HybridSystem, optionally
// under a chaos FaultSchedule, with the MUST/MAY oracle and the overlay
// auditor watching.
//
// This is the production-traffic counterpart of chaos::run_chaos: where the
// chaos runner drives a synthetic storm shaped by the fault schedule, this
// runner replays a scenario's own op stream (diurnal curves, hot-key storms,
// flash crowds, content swarms) and judges every lookup the same way --
// failures only count when the oracle says the lookup MUST have succeeded
// both at issue time and at quiescence.  Lives in its own hp2p_scenario
// target because hp2p_chaos already links hp2p_workload (the generators must
// stay chaos-free).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_runner.hpp"
#include "chaos/fault_schedule.hpp"
#include "hybrid/params.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/json.hpp"
#include "workload/scenario.hpp"

namespace hp2p::workload {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_peers = 60;
  std::uint32_t hosts = 200;
  /// Fraction of s-peers among the initial population (forced roles).
  double ps = 0.5;
  hybrid::HybridParams params = chaos::chaos_default_params();
  /// The op stream to replay.  Required.
  std::shared_ptr<const Workload> workload;
  /// Chaos stacked under the workload.  Phase starts are RELATIVE to the op
  /// window (the runner shifts them); empty = fault-free run.
  chaos::FaultSchedule schedule;
  /// Recovery time after the later of stream end / schedule end.
  sim::Duration settle = sim::SimTime::seconds(60);
  /// Lenient auditor cadence during the op window (zero = off).  Lenient
  /// passes are churn-safe: any violation they report is real corruption.
  sim::Duration audit_period = sim::SimTime::seconds(15);
  /// Check LookupResult::value against the corpus item's value on every
  /// successful lookup (the swarm's piece-integrity check).
  bool verify_values = false;
  /// Client-side retries for a failed mid-run lookup: the runner re-resolves
  /// an origin (shifted by the attempt number, so a client whose own
  /// attachment is broken does not just retry through itself) and reissues
  /// after `retry_backoff`.  The oracle judges the FINAL attempt -- this
  /// models real clients, which reissue a request that fails while the
  /// overlay is actively healing, without weakening the quiescent verdicts.
  std::uint32_t lookup_retries = 2;
  sim::Duration retry_backoff = sim::SimTime::seconds(2);
  /// Quiescent MUST/MAY wave over every stored item after settle.
  bool final_wave = true;
  /// Kernel tie-break policy ("" = FIFO, or "shuffle:<seed>"); falls back
  /// to the HP2P_TIEBREAK environment variable like the chaos runner.
  std::string tie_break;
  /// Optional (not owned).
  stats::FlightRecorder* flight = nullptr;
};

struct ScenarioReport {
  std::string scenario;
  std::uint64_t seed = 0;
  // Op-stream accounting.
  std::uint32_t ops = 0;
  std::uint32_t stores = 0;
  std::uint32_t lookups_issued = 0;
  std::uint32_t lookups_succeeded = 0;
  std::uint32_t lookups_failed = 0;
  std::uint32_t retries = 0;  // failed attempts reissued by the client
  std::uint32_t joins = 0;
  std::uint32_t leaves = 0;
  std::uint32_t ops_skipped = 0;  // no eligible actor at fire time
  // Chaos accounting.
  std::uint32_t crashes = 0;
  std::uint32_t chaos_joins = 0;
  // Oracle verdicts.
  std::uint32_t must_failed = 0;  // mid-run MUST lookups that failed
  std::uint32_t wave_must_issued = 0;
  std::uint32_t wave_may_issued = 0;
  std::uint32_t wave_must_failed = 0;
  std::uint32_t value_mismatches = 0;
  std::uint32_t audit_violations = 0;
  bool ring_ok = false;
  bool trees_ok = false;
  // Headline metrics (the bench's per-scenario claim line).
  double availability = 0.0;       // succeeded / issued, mid-run lookups
  double mean_latency_ms = 0.0;    // successful mid-run lookups
  std::uint64_t max_peer_load = 0;  // max answers served by one peer
  double mean_peer_load = 0.0;
  double load_skew = 0.0;  // max / mean (0 when nothing was served)
  std::uint64_t cache_hits = 0;
  std::vector<chaos::ChaosViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] stats::JsonValue to_json() const;
};

/// Replays `cfg.workload` and returns the oracle's verdict plus the
/// headline availability/latency/load metrics.
[[nodiscard]] ScenarioReport run_scenario(const ScenarioConfig& cfg);

// --- Named scenario presets -------------------------------------------------
//
// One per shipped scenario, shared verbatim by bench_scenarios and the
// workload-label tests so the bench numbers and the test assertions describe
// the same run.  Each stacks a default chaos schedule under the workload.

/// Diurnal curve with an s-peer crash storm through the midday peak.
[[nodiscard]] ScenarioConfig diurnal_scenario(std::uint64_t seed);

/// Rotating hot-key storm (cache ablation sequel); `caching` toggles the
/// Section 7 scheme so the bench can report max-peer-load on vs off.
[[nodiscard]] ScenarioConfig hot_key_storm_scenario(std::uint64_t seed,
                                                    bool caching);

/// Flash crowd of interest-tagged joins aimed at one segment, under a loss
/// burst.
[[nodiscard]] ScenarioConfig flash_crowd_scenario(std::uint64_t seed);

/// Content swarm over tracker-mode s-networks with a t-peer (= tracker)
/// crash storm mid-download; verify_values is on.
[[nodiscard]] ScenarioConfig swarm_scenario(std::uint64_t seed);

}  // namespace hp2p::workload
