#include "net/underlay.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace hp2p::net {

std::uint64_t LinkStress::max_stress() const {
  std::uint64_t best = 0;
  for (auto c : counts_) best = std::max(best, c);
  return best;
}

double LinkStress::mean_stress() const {
  if (counts_.empty()) return 0.0;
  return static_cast<double>(total_copies()) /
         static_cast<double>(counts_.size());
}

std::uint64_t LinkStress::total_copies() const {
  std::uint64_t sum = 0;
  for (auto c : counts_) sum += c;
  return sum;
}

Underlay::Underlay(Topology topology, Rng& capacity_rng)
    : topology_(std::move(topology)) {
  const std::size_t v = topology_.graph.num_nodes();
  latency_us_.assign(v * v, std::numeric_limits<std::uint32_t>::max());
  first_hop_.assign(v * v, std::numeric_limits<std::uint32_t>::max());
  first_edge_.assign(v * v, kNoEdge);
  for (std::uint32_t s = 0; s < v; ++s) dijkstra_from(s);

  // Deal capacity classes exactly 1/3 : 1/3 : 1/3 (paper Section 6),
  // shuffled so classes are uncorrelated with topology position.
  capacity_.resize(v);
  std::vector<std::uint32_t> order(v);
  for (std::uint32_t i = 0; i < v; ++i) order[i] = i;
  capacity_rng.shuffle(order);
  for (std::size_t i = 0; i < v; ++i) {
    const std::size_t third = (i * 3) / v;
    capacity_[order[i]] = static_cast<CapacityClass>(third);
  }
}

void Underlay::dijkstra_from(std::uint32_t source) {
  const std::size_t v = topology_.graph.num_nodes();
  using QItem = std::pair<std::uint64_t, std::uint32_t>;  // (dist, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  std::vector<std::uint64_t> dist(v, std::numeric_limits<std::uint64_t>::max());
  // For path recovery we track, per settled node, the *first* hop taken out
  // of the source, plus per-node parent edge for for_each_path_edge.
  std::vector<std::uint32_t> parent(v, std::numeric_limits<std::uint32_t>::max());
  std::vector<EdgeIndex> parent_edge(v, kNoEdge);

  dist[source] = 0;
  queue.emplace(0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : topology_.graph.neighbors(u)) {
      const std::uint64_t nd = d + h.latency_us;
      if (nd < dist[h.to]) {
        dist[h.to] = nd;
        parent[h.to] = u;
        parent_edge[h.to] = h.edge;
        queue.emplace(nd, h.to);
      }
    }
  }

  for (std::uint32_t t = 0; t < v; ++t) {
    assert(dist[t] != std::numeric_limits<std::uint64_t>::max());
    latency_us_[index(source, t)] = static_cast<std::uint32_t>(dist[t]);
    if (t == source) continue;
    // Walk back from t to find the hop adjacent to the source.
    std::uint32_t walk = t;
    while (parent[walk] != source) walk = parent[walk];
    first_hop_[index(source, t)] = walk;
    first_edge_[index(source, t)] = parent_edge[walk];
  }
}

std::uint32_t Underlay::path_hops(HostIndex from, HostIndex to) const {
  std::uint32_t hops = 0;
  std::uint32_t u = from.value();
  const std::uint32_t t = to.value();
  while (u != t) {
    u = first_hop_[index(u, t)];
    ++hops;
  }
  return hops;
}

void Underlay::for_each_path_edge(
    HostIndex from, HostIndex to,
    const std::function<void(EdgeIndex)>& fn) const {
  std::uint32_t u = from.value();
  const std::uint32_t t = to.value();
  while (u != t) {
    fn(first_edge_[index(u, t)]);
    u = first_hop_[index(u, t)];
  }
}

sim::SimTime Underlay::transmission_delay(HostIndex from, HostIndex to,
                                          std::uint32_t bytes) const {
  const double bps = std::min(capacity_bps(capacity(from)),
                              capacity_bps(capacity(to)));
  const double seconds = static_cast<double>(bytes) * 8.0 / bps;
  return sim::SimTime::seconds(seconds);
}

std::vector<sim::SimTime> Underlay::distances_to(
    HostIndex host, const std::vector<HostIndex>& landmarks) const {
  std::vector<sim::SimTime> out;
  out.reserve(landmarks.size());
  for (HostIndex lm : landmarks) out.push_back(latency(host, lm));
  return out;
}

}  // namespace hp2p::net
