#include "net/underlay.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace hp2p::net {
namespace {

constexpr std::uint64_t kInf64 = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();

/// Monotone instance ids for the thread-local intra-tree cache.
std::atomic<std::uint64_t> g_next_underlay_id{1};

std::uint32_t narrow_latency(std::uint64_t us) {
  // Path latencies are bounded by diameter * max link latency (~seconds in
  // microseconds); anything near 2^32 us (~71 min) is a topology bug.
  assert(us < std::numeric_limits<std::uint32_t>::max());
  return static_cast<std::uint32_t>(us);
}

}  // namespace

LinkStress::LinkStress(std::size_t num_edges, Mode mode)
    : num_edges_(num_edges),
      sparse_(mode == Mode::kSparse ||
              (mode == Mode::kAuto && num_edges > kSparseThreshold)) {
  if (!sparse_) counts_.assign(num_edges, 0);
}

double LinkStress::mean_stress() const {
  if (num_edges_ == 0) return 0.0;
  return static_cast<double>(total_) / static_cast<double>(num_edges_);
}

Underlay::Underlay(Topology topology, Rng& capacity_rng, RoutingMode mode)
    : topology_(std::move(topology)),
      instance_id_(g_next_underlay_id.fetch_add(1)) {
  const std::size_t v = topology_.graph.num_nodes();
  RoutingMode want = mode;
  if (want == RoutingMode::kAuto) {
    want = v <= kDenseRoutingThreshold ? RoutingMode::kDense
                                       : RoutingMode::kHierarchical;
  }
  if (want == RoutingMode::kHierarchical && build_hierarchical()) {
    mode_ = RoutingMode::kHierarchical;
  } else {
    build_dense();
    mode_ = RoutingMode::kDense;
  }

  // Deal capacity classes exactly 1/3 : 1/3 : 1/3 (paper Section 6),
  // shuffled so classes are uncorrelated with topology position.  The draw
  // sequence is mode-independent (routing construction consumes no RNG).
  capacity_.resize(v);
  std::vector<std::uint32_t> order(v);
  for (std::uint32_t i = 0; i < v; ++i) order[i] = i;
  capacity_rng.shuffle(order);
  for (std::size_t i = 0; i < v; ++i) {
    const std::size_t third = (i * 3) / v;
    capacity_[order[i]] = static_cast<CapacityClass>(third);
  }
}

std::size_t Underlay::routing_memory_bytes() const {
  auto bytes = [](const auto& vec) {
    return vec.capacity() * sizeof(vec[0]);
  };
  return bytes(dense_latency_us_) + bytes(dense_first_hop_) +
         bytes(dense_first_edge_) + bytes(stub_domains_) + bytes(gw_dist_us_) +
         bytes(gw_parent_) + bytes(gw_parent_edge_) + bytes(gw_hops_) +
         bytes(core_latency_us_) + bytes(core_next_) + bytes(core_next_edge_);
}

// --------------------------------------------------------------------------
// Dense backend: the original all-pairs implementation.
// --------------------------------------------------------------------------

void Underlay::build_dense() {
  const std::size_t v = topology_.graph.num_nodes();
  dense_latency_us_.assign(v * v, std::numeric_limits<std::uint32_t>::max());
  dense_first_hop_.assign(v * v, kNoNode);
  dense_first_edge_.assign(v * v, kNoEdge);
  for (std::uint32_t s = 0; s < v; ++s) dense_dijkstra_from(s);
}

void Underlay::dense_dijkstra_from(std::uint32_t source) {
  const std::size_t v = topology_.graph.num_nodes();
  using QItem = std::pair<std::uint64_t, std::uint32_t>;  // (dist, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  std::vector<std::uint64_t> dist(v, kInf64);
  // For path recovery we track, per settled node, the *first* hop taken out
  // of the source, plus per-node parent edge for for_each_path_edge.
  std::vector<std::uint32_t> parent(v, kNoNode);
  std::vector<EdgeIndex> parent_edge(v, kNoEdge);

  dist[source] = 0;
  queue.emplace(0, source);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : topology_.graph.neighbors(u)) {
      const std::uint64_t nd = d + h.latency_us;
      if (nd < dist[h.to]) {
        dist[h.to] = nd;
        parent[h.to] = u;
        parent_edge[h.to] = h.edge;
        queue.emplace(nd, h.to);
      }
    }
  }

  for (std::uint32_t t = 0; t < v; ++t) {
    assert(dist[t] != kInf64);
    dense_latency_us_[dense_index(source, t)] = narrow_latency(dist[t]);
    if (t == source) continue;
    // Walk back from t to find the hop adjacent to the source.
    std::uint32_t walk = t;
    while (parent[walk] != source) walk = parent[walk];
    dense_first_hop_[dense_index(source, t)] = walk;
    dense_first_edge_[dense_index(source, t)] = parent_edge[walk];
  }
}

// --------------------------------------------------------------------------
// Hierarchical backend.
// --------------------------------------------------------------------------

bool Underlay::build_hierarchical() {
  const auto fail = [this] {
    stub_domains_.clear();
    gw_dist_us_.clear();
    gw_parent_.clear();
    gw_parent_edge_.clear();
    gw_hops_.clear();
    core_latency_us_.clear();
    core_next_.clear();
    core_next_edge_.clear();
    return false;
  };

  const std::uint32_t v =
      static_cast<std::uint32_t>(topology_.graph.num_nodes());
  const std::uint32_t t = topology_.num_transit_nodes;
  if (t == 0 || t > v) return fail();
  if (topology_.role.size() != v || topology_.domain.size() != v) {
    return fail();
  }
  for (std::uint32_t n = 0; n < v; ++n) {
    const bool transit_role = topology_.role[n] == NodeRole::kTransit;
    if (transit_role != (n < t)) return fail();  // transit block must lead
  }

  // Collect stub domains (member ranges must be contiguous) and their
  // gateway edges (each domain must touch the transit core exactly once).
  std::uint32_t max_domain = 0;
  for (std::uint32_t n = t; n < v; ++n) {
    max_domain = std::max(max_domain, topology_.domain[n]);
  }
  stub_domains_.assign(static_cast<std::size_t>(max_domain) + 1, StubDomain{});
  std::vector<std::uint32_t> lo(stub_domains_.size(), kNoNode);
  std::vector<std::uint32_t> hi(stub_domains_.size(), 0);
  std::vector<std::uint32_t> count(stub_domains_.size(), 0);
  for (std::uint32_t n = t; n < v; ++n) {
    const std::uint32_t d = topology_.domain[n];
    lo[d] = std::min(lo[d], n);
    hi[d] = std::max(hi[d], n);
    ++count[d];
  }
  for (std::uint32_t n = t; n < v; ++n) {
    const std::uint32_t d = topology_.domain[n];
    StubDomain& dom = stub_domains_[d];
    for (const HalfEdge& h : topology_.graph.neighbors(n)) {
      if (h.to < t) {
        // Up-link into the core: must be the domain's single gateway edge.
        if (dom.gateway_edge != kNoEdge && dom.gateway_edge != h.edge) {
          return fail();
        }
        dom.gateway = n;
        dom.anchor = h.to;
        dom.gateway_edge = h.edge;
        dom.gateway_latency_us = h.latency_us;
      } else if (topology_.domain[h.to] != d) {
        return fail();  // stub-to-foreign-stub edge breaks the decomposition
      }
    }
  }
  for (std::size_t d = 0; d < stub_domains_.size(); ++d) {
    if (count[d] == 0) continue;  // id unused by any stub node
    if (hi[d] - lo[d] + 1 != count[d]) return fail();  // not contiguous
    if (stub_domains_[d].gateway_edge == kNoEdge) return fail();
    stub_domains_[d].first_node = lo[d];
    stub_domains_[d].num_nodes = count[d];
  }

  // Per-domain gateway shortest-path trees (O(V) state total).
  gw_dist_us_.assign(v, 0);
  gw_parent_.assign(v, kNoNode);
  gw_parent_edge_.assign(v, kNoEdge);
  gw_hops_.assign(v, 0);
  for (const StubDomain& dom : stub_domains_) {
    if (dom.num_nodes == 0) continue;
    const IntraTree& tree = intra_tree(dom.gateway);
    for (std::uint32_t i = 0; i < dom.num_nodes; ++i) {
      if (tree.dist_us[i] == kInf64) return fail();  // disconnected domain
      const std::uint32_t n = dom.first_node + i;
      gw_dist_us_[n] = narrow_latency(tree.dist_us[i]);
      gw_parent_[n] = tree.parent[i];
      gw_parent_edge_[n] = tree.parent_edge[i];
      gw_hops_[n] = tree.hops[i];
    }
  }

  // All-pairs over the transit core (T*T, T tiny even at 100k+ hosts).
  // Core paths never cross a stub domain -- doing so would use that
  // domain's single gateway edge twice -- so restricting Dijkstra to
  // transit nodes is exact.
  core_latency_us_.assign(static_cast<std::size_t>(t) * t, 0);
  core_next_.assign(static_cast<std::size_t>(t) * t, kNoNode);
  core_next_edge_.assign(static_cast<std::size_t>(t) * t, kNoEdge);
  std::vector<std::uint64_t> dist(t);
  std::vector<std::uint32_t> parent(t);
  std::vector<EdgeIndex> parent_edge(t);
  using QItem = std::pair<std::uint64_t, std::uint32_t>;
  for (std::uint32_t s = 0; s < t; ++s) {
    std::fill(dist.begin(), dist.end(), kInf64);
    std::fill(parent.begin(), parent.end(), kNoNode);
    std::fill(parent_edge.begin(), parent_edge.end(), kNoEdge);
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
    dist[s] = 0;
    queue.emplace(0, s);
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d != dist[u]) continue;
      for (const HalfEdge& h : topology_.graph.neighbors(u)) {
        if (h.to >= t) continue;  // stay inside the core
        const std::uint64_t nd = d + h.latency_us;
        if (nd < dist[h.to]) {
          dist[h.to] = nd;
          parent[h.to] = u;
          parent_edge[h.to] = h.edge;
          queue.emplace(nd, h.to);
        }
      }
    }
    for (std::uint32_t e = 0; e < t; ++e) {
      if (dist[e] == kInf64) return fail();  // core must be connected
      core_latency_us_[core_index(s, e)] = narrow_latency(dist[e]);
      if (e == s) continue;
      std::uint32_t walk = e;
      while (parent[walk] != s) walk = parent[walk];
      core_next_[core_index(s, e)] = walk;
      core_next_edge_[core_index(s, e)] = parent_edge[walk];
    }
  }
  return true;
}

const Underlay::IntraTree& Underlay::intra_tree(std::uint32_t root) const {
  thread_local IntraTree tree;
  thread_local std::vector<char> settled;
  if (tree.owner_id == instance_id_ && tree.root == root) return tree;

  const StubDomain& dom = stub_of(root);
  const std::uint32_t n = dom.num_nodes;
  tree.owner_id = instance_id_;
  tree.root = root;
  tree.dist_us.assign(n, kInf64);
  tree.parent.assign(n, kNoNode);
  tree.parent_edge.assign(n, kNoEdge);
  tree.hops.assign(n, 0);
  settled.assign(n, 0);

  // O(n^2) Dijkstra: domains are small (tens of nodes), and the flat scan
  // beats a heap at that size.  Ties settle the lowest node id first, so
  // the tree -- hence path_hops / for_each_path_edge -- is deterministic.
  tree.dist_us[root - dom.first_node] = 0;
  for (std::uint32_t round = 0; round < n; ++round) {
    std::uint32_t best = kNoNode;
    std::uint64_t best_dist = kInf64;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (settled[i] == 0 && tree.dist_us[i] < best_dist) {
        best_dist = tree.dist_us[i];
        best = i;
      }
    }
    if (best == kNoNode) break;  // remainder unreachable (caught by caller)
    settled[best] = 1;
    const std::uint32_t u = dom.first_node + best;
    for (const HalfEdge& h : topology_.graph.neighbors(u)) {
      if (h.to < dom.first_node || h.to >= dom.first_node + n) {
        continue;  // the gateway up-link; intra paths never leave the domain
      }
      const std::uint32_t li = h.to - dom.first_node;
      const std::uint64_t nd = best_dist + h.latency_us;
      if (nd < tree.dist_us[li]) {
        tree.dist_us[li] = nd;
        tree.parent[li] = u;  // next node toward the root
        tree.parent_edge[li] = h.edge;
        tree.hops[li] = tree.hops[best] + 1;
      }
    }
  }
  return tree;
}

// --------------------------------------------------------------------------
// Queries (mode dispatch).
// --------------------------------------------------------------------------

std::uint64_t Underlay::latency_us(std::uint32_t from, std::uint32_t to) const {
  if (mode_ == RoutingMode::kDense) {
    return dense_latency_us_[dense_index(from, to)];
  }
  if (from == to) return 0;
  if (!is_transit(from) && !is_transit(to) &&
      topology_.domain[from] == topology_.domain[to]) {
    // Same stub domain: bounded on-demand Dijkstra, rooted at the
    // destination so latency/hops/edge-walk all read one tree.
    const IntraTree& tree = intra_tree(to);
    return tree.dist_us[from - stub_of(to).first_node];
  }
  return uplink_us(from) +
         core_latency_us_[core_index(anchor_of(from), anchor_of(to))] +
         uplink_us(to);
}

std::uint32_t Underlay::path_hops(HostIndex from, HostIndex to) const {
  std::uint32_t u = from.value();
  const std::uint32_t t = to.value();
  if (mode_ == RoutingMode::kDense) {
    std::uint32_t hops = 0;
    while (u != t) {
      u = dense_first_hop_[dense_index(u, t)];
      ++hops;
    }
    return hops;
  }
  if (u == t) return 0;
  if (!is_transit(u) && !is_transit(t) &&
      topology_.domain[u] == topology_.domain[t]) {
    const IntraTree& tree = intra_tree(t);
    return tree.hops[u - stub_of(t).first_node];
  }
  std::uint32_t hops = 0;
  if (!is_transit(u)) hops += gw_hops_[u] + 1;  // walk to gateway + up-link
  if (!is_transit(t)) hops += gw_hops_[t] + 1;
  std::uint32_t a = anchor_of(u);
  const std::uint32_t b = anchor_of(t);
  while (a != b) {
    a = core_next_[core_index(a, b)];
    ++hops;
  }
  return hops;
}

void Underlay::for_each_path_edge(
    HostIndex from, HostIndex to,
    const std::function<void(EdgeIndex)>& fn) const {
  std::uint32_t u = from.value();
  const std::uint32_t t = to.value();
  if (mode_ == RoutingMode::kDense) {
    while (u != t) {
      fn(dense_first_edge_[dense_index(u, t)]);
      u = dense_first_hop_[dense_index(u, t)];
    }
    return;
  }
  if (u == t) return;
  if (!is_transit(u) && !is_transit(t) &&
      topology_.domain[u] == topology_.domain[t]) {
    const IntraTree& tree = intra_tree(t);
    const std::uint32_t first = stub_of(t).first_node;
    while (u != t) {
      fn(tree.parent_edge[u - first]);
      u = tree.parent[u - first];
    }
    return;
  }
  // Source stub segment: walk up the gateway tree (already in path order).
  if (!is_transit(u)) {
    const StubDomain& dom = stub_of(u);
    while (u != dom.gateway) {
      fn(gw_parent_edge_[u]);
      u = gw_parent_[u];
    }
    fn(dom.gateway_edge);
  }
  // Transit core segment.
  std::uint32_t a = anchor_of(from.value());
  const std::uint32_t b = anchor_of(t);
  while (a != b) {
    fn(core_next_edge_[core_index(a, b)]);
    a = core_next_[core_index(a, b)];
  }
  // Destination stub segment: the gateway tree points toward the gateway,
  // so collect the walk and emit it reversed to keep from->to edge order.
  if (!is_transit(t)) {
    const StubDomain& dom = stub_of(t);
    fn(dom.gateway_edge);
    thread_local std::vector<EdgeIndex> down;
    down.clear();
    for (std::uint32_t w = t; w != dom.gateway; w = gw_parent_[w]) {
      down.push_back(gw_parent_edge_[w]);
    }
    for (auto it = down.rbegin(); it != down.rend(); ++it) fn(*it);
  }
}

sim::SimTime Underlay::transmission_delay(HostIndex from, HostIndex to,
                                          std::uint32_t bytes) const {
  const double bps = std::min(capacity_bps(capacity(from)),
                              capacity_bps(capacity(to)));
  const double seconds = static_cast<double>(bytes) * 8.0 / bps;
  return sim::SimTime::seconds(seconds);
}

std::vector<sim::SimTime> Underlay::distances_to(
    HostIndex host, const std::vector<HostIndex>& landmarks) const {
  std::vector<sim::SimTime> out;
  out.reserve(landmarks.size());
  for (HostIndex lm : landmarks) out.push_back(latency(host, lm));
  return out;
}

}  // namespace hp2p::net
