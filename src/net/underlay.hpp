// Underlay routing: shortest-path latencies and path recovery on top of a
// generated topology.
//
// Every overlay hop in the simulation maps to one source->destination
// traversal of the underlay; its cost is the Dijkstra shortest-path delay,
// and link-stress accounting walks the physical edges of that path (the
// paper's Section 5.2 metric).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "sim/time.hpp"

namespace hp2p::net {

/// Link-capacity class of a host's access link (Section 5.1: 1/3 of peers in
/// each class, fastest = 10x slowest).
enum class CapacityClass : std::uint8_t { kLow, kMedium, kHigh };

/// Bits per second of each capacity class.  Low is dial-up-ish; the exact
/// constants only scale the transmission-delay term.
[[nodiscard]] constexpr double capacity_bps(CapacityClass c) {
  switch (c) {
    case CapacityClass::kLow:
      return 1e6;
    case CapacityClass::kMedium:
      return 3.16e6;  // geometric midpoint of 1x and 10x
    case CapacityClass::kHigh:
      return 1e7;
  }
  return 1e6;
}

/// Per-physical-edge message-copy counters (link stress, Section 5.2).
class LinkStress {
 public:
  explicit LinkStress(std::size_t num_edges) : counts_(num_edges, 0) {}

  void bump(EdgeIndex e) { ++counts_[e]; }
  [[nodiscard]] std::uint64_t count(EdgeIndex e) const { return counts_[e]; }
  [[nodiscard]] std::uint64_t max_stress() const;
  [[nodiscard]] double mean_stress() const;
  [[nodiscard]] std::uint64_t total_copies() const;

 private:
  std::vector<std::uint64_t> counts_;
};

/// The routed underlay: topology + all-pairs shortest paths + host
/// capacities.  Immutable after construction, so replicas running on
/// different threads can share one instance by const reference.
class Underlay {
 public:
  /// Builds routing state; O(V * E log V) once per topology.
  /// `capacity_rng` deals the 1/3:1/3:1/3 capacity classes.
  Underlay(Topology topology, Rng& capacity_rng);

  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(topology_.graph.num_nodes());
  }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Propagation delay of the shortest path between two hosts.
  [[nodiscard]] sim::SimTime latency(HostIndex from, HostIndex to) const {
    return sim::SimTime::micros(
        latency_us_[index(from.value(), to.value())]);
  }

  /// Number of physical hops on the shortest path.
  [[nodiscard]] std::uint32_t path_hops(HostIndex from, HostIndex to) const;

  /// Invokes `fn(edge)` for every physical edge on the shortest path.
  void for_each_path_edge(HostIndex from, HostIndex to,
                          const std::function<void(EdgeIndex)>& fn) const;

  /// Access-link capacity class of a host.
  [[nodiscard]] CapacityClass capacity(HostIndex host) const {
    return capacity_[host.value()];
  }

  /// Transmission delay of `bytes` over the slower of the two endpoints'
  /// access links (the bottleneck model of Section 5.1).
  [[nodiscard]] sim::SimTime transmission_delay(HostIndex from, HostIndex to,
                                                std::uint32_t bytes) const;

  /// Mean landmark-style distance vector for a host: latencies to the given
  /// landmark hosts, used by the Section 5.2 binning scheme.
  [[nodiscard]] std::vector<sim::SimTime> distances_to(
      HostIndex host, const std::vector<HostIndex>& landmarks) const;

 private:
  [[nodiscard]] std::size_t index(std::uint32_t from, std::uint32_t to) const {
    return static_cast<std::size_t>(from) * topology_.graph.num_nodes() + to;
  }
  void dijkstra_from(std::uint32_t source);

  Topology topology_;
  std::vector<std::uint32_t> latency_us_;   // dense V*V
  std::vector<std::uint32_t> first_hop_;    // dense V*V, next node from->to
  std::vector<EdgeIndex> first_edge_;       // dense V*V, edge of that hop
  std::vector<CapacityClass> capacity_;     // per host
};

}  // namespace hp2p::net
