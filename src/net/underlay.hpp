// Underlay routing: shortest-path latencies and path recovery on top of a
// generated topology.
//
// Every overlay hop in the simulation maps to one source->destination
// traversal of the underlay; its cost is the Dijkstra shortest-path delay,
// and link-stress accounting walks the physical edges of that path (the
// paper's Section 5.2 metric).
//
// Two routing backends share one query interface:
//
//   kDense         All-pairs tables (the original implementation): O(V^2)
//                  memory, O(1) queries.  Fine to ~4k hosts, impossible at
//                  100k (a 100k-host table is 120 GB).
//   kHierarchical  Exploits the transit-stub structure: each stub domain
//                  hangs off the transit core by exactly ONE gateway edge,
//                  so every cross-domain shortest path decomposes exactly as
//                      intra(u, gw_A) + gate_A + core(t_A, t_B)
//                                    + gate_B + intra(gw_B, v).
//                  State is O(V) per-node gateway trees plus an all-pairs
//                  table over the (tiny) transit core; same-domain queries
//                  run a bounded intra-domain Dijkstra on demand.  The
//                  decomposition is exact -- a path leaving a stub domain
//                  must cross its single gateway edge, and re-entering any
//                  domain would reuse such an edge -- so latencies equal the
//                  dense answers bit-for-bit (asserted by net_test).
//
// kAuto picks kDense below kDenseRoutingThreshold hosts (preserving the
// historical byte-identical behaviour of every paper-scale experiment) and
// kHierarchical above it.  A topology without the expected structure falls
// back to dense routing; routing_mode() reports what was chosen.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "sim/time.hpp"

namespace hp2p::net {

/// Link-capacity class of a host's access link (Section 5.1: 1/3 of peers in
/// each class, fastest = 10x slowest).
enum class CapacityClass : std::uint8_t { kLow, kMedium, kHigh };

/// Bits per second of each capacity class.  Low is dial-up-ish; the exact
/// constants only scale the transmission-delay term.
[[nodiscard]] constexpr double capacity_bps(CapacityClass c) {
  switch (c) {
    case CapacityClass::kLow:
      return 1e6;
    case CapacityClass::kMedium:
      return 3.16e6;  // geometric midpoint of 1x and 10x
    case CapacityClass::kHigh:
      return 1e7;
  }
  return 1e6;
}

/// Per-physical-edge message-copy counters (link stress, Section 5.2).
///
/// Dense mode keeps one counter per edge; sparse mode keeps counters only
/// for edges actually touched (hash map), which is what a sampled run at
/// 100k+ hosts wants.  Both modes report identical max_stress() /
/// mean_stress() / total_copies() values: the mean still divides by the
/// full edge count, and max/total are maintained incrementally on bump()
/// (counters only grow, so the running max never goes stale).
class LinkStress {
 public:
  enum class Mode : std::uint8_t { kAuto, kDense, kSparse };

  /// Edge-count threshold above which kAuto picks sparse storage.
  static constexpr std::size_t kSparseThreshold = std::size_t{1} << 20;

  explicit LinkStress(std::size_t num_edges, Mode mode = Mode::kAuto);

  void bump(EdgeIndex e) {
    std::uint64_t c;
    if (sparse_) {
      c = ++sparse_counts_[e];
    } else {
      c = ++counts_[e];
    }
    ++total_;
    if (c > max_) max_ = c;
  }

  [[nodiscard]] std::uint64_t count(EdgeIndex e) const {
    if (!sparse_) return counts_[e];
    const auto it = sparse_counts_.find(e);
    return it == sparse_counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t max_stress() const { return max_; }
  [[nodiscard]] double mean_stress() const;
  [[nodiscard]] std::uint64_t total_copies() const { return total_; }
  [[nodiscard]] bool sparse() const { return sparse_; }

 private:
  std::size_t num_edges_;
  bool sparse_;
  std::vector<std::uint64_t> counts_;  // dense storage
  // Lookup/insert only -- never iterated, so hash order cannot leak into
  // any result.
  std::unordered_map<std::uint32_t, std::uint64_t> sparse_counts_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// Which shortest-path backend an Underlay uses.
enum class RoutingMode : std::uint8_t { kAuto, kDense, kHierarchical };

/// The routed underlay: topology + shortest-path state + host capacities.
/// Immutable after construction, so replicas running on different threads
/// can share one instance by const reference (hierarchical on-demand
/// queries use thread-local scratch only).
class Underlay {
 public:
  /// Host count at or below which kAuto routes densely.
  static constexpr std::uint32_t kDenseRoutingThreshold = 4096;

  /// Builds routing state.  Dense: O(V * E log V) time, O(V^2) memory.
  /// Hierarchical: O(E log V) time, O(V + T^2) memory (T = transit nodes).
  /// `capacity_rng` deals the 1/3:1/3:1/3 capacity classes; the draw
  /// sequence is identical in every mode.
  Underlay(Topology topology, Rng& capacity_rng,
           RoutingMode mode = RoutingMode::kAuto);

  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(topology_.graph.num_nodes());
  }
  [[nodiscard]] const Topology& topology() const { return topology_; }

  /// Backend actually in use (kAuto and structure fallbacks resolved).
  [[nodiscard]] RoutingMode routing_mode() const { return mode_; }

  /// Bytes held by routing tables (the O(V^2) vs O(V) story in one number;
  /// excludes the topology itself, which both modes share).
  [[nodiscard]] std::size_t routing_memory_bytes() const;

  /// Propagation delay of the shortest path between two hosts.
  [[nodiscard]] sim::SimTime latency(HostIndex from, HostIndex to) const {
    return sim::SimTime::micros(
        static_cast<std::int64_t>(latency_us(from.value(), to.value())));
  }

  /// Number of physical hops on the shortest path.
  [[nodiscard]] std::uint32_t path_hops(HostIndex from, HostIndex to) const;

  /// Invokes `fn(edge)` for every physical edge on the shortest path, in
  /// order from `from` to `to`.
  void for_each_path_edge(HostIndex from, HostIndex to,
                          const std::function<void(EdgeIndex)>& fn) const;

  /// Access-link capacity class of a host.
  [[nodiscard]] CapacityClass capacity(HostIndex host) const {
    return capacity_[host.value()];
  }

  /// Transmission delay of `bytes` over the slower of the two endpoints'
  /// access links (the bottleneck model of Section 5.1).
  [[nodiscard]] sim::SimTime transmission_delay(HostIndex from, HostIndex to,
                                                std::uint32_t bytes) const;

  /// Mean landmark-style distance vector for a host: latencies to the given
  /// landmark hosts, used by the Section 5.2 binning scheme.
  [[nodiscard]] std::vector<sim::SimTime> distances_to(
      HostIndex host, const std::vector<HostIndex>& landmarks) const;

 private:
  /// One stub domain's attachment to the transit core.
  struct StubDomain {
    std::uint32_t first_node = 0;  // members are [first_node, first+count)
    std::uint32_t num_nodes = 0;
    std::uint32_t gateway = 0;  // stub node holding the up-link
    std::uint32_t anchor = 0;   // transit node the gateway connects to
    EdgeIndex gateway_edge = kNoEdge;
    std::uint32_t gateway_latency_us = 0;
  };

  /// Shortest-path tree over one stub domain, rooted at `root`; arrays are
  /// indexed by (node - domain.first_node).  Reused thread-locally so
  /// repeated queries against the same (underlay, root) are free.
  struct IntraTree {
    std::uint64_t owner_id = 0;  // Underlay instance id (0 = empty cache)
    std::uint32_t root = UINT32_MAX;
    std::vector<std::uint64_t> dist_us;
    std::vector<std::uint32_t> parent;  // next node toward root
    std::vector<EdgeIndex> parent_edge;
    std::vector<std::uint32_t> hops;
  };

  [[nodiscard]] std::uint64_t latency_us(std::uint32_t from,
                                         std::uint32_t to) const;
  [[nodiscard]] std::size_t dense_index(std::uint32_t from,
                                        std::uint32_t to) const {
    // 64-bit product: from * V overflows 32 bits past ~65k hosts.
    return static_cast<std::size_t>(from) * topology_.graph.num_nodes() + to;
  }
  void build_dense();
  void dense_dijkstra_from(std::uint32_t source);
  /// Returns false when the topology lacks the single-gateway transit-stub
  /// structure the hierarchical decomposition needs.
  [[nodiscard]] bool build_hierarchical();

  [[nodiscard]] bool is_transit(std::uint32_t node) const {
    return node < topology_.num_transit_nodes;
  }
  [[nodiscard]] const StubDomain& stub_of(std::uint32_t node) const {
    return stub_domains_[topology_.domain[node]];
  }
  [[nodiscard]] std::size_t core_index(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * topology_.num_transit_nodes + b;
  }
  /// Transit node anchoring `node`'s domain (or `node` itself if transit).
  [[nodiscard]] std::uint32_t anchor_of(std::uint32_t node) const {
    return is_transit(node) ? node : stub_of(node).anchor;
  }
  /// (gateway-walk latency + gateway edge), 0 for transit nodes.
  [[nodiscard]] std::uint64_t uplink_us(std::uint32_t node) const {
    if (is_transit(node)) return 0;
    return gw_dist_us_[node] + stub_of(node).gateway_latency_us;
  }
  /// Shortest-path tree of `root`'s stub domain rooted at `root`, from the
  /// thread-local cache (recomputed only when (owner, root) changes).
  [[nodiscard]] const IntraTree& intra_tree(std::uint32_t root) const;

  Topology topology_;
  RoutingMode mode_ = RoutingMode::kDense;
  /// Process-unique id; distinguishes this instance from a destroyed one
  /// that happened to reuse its address (thread-local tree cache validity).
  std::uint64_t instance_id_;
  std::vector<CapacityClass> capacity_;  // per host

  // --- dense backend (V*V tables) ---
  std::vector<std::uint32_t> dense_latency_us_;
  std::vector<std::uint32_t> dense_first_hop_;  // next node from->to
  std::vector<EdgeIndex> dense_first_edge_;     // edge of that hop

  // --- hierarchical backend ---
  std::vector<StubDomain> stub_domains_;  // indexed by domain id
  // Per stub node: shortest path to its domain gateway (tree rooted at the
  // gateway); zeros/kNoEdge for transit nodes.
  std::vector<std::uint32_t> gw_dist_us_;
  std::vector<std::uint32_t> gw_parent_;  // next node toward the gateway
  std::vector<EdgeIndex> gw_parent_edge_;
  std::vector<std::uint32_t> gw_hops_;
  // All-pairs over the transit core only (T*T, T = num_transit_nodes).
  std::vector<std::uint32_t> core_latency_us_;
  std::vector<std::uint32_t> core_next_;  // next transit node on the path
  std::vector<EdgeIndex> core_next_edge_;
};

}  // namespace hp2p::net
