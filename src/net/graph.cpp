#include "net/graph.hpp"

#include <algorithm>
#include <cassert>

namespace hp2p::net {

Graph::Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

std::uint32_t Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<std::uint32_t>(adjacency_.size() - 1);
}

EdgeIndex Graph::add_edge(std::uint32_t u, std::uint32_t v,
                          std::uint32_t latency_us) {
  assert(u < adjacency_.size() && v < adjacency_.size() && u != v);
  const auto id = static_cast<EdgeIndex>(edge_latency_.size());
  edge_latency_.push_back(latency_us);
  adjacency_[u].push_back(HalfEdge{v, latency_us, id});
  adjacency_[v].push_back(HalfEdge{u, latency_us, id});
  return id;
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const std::uint32_t target = adjacency_[u].size() <= adjacency_[v].size()
                                   ? v
                                   : u;
  return std::any_of(smaller.begin(), smaller.end(),
                     [&](const HalfEdge& h) { return h.to == target; });
}

bool Graph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (const HalfEdge& h : adjacency_[u]) {
      if (!seen[h.to]) {
        seen[h.to] = true;
        ++visited;
        stack.push_back(h.to);
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace hp2p::net
