// Random transit-stub topology generator.
//
// Stands in for GT-ITM, which the paper used to generate its 1,000-node
// underlays.  The structural model is the same: a small number of transit
// domains whose nodes are well connected, each transit node anchoring a few
// stub domains of end hosts; intra-stub links are fast, stub-to-transit
// links slower, transit-to-transit links slowest.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "net/graph.hpp"

namespace hp2p::net {

/// Role of a physical node in the transit-stub hierarchy.
enum class NodeRole : std::uint8_t { kTransit, kStub };

/// Inclusive latency range, microseconds, for one class of link.
struct LatencyRange {
  std::uint32_t lo_us = 0;
  std::uint32_t hi_us = 0;
};

/// Generator parameters.  Defaults produce ~1,000 nodes, matching the paper.
struct TransitStubParams {
  std::uint32_t transit_domains = 4;
  std::uint32_t transit_nodes_per_domain = 4;
  std::uint32_t stub_domains_per_transit_node = 3;
  std::uint32_t stub_nodes_per_domain = 20;
  /// Probability of an extra (non-spanning-tree) edge between two nodes of
  /// the same domain; both domains always come out connected.
  double intra_domain_extra_edge_prob = 0.3;
  /// Extra transit-domain-to-transit-domain edges beyond the ring that
  /// guarantees connectivity.
  std::uint32_t extra_interdomain_edges = 2;
  LatencyRange intra_stub{1'000, 5'000};        // 1-5 ms
  LatencyRange stub_transit{5'000, 20'000};     // 5-20 ms
  LatencyRange intra_transit{10'000, 40'000};   // 10-40 ms
  LatencyRange inter_transit{20'000, 80'000};   // 20-80 ms

  /// Total node count this parameter set generates.
  [[nodiscard]] std::uint32_t total_nodes() const {
    const std::uint32_t transit = transit_domains * transit_nodes_per_domain;
    return transit + transit * stub_domains_per_transit_node *
                         stub_nodes_per_domain;
  }

  /// Stub domains never grow past this when scaling with for_total_nodes:
  /// bigger targets add transit domains instead, which keeps intra-domain
  /// queries bounded and the transit core a tiny fraction of the graph.
  static constexpr std::uint32_t kMaxStubNodesPerDomain = 64;

  /// Adjusts the parameters so total_nodes() is >= `n` and as close as
  /// possible.  Up to ~3k nodes only stub_nodes_per_domain moves (the
  /// historical behaviour, byte-identical for every paper-scale run);
  /// beyond that the stub size pins at kMaxStubNodesPerDomain and
  /// transit_domains grows.
  [[nodiscard]] static TransitStubParams for_total_nodes(std::uint32_t n);
};

/// A generated topology: the weighted graph plus per-node metadata.
struct Topology {
  Graph graph;
  std::vector<NodeRole> role;          // per node
  std::vector<std::uint32_t> domain;   // stub-domain id or transit-domain id
  std::uint32_t num_transit_nodes = 0;
};

/// Generates a connected transit-stub topology.  Deterministic for a given
/// (params, rng state).
[[nodiscard]] Topology generate_transit_stub(const TransitStubParams& params,
                                             Rng& rng);

}  // namespace hp2p::net
