// Undirected weighted graph for the physical (underlay) topology.
//
// The overlay never sees this class directly; it talks to net::Underlay,
// which adds shortest-path routing on top.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hp2p::net {

/// Identifier of an undirected edge (index into the edge list).
using EdgeIndex = std::uint32_t;

inline constexpr EdgeIndex kNoEdge = ~EdgeIndex{0};

/// One directed half of an undirected edge, stored in adjacency lists.
struct HalfEdge {
  std::uint32_t to = 0;
  std::uint32_t latency_us = 0;  // propagation delay of the physical link
  EdgeIndex edge = kNoEdge;      // undirected edge id (shared by both halves)
};

/// Undirected weighted multigraph with O(1) degree/neighbor access.
class Graph {
 public:
  explicit Graph(std::size_t num_nodes = 0);

  [[nodiscard]] std::size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edge_latency_.size(); }

  /// Adds node and returns its index.
  std::uint32_t add_node();

  /// Adds an undirected edge; returns its edge id.  Parallel edges allowed
  /// but the generator avoids them.
  EdgeIndex add_edge(std::uint32_t u, std::uint32_t v,
                     std::uint32_t latency_us);

  [[nodiscard]] std::span<const HalfEdge> neighbors(std::uint32_t node) const {
    return adjacency_[node];
  }
  [[nodiscard]] std::uint32_t edge_latency_us(EdgeIndex e) const {
    return edge_latency_[e];
  }
  /// True when an edge already links u and v (used to avoid parallel edges).
  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<std::uint32_t> edge_latency_;
};

}  // namespace hp2p::net
