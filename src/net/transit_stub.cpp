#include "net/transit_stub.hpp"

#include <algorithm>
#include <cassert>

namespace hp2p::net {
namespace {

std::uint32_t sample_latency(Rng& rng, LatencyRange range) {
  return static_cast<std::uint32_t>(rng.uniform(range.lo_us, range.hi_us));
}

/// Connects `nodes` into a random tree plus extra random edges: the
/// standard way to get a connected Waxman-ish domain without rejection
/// sampling.
void build_domain(Graph& g, const std::vector<std::uint32_t>& nodes,
                  LatencyRange latency, double extra_edge_prob, Rng& rng) {
  // Random spanning tree: attach node i to a uniformly random earlier node.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const std::uint32_t parent = nodes[rng.index(i)];
    g.add_edge(nodes[i], parent, sample_latency(rng, latency));
  }
  // Extra edges for mesh-ness.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (rng.chance(extra_edge_prob) && !g.has_edge(nodes[i], nodes[j])) {
        g.add_edge(nodes[i], nodes[j], sample_latency(rng, latency));
      }
    }
  }
}

}  // namespace

TransitStubParams TransitStubParams::for_total_nodes(std::uint32_t n) {
  TransitStubParams p;
  const std::uint32_t transit = p.transit_domains * p.transit_nodes_per_domain;
  const std::uint32_t stub_domains = transit * p.stub_domains_per_transit_node;
  if (n <= transit + stub_domains) {
    p.stub_nodes_per_domain = 1;
    return p;
  }
  p.stub_nodes_per_domain = (n - transit + stub_domains - 1) / stub_domains;
  if (p.stub_nodes_per_domain <= kMaxStubNodesPerDomain) return p;
  // Past ~3k nodes, widen the transit skeleton instead of the stub domains:
  // each transit domain then carries a fixed complement of
  //   transit_nodes * (1 + stub_domains_per_node * max_stub_nodes)
  // hosts, so the core stays a ~0.5% sliver of the graph at any scale.
  p.stub_nodes_per_domain = kMaxStubNodesPerDomain;
  const std::uint32_t per_transit_domain =
      p.transit_nodes_per_domain *
      (1 + p.stub_domains_per_transit_node * p.stub_nodes_per_domain);
  p.transit_domains = (n + per_transit_domain - 1) / per_transit_domain;
  return p;
}

Topology generate_transit_stub(const TransitStubParams& params, Rng& rng) {
  assert(params.transit_domains > 0 && params.transit_nodes_per_domain > 0);
  Topology topo;
  topo.num_transit_nodes =
      params.transit_domains * params.transit_nodes_per_domain;
  const std::uint32_t total = params.total_nodes();
  topo.graph = Graph{total};
  topo.role.assign(total, NodeRole::kStub);
  topo.domain.assign(total, 0);

  // Transit nodes occupy indices [0, num_transit_nodes).
  std::vector<std::vector<std::uint32_t>> transit_domains(
      params.transit_domains);
  for (std::uint32_t d = 0; d < params.transit_domains; ++d) {
    for (std::uint32_t i = 0; i < params.transit_nodes_per_domain; ++i) {
      const std::uint32_t node = d * params.transit_nodes_per_domain + i;
      topo.role[node] = NodeRole::kTransit;
      topo.domain[node] = d;
      transit_domains[d].push_back(node);
    }
    build_domain(topo.graph, transit_domains[d], params.intra_transit,
                 params.intra_domain_extra_edge_prob, rng);
  }

  // Inter-transit-domain ring + extra edges for resilience.
  for (std::uint32_t d = 0; d + 1 < params.transit_domains; ++d) {
    const std::uint32_t u = rng.pick(transit_domains[d]);
    const std::uint32_t v = rng.pick(transit_domains[d + 1]);
    topo.graph.add_edge(u, v, sample_latency(rng, params.inter_transit));
  }
  if (params.transit_domains > 2) {
    const std::uint32_t u = rng.pick(transit_domains.back());
    const std::uint32_t v = rng.pick(transit_domains.front());
    if (!topo.graph.has_edge(u, v)) {
      topo.graph.add_edge(u, v, sample_latency(rng, params.inter_transit));
    }
  }
  for (std::uint32_t e = 0; e < params.extra_interdomain_edges &&
                            params.transit_domains > 1;
       ++e) {
    const std::size_t a = rng.index(params.transit_domains);
    std::size_t b = rng.index(params.transit_domains);
    if (a == b) continue;
    const std::uint32_t u = rng.pick(transit_domains[a]);
    const std::uint32_t v = rng.pick(transit_domains[b]);
    if (!topo.graph.has_edge(u, v)) {
      topo.graph.add_edge(u, v, sample_latency(rng, params.inter_transit));
    }
  }

  // Stub domains: consecutive index blocks after the transit nodes.
  std::uint32_t next_node = topo.num_transit_nodes;
  std::uint32_t stub_domain_id = params.transit_domains;
  for (std::uint32_t t = 0; t < topo.num_transit_nodes; ++t) {
    for (std::uint32_t s = 0; s < params.stub_domains_per_transit_node; ++s) {
      std::vector<std::uint32_t> members;
      members.reserve(params.stub_nodes_per_domain);
      for (std::uint32_t i = 0; i < params.stub_nodes_per_domain; ++i) {
        const std::uint32_t node = next_node++;
        topo.domain[node] = stub_domain_id;
        members.push_back(node);
      }
      ++stub_domain_id;
      build_domain(topo.graph, members, params.intra_stub,
                   params.intra_domain_extra_edge_prob, rng);
      // Gateway link from a random stub node up to the anchoring transit
      // node.
      topo.graph.add_edge(rng.pick(members), t,
                          sample_latency(rng, params.stub_transit));
    }
  }

  assert(topo.graph.connected());
  return topo;
}

}  // namespace hp2p::net
