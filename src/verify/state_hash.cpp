#include "verify/state_hash.hpp"

#include <algorithm>
#include <vector>

#include "hybrid/hybrid_system.hpp"
#include "proto/data_store.hpp"

namespace hp2p::verify {

namespace {

constexpr std::uint64_t kNoPeerWord = 0xffffffffffffffffULL;

std::uint64_t peer_word(PeerIndex p) {
  return p == kNoPeer ? kNoPeerWord : p.value();
}

}  // namespace

std::uint64_t canonical_state_hash(const hybrid::HybridSystem& system) {
  std::uint64_t h = kFnvOffset;
  const std::size_t n = system.num_peers();
  h = fnv1a_word(h, n);
  for (std::size_t i = 0; i < n; ++i) {
    const PeerIndex p{static_cast<std::uint32_t>(i)};
    if (system.is_server_peer(p)) {
      h = fnv1a_word(h, 0x5e7fe7);  // server marker; registry hashed below
      continue;
    }
    const bool alive = system.is_alive(p);
    const bool joined = system.is_joined(p);
    h = fnv1a_word(h, (alive ? 1U : 0U) | (joined ? 2U : 0U) |
                          (system.role_of(p) == hybrid::Role::kTPeer ? 4U
                                                                     : 0U));
    if (!alive) continue;  // a corpse's stale pointers are unobservable
    h = fnv1a_word(h, system.pid_of(p).value());
    h = fnv1a_word(h, peer_word(system.tpeer_of(p)));
    h = fnv1a_word(h, peer_word(system.parent_of(p)));
    h = fnv1a_word(h, peer_word(system.successor_of(p)));
    h = fnv1a_word(h, peer_word(system.predecessor_of(p)));
    std::vector<std::uint32_t> kids;
    for (const PeerIndex c : system.children_of(p)) kids.push_back(c.value());
    std::sort(kids.begin(), kids.end());
    h = fnv1a_word(h, kids.size());
    for (const std::uint32_t c : kids) h = fnv1a_word(h, c);
    // Data placement: DataStore iterates in id order already.
    h = fnv1a_word(h, system.store_of(p).size());
    system.store_of(p).for_each([&](const proto::DataItem& item) {
      h = fnv1a_word(h, item.id.value());
      h = fnv1a_word(h, item.replica ? 1 : 0);
    });
  }
  // Server registry: std::map, already in pid order.
  h = fnv1a_word(h, system.registry().size());
  for (const auto& [pid, owner] : system.registry()) {
    h = fnv1a_word(h, pid);
    h = fnv1a_word(h, peer_word(owner));
  }
  return h;
}

}  // namespace hp2p::verify
