#include "verify/explorer.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "chaos/shrinker.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace hp2p::verify {

namespace {

/// DFS tie-break policy with sleep-set pruning.  The explorer keeps one
/// instance across runs: the node stack *is* the DFS frontier, and each run
/// replays stack[0..depth).chosen before diverging into fresh territory.
///
/// Sleep-set bookkeeping (Godefroid): the run-local sleep set is a list of
/// still-enabled events known to lead only to already-explored states.  On
/// every fired event e it is filtered to the entries independent of e; when
/// a branch t is taken at a node, the node's finished siblings join the set
/// first (their subtrees are done, so any execution that could still reach
/// them unreordered is redundant).  An enabled event found sleeping is
/// never taken; a consultation whose every candidate sleeps proves the
/// whole continuation redundant and aborts the run.
class DfsPolicy final : public ScenarioPolicy {
 public:
  explicit DfsPolicy(bool sleep_sets) : sleep_enabled_(sleep_sets) {}

  void begin_run() {
    depth_ = 0;
    counter_ = 0;
    abort_sleeping_ = 0;
    aborted_ = false;
    sleep_.clear();
  }

  std::size_t choose(const sim::CoEnabledEvent* events,
                     std::size_t n) override {
    if (aborted_ || n == 0) return 0;
    if (n == 1) {
      if (sleep_enabled_ && in_sleep(events[0].seq)) {
        // The only runnable event is asleep: every continuation from here
        // is a reordering of an already-explored run.
        aborted_ = true;
        abort_sleeping_ = 1;
        return 0;
      }
      fire_update(events, n, nullptr);
      return 0;
    }

    const std::uint32_t decision = counter_++;
    if (depth_ < stack_.size()) {
      // Replay: deterministic re-execution re-presents the same candidate
      // set, so the stored branch index is valid as-is.
      Node& node = stack_[depth_++];
      fire_update(events, n, &node);
      return node.chosen;
    }

    // Fresh decision point: open a node, skipping sleeping branches.
    Node node;
    node.decision = decision;
    node.cands.assign(events, events + n);
    node.done.assign(n, false);
    node.sleeping.assign(n, false);
    if (sleep_enabled_) {
      for (std::size_t i = 0; i < n; ++i) {
        node.sleeping[i] = in_sleep(events[i].seq);
      }
    }
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!node.sleeping[i]) {
        pick = i;
        break;
      }
    }
    if (pick == n) {
      aborted_ = true;
      abort_sleeping_ = n;
      return 0;
    }
    node.chosen = pick;
    ++decisions_created_;
    stack_.push_back(std::move(node));
    ++depth_;
    fire_update(events, n, &stack_.back());
    return pick;
  }

  [[nodiscard]] bool aborted() const override { return aborted_; }
  [[nodiscard]] std::uint64_t abort_sleeping() const {
    return abort_sleeping_;
  }
  [[nodiscard]] std::size_t stack_size() const { return stack_.size(); }
  [[nodiscard]] std::uint64_t decisions_created() const {
    return decisions_created_;
  }

  /// Sparse trace of the interleaving just run (non-FIFO branches only).
  [[nodiscard]] ChoiceTrace current_trace(std::uint64_t seed) const {
    ChoiceTrace t;
    t.seed = seed;
    for (const Node& node : stack_) {
      if (node.chosen != 0) {
        t.choices.push_back(
            Choice{node.decision, static_cast<std::uint32_t>(node.chosen)});
      }
    }
    return t;
  }

  /// Advances the deepest node with an unexplored, non-sleeping branch and
  /// pops fully-explored nodes (tallying the branches their sleep flags
  /// saved).  Returns false when the whole tree is exhausted.
  bool backtrack(std::uint64_t* sleeping_branches) {
    while (!stack_.empty()) {
      Node& node = stack_.back();
      node.done[node.chosen] = true;
      for (std::size_t i = 0; i < node.cands.size(); ++i) {
        if (!node.done[i] && !node.sleeping[i]) {
          node.chosen = i;
          return true;
        }
      }
      for (std::size_t i = 0; i < node.cands.size(); ++i) {
        if (node.sleeping[i]) ++*sleeping_branches;
      }
      stack_.pop_back();
    }
    return false;
  }

 private:
  struct Node {
    std::uint32_t decision = 0;
    std::vector<sim::CoEnabledEvent> cands;
    std::vector<bool> done;
    std::vector<bool> sleeping;
    std::size_t chosen = 0;
  };

  struct SleepEntry {
    std::uint64_t seq = 0;
    sim::Footprint fp{};
  };

  [[nodiscard]] bool in_sleep(std::uint64_t seq) const {
    for (const SleepEntry& e : sleep_) {
      if (e.seq == seq) return true;
    }
    return false;
  }

  /// sleep := { x in sleep + finished-siblings : independent(x, fired) }.
  void fire_update(const sim::CoEnabledEvent* events, std::size_t n,
                   const Node* node) {
    if (!sleep_enabled_) return;
    const sim::CoEnabledEvent& fired =
        events[node != nullptr ? node->chosen : 0];
    if (node != nullptr) {
      for (std::size_t j = 0; j < n; ++j) {
        if (node->done[j]) sleep_.push_back({events[j].seq, events[j].fp});
      }
    }
    std::size_t keep = 0;
    for (const SleepEntry& e : sleep_) {
      if (independent(e.fp, fired.fp)) sleep_[keep++] = e;
    }
    sleep_.resize(keep);
  }

  bool sleep_enabled_;
  bool aborted_ = false;
  std::uint64_t abort_sleeping_ = 0;
  std::size_t depth_ = 0;
  std::uint32_t counter_ = 0;
  std::uint64_t decisions_created_ = 0;
  std::vector<Node> stack_;
  std::vector<SleepEntry> sleep_;
};

/// Uniform random pick at every decision point, recording the non-FIFO
/// choices so any violating walk replays as a ChoiceTrace.
class RandomWalkPolicy final : public ScenarioPolicy {
 public:
  explicit RandomWalkPolicy(std::uint64_t walk_seed) : rng_(walk_seed) {}

  std::size_t choose(const sim::CoEnabledEvent*, std::size_t n) override {
    if (n <= 1) return 0;
    const std::uint32_t decision = counter_++;
    const std::size_t pick = rng_.index(n);
    if (pick != 0) {
      choices_.push_back(Choice{decision, static_cast<std::uint32_t>(pick)});
    }
    return pick;
  }

  [[nodiscard]] std::uint32_t decisions() const { return counter_; }
  [[nodiscard]] const std::vector<Choice>& choices() const {
    return choices_;
  }

 private:
  Rng rng_;
  std::uint32_t counter_ = 0;
  std::vector<Choice> choices_;
};

/// Replays a recorded trace: listed decisions take their branch (clamped),
/// everything else is FIFO.
class ReplayPolicy final : public ScenarioPolicy {
 public:
  explicit ReplayPolicy(const ChoiceTrace& trace) {
    for (const Choice& c : trace.choices) branch_[c.decision] = c.branch;
  }

  std::size_t choose(const sim::CoEnabledEvent*, std::size_t n) override {
    if (n <= 1) return 0;
    const auto it = branch_.find(counter_++);
    if (it == branch_.end()) return 0;
    return std::min<std::size_t>(it->second, n - 1);
  }

 private:
  std::map<std::uint32_t, std::uint32_t> branch_;
  std::uint32_t counter_ = 0;
};

}  // namespace

ExploreResult explore(const ScenarioConfig& cfg, const ExploreOptions& opts) {
  ExploreResult res;
  DfsPolicy policy(opts.sleep_sets);
  std::unordered_set<std::uint64_t> seen;  // membership only, never iterated
  for (;;) {
    if (res.runs >= opts.max_runs) {
      res.budget_exhausted = true;
      break;
    }
    policy.begin_run();
    const ScenarioOutcome out = run_scenario(cfg, &policy);
    ++res.runs;
    res.max_depth = std::max(res.max_depth, policy.stack_size());
    if (out.aborted) {
      ++res.pruned_runs;
      res.sleeping_branches += policy.abort_sleeping();
    } else {
      ++res.completed_runs;
      if (seen.insert(out.state_hash).second) {
        ++res.distinct_states;
        res.state_hashes.push_back(out.state_hash);
      } else {
        ++res.dedup_hits;
      }
      if (!out.clean()) {
        ++res.violating_runs;
        if (res.violation_details.empty()) {
          res.violation_details = out.violations;
        }
        if (res.violating.size() < opts.max_traces) {
          res.violating.push_back(policy.current_trace(cfg.seed));
        }
        if (opts.stop_on_violation) break;
      }
    }
    if (!policy.backtrack(&res.sleeping_branches)) break;
  }
  res.decision_points = policy.decisions_created();
  std::sort(res.state_hashes.begin(), res.state_hashes.end());
  return res;
}

ExploreResult random_walks(const ScenarioConfig& cfg, std::uint64_t walks,
                           std::uint64_t seed0) {
  ExploreResult res;
  std::unordered_set<std::uint64_t> seen;  // membership only, never iterated
  for (std::uint64_t k = 0; k < walks; ++k) {
    RandomWalkPolicy policy(seed0 + k);
    const ScenarioOutcome out = run_scenario(cfg, &policy);
    ++res.runs;
    ++res.completed_runs;
    res.decision_points += policy.decisions();
    res.max_depth = std::max<std::size_t>(res.max_depth, policy.decisions());
    if (seen.insert(out.state_hash).second) {
      ++res.distinct_states;
      res.state_hashes.push_back(out.state_hash);
    } else {
      ++res.dedup_hits;
    }
    if (!out.clean()) {
      ++res.violating_runs;
      if (res.violation_details.empty()) {
        res.violation_details = out.violations;
      }
      if (res.violating.size() < 4) {
        res.violating.push_back(ChoiceTrace{cfg.seed, policy.choices()});
      }
    }
  }
  std::sort(res.state_hashes.begin(), res.state_hashes.end());
  return res;
}

ScenarioOutcome replay(const ScenarioConfig& cfg, const ChoiceTrace& trace) {
  ScenarioConfig replay_cfg = cfg;
  replay_cfg.seed = trace.seed;
  ReplayPolicy policy(trace);
  return run_scenario(replay_cfg, &policy);
}

ChoiceTrace shrink_trace(const ScenarioConfig& cfg, ChoiceTrace failing) {
  const auto still_fails = [&](const std::vector<Choice>& reduced) {
    ChoiceTrace candidate{failing.seed, reduced};
    return !replay(cfg, candidate).clean();
  };
  while (chaos::ddmin_list(failing.choices, 0, still_fails)) {
  }
  return failing;
}

}  // namespace hp2p::verify
