// DPOR-style interleaving explorer.
//
// Drives depth-first search over branch-choice traces: each run re-executes
// the scenario from its seed, replays the recorded choice prefix, then
// diverges.  Pruning is classical sleep sets (Godefroid) over an
// independence relation derived from the per-event footprints the kernel
// stamps at schedule time; terminal states are deduplicated by canonical
// hash.  Every completed run's terminal state is checked (strict audit +
// reference-model verdicts inside run_scenario); violating runs are
// reported as ChoiceTraces, minimizable via shrink_trace into one_line()
// reproducers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/choice_trace.hpp"
#include "verify/scenario.hpp"

namespace hp2p::verify {

struct ExploreOptions {
  /// Sleep-set pruning; off = naive enumeration of every branch
  /// combination (the baseline the pruning claim is measured against).
  bool sleep_sets = true;
  /// Hard cap on scenario executions; hit -> budget_exhausted.
  std::uint64_t max_runs = 200000;
  /// Stop at the first violating run (the canary hunt); off = census mode.
  bool stop_on_violation = false;
  /// At most this many violating traces are recorded.
  std::size_t max_traces = 4;
};

struct ExploreResult {
  std::uint64_t runs = 0;            // scenario executions, incl. pruned
  std::uint64_t completed_runs = 0;  // reached the horizon: one distinct
                                     // interleaving each (DFS never repeats)
  std::uint64_t pruned_runs = 0;     // abandoned mid-run by the sleep set
  std::uint64_t sleeping_branches = 0;  // branches never explored at all
  std::uint64_t decision_points = 0;    // distinct choice nodes created
  std::uint64_t distinct_states = 0;    // unique canonical terminal hashes
  std::uint64_t dedup_hits = 0;         // completed runs folded by the hash
  std::uint64_t violating_runs = 0;
  std::size_t max_depth = 0;  // deepest choice stack seen
  bool budget_exhausted = false;
  std::vector<ChoiceTrace> violating;          // up to max_traces
  std::vector<std::string> violation_details;  // first run's violations
  /// Sorted unique terminal hashes: lets tests assert pruning dropped no
  /// distinct terminal state (POR set == naive set).
  std::vector<std::uint64_t> state_hashes;

  [[nodiscard]] bool clean() const { return violating_runs == 0; }
};

/// Exhaustive DFS over the scenario's interleavings (within options).
[[nodiscard]] ExploreResult explore(const ScenarioConfig& cfg,
                                    const ExploreOptions& opts = {});

/// Budgeted seeded random-walk mode for configs too large to exhaust: each
/// walk picks uniformly at every decision point (walk k uses seed0 + k).
[[nodiscard]] ExploreResult random_walks(const ScenarioConfig& cfg,
                                         std::uint64_t walks,
                                         std::uint64_t seed0);

/// Deterministically re-executes one recorded interleaving.  Decisions not
/// named by the trace take branch 0 (FIFO); out-of-range branches clamp.
[[nodiscard]] ScenarioOutcome replay(const ScenarioConfig& cfg,
                                     const ChoiceTrace& trace);

/// Minimizes a violating trace: fixed-point loop of ddmin over the sparse
/// choice list (reusing the chaos shrinker's core) until no single chunk
/// can be dropped while replay(cfg, trace) still reports a violation.
[[nodiscard]] ChoiceTrace shrink_trace(const ScenarioConfig& cfg,
                                       ChoiceTrace failing);

}  // namespace hp2p::verify
