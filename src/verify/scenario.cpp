#include "verify/scenario.hpp"

#include <memory>
#include <string>

#include "audit/overlay_auditor.hpp"
#include "chaos/reference_model.hpp"
#include "common/rng.hpp"
#include "hybrid/hybrid_system.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "verify/state_hash.hpp"
#include "workload/workload.hpp"

namespace hp2p::verify {

hybrid::HybridParams verify_default_params() {
  hybrid::HybridParams p;
  p.style = hybrid::SNetworkStyle::kTree;
  p.t_routing = hybrid::TRouting::kRing;
  // Every rng-drawing protocol path is off: deterministic placement at the
  // responsible t-peer (no spread walk), flood search (no random walks),
  // and the scenarios force roles and use tree s-networks (no mesh
  // shuffle).  What remains is a pure function of the event order.
  p.placement = hybrid::PlacementScheme::kTPeerStores;
  p.s_search = hybrid::SSearch::kFlood;
  p.ttl = 10;
  p.delta = 3;
  p.hello_interval = sim::SimTime::millis(500);
  p.hello_timeout = sim::SimTime::millis(1500);
  p.lookup_timeout = sim::SimTime::seconds(5);
  p.reflood_on_timeout = true;
  p.ring_retry_limit = 3;
  p.ring_retry_base = sim::SimTime::seconds(1);
  p.enable_caching = false;
  p.bypass_links = false;
  return p;
}

std::string ScenarioOutcome::dump() const {
  std::string out = "aborted=" + std::to_string(aborted ? 1 : 0) +
                    " hash=" + std::to_string(state_hash) +
                    " events=" + std::to_string(events_executed);
  for (const std::string& v : violations) out += "\n" + v;
  return out;
}

namespace {

struct TrackedLookup {
  DataId id{};
  PeerIndex origin = kNoPeer;
  bool must_at_issue = false;
  bool issued = false;
  bool done = false;
  bool success = false;
};

}  // namespace

ScenarioOutcome run_scenario(const ScenarioConfig& cfg,
                             ScenarioPolicy* policy) {
  ScenarioOutcome out;

  Rng rng(cfg.seed);
  sim::Simulator sim;
  if (policy != nullptr) sim.set_tie_break_policy(policy, cfg.window);
  net::Underlay underlay(
      net::generate_transit_stub(
          net::TransitStubParams::for_total_nodes(cfg.hosts), rng),
      rng);
  proto::OverlayNetwork network(sim, underlay, {});
  hybrid::HybridSystem system(network, cfg.params, HostIndex{0}, rng);

  const std::uint32_t num_peers = cfg.num_tpeers + cfg.num_speers;

  // Canary fault: deterministic heartbeat delay on one directed pair.
  if (cfg.hello_delay_from != 0 && cfg.hello_delay_to != 0) {
    const PeerIndex df{cfg.hello_delay_from};
    const PeerIndex dt{cfg.hello_delay_to};
    network.set_fault([&sim, &cfg, df, dt](PeerIndex from, PeerIndex to,
                                           proto::TrafficClass cls,
                                           std::uint32_t) {
      proto::FaultAction action;
      if (cls == proto::TrafficClass::kHeartbeat && from == df && to == dt &&
          sim.now() >= cfg.hello_delay_start &&
          sim.now() < cfg.hello_delay_end) {
        action.extra_delay = cfg.hello_delay_by;
      }
      return action;
    });
  }

  // --- Deterministic timeline -----------------------------------------------------
  // Joins 100ms apart (t-peers first, forced roles): well clear of any
  // plausible commutation window, so dense peer indices -- and therefore
  // the canonical hash -- are stable across interleavings.
  for (std::uint32_t i = 0; i < num_peers; ++i) {
    const auto role = i < cfg.num_tpeers ? hybrid::Role::kTPeer
                                         : hybrid::Role::kSPeer;
    const HostIndex host{1 + i % (cfg.hosts - 1)};
    sim.schedule_at(sim::SimTime::millis(100 * (i + 1)),
                    [&system, host, role] {
                      system.add_peer_with_role(host, role);
                    });
  }

  // Stores: fixed corpus, fixed origins (round-robin over the join order),
  // mirrored into the reference model as they execute.
  chaos::ReferenceModel model(system);
  const auto corpus = workload::uniform_corpus(cfg.num_items, cfg.seed);
  for (std::uint32_t k = 0; k < cfg.num_items; ++k) {
    const auto& item = corpus[k];
    const PeerIndex origin{1 + k % num_peers};
    sim.schedule_at(sim::SimTime::millis(1500 + 20 * k),
                    [&system, &model, origin, item] {
                      if (!system.is_alive(origin) ||
                          !system.is_joined(origin)) {
                        return;
                      }
                      system.store_id(origin, item.id, item.key, item.value);
                      model.record_store(item.id, origin);
                    });
  }

  sim.schedule_at(sim::SimTime::millis(2000),
                  [&system] { system.start_failure_detection(); });

  if (cfg.crash_peer != 0) {
    const PeerIndex victim{cfg.crash_peer};
    sim.schedule_at(cfg.crash_at, [&system, victim] { system.crash(victim); });
  }

  // In-horizon lookups, judged post-hoc exactly like the chaos storm
  // lookups: a failure only counts when the oracle said MUST both at issue
  // time and after the dust settled.
  std::vector<TrackedLookup> storm(cfg.num_lookups);
  for (std::uint32_t k = 0; k < cfg.num_lookups; ++k) {
    TrackedLookup* slot = &storm[k];
    const DataId id = corpus.empty() ? DataId{} : corpus[k % corpus.size()].id;
    const PeerIndex origin{1 + (k * 2 + 1) % num_peers};
    sim.schedule_at(cfg.lookup_at + sim::SimTime::millis(150 * k),
                    [&system, &model, slot, id, origin] {
                      if (!system.is_alive(origin) ||
                          !system.is_joined(origin)) {
                        return;
                      }
                      slot->issued = true;
                      slot->id = id;
                      slot->origin = origin;
                      slot->must_at_issue = !model.live_holders(id).empty();
                      system.lookup_id(origin, id,
                                       [slot](proto::LookupResult r) {
                                         slot->done = true;
                                         slot->success = r.success;
                                       });
                    });
  }

  // --- Explored horizon -----------------------------------------------------------
  while (sim.next_event_time() <= cfg.horizon) {
    if (policy != nullptr && policy->aborted()) {
      out.aborted = true;
      return out;
    }
    sim.step();
  }
  if (policy != nullptr && policy->aborted()) {
    out.aborted = true;
    return out;
  }
  sim.run_until(cfg.horizon);
  out.events_executed = sim.stats().events_executed;

  // --- Quiescent verdicts (canonical FIFO order from here on) ---------------------
  sim.set_tie_break_policy(nullptr);
  out.state_hash = canonical_state_hash(system);

  if (!system.verify_ring()) out.violations.push_back("ring_broken");
  if (!system.verify_trees()) out.violations.push_back("trees_broken");

  audit::AuditOptions audit_opts;
  audit_opts.strict = true;
  audit::OverlayAuditor auditor(system, network, sim, audit_opts);
  const auto report = auditor.run();
  for (const auto& v : report.violations) {
    out.violations.push_back(std::string("audit:") + v.invariant + ": " +
                             v.detail);
  }

  // Oracle wave: every stored item looked up from its storing origin.
  struct WaveLookup {
    chaos::Expectation exp;
    DataId id{};
    PeerIndex origin = kNoPeer;
    bool done = false;
    bool success = false;
  };
  auto wave = std::make_shared<std::vector<WaveLookup>>();
  for (const auto& [id, origin] : model.stores()) {
    if (!system.is_alive(origin) || !system.is_joined(origin)) continue;
    const std::size_t slot = wave->size();
    wave->push_back(
        WaveLookup{model.classify(origin, DataId{id}), DataId{id}, origin});
    system.lookup_id(origin, DataId{id}, [wave, slot](proto::LookupResult r) {
      (*wave)[slot].done = true;
      (*wave)[slot].success = r.success;
    });
  }
  sim.run_until(sim.now() + cfg.params.lookup_timeout +
                sim::SimTime::seconds(2));

  for (const WaveLookup& w : *wave) {
    if (!w.done) {
      out.violations.push_back("wave_lookup_wedged id=" +
                               std::to_string(w.id.value()));
    } else if (!w.success && w.exp.must) {
      out.violations.push_back("must_lookup_failed id=" +
                               std::to_string(w.id.value()) + " (" +
                               w.exp.reason + ")");
    }
  }
  for (const TrackedLookup& s : storm) {
    if (!s.issued) continue;
    if (!s.done) {
      out.violations.push_back("storm_lookup_wedged id=" +
                               std::to_string(s.id.value()));
    } else if (!s.success && s.must_at_issue &&
               model.classify(s.origin, s.id).must) {
      out.violations.push_back("storm_must_failed id=" +
                               std::to_string(s.id.value()));
    }
  }
  if (system.pending_lookups() != 0) {
    out.violations.push_back("pending_lookups_after_wave");
  }
  return out;
}

}  // namespace hp2p::verify
