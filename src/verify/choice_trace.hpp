// Branch-choice trace: the reproducer format of the interleaving explorer.
//
// A trace pins a run down to (scenario seed, sparse choice list): decision
// points are numbered in kernel-consultation order, and any decision not
// listed takes branch 0 -- the FIFO order the default kernel would have
// used.  Replaying a trace deterministically re-executes the exact
// interleaving, so a violating trace round-trips through its one_line()
// form byte-identically, exactly like chaos FaultSchedules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/json.hpp"

namespace hp2p::verify {

/// One non-default branch decision: at decision point `decision` (0-based,
/// counting every kernel consultation with >= 2 candidates), take candidate
/// `branch` instead of the FIFO default 0.
struct Choice {
  std::uint32_t decision = 0;
  std::uint32_t branch = 0;

  friend bool operator==(const Choice&, const Choice&) = default;
};

struct ChoiceTrace {
  std::uint64_t seed = 1;
  std::vector<Choice> choices;

  friend bool operator==(const ChoiceTrace&, const ChoiceTrace&) = default;

  [[nodiscard]] stats::JsonValue to_json() const;
  [[nodiscard]] static std::optional<ChoiceTrace> from_json(
      const stats::JsonValue& v);
  /// One-line reproducer: `seed=<N> choices=<compact json>`.
  [[nodiscard]] std::string one_line() const;
  [[nodiscard]] static std::optional<ChoiceTrace> parse_one_line(
      const std::string& line);
};

}  // namespace hp2p::verify
