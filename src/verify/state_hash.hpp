// Canonical overlay-state hash for the interleaving explorer.
//
// Two interleavings that converge to the same observable overlay -- ring
// edges, tree edges, s-network membership, data placement -- must hash
// equal, and the hash must not depend on anything transient (event seq
// numbers, in-flight messages, rng cursors, per-run counters).  FNV-1a over
// a canonical serialization: peers in dense index order (indices are
// deterministic -- join events are scheduled at distinct times), children
// and store ids sorted, then the server registry in pid order.
#pragma once

#include <cstdint>

namespace hp2p::hybrid {
class HybridSystem;
}  // namespace hp2p::hybrid

namespace hp2p::verify {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// One FNV-1a step over a 64-bit word (byte-at-a-time, endian-free).
[[nodiscard]] constexpr std::uint64_t fnv1a_word(std::uint64_t h,
                                                 std::uint64_t w) {
  for (int i = 0; i < 8; ++i) {
    h ^= (w >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

/// Canonical hash of the quiescent overlay state.
[[nodiscard]] std::uint64_t canonical_state_hash(
    const hybrid::HybridSystem& system);

}  // namespace hp2p::verify
