// Small model-checking scenarios: a deterministic world (3-8 peers,
// join/crash/store/lookup at fixed times) re-executed from scratch for
// every explored interleaving.  The only degree of freedom between runs is
// the installed tie-break policy; everything else is a pure function of the
// config, which is what makes choice-prefix replay a faithful fork.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hybrid/params.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hp2p::verify {

/// Tie-break policy with an abort hook: the scenario loop polls aborted()
/// between events and cuts the run short when the policy has declared it
/// redundant (sleep-set prune) or divergent.
class ScenarioPolicy : public sim::TieBreakPolicy {
 public:
  [[nodiscard]] virtual bool aborted() const { return false; }
};

/// Hybrid parameters for verification runs: every randomized protocol path
/// is switched off (deterministic t-peer placement, flood search, forced
/// roles), so the outcome depends only on the event order -- the one thing
/// the explorer controls.
[[nodiscard]] hybrid::HybridParams verify_default_params();

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::uint32_t num_tpeers = 2;
  std::uint32_t num_speers = 2;
  std::uint32_t hosts = 16;
  std::uint32_t num_items = 3;
  /// Lookups issued inside the explored horizon (judged post-hoc like the
  /// chaos storm lookups; the quiescent oracle wave is issued on top).
  std::uint32_t num_lookups = 2;
  /// Peer (1-based dense index, i.e. join order; the server is 0) crashed
  /// at `crash_at`; 0 = no crash.
  std::uint32_t crash_peer = 0;
  sim::SimTime crash_at = sim::SimTime::seconds(3);
  /// First storm lookup time (successive lookups 150ms apart).
  sim::SimTime lookup_at = sim::SimTime::millis(3500);
  /// Exploration horizon: the quiescent point where the canonical state
  /// hash is taken and the strict audit + oracle wave run.  Must leave the
  /// world quiescent enough that co-enabled windows do not straddle it.
  sim::SimTime horizon = sim::SimTime::seconds(6);
  /// Commutation window handed to the kernel (0 = exact ties only).
  sim::Duration window{};
  hybrid::HybridParams params = verify_default_params();

  /// Canary fault: heartbeat messages from peer `hello_delay_from` to
  /// `hello_delay_to` (dense indices; 0 = off) sent during
  /// [hello_delay_start, hello_delay_end) are delayed by `hello_delay_by`.
  /// Deterministic, so the race it engineers is explored, not sampled.
  std::uint32_t hello_delay_from = 0;
  std::uint32_t hello_delay_to = 0;
  sim::Duration hello_delay_by{};
  sim::SimTime hello_delay_start{};
  sim::SimTime hello_delay_end{};
};

struct ScenarioOutcome {
  bool aborted = false;  // policy pruned the run before the horizon
  std::uint64_t state_hash = 0;
  std::uint64_t events_executed = 0;
  std::vector<std::string> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  /// Canonical serialization for byte-identical replay assertions.
  [[nodiscard]] std::string dump() const;
};

/// Runs one scenario under `policy` (nullptr = kernel FIFO order): builds
/// the world, explores up to the horizon, then -- policy uninstalled --
/// hashes the quiescent state, runs OverlayAuditor strict mode, verifies
/// ring/trees, and issues the ReferenceModel MUST/MAY lookup wave.
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioConfig& cfg,
                                           ScenarioPolicy* policy);

}  // namespace hp2p::verify
