#include "verify/choice_trace.hpp"

#include <cstdlib>

namespace hp2p::verify {

stats::JsonValue ChoiceTrace::to_json() const {
  auto v = stats::JsonValue::object();
  v.set("seed", static_cast<std::int64_t>(seed));
  auto arr = stats::JsonValue::array();
  arr.items().reserve(choices.size());
  for (const Choice& c : choices) {
    auto pair = stats::JsonValue::array();
    pair.items().reserve(2);
    pair.push_back(static_cast<std::int64_t>(c.decision));
    pair.push_back(static_cast<std::int64_t>(c.branch));
    arr.push_back(std::move(pair));
  }
  v.set("choices", std::move(arr));
  return v;
}

std::optional<ChoiceTrace> ChoiceTrace::from_json(const stats::JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  ChoiceTrace t;
  const auto* seed = v.find("seed");
  if (seed == nullptr || !seed->is_number()) return std::nullopt;
  t.seed = static_cast<std::uint64_t>(seed->as_int());
  const auto* choices = v.find("choices");
  if (choices == nullptr || !choices->is_array()) return std::nullopt;
  for (const auto& pv : choices->items()) {
    if (!pv.is_array() || pv.items().size() != 2 ||
        !pv.items()[0].is_number() || !pv.items()[1].is_number()) {
      return std::nullopt;
    }
    t.choices.push_back(
        Choice{static_cast<std::uint32_t>(pv.items()[0].as_int()),
               static_cast<std::uint32_t>(pv.items()[1].as_int())});
  }
  return t;
}

std::string ChoiceTrace::one_line() const {
  return "seed=" + std::to_string(seed) + " choices=" + to_json().dump(0);
}

std::optional<ChoiceTrace> ChoiceTrace::parse_one_line(
    const std::string& line) {
  const std::string marker = "choices=";
  const auto at = line.find(marker);
  if (at == std::string::npos) return std::nullopt;
  const auto json = stats::JsonValue::parse(line.substr(at + marker.size()));
  if (!json) return std::nullopt;
  return from_json(*json);
}

}  // namespace hp2p::verify
