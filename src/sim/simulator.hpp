// Discrete-event simulation kernel.
//
// Substitutes for the NS2 scheduler the paper ran on: a single-threaded,
// deterministic event loop.  Events at equal timestamps execute in the order
// they were scheduled (a monotone sequence number breaks ties), so a run is
// a pure function of (parameters, seed).
//
// Cancellation is lazy: cancel() frees the slot and the queue skips the
// corpse on pop, which keeps schedule/cancel O(log n) without heap surgery.
// The protocols cancel timers constantly (every HELLO reset), so this
// matters.
//
// Storage is an index-based slot arena: actions live in a flat vector of
// reusable slots (free-list recycling) instead of a node-allocating hash
// map, and the action type is an InlineFunction, so the steady-state
// schedule/dispatch path performs no heap allocations once the arena and
// heap vectors have reached their high-water capacity (asserted by the
// micro_kernel zero-allocation bench).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <queue>
#include <vector>

#include "common/inline_function.hpp"
#include "sim/time.hpp"

namespace hp2p::sim {

/// Handle to a scheduled event; valid until the event fires or is cancelled.
class TimerId {
 public:
  constexpr TimerId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(TimerId, TimerId) = default;

 private:
  friend class Simulator;
  constexpr explicit TimerId(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}
  std::uint64_t seq_{0};   // 0 = null handle; monotone, unique per event
  std::uint32_t slot_{0};  // arena slot the event occupies (O(1) cancel)
};

/// Coarse component tags for CPU and allocation attribution.  Every
/// scheduled event carries the tag that was current when it was scheduled,
/// so work a subsystem sets in motion (timers, message deliveries) is
/// attributed to that subsystem without per-call-site bookkeeping.
/// ComponentScope switches the current tag; the installed DispatchProbe
/// (stats::Profiler) observes the enter/leave transitions.
enum class Component : std::uint8_t {
  kKernel = 0,   // dispatch loop itself / untagged work
  kTransport,    // overlay message physics (delivery closures)
  kMembership,   // joins, leaves, crashes, HELLO failure detection
  kRing,         // t-network ring routing + finger maintenance
  kFlood,        // s-network flooding / random walks
  kBypass,       // bypass-link cache maintenance
  kData,         // store / lookup request handling
  kReplication,  // replica placement, re-replication, anti-entropy
  kChaos,        // fault-schedule engine
  kAudit,        // invariant auditor
  kWorkload,     // experiment driver (phase orchestration)
  kSampler,      // time-series gauge sampling (RSS reads are not free)
  kOther,        // explicitly untyped
  kCount_,       // sentinel
};

inline constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(Component::kCount_);

/// Stable snake_case name for metric keys and collapsed-stack frames.
[[nodiscard]] const char* component_name(Component c);

/// Observer of dispatch transitions.  The kernel stays free of timing and
/// accumulation logic -- it only reports "a frame tagged `c` began / the
/// innermost frame ended" -- so the stats layer can implement profiling
/// without a sim -> stats dependency.
class DispatchProbe {
 public:
  virtual ~DispatchProbe() = default;
  virtual void enter(Component c) = 0;
  virtual void leave() = 0;
  /// The host is about to (re)enter a dispatch run after doing unrelated
  /// work (called on probe installation and at run()/run_until() entry).
  /// Lets a timing probe re-mark its clock baseline so host work between
  /// dispatch runs is never charged to the next event.
  virtual void resync() {}
};

/// Per-event footprint: which peers the event's handler may touch.  Stamped
/// at schedule time (like the Component tag) and consumed by the verify/
/// explorer's independence relation: two events with non-wildcard, disjoint
/// peer sets commute.  The default is wildcard ("may touch anything"), so
/// unannotated call sites are conservatively ordered against everything --
/// annotations can only *add* commutativity, never unsoundness.
struct Footprint {
  static constexpr std::size_t kMaxPeers = 4;
  std::uint32_t peers[kMaxPeers] = {0, 0, 0, 0};
  std::uint8_t count = 0;
  bool wildcard = true;

  [[nodiscard]] static constexpr Footprint wild() { return Footprint{}; }
  [[nodiscard]] static Footprint on(std::initializer_list<std::uint32_t> ids) {
    Footprint f;
    if (ids.size() > kMaxPeers) return f;  // too wide: stay wildcard
    f.wildcard = false;
    for (std::uint32_t id : ids) f.peers[f.count++] = id;
    return f;
  }
  /// True when the two events are guaranteed to commute: neither is a
  /// wildcard and their peer sets are disjoint.
  [[nodiscard]] friend bool independent(const Footprint& a,
                                        const Footprint& b) {
    if (a.wildcard || b.wildcard) return false;
    for (std::uint8_t i = 0; i < a.count; ++i) {
      for (std::uint8_t j = 0; j < b.count; ++j) {
        if (a.peers[i] == b.peers[j]) return false;
      }
    }
    return true;
  }
};

/// One member of the co-enabled set handed to a TieBreakPolicy: a live event
/// whose fire time falls within the commutation window of the earliest live
/// event.  `seq` is stable across deterministic re-executions with the same
/// choice prefix, so explorers identify branches by it.
struct CoEnabledEvent {
  std::uint64_t seq = 0;
  SimTime when{};
  Component comp = Component::kKernel;
  Footprint fp{};
};

/// Pluggable tie-break: when installed, the kernel consults it on *every*
/// dispatch with the full co-enabled set (even singletons, so stateful
/// policies -- sleep sets -- can observe the whole schedule).  Must return
/// an index < n; out-of-range picks fall back to 0 (FIFO order).
class TieBreakPolicy {
 public:
  virtual ~TieBreakPolicy() = default;
  virtual std::size_t choose(const CoEnabledEvent* events, std::size_t n) = 0;
};

/// Counters the kernel maintains; exposed for tests and microbenchmarks.
struct SimulatorStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  /// Cancelled heap entries discarded while looking for the next live event
  /// (lazy cancellation leaves corpses behind; this counts their cleanup).
  std::uint64_t corpses_skipped = 0;
};

/// One kernel-level trace record, delivered to the optional trace callback.
struct TraceEvent {
  enum class Kind { kSchedule, kFire, kCancel };
  Kind kind;
  std::uint64_t seq;  // event sequence number (matches TimerId)
  SimTime when;       // scheduled fire time
};

/// The event loop.  Not thread-safe by design: replicas parallelize at the
/// whole-simulator granularity (one Simulator per thread).
class Simulator {
 public:
  /// Inline capacity sized for the transport's delivery-wrapping closure
  /// (the hottest event at scale): transport scalars + trace context + a
  /// nested Delivery (itself max_align-padded) land at 144 bytes; larger
  /// closures still work, they just heap-allocate like std::function
  /// always did.  micro_kernel's zero-alloc benches pin this.
  static constexpr std::size_t kActionCapacity = 160;
  using Action = InlineFunction<void(), kActionCapacity>;
  using TraceFn = std::function<void(const TraceEvent&)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when`; clamps to now() if earlier.
  TimerId schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` after now.
  TimerId schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event.  Returns false when the handle is null,
  /// already fired, or already cancelled.
  bool cancel(TimerId id);

  /// True when no live events remain.
  [[nodiscard]] bool idle() const { return live_events_ == 0; }

  /// Number of live (not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }

  /// Periodic housekeeping devices (gauge samplers, invariant auditors)
  /// count their armed tick as a *daemon* event: daemons re-arm only while
  /// pending_work() > 0, so two of them cannot keep each other -- and the
  /// run() loop -- alive after real work drains.  A device calls
  /// note_daemon_armed() when scheduling its tick and note_daemon_disarmed()
  /// when the tick fires (or is cancelled).
  void note_daemon_armed() { ++daemon_events_; }
  void note_daemon_disarmed() { --daemon_events_; }

  /// Live events that are not armed daemon ticks: the work that justifies
  /// keeping periodic housekeeping running.
  [[nodiscard]] std::size_t pending_work() const {
    return live_events_ - daemon_events_;
  }

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with time <= deadline, then sets now() = deadline.
  void run_until(SimTime deadline);

  [[nodiscard]] const SimulatorStats& stats() const { return stats_; }

  /// Installs (or, with an empty function, removes) a trace callback invoked
  /// on every schedule/fire/cancel.  When unset the hook costs one predicted
  /// branch per operation; see BM_EventQueueScheduleRun in micro_kernel.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Installs (or, with nullptr, removes) the dispatch probe.  Not owned.
  /// When unset the dispatch path costs one predicted branch per event
  /// (asserted by micro_kernel's zero-alloc benches staying flat).
  void set_dispatch_probe(DispatchProbe* probe) {
    probe_ = probe;
    if (probe_ != nullptr) probe_->resync();
  }
  [[nodiscard]] DispatchProbe* dispatch_probe() const { return probe_; }

  /// Tag stamped on events scheduled right now: the dispatching event's tag
  /// during dispatch, or the innermost ComponentScope's.
  [[nodiscard]] Component current_component() const {
    return current_component_;
  }

  /// Switches the current tag and opens a probe frame; returns the previous
  /// tag for end_component().  Use ComponentScope instead of calling these
  /// directly.
  Component begin_component(Component c) {
    const Component prev = current_component_;
    current_component_ = c;
    if (probe_ != nullptr) probe_->enter(c);
    return prev;
  }
  void end_component(Component prev) {
    current_component_ = prev;
    if (probe_ != nullptr) probe_->leave();
  }

  /// Footprint stamped on events scheduled right now (mirrors the component
  /// tag).  Defaults to wildcard; FootprintScope narrows it.
  [[nodiscard]] const Footprint& current_footprint() const {
    return current_footprint_;
  }
  Footprint begin_footprint(const Footprint& f) {
    const Footprint prev = current_footprint_;
    current_footprint_ = f;
    return prev;
  }
  void end_footprint(const Footprint& prev) { current_footprint_ = prev; }

  /// Installs (or, with nullptr, removes) the tie-break policy and sets the
  /// commutation window: live events whose fire times fall within `window`
  /// of the earliest live event form the co-enabled set the policy chooses
  /// from.  window == 0 (the default) means exact timestamp ties only.
  /// With a nonzero window an event can fire "early"; now() stays monotone
  /// (it never moves backward), so a reordered event observes the latest
  /// time of any event fired before it.  When unset the dispatch path is
  /// unchanged (one predicted branch per event).
  void set_tie_break_policy(TieBreakPolicy* policy, Duration window = {}) {
    policy_ = policy;
    window_ = window;
  }
  [[nodiscard]] TieBreakPolicy* tie_break_policy() const { return policy_; }

  /// Fire time of the next live event (prunes lazy-cancel corpses), or
  /// never() when the queue is empty.  Lets explorer drivers run a bounded
  /// horizon with an abort check between events.
  [[nodiscard]] SimTime next_event_time();
  [[nodiscard]] bool has_live_events() { return peek_live() != nullptr; }

  /// Arena occupancy, for the profiler's gauges: total slots ever grown to
  /// (the high-water mark of concurrently live events), currently live
  /// slots, and raw heap entries (live events + lazy-cancel corpses).
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t arena_live_slots() const {
    return slots_.size() - free_slots_.size();
  }
  [[nodiscard]] std::size_t queue_depth() const { return heap_.size(); }

 private:
  struct HeapItem {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// One arena slot.  seq == 0 marks a free slot; a heap corpse is an item
  /// whose (slot, seq) no longer matches the slot's current occupant.
  struct Slot {
    SimTime when{};  // kept so cancel() can report the fire time in traces
    std::uint64_t seq = 0;
    Component comp = Component::kKernel;  // tag current at schedule time
    Footprint fp{};                       // footprint current at schedule time
    Action action;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_live(const HeapItem& item) const {
    return slots_[item.slot].seq == item.seq;
  }
  void free_slot(std::uint32_t slot);

  /// Discards cancelled corpses from the heap top (counting them in
  /// stats_.corpses_skipped) and returns the next live item, or nullptr when
  /// nothing live remains.  The returned pointer is invalidated by any heap
  /// mutation.
  const HeapItem* peek_live();

  /// Pops heap items until one whose slot is still live surfaces.
  /// Returns false when nothing live remains.
  bool pop_live(HeapItem& out, Action& action, Component& comp);

  /// Policy-mode dispatch: gathers the co-enabled set, lets the installed
  /// TieBreakPolicy pick, fires the pick, and pushes the rest back.
  bool step_choice();

  /// Fires one popped event: advances now() monotonically, runs the action
  /// under its component tag, and brackets it with the dispatch probe.
  void fire(const HeapItem& item, Action& action, Component comp);

  SimTime now_{};
  std::uint64_t next_seq_ = 1;
  std::size_t daemon_events_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap_;
  std::vector<Slot> slots_;               // arena of live events
  std::vector<std::uint32_t> free_slots_; // recycled slot indices
  SimulatorStats stats_;
  TraceFn trace_;
  Component current_component_ = Component::kKernel;
  Footprint current_footprint_{};  // wildcard by default
  DispatchProbe* probe_ = nullptr;
  TieBreakPolicy* policy_ = nullptr;  // not owned; nullptr = FIFO dispatch
  Duration window_{};                 // co-enabled commutation window
  std::vector<HeapItem> staged_;      // step_choice scratch (reused)
  std::vector<CoEnabledEvent> cands_;
};

/// RAII component-tag switch: statements inside the scope -- and every event
/// they schedule -- are attributed to `c`.  Nesting restores the previous
/// tag on exit; the probe sees a matching enter/leave pair.
class ComponentScope {
 public:
  ComponentScope(Simulator& sim, Component c)
      : sim_(sim), prev_(sim.begin_component(c)) {}
  ~ComponentScope() { sim_.end_component(prev_); }
  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  Simulator& sim_;
  Component prev_;
};

/// RAII footprint switch: events scheduled inside the scope are stamped as
/// touching exactly `f`'s peers.  Nesting restores the previous footprint.
class FootprintScope {
 public:
  FootprintScope(Simulator& sim, const Footprint& f)
      : sim_(sim), prev_(sim.begin_footprint(f)) {}
  ~FootprintScope() { sim_.end_footprint(prev_); }
  FootprintScope(const FootprintScope&) = delete;
  FootprintScope& operator=(const FootprintScope&) = delete;

 private:
  Simulator& sim_;
  Footprint prev_;
};

}  // namespace hp2p::sim
