// Discrete-event simulation kernel.
//
// Substitutes for the NS2 scheduler the paper ran on: a single-threaded,
// deterministic event loop.  Events at equal timestamps execute in the order
// they were scheduled (a monotone sequence number breaks ties), so a run is
// a pure function of (parameters, seed).
//
// Cancellation is lazy: cancel() frees the slot and the queue skips the
// corpse on pop, which keeps schedule/cancel O(log n) without heap surgery.
// The protocols cancel timers constantly (every HELLO reset), so this
// matters.
//
// Storage is an index-based slot arena: actions live in a flat vector of
// reusable slots (free-list recycling) instead of a node-allocating hash
// map, and the action type is an InlineFunction, so the steady-state
// schedule/dispatch path performs no heap allocations once the arena and
// heap vectors have reached their high-water capacity (asserted by the
// micro_kernel zero-allocation bench).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/inline_function.hpp"
#include "sim/time.hpp"

namespace hp2p::sim {

/// Handle to a scheduled event; valid until the event fires or is cancelled.
class TimerId {
 public:
  constexpr TimerId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  friend constexpr bool operator==(TimerId, TimerId) = default;

 private:
  friend class Simulator;
  constexpr explicit TimerId(std::uint64_t seq, std::uint32_t slot)
      : seq_(seq), slot_(slot) {}
  std::uint64_t seq_{0};   // 0 = null handle; monotone, unique per event
  std::uint32_t slot_{0};  // arena slot the event occupies (O(1) cancel)
};

/// Counters the kernel maintains; exposed for tests and microbenchmarks.
struct SimulatorStats {
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;
  /// Cancelled heap entries discarded while looking for the next live event
  /// (lazy cancellation leaves corpses behind; this counts their cleanup).
  std::uint64_t corpses_skipped = 0;
};

/// One kernel-level trace record, delivered to the optional trace callback.
struct TraceEvent {
  enum class Kind { kSchedule, kFire, kCancel };
  Kind kind;
  std::uint64_t seq;  // event sequence number (matches TimerId)
  SimTime when;       // scheduled fire time
};

/// The event loop.  Not thread-safe by design: replicas parallelize at the
/// whole-simulator granularity (one Simulator per thread).
class Simulator {
 public:
  /// Inline capacity sized for the transport's delivery-wrapping closure
  /// (the hottest event at scale): transport scalars + trace context + a
  /// nested Delivery (itself max_align-padded) land at 144 bytes; larger
  /// closures still work, they just heap-allocate like std::function
  /// always did.  micro_kernel's zero-alloc benches pin this.
  static constexpr std::size_t kActionCapacity = 160;
  using Action = InlineFunction<void(), kActionCapacity>;
  using TraceFn = std::function<void(const TraceEvent&)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `when`; clamps to now() if earlier.
  TimerId schedule_at(SimTime when, Action action);

  /// Schedules `action` `delay` after now.
  TimerId schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event.  Returns false when the handle is null,
  /// already fired, or already cancelled.
  bool cancel(TimerId id);

  /// True when no live events remain.
  [[nodiscard]] bool idle() const { return live_events_ == 0; }

  /// Number of live (not yet fired, not cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }

  /// Periodic housekeeping devices (gauge samplers, invariant auditors)
  /// count their armed tick as a *daemon* event: daemons re-arm only while
  /// pending_work() > 0, so two of them cannot keep each other -- and the
  /// run() loop -- alive after real work drains.  A device calls
  /// note_daemon_armed() when scheduling its tick and note_daemon_disarmed()
  /// when the tick fires (or is cancelled).
  void note_daemon_armed() { ++daemon_events_; }
  void note_daemon_disarmed() { --daemon_events_; }

  /// Live events that are not armed daemon ticks: the work that justifies
  /// keeping periodic housekeeping running.
  [[nodiscard]] std::size_t pending_work() const {
    return live_events_ - daemon_events_;
  }

  /// Runs a single event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with time <= deadline, then sets now() = deadline.
  void run_until(SimTime deadline);

  [[nodiscard]] const SimulatorStats& stats() const { return stats_; }

  /// Installs (or, with an empty function, removes) a trace callback invoked
  /// on every schedule/fire/cancel.  When unset the hook costs one predicted
  /// branch per operation; see BM_EventQueueScheduleRun in micro_kernel.
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

 private:
  struct HeapItem {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// One arena slot.  seq == 0 marks a free slot; a heap corpse is an item
  /// whose (slot, seq) no longer matches the slot's current occupant.
  struct Slot {
    SimTime when{};  // kept so cancel() can report the fire time in traces
    std::uint64_t seq = 0;
    Action action;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_live(const HeapItem& item) const {
    return slots_[item.slot].seq == item.seq;
  }
  void free_slot(std::uint32_t slot);

  /// Discards cancelled corpses from the heap top (counting them in
  /// stats_.corpses_skipped) and returns the next live item, or nullptr when
  /// nothing live remains.  The returned pointer is invalidated by any heap
  /// mutation.
  const HeapItem* peek_live();

  /// Pops heap items until one whose slot is still live surfaces.
  /// Returns false when nothing live remains.
  bool pop_live(HeapItem& out, Action& action);

  SimTime now_{};
  std::uint64_t next_seq_ = 1;
  std::size_t daemon_events_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> heap_;
  std::vector<Slot> slots_;               // arena of live events
  std::vector<std::uint32_t> free_slots_; // recycled slot indices
  SimulatorStats stats_;
  TraceFn trace_;
};

}  // namespace hp2p::sim
