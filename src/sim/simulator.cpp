#include "sim/simulator.hpp"

#include <utility>

namespace hp2p::sim {

TimerId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapItem{when, seq});
  pending_.emplace(seq, Pending{when, std::move(action)});
  ++stats_.events_scheduled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kSchedule, seq, when});
  return TimerId{seq};
}

bool Simulator::cancel(TimerId id) {
  if (!id.valid()) return false;
  auto it = pending_.find(id.seq_);
  if (it == pending_.end()) return false;
  const SimTime when = it->second.when;
  pending_.erase(it);
  ++stats_.events_cancelled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kCancel, id.seq_, when});
  return true;
}

const Simulator::HeapItem* Simulator::peek_live() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();  // cancelled; discard the corpse
    ++stats_.corpses_skipped;
  }
  return heap_.empty() ? nullptr : &heap_.top();
}

bool Simulator::pop_live(HeapItem& out, Action& action) {
  // One hash lookup per heap item, live or corpse: the find() both detects
  // cancellation and yields the action.
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    const auto it = pending_.find(top.seq);
    if (it == pending_.end()) {
      heap_.pop();  // cancelled; discard the corpse
      ++stats_.corpses_skipped;
      continue;
    }
    heap_.pop();
    out = top;
    action = std::move(it->second.action);
    pending_.erase(it);
    return true;
  }
  return false;
}

bool Simulator::step() {
  HeapItem item{};
  Action action;
  if (!pop_live(item, action)) return false;
  now_ = item.when;
  ++stats_.events_executed;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kFire, item.seq, item.when});
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  for (const HeapItem* next = peek_live();
       next != nullptr && next->when <= deadline; next = peek_live()) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace hp2p::sim
